"""Fail when sweep throughput regresses against the committed trajectory.

Used by the CI ``bench-regression`` job: the gemm48 sweep benchmark writes a
fresh ``--bench-json`` file, and this script compares it against the
committed ``BENCH_engine.json`` baseline.

Two metrics are compared against the tolerance (default 20%):

* ``fused_candidates_per_sec`` — the absolute throughput headline, and
* ``fused_speedup`` — fused-vs-affine measured in the *same* run, which is
  machine-class invariant.

Two structural invariants are additionally asserted on the *current* file
alone: when the zero-copy benchmark records ``parallel_speedup`` (the
adaptive ``jobs=2`` path versus serial), a sweep slower than serial beyond
the 5% timer-noise floor fails outright — the parallel path must never be a
pessimisation again, whatever the runner class.  (The tuner guarantees this
structurally by declining a pool the batch cannot amortise, so the ratio
sits at parity or better; well under parity means the decision logic broke.)
And when the fleet benchmark records ``fleet_speedup`` (3 replicas versus 1
with an injected per-lease delay), a ratio under 1.4 fails outright — the
coordinator's lease dispatch must overlap across replicas, and the injected
delay makes that ratio machine-class invariant too.

The machine-invariant ratio is the authoritative gate whenever both files
record it: a regressed ratio fails even on a runner fast enough to keep the
absolute number above the floor, and a slower runner with a healthy ratio
passes (with a note to refresh the baseline).  When the ratio is absent the
absolute number gates alone.

Usage::

    python benchmarks/check_bench_regression.py \
        --baseline BENCH_engine.json --current fresh_bench.json
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_BENCHMARK = "engine_sweep_gemm48x100"
PARALLEL_BENCHMARK = "engine_sweep_parallel_zero_copy_gemm48x40"


def load_records(path: str) -> dict[str, dict]:
    """Records keyed by benchmark name (last record wins, like the conftest merge)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return {
        record["benchmark"]: record
        for record in payload.get("records", [])
        if "benchmark" in record
    }


def load_metric(path: str, benchmark: str, field: str) -> float | None:
    record = load_records(path).get(benchmark)
    if record is not None and field in record:
        return float(record[field])
    return None


def compare(name: str, baseline: float, current: float, tolerance: float) -> bool:
    """Print one metric's verdict; returns True when within tolerance."""
    floor = baseline * (1.0 - tolerance)
    ok = current >= floor
    print(
        f"{name}: baseline {baseline:.2f}, current {current:.2f}, "
        f"floor {floor:.2f} -> {'ok' if ok else 'regressed'}"
    )
    return ok


PARALLEL_NOISE_FLOOR = 0.95

FLEET_BENCHMARK = "fleet_gemm48"
#: The delay-injected 3-replica dispatch overlap sits near 3x by
#: construction (6 half-second leases, three in flight); 1.4 leaves ample
#: noise headroom while still failing any collapse back towards serial
#: dispatch.
FLEET_NOISE_FLOOR = 1.4


def check_fleet_speedup(current_records: dict[str, dict]) -> bool:
    """Fleet lease dispatch must overlap across replicas; returns True when
    sound.  Like the parallel gate, this is structural on the *current* run
    alone: the injected per-lease delay makes the ratio machine-class
    invariant, so no baseline comparison is needed."""
    record = current_records.get(FLEET_BENCHMARK)
    if record is None or "fleet_speedup" not in record:
        print(f"no {FLEET_BENCHMARK!r} fleet_speedup in the current run; "
              "fleet gate skipped")
        return True
    speedup = float(record["fleet_speedup"])
    ok = speedup >= FLEET_NOISE_FLOOR
    print(f"{FLEET_BENCHMARK}.fleet_speedup: {speedup:.2f} "
          f"(floor {FLEET_NOISE_FLOOR}) "
          f"-> {'ok' if ok else 'fleet dispatch no longer overlaps'}")
    return ok


def check_parallel_speedup(current_records: dict[str, dict]) -> bool:
    """The adaptive jobs=2 path must not be slower than serial (modulo timer
    noise); returns True when sound."""
    record = current_records.get(PARALLEL_BENCHMARK)
    if record is None or "parallel_speedup" not in record:
        print(f"no {PARALLEL_BENCHMARK!r} parallel_speedup in the current run; "
              "parallel gate skipped")
        return True
    speedup = float(record["parallel_speedup"])
    ok = speedup >= PARALLEL_NOISE_FLOOR
    print(f"{PARALLEL_BENCHMARK}.parallel_speedup: {speedup:.2f} "
          f"(floor {PARALLEL_NOISE_FLOOR}) "
          f"-> {'ok' if ok else 'parallel slower than serial'}")
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_engine.json trajectory")
    parser.add_argument("--current", required=True,
                        help="freshly measured --bench-json file")
    parser.add_argument("--benchmark", default=DEFAULT_BENCHMARK)
    parser.add_argument("--field", default="fused_candidates_per_sec",
                        help="absolute throughput field")
    parser.add_argument("--ratio-field", default="fused_speedup",
                        help="machine-invariant ratio field (empty to disable)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop before failing (0.20 = 20%%)")
    args = parser.parse_args(argv)

    current_records = load_records(args.current)
    if not current_records:
        print(f"error: {args.current} has no benchmark records")
        return 2
    baseline_records = load_records(args.baseline)

    if not check_parallel_speedup(current_records):
        print(
            "a warm jobs=2 sweep ran slower than serial: the parallel "
            "dispatch path is a pessimisation again; investigate before "
            "merging"
        )
        return 1

    if not check_fleet_speedup(current_records):
        print(
            "the 3-replica fleet stopped overlapping its lease dispatches: "
            "leases are being serviced serially again; investigate the "
            "coordinator's worker scheduling before merging"
        )
        return 1

    # Gate only on benchmarks present in BOTH files: a record renamed or
    # newly added on one side is a trajectory change to note, not a failure.
    if args.benchmark not in current_records:
        print(f"{args.current} has no {args.benchmark!r} record "
              f"(has: {', '.join(sorted(current_records))}); nothing to gate")
        return 0
    if args.benchmark not in baseline_records:
        # First run on a branch without a committed record: nothing to gate.
        print(f"no committed baseline for {args.benchmark!r}; recording only")
        return 0

    current_record = current_records[args.benchmark]
    baseline_record = baseline_records[args.benchmark]
    if args.field not in current_record or args.field not in baseline_record:
        missing = args.current if args.field not in current_record else args.baseline
        print(f"{missing} records {args.benchmark!r} without field "
              f"{args.field!r}; nothing to gate")
        return 0

    absolute_ok = compare(
        f"{args.benchmark}.{args.field}",
        float(baseline_record[args.field]),
        float(current_record[args.field]),
        args.tolerance,
    )
    ratio_ok = None
    if args.ratio_field:
        if (args.ratio_field in baseline_record
                and args.ratio_field in current_record):
            ratio_ok = compare(
                f"{args.benchmark}.{args.ratio_field}",
                float(baseline_record[args.ratio_field]),
                float(current_record[args.ratio_field]),
                args.tolerance,
            )

    if ratio_ok is False:
        print(
            f"the machine-invariant fused-vs-affine ratio regressed more than "
            f"{args.tolerance:.0%} versus the committed baseline — a code "
            "regression, whatever the runner class; investigate before merging"
        )
        return 1
    if not absolute_ok and ratio_ok is None:
        print(
            f"throughput regressed more than {args.tolerance:.0%} versus the "
            "committed BENCH_engine.json (no ratio metric available to rule "
            "out a machine-class difference); investigate before merging"
        )
        return 1
    if not absolute_ok:
        print(
            "absolute throughput is below the committed baseline but the "
            "fused-vs-affine ratio is healthy: machine-class difference, "
            "not a regression (refresh BENCH_engine.json from this machine "
            "class to tighten the gate)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
