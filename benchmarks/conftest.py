"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper via the drivers
in :mod:`repro.experiments`, prints the regenerated rows (so the benchmark log
doubles as the reproduced evaluation), and asserts the qualitative claim the
artefact supports.  Heavy drivers are executed exactly once per benchmark
(``rounds=1``) — the interesting measurement is the end-to-end regeneration
time, not micro-timing stability.
"""

from __future__ import annotations

import pathlib

import pytest


def pytest_collection_modifyitems(items):
    """Every benchmark regenerates a full evaluation artefact: mark them slow
    so the default CI lane (``-m "not slow"``) skips them.

    The hook sees the whole session's items, so restrict it to this directory.
    """
    here = pathlib.Path(__file__).parent
    for item in items:
        if here in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)


def run_once(benchmark, runner, *args, **kwargs):
    """Execute an experiment driver once under pytest-benchmark and return its result."""
    return benchmark.pedantic(runner, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def show():
    """Print an ExperimentResult table so it lands in the benchmark output log."""

    def _show(result, max_rows: int | None = 40):
        print()
        print(result.table(max_rows=max_rows))
        return result

    return _show
