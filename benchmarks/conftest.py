"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper via the drivers
in :mod:`repro.experiments`, prints the regenerated rows (so the benchmark log
doubles as the reproduced evaluation), and asserts the qualitative claim the
artefact supports.  Heavy drivers are executed exactly once per benchmark
(``rounds=1``) — the interesting measurement is the end-to-end regeneration
time, not micro-timing stability.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, runner, *args, **kwargs):
    """Execute an experiment driver once under pytest-benchmark and return its result."""
    return benchmark.pedantic(runner, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def show():
    """Print an ExperimentResult table so it lands in the benchmark output log."""

    def _show(result, max_rows: int | None = 40):
        print()
        print(result.table(max_rows=max_rows))
        return result

    return _show
