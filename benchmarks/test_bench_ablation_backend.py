"""Ablation: analyzer chunk size and interconnect complexity (DESIGN.md section 6).

Two design choices of the reproduction are measured directly:

* the vectorised enumeration chunk size (small chunks stress the streaming
  path; large chunks the vectorised path), and
* the interconnect complexity (the paper observes modeling time grows with a
  richer interconnect but is insensitive to the PE-array size).
"""

import pytest

from repro.core import analyze
from repro.dataflows import get_dataflow
from repro.experiments.common import make_arch
from repro.tensor import conv2d


@pytest.fixture(scope="module")
def conv_setup():
    op = conv2d(16, 16, 14, 14, 3, 3)
    dataflow = get_dataflow("conv2d", "(KC-P | OY,OX-T)")
    return op, dataflow


@pytest.mark.parametrize("chunk_size", [1 << 14, 1 << 18, 1 << 22])
def test_bench_ablation_chunk_size(benchmark, conv_setup, chunk_size):
    op, dataflow = conv_setup
    arch = make_arch(pe_dims=(8, 8), interconnect="2d-systolic")
    report = benchmark.pedantic(
        lambda: analyze(op, dataflow, arch, chunk_size=chunk_size), rounds=1, iterations=1
    )
    assert report.volumes["Y"].total == op.num_instances()


@pytest.mark.parametrize("interconnect", ["1d-systolic", "2d-systolic", "mesh"])
def test_bench_ablation_interconnect(benchmark, conv_setup, interconnect):
    op, dataflow = conv_setup
    arch = make_arch(pe_dims=(8, 8), interconnect=interconnect)
    report = benchmark.pedantic(lambda: analyze(op, dataflow, arch), rounds=1, iterations=1)
    assert report.latency_cycles > 0


@pytest.mark.parametrize("pe", [(4, 4), (8, 8), (16, 16)])
def test_bench_ablation_pe_array_size(benchmark, conv_setup, pe):
    op, _ = conv_setup
    dataflow = get_dataflow("conv2d", "(KC-P | OY,OX-T)", rows=pe[0], cols=pe[1])
    arch = make_arch(pe_dims=pe, interconnect="2d-systolic")
    report = benchmark.pedantic(lambda: analyze(op, dataflow, arch), rounds=1, iterations=1)
    assert report.latency_cycles > 0
