"""Section IV-A: design-space size (GEMM: 512 relation-centric vs 18 data-centric)."""

from benchmarks.conftest import run_once
from repro.experiments import design_space_size


def test_bench_design_space_size(benchmark, show):
    result = run_once(benchmark, design_space_size.run, 6)
    show(result)
    gemm_row = result.filter_rows(loops=3)[0]
    assert gemm_row["relation_centric"] == 512
    assert gemm_row["data_centric"] == 18
