"""Section VI-B: pruned design-space exploration."""

from benchmarks.conftest import run_once
from repro.experiments import dse_experiment


def test_bench_dse_exploration(benchmark, show):
    result = run_once(benchmark, dse_experiment.run,
                      conv_sizes=(16, 16, 7, 7, 3, 3), max_candidates=30)
    show(result, max_rows=None)
    assert result.headline["paper_pruned_space"] == 25920
    assert result.headline["candidates_evaluated"] >= 20
    # Extrapolated sweep of the paper-sized pruned space stays in the "hours" regime.
    assert result.headline["projected_hours_for_paper_space"] < 24
