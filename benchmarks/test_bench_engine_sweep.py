"""Acceptance benchmark for the shared evaluation engine.

A 100-candidate GEMM sweep through :class:`EvaluationEngine` (single process,
relation cache on) must be at least 2x faster than 100 independent
``TenetAnalyzer`` runs while producing bit-identical performance reports.
"""

import itertools
import time

from repro.core.analyzer import TenetAnalyzer
from repro.core.engine import EvaluationEngine, RelationCache, dataflow_signature
from repro.core.dataflow import Dataflow
from repro.experiments.common import make_arch
from repro.isl.expr import var
from repro.tensor.kernels import gemm

GEMM_SIZE = 48
PE_DIMS = (8, 8)
NUM_CANDIDATES = 100


def sweep_candidates(op, count=NUM_CANDIDATES):
    """Structurally distinct GEMM dataflows: space-axis pairs x time orders x skews."""
    rows, cols = PE_DIMS
    dims = list(op.loop_dims)
    candidates = []
    seen = set()
    for first, second in itertools.permutations(dims, 2):
        remaining = [dim for dim in dims if dim not in (first, second)]
        space = [var(first) % rows, var(second) % cols]
        base = [var(remaining[0]), var(first) // rows, var(second) // cols]
        for order in itertools.permutations(range(len(base))):
            for skew in range(4):
                time_exprs = [base[index] for index in order]
                inner = time_exprs[-1]
                if skew & 1:
                    inner = inner + space[0]
                if skew & 2:
                    inner = inner + space[1]
                time_exprs = time_exprs[:-1] + [inner]
                name = f"({first}{second}-P | {''.join(map(str, order))}s{skew}-T)"
                candidate = Dataflow.from_exprs(name, op.domain.space, space, time_exprs)
                signature = dataflow_signature(candidate)
                if signature in seen:
                    continue
                seen.add(signature)
                candidates.append(candidate)
                if len(candidates) == count:
                    return candidates
    raise AssertionError(f"only generated {len(candidates)} distinct candidates")


def comparable(report):
    data = report.as_dict()
    data.pop("analysis_seconds")
    data["notes"] = list(report.notes)
    return data


def test_bench_engine_sweep(benchmark):
    op = gemm(GEMM_SIZE, GEMM_SIZE, GEMM_SIZE)
    arch = make_arch(pe_dims=PE_DIMS, interconnect="2d-systolic")
    candidates = sweep_candidates(op)
    assert len(candidates) == NUM_CANDIDATES

    started = time.perf_counter()
    baseline = [TenetAnalyzer(op, candidate, arch).analyze() for candidate in candidates]
    baseline_seconds = time.perf_counter() - started

    engine = EvaluationEngine(op, arch, jobs=1, cache=RelationCache())

    def sweep():
        return engine.evaluate_batch(candidates)

    batch = benchmark.pedantic(sweep, rounds=1, iterations=1)
    engine_seconds = batch.seconds
    speedup = baseline_seconds / engine_seconds

    print()
    print(f"independent analyzer runs : {baseline_seconds:.2f} s")
    print(f"engine sweep (cache on)   : {engine_seconds:.2f} s")
    print(f"speedup                   : {speedup:.2f}x")
    print(f"engine stats              : {engine.stats}")

    reports = batch.reports
    assert len(reports) == NUM_CANDIDATES
    for reference, cached in zip(baseline, reports):
        assert comparable(reference) == comparable(cached)
    assert speedup >= 2.0, f"engine sweep only {speedup:.2f}x faster than independent runs"
