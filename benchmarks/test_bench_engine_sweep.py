"""Acceptance benchmarks for the shared evaluation engine and its backends.

Four claims are checked on GEMM sweeps:

* the PR 1 claim — a 100-candidate sweep through :class:`EvaluationEngine`
  (interp backend, relation cache on) is at least 2x faster than 100
  independent ``TenetAnalyzer`` runs;
* the PR 2 claim — the compiled affine backend is at least 2x faster again
  than the PR 1 interpreted engine path on the same sweep;
* the PR 4 claim — the batch-fused backend (stacked stamp matmuls, windowed
  volume kernels, spacetime-content memo) is at least 2x faster again than
  the affine backend on the same sweep at ``jobs=1``, and ``jobs>1`` sweeps
  map the cached relations zero-copy (no worker re-materialisation);
* every backend (``interp``/``affine``/``bitset``/``fused``/``auto``)
  produces bit-identical performance reports, including dataflows with nested
  ``mod``/``floordiv`` terms that exercise the compiled backends' interpreter
  fallback, and wide temporal intervals where only the bit-set kernel applies.

Timings land in the ``--bench-json`` trajectory (see the root conftest).
"""

import itertools
import time

from repro.core.analyzer import TenetAnalyzer
from repro.core.engine import EvaluationEngine, RelationCache, dataflow_signature
from repro.core.dataflow import Dataflow
from repro.experiments.common import make_arch
from repro.isl.expr import var
from repro.tensor.kernels import gemm

GEMM_SIZE = 48
PE_DIMS = (8, 8)
NUM_CANDIDATES = 100


def sweep_candidates(op, count=NUM_CANDIDATES, pe_dims=PE_DIMS):
    """Structurally distinct GEMM dataflows: space-axis pairs x time orders x skews."""
    rows, cols = pe_dims
    dims = list(op.loop_dims)
    candidates = []
    seen = set()
    for first, second in itertools.permutations(dims, 2):
        remaining = [dim for dim in dims if dim not in (first, second)]
        space = [var(first) % rows, var(second) % cols]
        base = [var(remaining[0]), var(first) // rows, var(second) // cols]
        for order in itertools.permutations(range(len(base))):
            for skew in range(4):
                time_exprs = [base[index] for index in order]
                inner = time_exprs[-1]
                if skew & 1:
                    inner = inner + space[0]
                if skew & 2:
                    inner = inner + space[1]
                time_exprs = time_exprs[:-1] + [inner]
                name = f"({first}{second}-P | {''.join(map(str, order))}s{skew}-T)"
                candidate = Dataflow.from_exprs(name, op.domain.space, space, time_exprs)
                signature = dataflow_signature(candidate)
                if signature in seen:
                    continue
                seen.add(signature)
                candidates.append(candidate)
                if len(candidates) == count:
                    return candidates
    raise AssertionError(f"only generated {len(candidates)} distinct candidates")


def nested_quasi_candidates(op, count=6, pe_dims=PE_DIMS):
    """Dataflows whose time stamps contain *nested* quasi terms.

    ``(fl(first/rows) + second) mod M`` wraps a floordiv inside a mod, which
    the affine compiler cannot lower to derived columns — these candidates
    exercise the compiled backends' ``evaluate_vec`` interpreter fallback.
    """
    rows, cols = pe_dims
    dims = list(op.loop_dims)
    candidates = []
    for modulus, (first, second) in zip(
        itertools.cycle((5, 7, 11)), itertools.permutations(dims, 2)
    ):
        remaining = [dim for dim in dims if dim not in (first, second)]
        space = [var(first) % rows, var(second) % cols]
        folded = (var(first) // rows + var(second)) % modulus
        time_exprs = [var(remaining[0]), var(first) // rows, var(second) // cols, folded]
        name = f"({first}{second}-P | nested%{modulus}-T)"
        candidates.append(Dataflow.from_exprs(name, op.domain.space, space, time_exprs))
        if len(candidates) == count:
            break
    return candidates


def comparable(report):
    data = report.as_dict()
    data.pop("analysis_seconds")
    data["notes"] = list(report.notes)
    return data


def reset_memos(engine):
    """Clear every cross-round memo so repeated timings stay honest."""
    engine._memo.clear()
    spacetime = getattr(engine.backend, "spacetime_memo", None)
    if spacetime is not None:
        spacetime._entries.clear()


def timed_sweep(op, arch, candidates, backend, repeats=2, **engine_kwargs):
    """Best-of-``repeats`` steady-state sweep time (relation cache warm).

    A production sweep evaluates thousands of candidates against one warm
    cache, so one-time costs (relation materialisation, layout compilation)
    are amortised: warm the engine, then time full sweeps with the report
    memo cleared in between and keep the fastest run, exactly like the fig8
    runtime driver does.
    """
    engine = EvaluationEngine(
        op, arch, jobs=1, cache=RelationCache(), backend=backend, **engine_kwargs
    )
    engine.evaluate(candidates[0])  # warm the relation cache
    seconds = float("inf")
    for _ in range(max(1, repeats)):
        reset_memos(engine)
        started = time.perf_counter()
        batch = engine.evaluate_batch(candidates)
        seconds = min(seconds, time.perf_counter() - started)
    return batch, seconds, engine


def interleaved_sweeps(op, arch, candidates, backends, rounds=4):
    """Steady-state sweep times for several backends, interleaved per round.

    Interleaving makes the comparison robust to systemic noise (CPU
    contention, frequency scaling): a slow phase of the machine inflates
    every backend's round equally, and the per-backend minimum over rounds
    discards it.
    """
    engines = {}
    for backend in backends:
        engine = EvaluationEngine(
            op, arch, jobs=1, cache=RelationCache(), backend=backend
        )
        engine.evaluate(candidates[0])  # warm relation cache and layouts
        engines[backend] = engine
    batches = {}
    seconds = {backend: float("inf") for backend in backends}
    for _ in range(rounds):
        for backend, engine in engines.items():
            reset_memos(engine)
            started = time.perf_counter()
            batches[backend] = engine.evaluate_batch(candidates)
            seconds[backend] = min(seconds[backend], time.perf_counter() - started)
    return batches, seconds, engines


def test_bench_engine_sweep(benchmark, bench_record):
    op = gemm(GEMM_SIZE, GEMM_SIZE, GEMM_SIZE)
    arch = make_arch(pe_dims=PE_DIMS, interconnect="2d-systolic")
    candidates = sweep_candidates(op)
    assert len(candidates) == NUM_CANDIDATES

    started = time.perf_counter()
    baseline = [TenetAnalyzer(op, candidate, arch).analyze() for candidate in candidates]
    baseline_seconds = time.perf_counter() - started

    def sweep():
        return interleaved_sweeps(
            op, arch, candidates, ("interp", "affine", "fused", "auto")
        )

    def ratios(seconds):
        # compiled_speedup is the PR 2 claim and must hold for the affine
        # backend itself (not for whichever compiled backend happens to be
        # fastest); fused_speedup is the PR 4 claim on top of it.
        return (
            baseline_seconds / seconds["interp"],
            seconds["interp"] / seconds["affine"],
            seconds["affine"] / min(seconds["fused"], seconds["auto"]),
        )

    batches, seconds, engines = benchmark.pedantic(sweep, rounds=1, iterations=1)
    engine_speedup, compiled_speedup, fused_speedup = ratios(seconds)
    # The compiled backends must clear the PR 2 bar vs interp and the fused
    # backend the PR 4 bar vs affine; the default (auto) may not regress
    # materially against either.  A single re-measure guards the ratios
    # against one-off machine hiccups.
    if (
        compiled_speedup < 2.0
        or fused_speedup < 2.0
        or seconds["auto"] > seconds["affine"] * 1.25
    ):
        batches, seconds, engines = sweep()
        engine_speedup, compiled_speedup, fused_speedup = ratios(seconds)
    interp_seconds = seconds["interp"]

    bitset_batch, bitset_seconds, bitset_engine = timed_sweep(
        op, arch, candidates, "bitset", repeats=1
    )

    fused_cps = NUM_CANDIDATES / seconds["fused"]
    print()
    print(f"independent analyzer runs : {baseline_seconds:.2f} s")
    print(f"interp engine sweep       : {interp_seconds:.2f} s ({engine_speedup:.2f}x)")
    print(f"affine backend sweep      : {seconds['affine']:.2f} s")
    print(f"fused backend sweep       : {seconds['fused']:.2f} s "
          f"({fused_speedup:.2f}x vs affine, {fused_cps:.0f} cand/s)")
    print(f"auto backend sweep        : {seconds['auto']:.2f} s")
    print(f"bitset backend sweep      : {bitset_seconds:.2f} s")
    print(f"compiled speedup          : {compiled_speedup:.2f}x vs interp")
    print(f"fused stats               : {engines['fused'].stats}")
    bench_record(
        "engine_sweep_gemm48x100",
        analyzer_seconds=round(baseline_seconds, 3),
        interp_seconds=round(interp_seconds, 3),
        affine_seconds=round(seconds["affine"], 3),
        fused_seconds=round(seconds["fused"], 3),
        auto_seconds=round(seconds["auto"], 3),
        bitset_seconds=round(bitset_seconds, 3),
        engine_speedup=round(engine_speedup, 2),
        compiled_speedup=round(compiled_speedup, 2),
        fused_speedup=round(fused_speedup, 2),
        fused_candidates_per_sec=round(fused_cps, 1),
    )

    # Bit-identical reports across the analyzer and every backend.
    for batch in (*batches.values(), bitset_batch):
        reports = batch.reports
        assert len(reports) == NUM_CANDIDATES
        for reference, candidate in zip(baseline, reports):
            assert comparable(reference) == comparable(candidate)

    assert engines["interp"].stats["fast_path"] > 0
    assert engines["affine"].stats["compiled_path"] > 0
    assert engines["fused"].stats["fused_path"] > 0
    assert bitset_engine.stats["bitset_path"] > 0

    assert engine_speedup >= 2.0, (
        f"engine sweep only {engine_speedup:.2f}x faster than independent runs"
    )
    assert compiled_speedup >= 2.0, (
        f"compiled backends only {compiled_speedup:.2f}x faster than the interpreted engine"
    )
    assert fused_speedup >= 2.0, (
        f"fused backend only {fused_speedup:.2f}x faster than the affine backend"
    )
    # Guard the shipped default: auto must stay close to the pure affine
    # backend on an op where its kernel choice should match.
    assert seconds["auto"] <= seconds["affine"] * 1.25, (
        f"auto backend ({seconds['auto']:.2f}s) regressed against affine "
        f"({seconds['affine']:.2f}s)"
    )


def test_bench_fused_xp(bench_record):
    """Array-API fused throughput per namespace on the gemm48x100 sweep.

    The numpy leg is the CPU-regression guard for the array-namespace port
    (the ``engine_sweep_gemm48x100.fused_candidates_per_sec`` record gates
    it); additional namespaces (torch-CPU in the CI device-matrix job) record
    their own throughput and are asserted bit-identical to numpy.
    """
    from repro.core.xp import available_namespaces

    op = gemm(GEMM_SIZE, GEMM_SIZE, GEMM_SIZE)
    arch = make_arch(pe_dims=PE_DIMS, interconnect="2d-systolic")
    candidates = sweep_candidates(op)

    specs = ["numpy"]
    if "torch" in available_namespaces():
        specs.append("torch:cpu")

    record = {}
    batches = {}
    print()
    for spec in specs:
        batch, seconds, engine = timed_sweep(
            op, arch, candidates, "fused", repeats=2, device=spec
        )
        batches[spec] = batch
        cps = NUM_CANDIDATES / seconds
        field = spec.partition(":")[0]
        record[f"{field}_candidates_per_sec"] = round(cps, 1)
        transfer = engine.profile()["transfer"]
        print(f"fused[{spec:9s}]          : {seconds:.2f} s "
              f"({cps:.0f} cand/s, transfer {transfer:.3f} s)")
        assert engine.stats["fused_path"] > 0
    bench_record("fused_xp", **record)

    reference = batches["numpy"].reports
    assert len(reference) == NUM_CANDIDATES
    for spec, batch in batches.items():
        for a, b in zip(reference, batch.reports):
            assert comparable(a) == comparable(b), f"{spec} diverged from numpy"


def test_bench_backend_fallback_and_wide_interval(bench_record):
    op = gemm(24, 24, 24)
    arch = make_arch(pe_dims=(4, 4), interconnect="2d-systolic")

    # Nested mod/floordiv time stamps: the affine compiler falls back to the
    # interpreter for those expressions; reports stay bit-identical.
    nested = nested_quasi_candidates(op, pe_dims=(4, 4))
    interp_batch, _, _ = timed_sweep(op, arch, nested, "interp")
    for backend in ("affine", "bitset", "auto"):
        batch, _, engine = timed_sweep(op, arch, nested, backend)
        assert engine.stats["stamp_fallback_exprs"] > 0
        for reference, candidate in zip(interp_batch.reports, batch.reports):
            assert comparable(reference) == comparable(candidate)

    # Temporal intervals beyond the sort kernels' adjacency window: only the
    # bit-set kernel applies; interp/affine chain to the reference kernel and
    # everything still agrees bit for bit.
    wide = sweep_candidates(op, count=30, pe_dims=(4, 4))
    interp_batch, interp_seconds, interp_engine = timed_sweep(
        op, arch, wide, "interp", temporal_interval=12
    )
    auto_batch, auto_seconds, auto_engine = timed_sweep(
        op, arch, wide, "auto", temporal_interval=12
    )
    assert interp_engine.stats["reference_path"] > 0
    assert auto_engine.stats["bitset_path"] > 0
    for reference, candidate in zip(interp_batch.reports, auto_batch.reports):
        assert comparable(reference) == comparable(candidate)
    wide_speedup = interp_seconds / auto_seconds
    print(f"\nwide-interval sweep: interp {interp_seconds:.2f}s, "
          f"auto {auto_seconds:.2f}s ({wide_speedup:.2f}x)")
    bench_record(
        "engine_sweep_wide_interval_gemm24",
        interp_seconds=round(interp_seconds, 3),
        auto_seconds=round(auto_seconds, 3),
        speedup=round(wide_speedup, 2),
    )
    assert wide_speedup >= 1.1, (
        f"bit-set kernel only {wide_speedup:.2f}x faster on wide temporal intervals"
    )


def test_bench_parallel_zero_copy_relations(bench_record):
    """``jobs=2`` is no longer slower than serial, and workers stay zero-copy.

    Two measurements:

    * the **raw warm pool** (pool spun up, shared relations mapped, layouts
      compiled; best of two rounds) — this is where the zero-copy claim is
      asserted (every worker's first ``relations()`` call must *hit* its
      seeded cache) and where the chunk floor keeps tasks large enough to
      amortise dispatch; the wall clock is recorded informationally because
      its speedup is machine-class dependent (a single-core runner cannot
      win);
    * the **adaptive jobs=2 path** — an engine *configured* ``jobs=2`` with
      tuning on, which measures per-candidate cost and declines a pool it
      cannot amortise (this 40-candidate batch carries ~0.3s of work against
      a ~1.5s cold spin-up).  This is the fix for the committed regression
      (``jobs=2`` 1.9x slower than serial): the recorded ``parallel_speedup``
      gates in ``check_bench_regression.py`` so a jobs=2 sweep slower than
      serial fails main again.
    """
    op = gemm(GEMM_SIZE, GEMM_SIZE, GEMM_SIZE)
    arch = make_arch(pe_dims=PE_DIMS, interconnect="2d-systolic")
    candidates = sweep_candidates(op, count=42)
    bench_cands, warm_cands = candidates[:40], candidates[40:]

    serial_batch, _, serial_engine = timed_sweep(
        op, arch, bench_cands, "fused", repeats=1, memoize=False
    )

    pool_engine = EvaluationEngine(
        op, arch, jobs=2, cache=RelationCache(), backend="fused", memoize=False
    )
    try:
        # Warm the pool on two disjoint candidates: worker spawn, shared
        # relation mapping, and per-worker layout compilation happen here.
        pool_engine.evaluate_batch(warm_cands)
        pool_seconds = float("inf")
        for _ in range(2):
            started = time.perf_counter()
            pool_batch = pool_engine.evaluate_batch(bench_cands)
            pool_seconds = min(pool_seconds, time.perf_counter() - started)
        cache_stats = pool_engine.cache_stats()
    finally:
        pool_engine.close()

    assert len(pool_batch.reports) == len(serial_batch.reports) == len(bench_cands)
    for reference, candidate in zip(serial_batch.reports, pool_batch.reports):
        assert comparable(reference) == comparable(candidate)
    assert cache_stats["worker_misses"] == 0, (
        f"workers re-materialised relations instead of mapping shared memory: "
        f"{cache_stats}"
    )
    assert cache_stats["worker_hits"] > 0

    tuned_engine = EvaluationEngine(
        op, arch, jobs=2, cache=RelationCache(), backend="fused",
        memoize=False, tune="auto",
    )
    try:
        # Untimed warm pass: compiles layouts and completes calibration, so
        # the timed rounds measure the steady-state adaptive path.  Rounds
        # interleave serial and tuned so systemic noise (CPU contention,
        # frequency scaling) inflates both sides of a round equally and the
        # per-side minimum discards it.
        tuned_engine.evaluate_batch(bench_cands)
        serial_seconds = tuned_seconds = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            serial_batch = serial_engine.evaluate_batch(bench_cands)
            serial_seconds = min(serial_seconds, time.perf_counter() - started)
            started = time.perf_counter()
            tuned_batch = tuned_engine.evaluate_batch(bench_cands)
            tuned_seconds = min(tuned_seconds, time.perf_counter() - started)
        tuner_decisions = list(tuned_engine.tuner.decisions)
    finally:
        tuned_engine.close()

    for reference, candidate in zip(serial_batch.reports, tuned_batch.reports):
        assert comparable(reference) == comparable(candidate)

    parallel_speedup = serial_seconds / tuned_seconds
    print(f"\nzero-copy parallel sweep: serial {serial_seconds:.2f}s, "
          f"raw jobs=2 pool {pool_seconds:.2f}s, adaptive jobs=2 "
          f"{tuned_seconds:.2f}s ({parallel_speedup:.2f}x), "
          f"worker cache {cache_stats}")
    print(f"tuner decisions: {tuner_decisions}")
    bench_record(
        "engine_sweep_parallel_zero_copy_gemm48x40",
        serial_seconds=round(serial_seconds, 3),
        pool_seconds=round(pool_seconds, 3),
        parallel_seconds=round(tuned_seconds, 3),
        parallel_speedup=round(parallel_speedup, 2),
        worker_cache_hits=cache_stats["worker_hits"],
        worker_cache_misses=cache_stats["worker_misses"],
    )


def test_bench_autotune_sweep(bench_record, tmp_path):
    """Auto-tuned sweeps are bit-identical to untuned ones and at least as fast.

    Calibration runs once on its own engine (measuring backends and batch
    size, fitting the best-first ranker from the checkpoint it writes); the
    timed tuned run then pins that learned profile, exactly how a resumed or
    repeated production sweep reuses a checkpointed profile.  Both timed runs
    are steady-state (memoisation off, caches warm, interleaved rounds,
    per-side minimum) on the same 100-candidate gemm48 sweep.
    """
    from repro.sweep import SweepSession

    op = gemm(GEMM_SIZE, GEMM_SIZE, GEMM_SIZE)
    arch = make_arch(pe_dims=PE_DIMS, interconnect="2d-systolic")
    candidates = sweep_candidates(op)
    cache = RelationCache()

    calib_engine = EvaluationEngine(
        op, arch, cache=cache, backend="auto", memoize=False, tune="auto"
    )
    calib_session = SweepSession(
        calib_engine, objective="latency", batch_size=64,
        checkpoint=str(tmp_path / "calib.jsonl"),
    )
    calib_result = calib_session.run(candidates)
    profile = calib_engine.tuner.profile_dict()
    calib_engine.close()
    assert profile["calibrated"], profile

    untuned_engine = EvaluationEngine(
        op, arch, cache=cache, backend="auto", memoize=False
    )
    tuned_engine = EvaluationEngine(
        op, arch, cache=cache, backend="auto", memoize=False, tune=profile
    )
    untuned_engine.evaluate(candidates[0])
    tuned_engine.evaluate(candidates[0])

    seconds = {"untuned": float("inf"), "tuned": float("inf")}
    results = {}
    for _ in range(2):
        for label, engine in (("untuned", untuned_engine), ("tuned", tuned_engine)):
            reset_memos(engine)
            session = SweepSession(engine, objective="latency", batch_size=64)
            started = time.perf_counter()
            results[label] = session.run(candidates)
            seconds[label] = min(seconds[label], time.perf_counter() - started)

    untuned_engine.close()
    tuned_engine.close()

    def ranking_key(result):
        return [(e.signature, e.name, e.score) for e in result.ranking]

    assert ranking_key(results["tuned"]) == ranking_key(results["untuned"])
    assert ranking_key(results["tuned"]) == ranking_key(calib_result)
    assert results["tuned"].num_candidates == results["untuned"].num_candidates

    untuned_cps = NUM_CANDIDATES / seconds["untuned"]
    tuned_cps = NUM_CANDIDATES / seconds["tuned"]
    speedup = seconds["untuned"] / seconds["tuned"]
    print(f"\nautotuned sweep: untuned {seconds['untuned']:.2f}s "
          f"({untuned_cps:.0f} cand/s), tuned {seconds['tuned']:.2f}s "
          f"({tuned_cps:.0f} cand/s, {speedup:.2f}x)")
    print(f"tuner decisions: {profile['decisions']}")
    bench_record(
        "autotune_gemm48",
        untuned_seconds=round(seconds["untuned"], 3),
        tuned_seconds=round(seconds["tuned"], 3),
        untuned_candidates_per_sec=round(untuned_cps, 1),
        tuned_candidates_per_sec=round(tuned_cps, 1),
        tuned_speedup=round(speedup, 2),
        tuned_backend=profile["backend"],
        tuned_batch_size=profile["batch_size"],
    )
    assert speedup >= 0.9, (
        f"auto-tuning made the sweep materially slower ({speedup:.2f}x)"
    )


def test_bench_sbw_objective_prunes(bench_record):
    """``sbw`` early termination prunes candidates, best rank unchanged.

    The footprint bound divides by the candidate's compute delay, so pruning
    kicks in once a long-delay, low-bandwidth candidate is known: every
    highly-parallel candidate whose footprint floor already exceeds that
    bandwidth is skipped before its volume counting.
    """
    op = gemm(32, 32, 32)
    arch = make_arch(pe_dims=PE_DIMS, interconnect="2d-systolic")
    i, j, k = (var(dim) for dim in op.loop_dims)
    serial = Dataflow.from_exprs(
        "serial-low-sbw", op.domain.space, [i % PE_DIMS[0], j % PE_DIMS[1]], [i, j, k]
    )
    candidates = [serial] + sweep_candidates(op, count=60)
    cache = RelationCache()
    full_engine = EvaluationEngine(op, arch, cache=cache, memoize=False)
    full = full_engine.evaluate_batch(candidates, objective="sbw")
    pruned_engine = EvaluationEngine(op, arch, cache=cache, memoize=False)
    pruned = pruned_engine.evaluate_batch(
        candidates, objective="sbw", early_termination=True
    )
    score = lambda r: (r.scratchpad_bandwidth_bits(), r.dataflow)
    best_full = min(full.reports, key=score)
    best_pruned = min(pruned.reports, key=score)
    assert comparable(best_full) == comparable(best_pruned)
    assert len(pruned.pruned) > 0
    assert len(pruned.reports) + len(pruned.pruned) == len(candidates)
    print(f"\nsbw sweep: {len(pruned.pruned)} of {len(candidates)} candidates pruned")
    bench_record(
        "sbw_objective_pruning_gemm32",
        candidates=len(candidates),
        pruned=len(pruned.pruned),
    )
