"""Figure 10: per-tensor IBW / SBW across interconnect topologies."""

from benchmarks.conftest import run_once
from repro.experiments import fig10_bandwidth


def test_bench_fig10_bandwidth(benchmark, show):
    result = run_once(benchmark, fig10_bandwidth.run)
    show(result, max_rows=None)
    # Topologies show broadly similar SBW for the same dataflow (regular access patterns),
    # and at least one diagonal-reuse dataflow gains from the mesh.
    assert result.rows
    assert result.headline["dataflows_where_mesh_lowers_sbw"] != "none"
