"""Figure 11: latency / PE-utilisation estimation accuracy vs the reference simulator."""

from benchmarks.conftest import run_once
from repro.experiments import fig11_accuracy


def test_bench_fig11_accuracy(benchmark, show):
    result = run_once(benchmark, fig11_accuracy.run, max_instances=150_000)
    show(result, max_rows=None)
    # The relation-centric analytical model must track the simulator more closely
    # than the polynomial baseline, for both latency and utilisation.
    assert (result.headline["tenet_latency_accuracy_pct"]
            > result.headline["baseline_latency_accuracy_pct"])
    assert (result.headline["tenet_util_error_pct"]
            <= result.headline["baseline_util_error_pct"])
