"""Figure 12: per-tensor reuse factors, TENET vs the data-centric polynomial."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import fig12_reuse


def test_bench_fig12_reuse_factors(benchmark, show):
    result = run_once(benchmark, fig12_reuse.run, max_instances=300_000)
    show(result, max_rows=None)
    outputs = [row for row in result.rows if row["role"] == "output"]
    # The data-centric polynomial never reports output reuse...
    assert all(row["maestro_reuse_factor"] == pytest.approx(1.0) for row in outputs
               if row["maestro_reuse_factor"] is not None)
    # ...while the relation count finds real accumulation reuse on several layers.
    assert any(row["tenet_reuse_factor"] > 1.0 for row in outputs)
    # MobileNet's pointwise layers show the characteristic low input reuse.
    pw_inputs = [row for row in result.rows
                 if row["network"] == "MobileNet" and row["layer"].startswith("pw-")
                 and row["role"] == "input"]
    other_inputs = [row for row in result.rows
                    if row["network"] == "MobileNet" and not row["layer"].startswith("pw-")
                    and row["role"] == "input"]
    if pw_inputs and other_inputs:
        assert (min(r["tenet_reuse_factor"] for r in pw_inputs)
                <= max(r["tenet_reuse_factor"] for r in other_inputs))
