"""Figure 1(c): skewed-access reuse example (actual 6 vs data-centric 8)."""

from benchmarks.conftest import run_once
from repro.experiments import fig1_reuse_example


def test_bench_fig1_reuse_example(benchmark, show):
    result = run_once(benchmark, fig1_reuse_example.run)
    show(result)
    assert result.headline["tenet_reuse_of_A"] == 6
    assert result.headline["data_centric_reuse_of_A"] == 8
