"""Figure 6: latency vs scratchpad bandwidth, TENET-only vs data-centric dataflows."""

from benchmarks.conftest import run_once
from repro.experiments import fig6_latency_bandwidth


def test_bench_fig6_latency_bandwidth(benchmark, show):
    result = run_once(
        benchmark,
        fig6_latency_bandwidth.run,
        gemm_size=64,
        conv_sizes=(32, 32, 14, 14, 3, 3),
    )
    show(result, max_rows=None)
    # Shape of the paper's claim: the relation-only dataflows reduce latency on average.
    assert result.headline["gemm_avg_latency_reduction_pct"] > 0
    assert result.headline["conv_avg_latency_reduction_pct"] > 0
