"""Figure 7: large-scale applications (GoogLeNet, MobileNet, ALS, Transformer)."""

from benchmarks.conftest import run_once
from repro.experiments import fig7_large_apps


def test_bench_fig7_large_apps(benchmark, show):
    result = run_once(benchmark, fig7_large_apps.run, max_instances=400_000)
    show(result, max_rows=None)
    # The relation-centric space contains the data-centric one, so the latency of the
    # best TENET dataflow never exceeds the data-centric best on either DNN.
    assert result.headline["GoogLeNet_latency_reduction_pct"] >= 0
    assert result.headline["MobileNet_latency_reduction_pct"] >= 0
    # TENET's dataflows cut the scratchpad bandwidth requirement on GoogLeNet
    # (MobileNet's pointwise layers are bandwidth-neutral at the scaled sizes —
    # see EXPERIMENTS.md for the recorded deviation).
    assert result.headline["GoogLeNet_bandwidth_reduction_pct"] > 0
    # ALS and Transformer rows exist even though the data-centric baseline cannot express them.
    assert any(row["application"] == "ALS" for row in result.rows)
    assert any(row["application"] == "Transformer" for row in result.rows)
