"""Figure 8: modeling runtime of TENET vs the polynomial baseline."""

from benchmarks.conftest import run_once
from repro.experiments import fig8_runtime


def test_bench_fig8_runtime(benchmark, show):
    result = run_once(benchmark, fig8_runtime.run, gemm_size=32,
                      conv_sizes=(16, 16, 14, 14, 3, 3))
    show(result, max_rows=None)
    # The polynomial model is orders of magnitude faster; TENET stays sub-second-ish
    # per dataflow at these sizes (the paper reports 1e-1 s vs 1e-2 s).
    assert result.headline["slowdown_factor"] > 1
    assert result.headline["avg_tenet_seconds"] < 10.0
