"""Figure 9: critical metrics (reuse, utilisation, latency) for the Table III dataflows."""

from benchmarks.conftest import run_once
from repro.experiments import fig9_metrics


def test_bench_fig9_critical_metrics(benchmark, show):
    result = run_once(benchmark, fig9_metrics.run)
    show(result, max_rows=None)
    gemm_rows = [row for row in result.rows if row["kernel"] == "gemm"]
    two_dim = [row for row in gemm_rows if row["dataflow"] in
               ("(IJ-P | J,IJK-T)", "(KJ-P | K,IJK-T)", "(IK-P | K,IJK-T)")]
    one_dim = [row for row in gemm_rows if row["dataflow"] in
               ("(K-P | I,J-T)", "(J-P | I,K-T)")]
    # Section VI-C: 2-D space-stamp GEMM dataflows outperform the 1-D ones.
    assert min(r["latency_cycles"] for r in two_dim) < min(r["latency_cycles"] for r in one_dim)
    # The output-stationary dataflow shows temporal but no spatial reuse for Y.
    ij = next(r for r in gemm_rows if r["dataflow"] == "(IJ-P | J,IJK-T)")
    assert ij["temporal_reuse_Y"] > 0
    assert ij["spatial_reuse_Y"] == 0
    assert ij["spatial_reuse_A"] > 0
