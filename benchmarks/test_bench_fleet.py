"""Fleet orchestration benchmark: candidates/sec scaling 1 -> 3 replicas.

The container CI runs on a single CPU, so genuine compute parallelism across
replica processes is unmeasurable there.  What the fleet *does* buy on any
machine is dispatch overlap: N leases in flight at once instead of one after
another.  The gated measurement therefore arms every replica with a seeded
``server.request``/``delay`` fault (0.5 s per lease — an I/O-bound or
remote-accelerator stand-in whose sleeps overlap across processes even on
one core), pre-warms each replica's engine with an untimed warmup sweep
(consuming delay event #1, so the timed window holds leases only), and gates

    ``fleet_speedup`` = (candidates/sec, 3 replicas) / (candidates/sec, 1)

With 6 leases of ~0.5 s each: a single replica serialises all six (>= 3 s),
three replicas overlap them two-deep (>= 1 s) — the ratio approaches 3 and
must exceed 1.8 (``check_bench_regression.py`` gates it at 1.4 with noise
headroom).  The *undelayed* runs are also recorded (``real_*`` fields) as
informational context: on a single-CPU runner they mostly measure fleet
dispatch overhead, on a multi-core machine they show real scaling.
"""

import time

from repro.sweep import FaultPlan, FaultSpec, FleetCoordinator, SweepClient
from repro.sweep.fleet import launch_replica, stop_replica

REQUEST = {"kernel": "gemm", "sizes": [48, 48, 48], "max_candidates": 48, "top": 64}
SHARDS = 6
DELAY_SECONDS = 0.5


def run_fleet(workdir, replica_count, delay):
    """One timed fleet run: spawn, warm up untimed, sweep all leases, tear down.

    Returns ``(processed_candidates, seconds)`` for the lease window only —
    replica spawn and engine warmup never pollute the scaling measurement.
    """
    plan = None
    if delay:
        # Delay events 2..SHARDS+1 on every replica: event 1 is the warmup
        # sweep, and no replica can serve more than SHARDS leases, so every
        # timed lease is delayed and no warmup is.
        plan = FaultPlan(
            specs=[
                FaultSpec("server.request", "delay", at=at, arg=delay)
                for at in range(2, SHARDS + 2)
            ]
        )
    replicas = []
    try:
        for _ in range(replica_count):
            process, host, port = launch_replica(
                checkpoint_root=str(workdir), fault_plan=plan
            )
            replicas.append((process, host, port))
        for _, host, port in replicas:
            with SweepClient(host, port, timeout=300.0) as client:
                record = client.request(dict(REQUEST))
                assert "error" not in record, record
        coordinator = FleetCoordinator(
            dict(REQUEST),
            shards=SHARDS,
            checkpoint_dir=workdir,
            attach=[(host, port) for _, host, port in replicas],
            lease_timeout=600.0,
            heartbeat_interval=0,
        )
        started = time.perf_counter()
        result = coordinator.run()
        seconds = time.perf_counter() - started
    finally:
        for process, _, _ in replicas:
            stop_replica(process)
    assert result.steals == 0 and result.evictions == 0, "benchmark fleet faulted"
    assert all(lease.state == "done" for lease in result.leases)
    assert result.ranking, "fleet produced an empty merged ranking"
    return result.processed, seconds


def test_bench_fleet_scaling(tmp_path, bench_record):
    runs = {}
    for label, count, delay in [
        ("single", 1, DELAY_SECONDS),
        ("fleet", 3, DELAY_SECONDS),
        ("real_single", 1, 0.0),
        ("real_fleet", 3, 0.0),
    ]:
        workdir = tmp_path / label
        workdir.mkdir()
        processed, seconds = run_fleet(workdir, count, delay)
        runs[label] = (processed, seconds)
        print(f"{label}: {processed} candidates in {seconds:.2f}s "
              f"({processed / seconds:.2f}/s)")

    assert runs["single"][0] == runs["fleet"][0], "replica counts swept different spaces"
    cps = {label: processed / seconds for label, (processed, seconds) in runs.items()}
    fleet_speedup = cps["fleet"] / cps["single"]
    real_speedup = cps["real_fleet"] / cps["real_single"]
    print(f"fleet_speedup (delay-injected): {fleet_speedup:.2f}, "
          f"real (undelayed): {real_speedup:.2f}")

    bench_record(
        "fleet_gemm48",
        candidates=runs["fleet"][0],
        shards=SHARDS,
        replicas=3,
        injected_delay_s=DELAY_SECONDS,
        single_candidates_per_sec=round(cps["single"], 2),
        fleet_candidates_per_sec=round(cps["fleet"], 2),
        fleet_speedup=round(fleet_speedup, 3),
        real_single_candidates_per_sec=round(cps["real_single"], 2),
        real_fleet_candidates_per_sec=round(cps["real_fleet"], 2),
        real_fleet_speedup=round(real_speedup, 3),
    )
    # 6 half-second leases: serial >= 3 s, 3-way overlapped >= 1 s.  Anything
    # under 1.8x means leases stopped overlapping — a coordinator regression.
    assert fleet_speedup > 1.8, (
        f"fleet dispatch overlap collapsed: 3-replica speedup {fleet_speedup:.2f}"
    )
