"""Acceptance benchmarks for the streaming sweep pipeline (`repro.sweep`).

Three claims are checked on the 100-candidate GEMM sweep family:

* **Shard identity** — ``shard(0, n) … shard(n-1, n)`` together evaluate every
  candidate exactly once and their merged checkpoint ranking is bit-identical
  to the unsharded sweep's.
* **Resume identity** — a sweep killed mid-stream and resumed from its
  checkpoint produces a final ranking bit-identical to an uninterrupted run.
* **Throughput** — the streaming session's end-to-end candidates/sec lands in
  the ``--bench-json`` trajectory so the perf history covers the pipeline,
  and the streaming overhead over a raw ``evaluate_batch`` call stays small.
"""

import time

from benchmarks.test_bench_engine_sweep import GEMM_SIZE, sweep_candidates
from repro.core.engine import EvaluationEngine, RelationCache, dataflow_signature
from repro.experiments.common import make_arch
from repro.sweep import CandidateSource, SweepSession, load_ranking, render_ranking
from repro.tensor.kernels import gemm

NUM_CANDIDATES = 100


def fresh_session(op, arch, checkpoint=None, resume=False, batch_size=25):
    engine = EvaluationEngine(op, arch, cache=RelationCache(), memoize=False)
    return SweepSession(
        engine,
        objective="latency",
        batch_size=batch_size,
        checkpoint=checkpoint,
        resume=resume,
    )


def test_bench_sweep_pipeline_shard_resume_identity(tmp_path, bench_record):
    op = gemm(GEMM_SIZE, GEMM_SIZE, GEMM_SIZE)
    arch = make_arch(pe_dims=(8, 8))

    full_path = tmp_path / "full.jsonl"
    started = time.perf_counter()
    full = fresh_session(op, arch, checkpoint=str(full_path)).run(
        CandidateSource(lambda: sweep_candidates(op, NUM_CANDIDATES))
    )
    sweep_seconds = time.perf_counter() - started
    assert len(full.evaluated) == NUM_CANDIDATES

    # -- shard identity: partition exactly once, merge bit-identically -------
    shard_paths = []
    shard_signatures: list[str] = []
    for index in range(2):
        path = tmp_path / f"shard{index}.jsonl"
        shard_paths.append(path)
        result = fresh_session(op, arch, checkpoint=str(path)).run(
            CandidateSource(lambda: sweep_candidates(op, NUM_CANDIDATES)),
            shard=(index, 2),
        )
        shard_signatures.extend(e.signature for e in result.ranking)
    assert sorted(shard_signatures) == sorted(
        dataflow_signature(c) for c in sweep_candidates(op, NUM_CANDIDATES)
    )
    merged = load_ranking(shard_paths)
    reference = load_ranking(full_path)
    assert [(e.signature, e.score, e.data) for e in merged] == [
        (e.signature, e.score, e.data) for e in reference
    ]
    assert render_ranking(merged) == render_ranking(reference)

    # -- resume identity: kill after 40 candidates, resume, compare ----------
    resumed_path = tmp_path / "resumed.jsonl"
    fresh_session(op, arch, checkpoint=str(resumed_path)).run(
        CandidateSource(lambda: sweep_candidates(op, NUM_CANDIDATES)).limit(40)
    )
    resumed = fresh_session(op, arch, checkpoint=str(resumed_path), resume=True).run(
        CandidateSource(lambda: sweep_candidates(op, NUM_CANDIDATES))
    )
    assert resumed.skipped == 40
    assert [(e.signature, e.score, e.data) for e in resumed.ranking] == [
        (e.signature, e.score, e.data) for e in full.ranking
    ]

    # -- throughput trajectory ------------------------------------------------
    bench_record(
        "sweep_pipeline_gemm48",
        candidates=NUM_CANDIDATES,
        sweep_seconds=round(sweep_seconds, 4),
        candidates_per_second=round(full.throughput, 2),
        batches=full.batches,
    )


def test_bench_sweep_streaming_overhead(bench_record):
    # The session's streaming loop (signatures, sinks, ranking) must not cost
    # a meaningful fraction of the raw engine batch it drives.
    op = gemm(GEMM_SIZE, GEMM_SIZE, GEMM_SIZE)
    arch = make_arch(pe_dims=(8, 8))
    candidates = sweep_candidates(op, NUM_CANDIDATES)

    engine = EvaluationEngine(op, arch, cache=RelationCache(), memoize=False)
    engine.evaluate(candidates[0])  # warm the relations
    started = time.perf_counter()
    engine.evaluate_batch(candidates)
    raw_seconds = time.perf_counter() - started

    session = SweepSession(
        EvaluationEngine(op, arch, cache=RelationCache(), memoize=False),
        objective="latency",
        batch_size=25,
    )
    session.evaluate(candidates[0])
    started = time.perf_counter()
    result = session.run(candidates)
    session_seconds = time.perf_counter() - started

    overhead = session_seconds / raw_seconds if raw_seconds else float("inf")
    bench_record(
        "sweep_streaming_overhead_gemm48",
        raw_batch_seconds=round(raw_seconds, 4),
        session_seconds=round(session_seconds, 4),
        overhead_ratio=round(overhead, 3),
        candidates_per_second=round(result.throughput, 2),
    )
    assert len(result.evaluated) == NUM_CANDIDATES
    assert overhead < 1.5, (
        f"streaming session is {overhead:.2f}x the raw batch on the same engine"
    )
