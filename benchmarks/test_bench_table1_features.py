"""Table I: notation capability matrix."""

from benchmarks.conftest import run_once
from repro.experiments import table1_features


def test_bench_table1_features(benchmark, show):
    result = run_once(benchmark, table1_features.run)
    show(result)
    assert len(result.rows) == 10
