"""Table III: relation-centric notations for the dataflow catalog."""

from benchmarks.conftest import run_once
from repro.experiments import table3_notations


def test_bench_table3_notations(benchmark, show):
    result = run_once(benchmark, table3_notations.run)
    show(result, max_rows=None)
    assert result.headline["total_dataflows"] >= 24
    assert result.headline["tenet_only_dataflows"] >= 10
