"""Root pytest configuration: benchmark trajectory output.

``--bench-json PATH`` makes the session write every record collected through
the :func:`bench_record` fixture (timings, speedups, engine stats from the
benchmarks) to ``PATH`` as JSON.  The option now *defaults to the repo root*
(``BENCH_engine.json``) so CI and local benchmark runs both land in the
committed trajectory file without extra flags; sessions that collect no
records (the fast test lane) leave the file untouched.

Existing entries are **merged, not overwritten**: records replace same-named
benchmarks and every other benchmark's last measurement survives, so the file
accumulates the cross-PR perf trajectory even when only a subset of
benchmarks runs.  CI uploads the file as an artifact; locally::

    PYTHONPATH=src python -m pytest -m slow benchmarks
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

BENCH_RECORDS_KEY = pytest.StashKey()

#: Committed benchmark trajectory, next to this conftest.
DEFAULT_BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_engine.json"


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=str(DEFAULT_BENCH_JSON),
        metavar="PATH",
        help="write benchmark timing records to PATH as JSON "
             "(default: BENCH_engine.json at the repo root; existing entries "
             "are merged by benchmark name, not overwritten)",
    )


def pytest_configure(config):
    config.stash[BENCH_RECORDS_KEY] = []


@pytest.fixture
def bench_record(request):
    """Record one named benchmark measurement for the --bench-json trajectory."""
    records = request.config.stash[BENCH_RECORDS_KEY]

    def _record(name: str, **fields):
        entry = {"benchmark": name, **fields}
        records.append(entry)
        return entry

    return _record


def merge_bench_records(existing: dict, records: list[dict]) -> dict:
    """Replace same-named records, keep the rest of the trajectory."""
    merged: dict[str, dict] = {}
    for record in existing.get("records", []):
        name = record.get("benchmark")
        if name:
            merged[name] = record
    for record in records:
        merged[record["benchmark"]] = record
    return {
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "records": sorted(merged.values(), key=lambda r: r["benchmark"]),
    }


def pytest_sessionfinish(session, exitstatus):
    records = session.config.stash.get(BENCH_RECORDS_KEY, [])
    if not records:
        # Nothing measured this session (e.g. the fast lane); never clobber
        # the committed trajectory with an empty file.
        return
    if exitstatus != 0:
        # A failing session must not rewrite the committed baseline with the
        # very numbers whose assertions just failed.
        return
    path = pathlib.Path(session.config.getoption("--bench-json"))
    existing: dict = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            existing = {}
    payload = merge_bench_records(existing, records)
    path.write_text(json.dumps(payload, indent=2) + "\n")
