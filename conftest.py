"""Root pytest configuration: benchmark trajectory output.

``--bench-json PATH`` makes the session write every record collected through
the :func:`bench_record` fixture (timings, speedups, engine stats from the
benchmarks) to ``PATH`` as JSON.  CI uploads the file as an artifact so perf
regressions are visible across PRs; locally::

    PYTHONPATH=src python -m pytest -m slow benchmarks --bench-json BENCH_engine.json
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

BENCH_RECORDS_KEY = pytest.StashKey()


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="PATH",
        help="write benchmark timing records to PATH as JSON",
    )


def pytest_configure(config):
    config.stash[BENCH_RECORDS_KEY] = []


@pytest.fixture
def bench_record(request):
    """Record one named benchmark measurement for the --bench-json trajectory."""
    records = request.config.stash[BENCH_RECORDS_KEY]

    def _record(name: str, **fields):
        entry = {"benchmark": name, **fields}
        records.append(entry)
        return entry

    return _record


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json")
    if not path:
        return
    payload = {
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "records": session.config.stash.get(BENCH_RECORDS_KEY, []),
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")
