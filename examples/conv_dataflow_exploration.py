"""Explore 2D-CONV dataflows for a GoogLeNet-style layer.

This example reproduces the workflow an accelerator designer would follow
(Sections IV and VI-B/VI-C):

1. pick a convolution layer,
2. evaluate every Table III CONV dataflow on an 8x8 systolic array,
3. run the pruned design-space exploration on top, and
4. report which dataflow wins under a latency objective, and how the winner
   changes when the scratchpad bandwidth is scarce.

Run with::

    python examples/conv_dataflow_exploration.py
"""

from repro.core import analyze
from repro.core.latency import compute_latency
from repro.arch.memory import MemoryHierarchy
from repro.dataflows import dataflows_for
from repro.dse import DesignSpaceExplorer, pruned_candidates
from repro.experiments.common import make_arch
from repro.tensor import conv2d


def evaluate_catalog(operation, architecture):
    """Analyse every catalog CONV dataflow that fits an 8x8 array."""
    reports = []
    for entry in dataflows_for("conv2d"):
        if entry.preferred_pe_dims != (8, 8):
            continue
        report = analyze(operation, entry.build(), architecture)
        reports.append(report)
        print(f"  {report.dataflow:24s} latency={report.latency_cycles:>9.0f}  "
              f"util={report.average_pe_utilization:5.1%}  "
              f"SBW={report.scratchpad_bandwidth_bits():6.1f} bit/cycle")
    return reports


def main() -> None:
    # An inception-3a style layer, shrunk to keep the example fast.
    operation = conv2d(32, 32, 14, 14, 3, 3, name="incpt-3a-small")
    architecture = make_arch(pe_dims=(8, 8), interconnect="2d-systolic",
                             bandwidth_bits=128)
    print(f"layer {operation}: {operation.num_instances()} MACs on {architecture}")
    print("\nTable III dataflows:")
    reports = evaluate_catalog(operation, architecture)

    best = min(reports, key=lambda r: r.latency_cycles)
    print(f"\nbest catalog dataflow: {best.dataflow} ({best.latency_cycles:.0f} cycles)")

    # How does the ranking change when bandwidth is scarce?  The volumes are
    # bandwidth independent, so the latency can be re-derived per bandwidth.
    print("\nlatency at different scratchpad bandwidths (bit/cycle):")
    for bandwidth in (160, 96, 64):
        memory = MemoryHierarchy.default(scratchpad_bandwidth_bits=bandwidth)
        ranked = sorted(
            reports,
            key=lambda r: compute_latency(r.utilization, r.volumes,
                                          ["A", "B"], ["Y"], memory).latency,
        )
        winner = ranked[0]
        latency = compute_latency(winner.utilization, winner.volumes,
                                  ["A", "B"], ["Y"], memory).latency
        print(f"  {bandwidth:>4} bit/cycle -> {winner.dataflow:24s} {latency:9.0f} cycles")

    # Finally, let the explorer search the pruned relation-centric space.
    print("\npruned design-space exploration (latency objective):")
    explorer = DesignSpaceExplorer(operation, architecture, objective="latency")
    exploration = explorer.explore(
        pruned_candidates(operation, pe_dims=(8, 8), allow_packing=True, max_candidates=30)
    )
    print(exploration.summary())


if __name__ == "__main__":
    main()
