"""Bring your own kernel: from C source to dataflow metrics.

Demonstrates the C-like frontend of Figure 2 ("tensor app written in C") on an
MTTKRP kernel, compares two dataflows for it — one expressible with
data-centric primitives and one requiring an affine (skewed) time-stamp — and
prints their metrics side by side.

Run with::

    python examples/custom_kernel_from_c.py
"""

from repro.core import Dataflow, analyze
from repro.experiments.common import make_arch
from repro.tensor import parse_c_loop_nest

MTTKRP_C = """
for (i = 0; i < 32; i++)
  for (j = 0; j < 32; j++)
    for (k = 0; k < 16; k++)
      for (l = 0; l < 16; l++)
        Y[i][j] += A[i][k][l] * B[k][j] * C[l][j];
"""


def main() -> None:
    operation = parse_c_loop_nest(MTTKRP_C, name="MTTKRP")
    print(operation.describe())
    print()

    architecture = make_arch(pe_dims=(8, 8), interconnect="2d-systolic", bandwidth_bits=96)

    # A plain output-stationary mapping (expressible with data-centric primitives).
    plain = Dataflow.from_exprs(
        "(IJ-P | L-T)", operation,
        ["i mod 8", "j mod 8"],
        ["k", "fl(i/8)", "fl(j/8)", "l"],
    )
    # The skewed Table III dataflow: the innermost time-stamp couples i, j and l.
    skewed = Dataflow.from_exprs(
        "(IJ-P | J,IJL-T)", operation,
        ["i mod 8", "j mod 8"],
        ["k", "fl(i/8)", "fl(j/8)", "i mod 8 + j mod 8 + l"],
    )

    for dataflow in (plain, skewed):
        report = analyze(operation, dataflow, architecture)
        print(f"--- {dataflow.name} ---")
        print(report.summary())
        print()


if __name__ == "__main__":
    main()
