"""Accuracy study: analytical model vs reference simulator vs polynomial baseline.

Reproduces the Figure 11 methodology on one AlexNet layer: the Eyeriss-style
row-stationary dataflow — which packs the filter row and a channel slice onto
one PE axis via the affine transformation ``ry + RY * (c mod 4)`` — is

* executed by the reference spacetime simulator (ground truth),
* estimated by the TENET analyzer, and
* estimated by the data-centric polynomial baseline.

Run with::

    python examples/eyeriss_accuracy_study.py
"""

from repro.core import analyze
from repro.dataflows.conv2d import ryoy_p_eyeriss
from repro.experiments.common import make_arch
from repro.maestro import DataCentricMapping, MaestroModel, SpatialMap, TemporalMap
from repro.sim import simulate
from repro.workloads import alexnet, scale_layer


def main() -> None:
    layer, factor = scale_layer(alexnet().layer("CONV3"), max_instances=200_000)
    operation = layer.to_op()
    print(f"AlexNet CONV3 scaled by {factor:.0f}x -> {operation.num_instances()} MACs")

    dataflow = ryoy_p_eyeriss(rows=12, cols=14, filter_rows=layer.filter_y)
    architecture = make_arch(pe_dims=(12, 14), interconnect="mesh", bandwidth_bits=256,
                             name="eyeriss-like-12x14")
    print("dataflow:", dataflow)
    print("architecture:", architecture)
    print()

    golden = simulate(operation, dataflow, architecture)
    tenet = analyze(operation, dataflow, architecture)
    baseline = MaestroModel(num_pes=12 * 14, bandwidth_bits_per_cycle=256).analyze(
        operation,
        DataCentricMapping(
            "row-stationary (data-centric)",
            [TemporalMap("k"), TemporalMap("c"), SpatialMap("oy"), SpatialMap("ry"),
             TemporalMap("rx"), TemporalMap("ox")],
        ),
    )

    def err(estimate, reference):
        return abs(estimate - reference) / reference * 100 if reference else 0.0

    print(f"{'':28s}{'latency (cycles)':>18s}{'avg PE util':>14s}")
    print(f"{'reference simulator':28s}{golden.total_cycles:>18.0f}"
          f"{golden.average_pe_utilization:>14.1%}")
    print(f"{'TENET analytical':28s}{tenet.latency_cycles:>18.0f}"
          f"{tenet.average_pe_utilization:>14.1%}"
          f"   ({err(tenet.latency_cycles, golden.total_cycles):.1f}% latency error)")
    print(f"{'data-centric polynomial':28s}{baseline.latency_cycles:>18.0f}"
          f"{baseline.average_pe_utilization:>14.1%}"
          f"   ({err(baseline.latency_cycles, golden.total_cycles):.1f}% latency error)")

    print("\nper-tensor reuse factors (TENET):")
    for tensor, volume in tenet.volumes.items():
        print(f"  {volume}")


if __name__ == "__main__":
    main()
