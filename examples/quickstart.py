"""Quickstart: model the paper's running example (Figure 3).

A 2x2x4 GEMM is mapped onto a 2x2 systolic array with the dataflow

    { S[i,j,k] -> (PE[i,j] | T[i+j+k]) }

and TENET reports the volume metrics, PE utilisation, latency, bandwidth and
energy of Section V.  Run with::

    python examples/quickstart.py
"""

from repro.arch import ArchSpec, PEArray, Systolic2D
from repro.core import Dataflow, analyze
from repro.core.assignment import assignments_for
from repro.tensor import gemm


def main() -> None:
    # 1. The tensor operation: Y[i,j] += A[i,k] * B[k,j] with i,j < 2 and k < 4.
    operation = gemm(2, 2, 4)
    print(operation.describe())
    print()

    # 2. The dataflow relation of Figure 3 (space-stamp PE[i,j], time-stamp T[i+j+k]).
    dataflow = Dataflow.from_exprs(
        "(IJ-P | J,IJK-T)", operation, ["i", "j"], ["i + j + k"]
    )
    print("dataflow:", dataflow)

    # 3. The data assignment relations (Definition 2), e.g. the stationary output.
    for tensor in operation.tensor_names:
        for assignment in assignments_for(operation, dataflow, tensor):
            stationary = " (stationary in its PE)" if assignment.is_pe_stationary() else ""
            print(f"  assignment of {tensor}: {assignment}{stationary}")
    print()

    # 4. The spatial architecture: 2x2 PEs with 2D-systolic links.
    architecture = ArchSpec(
        pe_array=PEArray((2, 2)), interconnect=Systolic2D(), name="2x2-systolic"
    )
    print("architecture:", architecture)
    print()

    # 5. Analyse and print every Section V metric.
    report = analyze(operation, dataflow, architecture)
    print(report.summary())

    # The numbers match the worked example of the paper:
    assert report.volumes["A"].unique == 8     # A enters from the left edge
    assert report.volumes["B"].unique == 8     # B enters from the top edge
    assert report.volumes["Y"].unique == 4     # Y is written back once per element
    assert report.volumes["Y"].temporal_reuse == 12
    assert report.latency.compute_delay == 6   # time-stamps T[0] .. T[5]


if __name__ == "__main__":
    main()
