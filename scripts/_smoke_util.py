"""Shared plumbing for the smoke scripts (service, chaos, fleet).

Importing this module puts the repo's ``src/`` on ``sys.path``, so the smoke
scripts can be run straight from a checkout (``python scripts/..._smoke.py``)
with no install step.  The spawn/announce-wait helper wraps
:func:`repro.sweep.fleet.launch_replica` — the same subprocess plumbing the
fleet coordinator uses — so the smoke scripts and the production path cannot
drift.
"""

from __future__ import annotations

import os
import subprocess
import sys
from typing import Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.sweep import fleet  # noqa: E402 - sys.path set up above
from repro.sweep.faults import FaultPlan  # noqa: E402


def start_server(
    args: Sequence[str] = (),
    fault_plan: FaultPlan | None = None,
    checkpoint_root: str | None = None,
) -> tuple[subprocess.Popen, str, int, list[str]]:
    """Spawn ``tenet serve --listen 127.0.0.1:0`` and wait for its bind.

    Returns ``(process, host, port, stderr_lines)``; ``stderr_lines`` keeps
    growing as the server logs.  ``fault_plan`` arms the subprocess's fault
    injector via the environment (and any plan inherited from *this* process
    is dropped either way, so a smoke script running under ``TENET_FAULTS``
    cannot leak its own faults into the server).
    """
    lines: list[str] = []
    process, host, port = fleet.launch_replica(
        checkpoint_root=checkpoint_root,
        args=args,
        fault_plan=fault_plan,
        stderr_sink=lines.append,
        announce_timeout=60.0,
    )
    return process, host, port, lines


def stop_server(process: subprocess.Popen) -> None:
    """SIGTERM (graceful drain) then SIGKILL a spawned server."""
    fleet.stop_replica(process)
