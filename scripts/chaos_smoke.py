#!/usr/bin/env python
"""Seeded chaos smoke for the sweep fabric (the CI `chaos-smoke` job).

Everything is driven by one ``--seed``: the fault schedule is drawn with
:meth:`repro.sweep.FaultPlan.seeded`, so every run injects the same failures
at the same events and the recovery claims are reproducible bit for bit.

Scenario A — server crash mid-pipeline, recover onto a restarted server:

1. baseline: a clean ``tenet serve`` subprocess sweeps 4 shard requests; the
   shard replies merge into the reference ranking;
2. chaos: a second server is armed via ``TENET_FAULTS`` with a seeded
   ``server.request``/``kill`` fault — it ``os._exit(42)``'s mid-batch;
3. the pipelining client hits :class:`PipelineBrokenError`, a fresh (healthy)
   server is started on a new port, ``recover()`` resubmits the outstanding
   shards there, and the merged ranking must be **bit-identical** to the
   baseline (the server also reports the resubmissions as retries).

Scenario B — checkpoint torn mid-record by a crash, resume:

4. a seeded ``sink.write``/``truncate`` fault tears a checkpoint at byte *k*
   of record *n* mid-sweep; resuming the checkpoint re-sweeps only what was
   lost and the final ranking must be bit-identical to an undisturbed run.

Run locally with ``python scripts/chaos_smoke.py`` from the repo root
(``src/`` is put on ``sys.path`` automatically).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from _smoke_util import start_server as _start_server
from _smoke_util import stop_server

from repro.core.engine import EvaluationEngine, RelationCache  # noqa: E402
from repro.dse.pruning import pruned_candidates  # noqa: E402
from repro.sweep import (  # noqa: E402
    FaultInjector,
    FaultPlan,
    InjectedFault,
    PipelineBrokenError,
    SweepClient,
    SweepSession,
    load_ranking,
    render_ranking,
)
from repro.sweep.faults import KILL_EXIT_CODE  # noqa: E402
from repro.tensor.kernels import gemm  # noqa: E402

SHARDS = 4
REQUEST = {
    "kernel": "gemm",
    "sizes": [16, 16, 16],
    "max_candidates": 48,
    "top": 64,
}


def start_server(fault_plan: FaultPlan | None = None):
    """Start a real ``tenet serve`` subprocess, optionally armed with faults."""
    process, host, port, _ = _start_server(fault_plan=fault_plan)
    return process, host, port


def shard_requests() -> list[dict]:
    return [
        {**REQUEST, "shard": [index, SHARDS], "id": f"shard-{index}"}
        for index in range(SHARDS)
    ]


def merged_ranking(records: list[dict]) -> str:
    """Deterministic merge of per-shard replies (volatile fields excluded).

    ``top`` entries carry no wall-clock fields, so the merged text is
    byte-comparable across runs; ties on (score, name) order by the full
    canonical entry so equal-score candidates cannot flap.
    """
    assert len(records) == SHARDS, [r.get("id") for r in records]
    assert {r["id"] for r in records} == {f"shard-{i}" for i in range(SHARDS)}
    entries = []
    for record in records:
        assert "error" not in record, record
        entries.extend(record["top"])
    entries.sort(key=lambda e: (e["score"], e["name"], json.dumps(e, sort_keys=True)))
    return json.dumps(entries, sort_keys=True)


def scenario_server_kill(seed: int) -> None:
    # Baseline: undisturbed sharded sweep on a clean server.
    process, host, port = start_server()
    try:
        with SweepClient(host, port, timeout=300.0) as client:
            for request in shard_requests():
                client.submit(request)
            reference = merged_ranking(client.drain())
    finally:
        stop_server(process)
    print(f"baseline ok: {SHARDS} shard replies merged")

    # Chaos: the server is armed to os._exit(42) mid-batch at a seeded event.
    plan = FaultPlan.seeded(seed, [{"site": "server.request", "kind": "kill", "within": 3}])
    kill_at = plan.specs[0].at
    print(f"fault plan (seed={seed}): kill server at request #{kill_at}")
    process, host, port = start_server(fault_plan=plan)
    replacement = None
    client = SweepClient(
        host, port, timeout=300.0, deadline=120.0, backoff_base=0.05, jitter_seed=seed
    )
    try:
        for request in shard_requests():
            client.submit(request)
        records: list[dict] = []
        while client.pending:
            try:
                records.append(client.recv())
            except PipelineBrokenError as error:
                print(f"pipeline broke after {len(records)} replies; outstanding: {error.pending}")
                break
        else:
            raise AssertionError("injected kill never fired")
        assert process.wait(60) == KILL_EXIT_CODE, "server did not die by injection"
        # At most kill_at - 1 sweeps completed; replies already served can
        # still be lost in the dead server's write queue (a real crash loses
        # unflushed output), in which case recovery resubmits those too.
        assert len(records) <= kill_at - 1, (records, kill_at)
        outstanding = client.pending

        # Restart (healthy) and recover the outstanding shards there.
        replacement, new_host, new_port = start_server()
        recovered = client.recover(new_host, new_port)
        assert len(recovered) == outstanding
        records.extend(client.drain())
        chaos = merged_ranking(records)
        assert chaos == reference, (
            "merged ranking after kill+recover differs from the baseline:\n"
            f"baseline: {reference}\nchaos:    {chaos}"
        )
        stats = client.stats()
        assert stats["faults"]["retries_served"] == outstanding, stats
        print(
            f"kill/recover ok: {outstanding} shard(s) resubmitted, merged "
            "ranking bit-identical to the baseline"
        )
    finally:
        client.close()
        stop_server(process)
        if replacement is not None:
            stop_server(replacement)


def scenario_torn_checkpoint(seed: int, workdir: Path) -> None:
    op = gemm(*REQUEST["sizes"])
    candidates = list(pruned_candidates(op, pe_dims=(4, 4), allow_packing=True, max_candidates=24))

    def session(checkpoint: Path, **kwargs) -> SweepSession:
        from repro.experiments.common import make_arch

        engine = EvaluationEngine(op, make_arch(pe_dims=(4, 4)), cache=RelationCache())
        return SweepSession(engine, checkpoint=str(checkpoint), **kwargs)

    reference_path = workdir / "reference.jsonl"
    session(reference_path).run(candidates)
    reference = render_ranking(load_ranking(reference_path))

    plan = FaultPlan.seeded(
        seed,
        [{"site": "sink.write", "kind": "truncate", "within": 10, "arg_max": 300}],
    )
    spec = plan.specs[0]
    print(f"fault plan (seed={seed}): tear checkpoint record #{spec.at} at byte {spec.arg}")
    chaos_path = workdir / "chaos.jsonl"
    injector = FaultInjector(plan)
    try:
        session(chaos_path, fault_injector=injector).run(candidates)
    except InjectedFault as error:
        print(f"sweep crashed as scheduled: {error}")
    else:
        raise AssertionError("injected checkpoint tear never fired")

    result = session(chaos_path, resume=True).run(candidates)
    assert result.skipped > 0, "resume re-swept everything"
    chaos = render_ranking(load_ranking(chaos_path))
    assert chaos == reference, (
        "resumed ranking differs from the undisturbed run:\n"
        f"baseline:\n{reference}\nresumed:\n{chaos}"
    )
    print(
        f"torn-checkpoint ok: {result.skipped} record(s) restored, "
        "ranking bit-identical to the undisturbed run"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1234, help="fault schedule seed")
    args = parser.parse_args()
    scenario_server_kill(args.seed)
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as workdir:
        scenario_torn_checkpoint(args.seed, Path(workdir))
    print("chaos smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
