#!/usr/bin/env python
"""Seeded fleet smoke: kill a replica mid-lease, steal it, merge bit-identical.

The CI ``fleet-smoke`` job.  Everything is driven by one ``--seed``:

1. reference: one in-process :class:`repro.sweep.SweepServer` sweeps the whole
   request unsharded through a server-side checkpoint — the exact codepath a
   fleet replica runs, minus the network;
2. a 3-replica fleet is started; replica 0 is armed (via ``TENET_FAULTS``)
   with a seeded ``sink.write``/``kill`` fault, so it ``os._exit(42)``'s
   mid-lease after durably recording at least one result;
3. the coordinator must detect the death (heartbeats — the replicas are
   *attached*, so there is no process handle to poll), evict replica 0, and
   steal its lease: the re-issued generation resumes from the cloned
   checkpoint, re-evaluating only what was never recorded (``skipped >= 1``
   in the stolen lease's reply proves the resume);
4. the merged fleet ranking must be **bit-identical** to the reference.

The kill event is drawn from ``[2, min shard size]``, so whichever lease
replica 0 picks up first, the crash always lands mid-lease with at least one
record already durable — every draw exercises steal-and-resume, not the
trivial rerun-from-scratch path.

Run locally with ``python scripts/fleet_smoke.py`` from the repo root
(``src/`` is put on ``sys.path`` automatically).
"""

from __future__ import annotations

import argparse
import random
import sys
import tempfile
from pathlib import Path

from _smoke_util import start_server, stop_server

from repro.core.engine import dataflow_signature  # noqa: E402
from repro.sweep import (  # noqa: E402
    FaultPlan,
    FaultSpec,
    FleetCoordinator,
    SweepRequest,
    SweepServer,
    load_ranking,
    render_ranking,
    signature_shard_index,
)
from repro.sweep.faults import KILL_EXIT_CODE  # noqa: E402

REPLICAS = 3
SHARDS = 6
# conv2d rather than gemm: its pruned space keeps 48 structurally distinct
# candidates (gemm dedupes to ~12), so all six shards stay populated.
REQUEST = {
    "kernel": "conv2d",
    "sizes": [8, 8, 5, 5, 3, 3],
    "max_candidates": 48,
    "top": 64,
}


def shard_sizes() -> list[int]:
    """Deduped candidate count per shard, computed like the replicas will.

    ``dedupe`` and ``shard`` commute and both depend only on the structural
    signature, so enumerating the space in-process predicts exactly how many
    checkpoint records each lease writes.
    """
    _, _, source = SweepRequest.from_dict(dict(REQUEST)).build()
    sizes = [0] * SHARDS
    for dataflow in source.dedupe():
        sizes[signature_shard_index(dataflow_signature(dataflow), SHARDS)] += 1
    return sizes


def reference_ranking(workdir: Path) -> str:
    """Unsharded single-node sweep through the server checkpoint codepath."""
    with SweepServer(checkpoint_root=str(workdir)) as server:
        request = SweepRequest.from_dict({**REQUEST, "checkpoint": "reference.jsonl"})
        server.submit(request).result()
    return render_ranking(load_ranking(workdir / "reference.jsonl"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1234, help="fault schedule seed")
    args = parser.parse_args()

    sizes = shard_sizes()
    min_shard = min(sizes)
    assert min_shard >= 2, (
        f"shard sizes {sizes}: every shard needs >= 2 candidates so a kill "
        "always lands mid-lease with one record durable; grow max_candidates"
    )
    kill_at = random.Random(args.seed).randint(2, min_shard)
    print(
        f"fault plan (seed={args.seed}): kill replica 0 at checkpoint "
        f"record #{kill_at} (shard sizes {sizes})"
    )
    plan = FaultPlan(specs=[FaultSpec("sink.write", "kill", at=kill_at)], seed=args.seed)

    with tempfile.TemporaryDirectory(prefix="fleet-smoke-") as tmp:
        workdir = Path(tmp)
        reference = reference_ranking(workdir)
        print("reference ok: unsharded single-node ranking recorded")

        replicas = []
        try:
            for number in range(REPLICAS):
                process, host, port, _ = start_server(
                    fault_plan=plan if number == 0 else None,
                    checkpoint_root=str(workdir),
                )
                replicas.append((process, host, port))
            coordinator = FleetCoordinator(
                dict(REQUEST),
                shards=SHARDS,
                checkpoint_dir=workdir,
                attach=[(host, port) for _, host, port in replicas],
                lease_timeout=300.0,
                heartbeat_interval=0.5,
                heartbeat_timeout=10.0,
                max_consecutive_failures=2,
            )
            result = coordinator.run()

            doomed = replicas[0][0]
            assert doomed.wait(60) == KILL_EXIT_CODE, (
                f"replica 0 exited {doomed.returncode}, expected the injected kill"
            )
            print(f"kill ok: replica 0 died with exit code {KILL_EXIT_CODE}")

            assert result.steals >= 1, "the dead replica's lease was never stolen"
            assert result.evictions >= 1, "the dead replica was never evicted"
            stolen = [lease for lease in result.leases if lease.generation > 0]
            assert stolen, [lease.id for lease in result.leases]
            resumed = [
                lease
                for lease in stolen
                if lease.record is not None and lease.record.get("skipped", 0) >= 1
            ]
            assert resumed, (
                "no stolen lease resumed from its checkpoint clone: "
                + str([(lease.id, lease.record) for lease in stolen])
            )
            print(
                f"steal ok: {result.steals} steal(s), {result.evictions} "
                f"eviction(s); lease {resumed[0].id} skipped "
                f"{resumed[0].record['skipped']} recorded candidate(s)"
            )

            merged = render_ranking(result.ranking)
            assert merged == reference, (
                "fleet ranking differs from the single-node reference:\n"
                f"reference:\n{reference}\nfleet:\n{merged}"
            )
            print(
                f"merge ok: {len(result.leases)} lease(s) merged bit-identical "
                "to the single-node run"
            )
        finally:
            for process, _, _ in replicas:
                stop_server(process)
    print("fleet smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
