#!/usr/bin/env python
"""End-to-end smoke of the networked sweep service (the CI `service-smoke` job).

Starts ``tenet serve --listen 127.0.0.1:0`` as a real subprocess, then:

1. opens three concurrent clients — one pipelining ``PIPELINE_DEPTH``
   requests, two sending a single request each — and asserts round-robin
   fairness: both single requests complete before the pipeliner's tail;
2. asserts ``engine_reused`` on repeat kernels and a positive reuse rate in
   the ``{"cmd": "stats"}`` reply;
3. sends SIGTERM with pipelined requests still in flight and asserts a clean
   drain: every accepted request answered, exit code 0.

Run locally with ``python scripts/service_smoke.py`` from the repo root
(``src/`` is put on ``sys.path`` automatically).
"""

from __future__ import annotations

import signal
import sys
import threading
import time

from _smoke_util import start_server

from repro.sweep import SweepClient  # noqa: E402 - sys.path set by _smoke_util

PIPELINE_DEPTH = 8
REQUEST = {"kernel": "gemm", "sizes": [16, 16, 16], "max_candidates": 6}


def main() -> int:
    process, host, port, stderr_lines = start_server(args=["--max-inflight", "1"])
    try:
        done_at: dict[str, float] = {}
        errors: list[BaseException] = []
        pipeline_queued = threading.Event()

        def pipeliner() -> None:
            try:
                with SweepClient(host, port, timeout=300.0) as client:
                    for index in range(PIPELINE_DEPTH):
                        client.submit({**REQUEST, "id": f"pipe-{index}"})
                    pipeline_queued.set()
                    for record in client.drain():
                        assert "error" not in record, record
                        done_at[record["id"]] = time.monotonic()
            except BaseException as error:  # noqa: BLE001 - re-raised below
                pipeline_queued.set()
                errors.append(error)

        def single(name: str) -> None:
            try:
                assert pipeline_queued.wait(60)
                with SweepClient(host, port, timeout=300.0) as client:
                    record = client.sweep(**REQUEST)
                    done_at[name] = time.monotonic()
                    assert record["engine_reused"] is True, (
                        f"{name} expected a warm engine: {record}"
                    )
            except BaseException as error:  # noqa: BLE001 - re-raised below
                errors.append(error)

        threads = [threading.Thread(target=pipeliner)] + [
            threading.Thread(target=single, args=(f"single-{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(600)
            assert not thread.is_alive(), "smoke client thread hung"
        if errors:
            raise errors[0]

        tail = done_at[f"pipe-{PIPELINE_DEPTH - 1}"]
        for name in ("single-0", "single-1"):
            assert done_at[name] < tail, (
                f"fairness violated: {name} finished at {done_at[name]:.3f}, "
                f"after the pipeliner tail at {tail:.3f}: {done_at}"
            )
        print("fairness ok: singles completed before the pipeliner tail")

        with SweepClient(host, port, timeout=60.0) as client:
            stats = client.stats()
        assert stats["engines"] >= 1, stats
        assert stats["engine_reused_rate"] > 0.5, stats
        assert stats["requests"]["served"] == PIPELINE_DEPTH + 2, stats
        print(
            f"stats ok: {stats['engines']} engine(s), "
            f"reuse rate {stats['engine_reused_rate']}"
        )

        # SIGTERM with requests in flight: both must still be answered.  Wait
        # until the server has actually accepted them (one executing, one
        # queued) before signalling, so the assertion exercises the drain
        # path rather than the refuse-new path.
        drain_client = SweepClient(host, port, timeout=300.0)
        drain_client.submit({**REQUEST, "id": "drain-0"})
        drain_client.submit({**REQUEST, "id": "drain-1"})
        with SweepClient(host, port, timeout=60.0) as monitor:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                snapshot = monitor.stats()
                if snapshot["in_flight"] + sum(snapshot["queue_depths"].values()) >= 2:
                    break
                time.sleep(0.02)
            else:
                raise AssertionError("drain requests never reached the server")
        process.send_signal(signal.SIGTERM)
        drained = drain_client.drain()
        drain_client.close()
        assert [record["id"] for record in drained] == ["drain-0", "drain-1"], drained
        assert all("error" not in record for record in drained), drained
        print("drain ok: in-flight requests answered after SIGTERM")

        returncode = process.wait(120)
        assert returncode == 0, f"server exited {returncode}; stderr: {''.join(stderr_lines)}"
        assert any("served" in line for line in stderr_lines), stderr_lines
        print(f"clean exit ok: {''.join(stderr_lines).strip().splitlines()[-1]}")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(30)


if __name__ == "__main__":
    sys.exit(main())
