"""TENET reproduction: relation-centric modeling of tensor dataflow.

This package reproduces the system described in *TENET: A Framework for
Modeling Tensor Dataflow Based on Relation-centric Notation* (ISCA 2021).

The public API is organised by subsystem:

``repro.isl``
    Integer sets and quasi-affine relations with an ISL-like string syntax,
    plus vectorised enumeration and counting (substitute for ISL/Barvinok).
``repro.tensor``
    Loop-nest IR for tensor operations and kernel factories (GEMM, 2D-CONV,
    MTTKRP, MMc, Jacobi-2D) plus C-like and einsum-like frontends.
``repro.arch``
    Spatial architecture specifications: PE arrays, interconnect topologies,
    memory, energy, and a repository of common accelerators.
``repro.core``
    The relation-centric notation (dataflow, data assignment, interconnect,
    spacetime maps) and the performance model (volumes, latency, bandwidth,
    utilisation, energy).
``repro.dataflows``
    The named dataflow catalog of Table III.
``repro.maestro``
    A data-centric (MAESTRO-style) notation and polynomial cost model used
    as the comparison baseline.
``repro.sim``
    A reference spacetime simulator used as ground truth for accuracy
    experiments.
``repro.dse``
    Dataflow design-space exploration.
``repro.sweep``
    The streaming sweep pipeline: composable candidate sources with
    deterministic sharding, checkpoint/resume sinks, the shared sweep
    session, and the warm-engine sweep server.
``repro.workloads``
    Layer tables for the real-world applications in the evaluation.
``repro.experiments``
    One module per paper table/figure that regenerates its rows or series.
"""

from repro._version import __version__

__all__ = ["__version__"]
