"""Spatial-architecture specifications.

A spatial architecture (Section II-A) is a PE array, an interconnection
network between the PEs, and a memory hierarchy (PE registers, on-chip
scratchpad, off-chip DRAM).  The classes here describe those pieces and build
the **interconnection relation** of Definition 3 for the topologies modeled in
the paper (1D/2D systolic, mesh, multicast, reduction tree).

:mod:`repro.arch.repository` provides the "common spatial architecture repo"
of Figure 2: ready-made specifications resembling TPU, Eyeriss, ShiDianNao,
MAERI and NVDLA-style accelerators.
"""

from repro.arch.pe_array import PEArray
from repro.arch.interconnect import (
    Interconnect,
    Mesh,
    Multicast1D,
    Multicast2D,
    NoInterconnect,
    ReductionTree,
    Systolic1D,
    Systolic2D,
    make_interconnect,
)
from repro.arch.memory import MemoryHierarchy, MemoryLevel
from repro.arch.energy import EnergyTable
from repro.arch.spec import ArchSpec
from repro.arch.repository import (
    dot_product_engine,
    eyeriss_like,
    maeri_like,
    mesh_cgra,
    nvdla_like,
    shidiannao_like,
    tpu_like,
)

__all__ = [
    "PEArray",
    "Interconnect",
    "Systolic1D",
    "Systolic2D",
    "Mesh",
    "Multicast1D",
    "Multicast2D",
    "ReductionTree",
    "NoInterconnect",
    "make_interconnect",
    "MemoryLevel",
    "MemoryHierarchy",
    "EnergyTable",
    "ArchSpec",
    "tpu_like",
    "eyeriss_like",
    "shidiannao_like",
    "maeri_like",
    "nvdla_like",
    "mesh_cgra",
    "dot_product_engine",
]
