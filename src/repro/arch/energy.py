"""Per-action energy table.

Table I lists "latency / energy modeling" as a TENET capability.  The energy
model charges one entry of this table per action; the default values follow
the widely used Eyeriss-style relative costs (register ~1x, neighbour NoC hop
~2x, scratchpad ~6x, DRAM ~200x the cost of a MAC-scale access) expressed in
picojoules for a 16-bit word at 65nm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArchitectureError


@dataclass(frozen=True)
class EnergyTable:
    """Energy per action, in picojoules."""

    mac_pj: float = 0.5
    register_access_pj: float = 0.5
    noc_hop_pj: float = 1.0
    scratchpad_access_pj: float = 3.0
    dram_access_pj: float = 100.0

    def __post_init__(self):
        for name in ("mac_pj", "register_access_pj", "noc_hop_pj",
                     "scratchpad_access_pj", "dram_access_pj"):
            if getattr(self, name) < 0:
                raise ArchitectureError(f"energy entry {name} must be non-negative")

    def scaled(self, factor: float) -> "EnergyTable":
        """Uniformly scale the table (e.g. to model a different technology node)."""
        if factor <= 0:
            raise ArchitectureError("scale factor must be positive")
        return EnergyTable(
            mac_pj=self.mac_pj * factor,
            register_access_pj=self.register_access_pj * factor,
            noc_hop_pj=self.noc_hop_pj * factor,
            scratchpad_access_pj=self.scratchpad_access_pj * factor,
            dram_access_pj=self.dram_access_pj * factor,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "mac": self.mac_pj,
            "register": self.register_access_pj,
            "noc_hop": self.noc_hop_pj,
            "scratchpad": self.scratchpad_access_pj,
            "dram": self.dram_access_pj,
        }
