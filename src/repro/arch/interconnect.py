"""Interconnection relations between PEs (Definition 3).

Each topology builds the relation ``{ PE[p1] -> PE[p2] : conditions }`` for a
given PE array and exposes the *predecessor* adjacency used by the
performance model: for every PE, the set of PEs that can forward data to it.

The paper models three topologies explicitly (Section IV-C)::

    2D-systolic : (i' = i, j' = j + 1) or (i' = i + 1, j' = j)
    Mesh        : abs(i' - i) <= 1 and abs(j' - j) <= 1
    1D-multicast: abs(i' - i) <= 3        (groups of 4 PEs share a wire)

plus a 1-D systolic variant and a reduction tree (MAERI) used in the
evaluation.  Systolic and mesh links move data one hop per cycle, so their
reuse *time interval* is 1; multicast links share a wire, so their reuse
happens in the same cycle (time interval 0) — see Section V-A.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from repro.errors import ArchitectureError
from repro.isl.constraint import Constraint
from repro.isl.expr import var
from repro.isl.imap import IntMap
from repro.isl.space import Space
from repro.isl.union import UnionMap
from repro.arch.pe_array import PEArray

Coord = tuple[int, ...]


class Interconnect(ABC):
    """Base class for interconnect topologies."""

    #: Human-readable topology name (used by the catalog and reports).
    name: str = "abstract"

    #: Cycles a datum needs to traverse one link.  Reuse through the link is
    #: possible between time-stamps ``t`` and ``t + time_interval``; multicast
    #: wires have interval 0 (same-cycle reuse).
    time_interval: int = 1

    #: Energy-model hop distance of one link (relative units).
    hop_distance: int = 1

    @abstractmethod
    def connected(self, src: Coord, dst: Coord) -> bool:
        """True when PE ``src`` can forward data to PE ``dst`` (src != dst)."""

    @abstractmethod
    def relation(self, array: PEArray) -> UnionMap:
        """The interconnection relation for the given PE array."""

    # -- derived helpers -----------------------------------------------------

    def predecessors(self, array: PEArray) -> dict[Coord, list[Coord]]:
        """For every PE, the PEs that can send data *to* it (excluding itself)."""
        coords = list(array.coords())
        result: dict[Coord, list[Coord]] = {c: [] for c in coords}
        for dst in coords:
            for src in coords:
                if src != dst and self.connected(src, dst):
                    result[dst].append(src)
        return result

    def successors(self, array: PEArray) -> dict[Coord, list[Coord]]:
        """For every PE, the PEs it can send data to."""
        coords = list(array.coords())
        result: dict[Coord, list[Coord]] = {c: [] for c in coords}
        for src in coords:
            for dst in coords:
                if src != dst and self.connected(src, dst):
                    result[src].append(dst)
        return result

    def degree(self, array: PEArray) -> float:
        """Average number of incoming links per PE (a complexity proxy)."""
        preds = self.predecessors(array)
        if not preds:
            return 0.0
        return sum(len(v) for v in preds.values()) / len(preds)

    def _spaces(self, array: PEArray) -> tuple[Space, Space]:
        in_space = array.space
        out_space = in_space.primed()
        return in_space, out_space

    def __str__(self) -> str:
        return self.name


def _pad(coords: Coord, rank: int) -> Coord:
    """Treat 1-D coordinates as (row 0, column) when a 2-D view is needed."""
    if len(coords) >= rank:
        return coords
    return (0,) * (rank - len(coords)) + tuple(coords)


@dataclass
class Systolic1D(Interconnect):
    """Unidirectional links along the innermost array dimension only."""

    name: str = "1d-systolic"
    time_interval: int = 1

    def connected(self, src: Coord, dst: Coord) -> bool:
        *src_outer, src_last = _pad(src, 2)
        *dst_outer, dst_last = _pad(dst, 2)
        return tuple(src_outer) == tuple(dst_outer) and dst_last == src_last + 1

    def relation(self, array: PEArray) -> UnionMap:
        in_space, out_space = self._spaces(array)
        last_in = in_space.dims[-1]
        last_out = out_space.dims[-1]
        constraints = [
            Constraint.eq(var(last_out), var(last_in) + 1),
        ]
        for dim_in, dim_out in zip(in_space.dims[:-1], out_space.dims[:-1]):
            constraints.append(Constraint.eq(var(dim_out), var(dim_in)))
        piece = IntMap(
            in_space, out_space, constraints=constraints,
            domain=array.domain(),
            range_=_renamed_domain(array, out_space),
        )
        return UnionMap([piece])


@dataclass
class Systolic2D(Interconnect):
    """TPU-style 2-D systolic links: right neighbour or down neighbour."""

    name: str = "2d-systolic"
    time_interval: int = 1

    def connected(self, src: Coord, dst: Coord) -> bool:
        si, sj = _pad(src, 2)[-2:]
        di, dj = _pad(dst, 2)[-2:]
        return (di == si and dj == sj + 1) or (di == si + 1 and dj == sj)

    def relation(self, array: PEArray) -> UnionMap:
        in_space, out_space = self._spaces(array)
        if array.rank == 1:
            return Systolic1D().relation(array)
        i, j = in_space.dims[-2], in_space.dims[-1]
        oi, oj = out_space.dims[-2], out_space.dims[-1]
        right = IntMap(
            in_space, out_space,
            constraints=[Constraint.eq(var(oi), var(i)), Constraint.eq(var(oj), var(j) + 1)],
            domain=array.domain(), range_=_renamed_domain(array, out_space),
        )
        down = IntMap(
            in_space, out_space,
            constraints=[Constraint.eq(var(oi), var(i) + 1), Constraint.eq(var(oj), var(j))],
            domain=array.domain(), range_=_renamed_domain(array, out_space),
        )
        return UnionMap([right, down])


@dataclass
class Mesh(Interconnect):
    """Mesh NoC: every PE talks to its (up to 8) surrounding neighbours."""

    name: str = "mesh"
    time_interval: int = 1

    def connected(self, src: Coord, dst: Coord) -> bool:
        src = _pad(src, 2)
        dst = _pad(dst, 2)
        return all(abs(d - s) <= 1 for s, d in zip(src, dst))

    def relation(self, array: PEArray) -> UnionMap:
        in_space, out_space = self._spaces(array)
        constraints = []
        for dim_in, dim_out in zip(in_space.dims, out_space.dims):
            delta = var(dim_out) - var(dim_in)
            constraints.append(Constraint.le(delta.abs(), 1))
        piece = IntMap(
            in_space, out_space, constraints=constraints,
            domain=array.domain(), range_=_renamed_domain(array, out_space),
        )
        return UnionMap([piece])


@dataclass
class Multicast1D(Interconnect):
    """Multicast wires shared by groups of neighbouring PEs (same-cycle reuse)."""

    name: str = "multicast"
    time_interval: int = 0
    reach: int = 3

    def connected(self, src: Coord, dst: Coord) -> bool:
        src = _pad(src, 2)
        dst = _pad(dst, 2)
        same_row = src[:-1] == dst[:-1]
        return same_row and abs(dst[-1] - src[-1]) <= self.reach

    def relation(self, array: PEArray) -> UnionMap:
        in_space, out_space = self._spaces(array)
        last_in, last_out = in_space.dims[-1], out_space.dims[-1]
        constraints = [Constraint.le((var(last_out) - var(last_in)).abs(), self.reach)]
        for dim_in, dim_out in zip(in_space.dims[:-1], out_space.dims[:-1]):
            constraints.append(Constraint.eq(var(dim_out), var(dim_in)))
        piece = IntMap(
            in_space, out_space, constraints=constraints,
            domain=array.domain(), range_=_renamed_domain(array, out_space),
        )
        return UnionMap([piece])


@dataclass
class Multicast2D(Interconnect):
    """Row and column broadcast wires (NVDLA-style operand distribution).

    A PE can receive, in the same cycle, data held by any PE in its row or in
    its column (within ``reach`` hops).  This is the strongest interconnect the
    non-skewed output-stationary dataflows rely on.
    """

    name: str = "2d-multicast"
    time_interval: int = 0
    reach: int = 7

    def connected(self, src: Coord, dst: Coord) -> bool:
        src = _pad(src, 2)
        dst = _pad(dst, 2)
        same_row = src[:-1] == dst[:-1] and abs(dst[-1] - src[-1]) <= self.reach
        same_col = src[-1] == dst[-1] and all(
            abs(a - b) <= self.reach for a, b in zip(src[:-1], dst[:-1])
        )
        return same_row or same_col

    def relation(self, array: PEArray) -> UnionMap:
        in_space, out_space = self._spaces(array)
        last_in, last_out = in_space.dims[-1], out_space.dims[-1]
        row_constraints = [Constraint.le((var(last_out) - var(last_in)).abs(), self.reach)]
        col_constraints = [Constraint.eq(var(last_out), var(last_in))]
        for dim_in, dim_out in zip(in_space.dims[:-1], out_space.dims[:-1]):
            row_constraints.append(Constraint.eq(var(dim_out), var(dim_in)))
            col_constraints.append(Constraint.le((var(dim_out) - var(dim_in)).abs(), self.reach))
        pieces = [
            IntMap(in_space, out_space, constraints=row_constraints,
                   domain=array.domain(), range_=_renamed_domain(array, out_space)),
            IntMap(in_space, out_space, constraints=col_constraints,
                   domain=array.domain(), range_=_renamed_domain(array, out_space)),
        ]
        return UnionMap(pieces)


@dataclass
class ReductionTree(Interconnect):
    """MAERI-style reduction tree over a 1-D array of multipliers.

    Leaves within the same reduction group share an adder-tree path, so data
    forwarded between them is modeled as same-cycle multicast reuse within the
    group (the paper treats MAERI's multipliers as PEs connected via multicast
    interconnection, Section VI-E).
    """

    name: str = "reduction-tree"
    time_interval: int = 0
    group_size: int = 8

    def __post_init__(self):
        if self.group_size <= 1:
            raise ArchitectureError("reduction-tree group size must exceed 1")

    def connected(self, src: Coord, dst: Coord) -> bool:
        src = _pad(src, 2)
        dst = _pad(dst, 2)
        if src[:-1] != dst[:-1]:
            return False
        return src[-1] // self.group_size == dst[-1] // self.group_size

    def relation(self, array: PEArray) -> UnionMap:
        in_space, out_space = self._spaces(array)
        last_in, last_out = in_space.dims[-1], out_space.dims[-1]
        constraints = [
            Constraint.eq(var(last_out) // self.group_size, var(last_in) // self.group_size)
        ]
        for dim_in, dim_out in zip(in_space.dims[:-1], out_space.dims[:-1]):
            constraints.append(Constraint.eq(var(dim_out), var(dim_in)))
        piece = IntMap(
            in_space, out_space, constraints=constraints,
            domain=array.domain(), range_=_renamed_domain(array, out_space),
        )
        return UnionMap([piece])


@dataclass
class NoInterconnect(Interconnect):
    """No PE-to-PE links: every operand must come from the scratchpad."""

    name: str = "none"
    time_interval: int = 1

    def connected(self, src: Coord, dst: Coord) -> bool:
        return False

    def relation(self, array: PEArray) -> UnionMap:
        in_space, out_space = self._spaces(array)
        piece = IntMap(
            in_space, out_space,
            constraints=[Constraint.eq(var(in_space.dims[0]), var(in_space.dims[0]) + 1)],
            domain=array.domain(), range_=_renamed_domain(array, out_space),
        )
        return UnionMap([piece])


def _renamed_domain(array: PEArray, out_space: Space):
    """The PE domain expressed over the primed (output-side) dimension names."""
    bounds = {dim: (0, extent) for dim, extent in zip(out_space.dims, array.dims)}
    from repro.isl.iset import IntSet

    return IntSet.box(out_space, bounds)


_TOPOLOGIES: dict[str, type[Interconnect]] = {
    "1d-systolic": Systolic1D,
    "2d-systolic": Systolic2D,
    "systolic": Systolic2D,
    "mesh": Mesh,
    "multicast": Multicast1D,
    "1d-multicast": Multicast1D,
    "2d-multicast": Multicast2D,
    "reduction-tree": ReductionTree,
    "none": NoInterconnect,
}


def make_interconnect(name: str, **kwargs) -> Interconnect:
    """Build an interconnect by name (``"2d-systolic"``, ``"mesh"``, ...)."""
    key = name.lower().replace("_", "-")
    if key not in _TOPOLOGIES:
        raise ArchitectureError(
            f"unknown interconnect {name!r}; available: {sorted(set(_TOPOLOGIES))}"
        )
    return _TOPOLOGIES[key](**kwargs)
