"""Memory hierarchy of a spatial architecture.

The paper assumes three levels (Section II-A): per-PE registers, an on-chip
scratchpad, and off-chip memory.  The scratchpad bandwidth (in bits per cycle,
matching Figure 6's x-axis) limits how fast the UniqueVolume of the tensors
can be streamed in and out; double buffering is assumed, so communication
overlaps computation (Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArchitectureError


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the hierarchy."""

    name: str
    size_bytes: int
    bandwidth_bits_per_cycle: float

    def __post_init__(self):
        if self.size_bytes < 0:
            raise ArchitectureError(f"memory level {self.name} has negative size")
        if self.bandwidth_bits_per_cycle <= 0:
            raise ArchitectureError(f"memory level {self.name} needs positive bandwidth")

    def bandwidth_words_per_cycle(self, word_bits: int) -> float:
        return self.bandwidth_bits_per_cycle / word_bits


@dataclass(frozen=True)
class MemoryHierarchy:
    """Registers + scratchpad + DRAM, with a common word size."""

    scratchpad: MemoryLevel
    dram: MemoryLevel
    register_file_words: int = 16
    word_bits: int = 16

    def __post_init__(self):
        if self.word_bits <= 0:
            raise ArchitectureError("word size must be positive")
        if self.register_file_words <= 0:
            raise ArchitectureError("register file must hold at least one word")

    # -- convenience constructors -----------------------------------------------

    @classmethod
    def default(
        cls,
        scratchpad_kib: int = 128,
        scratchpad_bandwidth_bits: float = 128.0,
        dram_bandwidth_bits: float = 64.0,
        word_bits: int = 16,
        register_file_words: int = 16,
    ) -> "MemoryHierarchy":
        return cls(
            scratchpad=MemoryLevel("scratchpad", scratchpad_kib * 1024, scratchpad_bandwidth_bits),
            dram=MemoryLevel("dram", 1 << 34, dram_bandwidth_bits),
            register_file_words=register_file_words,
            word_bits=word_bits,
        )

    def with_scratchpad_bandwidth(self, bandwidth_bits: float) -> "MemoryHierarchy":
        """Copy of the hierarchy with a different scratchpad bandwidth (for sweeps)."""
        return MemoryHierarchy(
            scratchpad=MemoryLevel(
                self.scratchpad.name, self.scratchpad.size_bytes, bandwidth_bits
            ),
            dram=self.dram,
            register_file_words=self.register_file_words,
            word_bits=self.word_bits,
        )

    # -- derived quantities --------------------------------------------------------

    @property
    def scratchpad_words(self) -> int:
        return (self.scratchpad.size_bytes * 8) // self.word_bits

    @property
    def scratchpad_words_per_cycle(self) -> float:
        return self.scratchpad.bandwidth_words_per_cycle(self.word_bits)

    @property
    def dram_words_per_cycle(self) -> float:
        return self.dram.bandwidth_words_per_cycle(self.word_bits)
