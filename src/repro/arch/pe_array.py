"""Processing-element arrays."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ArchitectureError
from repro.isl.iset import IntSet
from repro.isl.space import Space


@dataclass(frozen=True)
class PEArray:
    """A rectangular array of processing elements.

    Each PE holds one MAC unit (the paper's simplifying assumption in
    Section II-A) and a small register file.  ``dims`` gives the extent of
    every array dimension, e.g. ``(8, 8)`` for an 8x8 array or ``(64,)`` for a
    1-D array of 64 PEs.
    """

    dims: tuple[int, ...]
    name: str = "PE"
    macs_per_pe: int = 1
    registers_per_pe: int = 16

    def __post_init__(self):
        if not self.dims:
            raise ArchitectureError("a PE array needs at least one dimension")
        if any(int(d) <= 0 for d in self.dims):
            raise ArchitectureError(f"PE array dimensions must be positive, got {self.dims}")
        object.__setattr__(self, "dims", tuple(int(d) for d in self.dims))
        if self.macs_per_pe <= 0:
            raise ArchitectureError("macs_per_pe must be positive")

    # -- geometry -------------------------------------------------------------

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def size(self) -> int:
        """Total number of PEs."""
        total = 1
        for extent in self.dims:
            total *= extent
        return total

    @property
    def total_macs(self) -> int:
        return self.size * self.macs_per_pe

    def dim_names(self) -> tuple[str, ...]:
        return tuple(f"p{i}" for i in range(self.rank))

    @property
    def space(self) -> Space:
        return Space(self.name, self.dim_names())

    def domain(self) -> IntSet:
        """The PE domain set, e.g. ``{ PE[p0, p1] : 0 <= p0, p1 < 8 }``."""
        bounds = {name: (0, extent) for name, extent in zip(self.dim_names(), self.dims)}
        return IntSet.box(self.space, bounds)

    def coords(self) -> Iterator[tuple[int, ...]]:
        """Iterate every PE coordinate tuple in row-major order."""
        return itertools.product(*(range(extent) for extent in self.dims))

    def contains(self, coords: tuple[int, ...]) -> bool:
        return len(coords) == self.rank and all(
            0 <= value < extent for value, extent in zip(coords, self.dims)
        )

    def linear_index(self, coords: tuple[int, ...]) -> int:
        """Row-major linear index of a PE (used by the simulator and plots)."""
        if not self.contains(coords):
            raise ArchitectureError(f"PE coordinate {coords} outside array {self.dims}")
        index = 0
        for value, extent in zip(coords, self.dims):
            index = index * extent + value
        return index

    def __str__(self) -> str:
        return f"{self.name}[{'x'.join(str(d) for d in self.dims)}]"
