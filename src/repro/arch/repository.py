"""Repository of common spatial architectures (Figure 2's "common spatial architecture repo").

Each factory returns an :class:`~repro.arch.spec.ArchSpec` resembling a
well-known accelerator family.  Sizes default to the configurations used in
the paper's experiments but can be overridden.
"""

from __future__ import annotations

from repro.arch.energy import EnergyTable
from repro.arch.interconnect import (
    Mesh,
    Multicast1D,
    ReductionTree,
    Systolic2D,
)
from repro.arch.memory import MemoryHierarchy
from repro.arch.pe_array import PEArray
from repro.arch.spec import ArchSpec


def tpu_like(rows: int = 8, cols: int = 8, bandwidth_bits: float = 128.0) -> ArchSpec:
    """A TPU-style 2-D systolic array (one MAC per PE)."""
    return ArchSpec(
        pe_array=PEArray((rows, cols)),
        interconnect=Systolic2D(),
        memory=MemoryHierarchy.default(scratchpad_bandwidth_bits=bandwidth_bits),
        name=f"tpu-like-{rows}x{cols}",
    )


def eyeriss_like(rows: int = 12, cols: int = 14, bandwidth_bits: float = 128.0) -> ArchSpec:
    """An Eyeriss-style array: 12x14 PEs with neighbour (mesh) forwarding.

    Eyeriss' row-stationary dataflow relies on diagonal reuse of the input
    feature map, which systolic links cannot express but a mesh can
    (Section VI-D); the paper's MAESTRO comparison also assumes every PE can
    talk to its adjacent PEs.
    """
    return ArchSpec(
        pe_array=PEArray((rows, cols)),
        interconnect=Mesh(),
        memory=MemoryHierarchy.default(scratchpad_bandwidth_bits=bandwidth_bits),
        name=f"eyeriss-like-{rows}x{cols}",
    )


def shidiannao_like(rows: int = 8, cols: int = 8, bandwidth_bits: float = 128.0) -> ArchSpec:
    """A ShiDianNao-style output-stationary array with mesh neighbour links."""
    return ArchSpec(
        pe_array=PEArray((rows, cols)),
        interconnect=Mesh(),
        memory=MemoryHierarchy.default(scratchpad_bandwidth_bits=bandwidth_bits),
        name=f"shidiannao-like-{rows}x{cols}",
    )


def maeri_like(multipliers: int = 64, group_size: int = 8, bandwidth_bits: float = 256.0) -> ArchSpec:
    """A MAERI-style 1-D array of multipliers under a reconfigurable reduction tree."""
    return ArchSpec(
        pe_array=PEArray((multipliers,)),
        interconnect=ReductionTree(group_size=group_size),
        memory=MemoryHierarchy.default(scratchpad_bandwidth_bits=bandwidth_bits),
        name=f"maeri-like-{multipliers}",
    )


def nvdla_like(rows: int = 8, cols: int = 8, bandwidth_bits: float = 128.0) -> ArchSpec:
    """An NVDLA-style array: output channels x input channels with multicast input reuse."""
    return ArchSpec(
        pe_array=PEArray((rows, cols)),
        interconnect=Multicast1D(reach=cols - 1),
        memory=MemoryHierarchy.default(scratchpad_bandwidth_bits=bandwidth_bits),
        name=f"nvdla-like-{rows}x{cols}",
    )


def mesh_cgra(rows: int = 8, cols: int = 8, bandwidth_bits: float = 128.0) -> ArchSpec:
    """A DySER/Plasticine-style CGRA with a full mesh NoC."""
    return ArchSpec(
        pe_array=PEArray((rows, cols)),
        interconnect=Mesh(),
        memory=MemoryHierarchy.default(scratchpad_bandwidth_bits=bandwidth_bits),
        name=f"mesh-cgra-{rows}x{cols}",
    )


def dot_product_engine(lanes: int = 64, bandwidth_bits: float = 256.0) -> ArchSpec:
    """A DianNao-style vector dot-product engine: 1-D multicast over all lanes."""
    return ArchSpec(
        pe_array=PEArray((lanes,)),
        interconnect=Multicast1D(reach=lanes - 1),
        memory=MemoryHierarchy.default(scratchpad_bandwidth_bits=bandwidth_bits),
        energy=EnergyTable(),
        name=f"dot-product-{lanes}",
    )


REPOSITORY = {
    "tpu": tpu_like,
    "eyeriss": eyeriss_like,
    "shidiannao": shidiannao_like,
    "maeri": maeri_like,
    "nvdla": nvdla_like,
    "mesh-cgra": mesh_cgra,
    "dot-product": dot_product_engine,
}


def make_architecture(name: str, **kwargs) -> ArchSpec:
    """Build a repository architecture by name."""
    key = name.lower()
    if key not in REPOSITORY:
        raise KeyError(f"unknown architecture {name!r}; available: {sorted(REPOSITORY)}")
    return REPOSITORY[key](**kwargs)
