"""Complete spatial-architecture specification."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.arch.energy import EnergyTable
from repro.arch.interconnect import Interconnect, Systolic2D
from repro.arch.memory import MemoryHierarchy
from repro.arch.pe_array import PEArray


@dataclass(frozen=True)
class ArchSpec:
    """PE array + interconnect + memory hierarchy + energy table.

    This is the "hardware specification" input of Figure 2.  The defaults
    describe the 8x8 2D-systolic configuration used for most of the paper's
    kernel-level experiments.
    """

    pe_array: PEArray = field(default_factory=lambda: PEArray((8, 8)))
    interconnect: Interconnect = field(default_factory=Systolic2D)
    memory: MemoryHierarchy = field(default_factory=MemoryHierarchy.default)
    energy: EnergyTable = field(default_factory=EnergyTable)
    frequency_mhz: float = 500.0
    name: str = "spatial-arch"

    # -- derived quantities -----------------------------------------------------

    @property
    def num_pes(self) -> int:
        return self.pe_array.size

    @property
    def peak_macs_per_cycle(self) -> int:
        return self.pe_array.total_macs

    def ideal_latency(self, mac_count: int) -> float:
        """Cycles needed at 100% utilisation (the normalisation of Figure 7)."""
        return mac_count / self.peak_macs_per_cycle

    @property
    def scratchpad_bandwidth_bits(self) -> float:
        return self.memory.scratchpad.bandwidth_bits_per_cycle

    # -- variations ----------------------------------------------------------------

    def with_bandwidth(self, bandwidth_bits: float) -> "ArchSpec":
        """Copy with a different scratchpad bandwidth (Figure 6's sweep axis)."""
        return replace(self, memory=self.memory.with_scratchpad_bandwidth(bandwidth_bits))

    def with_interconnect(self, interconnect: Interconnect) -> "ArchSpec":
        return replace(self, interconnect=interconnect)

    def with_pe_array(self, pe_array: PEArray) -> "ArchSpec":
        return replace(self, pe_array=pe_array)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.pe_array} PEs, {self.interconnect.name} interconnect, "
            f"{self.memory.scratchpad.bandwidth_bits_per_cycle:g} bit/cycle scratchpad, "
            f"{self.memory.word_bits}-bit words"
        )

    def __str__(self) -> str:
        return self.describe()
