"""Command-line interface.

Examples::

    tenet catalog
    tenet analyze --kernel gemm --sizes 64 64 64 --dataflow "(IJ-P | J,IJK-T)" \
        --pe 8 8 --interconnect 2d-systolic --bandwidth 128
    tenet explore --kernel conv2d --sizes 16 16 7 7 3 3 --objective latency \
        --jobs 4 --top 5
    tenet explore --kernel conv2d --sizes 16 16 7 7 3 3 --shard 0/2 \
        --checkpoint shard0.jsonl
    tenet sweep-merge shard0.jsonl shard1.jsonl --top 5
    echo '{"kernel": "gemm", "sizes": [32, 32, 32]}' | tenet serve
    tenet serve --listen 127.0.0.1:7077 --workers 4
    tenet experiment fig1 design-space table3
    tenet experiment --list
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Sequence

from repro._version import __version__
from repro.core.analyzer import analyze
from repro.core.backends import BACKEND_NAMES
from repro.core.engine import OBJECTIVES
from repro.dataflows.catalog import all_entries, get_dataflow
from repro.core.xp import namespace_probes, resolve_namespace
from repro.errors import ExplorationError
from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.pruning import pruned_candidates
from repro.experiments import (
    design_space_size,
    dse_experiment,
    fig1_reuse_example,
    fig6_latency_bandwidth,
    fig7_large_apps,
    fig8_runtime,
    fig9_metrics,
    fig10_bandwidth,
    fig11_accuracy,
    fig12_reuse,
    table1_features,
    table3_notations,
)
from repro.experiments.common import make_arch
from repro.sweep import (
    FleetCoordinator,
    format_announce,
    iter_lines,
    load_ranking,
    parse_attach,
    parse_listen,
    parse_shard,
    render_ranking,
    run_tcp_server,
    serve_lines,
)
from repro.sweep import faults as sweep_faults
from repro.tensor.kernels import make_kernel

EXPERIMENTS: dict[str, Callable[[], object]] = {
    "table1": table1_features.run,
    "fig1": fig1_reuse_example.run,
    "design-space": design_space_size.run,
    "table3": table3_notations.run,
    "fig6": fig6_latency_bandwidth.run,
    "fig7": fig7_large_apps.run,
    "fig8": fig8_runtime.run,
    "fig9": fig9_metrics.run,
    "fig10": fig10_bandwidth.run,
    "fig11": fig11_accuracy.run,
    "fig12": fig12_reuse.run,
    "dse": dse_experiment.run,
}


def _cmd_catalog(_: argparse.Namespace) -> int:
    for entry in all_entries():
        marker = "data-centric ok" if entry.data_centric_expressible else "TENET-only"
        pe = "x".join(str(d) for d in entry.preferred_pe_dims)
        print(f"{entry.kernel:9s} {entry.name:24s} [{pe:>6s} PEs] [{marker}] {entry.description}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    op = make_kernel(args.kernel, args.sizes)
    dataflow = get_dataflow(args.kernel, args.dataflow)
    arch = make_arch(
        pe_dims=tuple(args.pe),
        interconnect=args.interconnect,
        bandwidth_bits=args.bandwidth,
    )
    report = analyze(op, dataflow, arch, max_instances=args.max_instances)
    print(report.summary())
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    if len(args.pe) != 2:
        print("tenet explore: error: --pe takes exactly two extents (rows cols), "
              f"got {args.pe}")
        return 1
    op = make_kernel(args.kernel, args.sizes)
    arch = make_arch(
        pe_dims=tuple(args.pe),
        interconnect=args.interconnect,
        bandwidth_bits=args.bandwidth,
    )
    shard = parse_shard(args.shard) if args.shard else None
    try:
        explorer = DesignSpaceExplorer(
            op,
            arch,
            objective=args.objective,
            max_instances=args.max_instances,
            jobs=args.jobs,
            backend=args.backend,
            device=args.device,
            batch_size=args.batch_size,
            tune="auto" if args.tune else "off",
        )
    except ExplorationError as error:
        # Most commonly a capability error from --device: the message lists
        # the available namespaces.
        print(f"tenet explore: error: {error}", file=sys.stderr)
        return 1
    candidates = pruned_candidates(
        op,
        pe_dims=tuple(args.pe),
        allow_packing=not args.no_packing,
        max_candidates=args.max_candidates,
    )
    result = explorer.explore(
        candidates,
        early_termination=args.early_termination,
        shard=shard,
        checkpoint=args.checkpoint,
        resume=args.resume,
        # The in-memory ranking is bounded to what gets printed; the JSONL
        # checkpoint (when given) stays the full per-candidate record.
        # ``--top 0`` keeps the historical unbounded behaviour (print nothing).
        top_k=args.top if args.top > 0 else None,
        checkpoint_fsync=args.checkpoint_fsync if args.checkpoint_fsync > 0 else None,
    )
    print(result.summary(count=args.top))
    if explorer.engine.tuner is not None:
        # Lock in whatever was measured so --profile/--profile-json report
        # final decisions, not a mid-calibration snapshot.
        explorer.engine.tuner.finalize()
    stats = explorer.engine.stats
    cache_stats = explorer.engine.cache_stats()
    print(
        f"engine: {stats['evaluated']} evaluated, {stats['memo_hits']} memo hits, "
        f"{stats['pruned']} pruned, {stats['failures']} invalid "
        f"(backend={args.backend}, jobs={args.jobs})"
    )
    print(
        f"relation cache: {cache_stats['hits']} hits, {cache_stats['misses']} misses"
        + (
            f"; workers: {cache_stats['worker_hits']} hits, "
            f"{cache_stats['worker_misses']} misses"
            if args.jobs > 1
            else ""
        )
    )
    if args.profile:
        engine = explorer.engine
        stages = engine.profile()
        total = sum(stages.values()) or 1.0
        print(
            "profile (per-stage wall clock, workers included; "
            f"backend={engine.backend.name}, "
            f"namespace={engine.xp.name}:{engine.xp.device}):"
        )
        for name, seconds in sorted(stages.items(), key=lambda kv: -kv[1]):
            print(f"  {name:12s} {seconds:8.3f}s  {100 * seconds / total:5.1f}%")
        kernel_stats = {
            key: stats[key]
            for key in ("fused_path", "compiled_path", "bitset_path",
                        "reference_path", "spacetime_hits", "stamp_fallback_exprs")
            if stats.get(key)
        }
        if kernel_stats:
            print(f"  kernels: {kernel_stats}")
        if explorer.engine.tuner is not None:
            decisions = explorer.engine.tuner.decisions
            print("  tuning decisions:")
            for decision in decisions or ["(calibration incomplete)"]:
                print(f"    - {decision}")
    if args.profile_json:
        engine = explorer.engine
        tuner = engine.tuner
        if tuner is not None:
            tuner.finalize()
        payload = {
            "command": "explore",
            "kernel": args.kernel,
            "sizes": list(args.sizes),
            "objective": args.objective,
            "backend_requested": args.backend,
            "backend": engine.backend_name,
            "namespace": f"{engine.xp.name}:{engine.xp.device}",
            "jobs": args.jobs,
            "stages": {k: round(v, 6) for k, v in engine.profile().items()},
            "stats": dict(engine.stats),
            "relation_cache": engine.cache_stats(),
            "sweep": {
                "candidates": result.num_candidates,
                "evaluated": result.evaluated_count,
                "invalid": len(result.failures),
                "pruned": len(result.pruned),
                "duplicates": result.duplicates,
                "skipped": result.skipped,
                "batches": result.batches,
                "seconds": round(result.seconds, 6),
            },
            "tuning": tuner.profile_dict() if tuner is not None else None,
        }
        with open(args.profile_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0


def _serve_banner(args: argparse.Namespace) -> None:
    """Advertise device capabilities on startup (stderr, like the bind line)."""
    probes = namespace_probes()
    detail = ", ".join(
        f"{name}={'yes (' + note + ')' if ok else 'no'}"
        for name, (ok, note) in sorted(probes.items())
    )
    print(
        f"tenet serve: backend={args.backend} device={args.device}; "
        f"array namespaces: {detail}",
        file=sys.stderr,
        flush=True,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    _serve_banner(args)
    try:
        resolve_namespace(args.device)
    except ExplorationError as error:
        print(f"tenet serve: error: {error}", file=sys.stderr)
        return 1
    if args.listen is not None:
        host, port = parse_listen(args.listen)

        def announce(bound_host: str, bound_port: int) -> None:
            # Parsed by the fleet coordinator and the CI smoke scripts to
            # discover an ephemeral (port 0) bind; the format lives in
            # repro.sweep.net next to its parser so they cannot drift.
            print(format_announce(bound_host, bound_port),
                  file=sys.stderr, flush=True)

        served = run_tcp_server(
            host,
            port,
            jobs=args.jobs,
            backend=args.backend,
            device=args.device,
            batch_size=args.batch_size,
            max_workers=args.workers,
            max_inflight=args.max_inflight,
            queue_depth=args.queue_depth,
            request_timeout=args.request_timeout,
            tune="auto" if args.tune else "off",
            checkpoint_root=args.checkpoint_root,
            announce=announce,
        )
        print(f"served {served} sweep request(s)", file=sys.stderr)
        return 0
    if args.requests == "-":
        stream = sys.stdin
    else:
        stream = open(args.requests, "r", encoding="utf-8")
    try:
        # readline-based iteration: responses stream per line and a final
        # unterminated request line is still served (torn-line tolerance).
        served = serve_lines(
            iter_lines(stream),
            jobs=args.jobs,
            backend=args.backend,
            device=args.device,
            batch_size=args.batch_size,
            max_workers=args.workers,
            max_inflight=args.max_inflight,
            queue_depth=args.queue_depth,
            request_timeout=args.request_timeout,
            tune="auto" if args.tune else "off",
            checkpoint_root=args.checkpoint_root,
        )
    finally:
        if stream is not sys.stdin:
            stream.close()
    print(f"served {served} sweep request(s)", file=sys.stderr)
    return 0


def _cmd_sweep_merge(args: argparse.Namespace) -> int:
    ranking = load_ranking(args.checkpoints)
    if not ranking:
        print("(no evaluated candidates in the given checkpoints)")
        return 1
    print(render_ranking(ranking, top=args.top))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    if len(args.pe) != 2:
        print("tenet fleet: error: --pe takes exactly two extents (rows cols), "
              f"got {args.pe}", file=sys.stderr)
        return 1
    request = {
        "kernel": args.kernel,
        "sizes": list(args.sizes),
        "objective": args.objective,
        "pe": list(args.pe),
        "interconnect": args.interconnect,
        "bandwidth": args.bandwidth,
        "max_candidates": args.max_candidates,
        "top": args.top,
    }
    if args.early_termination:
        request["early_termination"] = True
    try:
        attach = parse_attach(args.attach) if args.attach else []
        if args.shards is not None:
            shards = args.shards
        else:
            # 2x oversharding by default: losing a replica mid-lease costs at
            # most one lease of progress, and stragglers rebalance.
            shards = max(1, 2 * (args.replicas + len(attach)))
        coordinator = FleetCoordinator(
            request,
            shards=shards,
            checkpoint_dir=args.checkpoint_dir,
            replicas=args.replicas,
            attach=attach,
            replica_args=[a for a in args.replica_args if a != "--"],
            lease_timeout=args.lease_timeout,
            heartbeat_interval=args.heartbeat_interval,
            max_consecutive_failures=args.max_failures,
        )
        result = coordinator.run()
    except ExplorationError as error:
        # FleetError included: all-replicas-evicted leaves the lease
        # checkpoints on disk, so the same command resumes the fleet.
        print(f"tenet fleet: error: {error}", file=sys.stderr)
        return 1
    print(result.summary(count=args.top))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.list or not args.names:
        print("available experiments:", ", ".join(sorted(EXPERIMENTS)))
        return 0
    for name in args.names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}")
            return 1
        result = EXPERIMENTS[name]()
        print(result.table())
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tenet",
        description="TENET: relation-centric tensor dataflow modeling (ISCA 2021 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"tenet {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    catalog = subparsers.add_parser("catalog", help="list the Table III dataflow catalog")
    catalog.set_defaults(handler=_cmd_catalog)

    analyze_cmd = subparsers.add_parser("analyze", help="analyze one dataflow")
    analyze_cmd.add_argument("--kernel", required=True,
                             help="gemm, conv2d, mttkrp, mmc, jacobi2d, conv1d")
    analyze_cmd.add_argument("--sizes", type=int, nargs="+", required=True,
                             help="loop extents, e.g. 64 64 64 for GEMM")
    analyze_cmd.add_argument("--dataflow", required=True,
                             help="catalog name, e.g. '(IJ-P | J,IJK-T)'")
    analyze_cmd.add_argument("--pe", type=int, nargs="+", default=[8, 8])
    analyze_cmd.add_argument("--interconnect", default="2d-systolic")
    analyze_cmd.add_argument("--bandwidth", type=float, default=128.0)
    analyze_cmd.add_argument("--max-instances", type=int, default=8_000_000)
    analyze_cmd.set_defaults(handler=_cmd_analyze)

    explore = subparsers.add_parser(
        "explore", help="sweep the pruned dataflow design space for one kernel"
    )
    explore.add_argument("--kernel", required=True,
                         help="gemm, conv2d, mttkrp, mmc, jacobi2d, conv1d")
    explore.add_argument("--sizes", type=int, nargs="+", required=True,
                         help="loop extents, e.g. 64 64 64 for GEMM")
    explore.add_argument("--pe", type=int, nargs="+", default=[8, 8])
    explore.add_argument("--interconnect", default="2d-systolic")
    explore.add_argument("--bandwidth", type=float, default=128.0)
    explore.add_argument("--objective", default="latency", choices=sorted(OBJECTIVES),
                         help="ranking objective")
    explore.add_argument("--backend", default="auto", choices=list(BACKEND_NAMES),
                         help="evaluation backend: auto is the batch-fused hot path "
                              "with per-tensor bit-set fallback, interp the interpreted "
                              "baseline, affine the PR 2 compiled backend, bitset the "
                              "packed-word membership kernel, fused the pure batch-"
                              "fused backend")
    explore.add_argument("--device", default="numpy", metavar="NAME[:DEV]",
                         help="array namespace the compiled kernels evaluate on "
                              "(numpy, torch, torch:cuda, cupy, ...); results are "
                              "bit-identical across devices, unavailable namespaces "
                              "fail with a capability error listing what is "
                              "available")
    explore.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the sweep (1 = serial)")
    explore.add_argument("--top", type=int, default=5,
                         help="how many best dataflows to print; also bounds the "
                              "in-memory ranking (the checkpoint keeps the full record)")
    explore.add_argument("--tune", action=argparse.BooleanOptionalAction, default=False,
                         help="measurement-driven auto-tuning: calibrate backend/batch "
                              "size/jobs on the sweep's first batches and order "
                              "candidates best-first from checkpointed history; "
                              "never changes which reports are produced, only "
                              "evaluation order and speed (--no-tune pins the "
                              "static defaults)")
    explore.add_argument("--profile-json", default=None, metavar="PATH",
                         help="write per-stage timers, engine stats and tuner "
                              "decisions as JSON to PATH (machine-readable "
                              "--profile, diffable in CI)")
    explore.add_argument("--profile", action="store_true",
                         help="print the per-stage timing breakdown (materialise / "
                              "stamps / volumes / rank) after the sweep")
    explore.add_argument("--max-candidates", type=int, default=64,
                         help="cap on generated candidate dataflows")
    explore.add_argument("--max-instances", type=int, default=4_000_000)
    explore.add_argument("--no-packing", action="store_true",
                         help="skip the packed (Eyeriss-style) candidate family")
    explore.add_argument("--early-termination", action="store_true",
                         help="skip metric computation for provably worse candidates "
                              "(latency/edp bound from the compute delay, sbw/"
                              "unique_volume from tensor footprints; only the best "
                              "rank is guaranteed, lower ranks may be pruned)")
    explore.add_argument("--shard", default=None, metavar="I/N",
                         help="sweep only the deterministic I-th of N signature-hash "
                              "partitions (run one shard per machine, no coordination)")
    explore.add_argument("--checkpoint", default=None, metavar="PATH",
                         help="record per-candidate results in a JSONL checkpoint "
                              "(merge shards or resume with it; an existing "
                              "checkpoint is refused unless --resume)")
    explore.add_argument("--resume", action="store_true",
                         help="skip candidates already recorded in --checkpoint")
    explore.add_argument("--checkpoint-fsync", type=int, default=0, metavar="N",
                         help="fsync the checkpoint every N result records (0 = "
                              "flush only); bounds what an OS crash can lose")
    explore.add_argument("--batch-size", type=int, default=64,
                         help="candidates pulled from the generator per engine batch "
                              "(multiplied by --jobs for parallel sweeps; also the "
                              "most work an interrupted checkpoint can lose)")
    explore.set_defaults(handler=_cmd_explore)

    serve = subparsers.add_parser(
        "serve",
        help="service queued sweep requests on warm engines (one JSON request "
             "per line in, one JSON result per line out)",
    )
    serve.add_argument("--requests", default="-", metavar="PATH",
                       help="file with one JSON sweep request per line ('-' = stdin)")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="serve the same line protocol over TCP instead of "
                            "stdio (port 0 = ephemeral; the bound address is "
                            "printed to stderr; SIGTERM drains gracefully)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker processes per engine")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent sweep requests (thread pool size)")
    serve.add_argument("--max-inflight", type=int, default=None,
                       help="sweeps admitted concurrently across all client "
                            "connections (default: --workers)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="queued requests per connection before the server "
                            "replies with a structured overload error")
    serve.add_argument("--request-timeout", type=float, default=None, metavar="SECS",
                       help="per-request watchdog: a request running longer gets "
                            "a structured 'code: timeout' reply instead of "
                            "hanging its connection (default: no watchdog)")
    serve.add_argument("--backend", default="auto", choices=list(BACKEND_NAMES))
    serve.add_argument("--device", default="numpy", metavar="NAME[:DEV]",
                       help="array namespace for every warm engine (see "
                            "'tenet explore --device')")
    serve.add_argument("--batch-size", type=int, default=64)
    serve.add_argument("--tune", action=argparse.BooleanOptionalAction, default=False,
                       help="auto-tune warm engines: calibrate on each engine's "
                            "first request, re-batch later requests from the "
                            "measurements, and shed load when the measured "
                            "request rate predicts hopeless queue waits; "
                            "results are bit-identical either way")
    serve.add_argument("--checkpoint-root", default=None, metavar="DIR",
                       help="directory for server-side JSONL sweep checkpoints; "
                            "requests may then name a checkpoint (relative, "
                            "confined to this directory) and resume it — how "
                            "fleet replicas make leases durable (default: "
                            "checkpointed requests are refused)")
    serve.set_defaults(handler=_cmd_serve)

    fleet = subparsers.add_parser(
        "fleet",
        help="drive one sweep across N serve replicas as M checkpointed shard "
             "leases with work stealing (bit-identical to a single-node run)",
    )
    fleet.add_argument("--kernel", required=True,
                       help="gemm, conv2d, mttkrp, mmc, jacobi2d, conv1d")
    fleet.add_argument("--sizes", type=int, nargs="+", required=True,
                       help="loop extents, e.g. 64 64 64 for GEMM")
    fleet.add_argument("--pe", type=int, nargs="+", default=[8, 8])
    fleet.add_argument("--interconnect", default="2d-systolic")
    fleet.add_argument("--bandwidth", type=float, default=128.0)
    fleet.add_argument("--objective", default="latency", choices=sorted(OBJECTIVES))
    fleet.add_argument("--max-candidates", type=int, default=64,
                       help="cap on generated candidate dataflows")
    fleet.add_argument("--top", type=int, default=5,
                       help="how many best dataflows each lease reports and "
                            "the merged summary prints")
    fleet.add_argument("--early-termination", action="store_true",
                       help="see 'tenet explore --early-termination'")
    fleet.add_argument("--replicas", type=int, default=0, metavar="N",
                       help="spawn N local 'tenet serve --listen' replicas "
                            "sharing --checkpoint-dir (torn down at exit)")
    fleet.add_argument("--attach", default=None, metavar="HOST:PORT,...",
                       help="drive these already-running replicas instead of "
                            "(or in addition to) spawning; they must have been "
                            "started with --checkpoint-root --checkpoint-dir")
    fleet.add_argument("--shards", type=int, default=None, metavar="M",
                       help="partition the candidate space into M leases "
                            "(default: 2x the replica count, so a slow replica "
                            "cannot stall more than half the work)")
    fleet.add_argument("--checkpoint-dir", required=True, metavar="DIR",
                       help="shared directory for per-lease JSONL checkpoints; "
                            "re-running the same fleet command resumes from it")
    fleet.add_argument("--lease-timeout", type=float, default=600.0, metavar="SECS",
                       help="a lease unanswered this long is revoked and "
                            "re-issued to another replica")
    fleet.add_argument("--heartbeat-interval", type=float, default=2.0,
                       metavar="SECS",
                       help="stats-poll heartbeat period for replica health "
                            "tracking (0 disables the monitor)")
    fleet.add_argument("--max-failures", type=int, default=2, metavar="N",
                       help="consecutive lease or heartbeat failures before a "
                            "replica is evicted")
    fleet.add_argument("--replica-args", nargs=argparse.REMAINDER, default=[],
                       help="remaining arguments are passed to each spawned "
                            "'tenet serve' (e.g. -- --jobs 2 --tune)")
    fleet.set_defaults(handler=_cmd_fleet)

    merge = subparsers.add_parser(
        "sweep-merge",
        help="merge sweep checkpoint files (e.g. one per shard) into one ranking",
    )
    merge.add_argument("checkpoints", nargs="+", help="JSONL checkpoint files")
    merge.add_argument("--top", type=int, default=None,
                       help="print only the best N candidates")
    merge.set_defaults(handler=_cmd_sweep_merge)

    experiment = subparsers.add_parser("experiment", help="run evaluation experiments")
    experiment.add_argument("names", nargs="*", help="experiment names (see --list)")
    experiment.add_argument("--list", action="store_true", help="list available experiments")
    experiment.set_defaults(handler=_cmd_experiment)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    # Deterministic chaos: a JSON fault plan in $TENET_FAULTS arms the fault
    # injector for this process (how the chaos smoke crashes a real server
    # subprocess on the N-th request).  Unset, this is a no-op.
    sweep_faults.install_from_env()
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "handler", None):
        parser.print_help()
        return 0
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
