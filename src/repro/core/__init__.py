"""The relation-centric notation and performance model (Sections IV and V).

Public entry points:

* :class:`~repro.core.dataflow.Dataflow` — Definition 1: the space-stamp and
  time-stamp maps assigning loop instances to PEs and execution order.
* :class:`~repro.core.assignment.DataAssignment` — Definition 2: the relation
  from spacetime stamps to tensor elements.
* :class:`~repro.core.spacetime.SpacetimeMap` — Definition 4: adjacency of
  spacetime stamps induced by the interconnect.
* :class:`~repro.core.analyzer.TenetAnalyzer` — computes every performance
  metric of Section V (volumes, reuse, latency, bandwidth, utilisation,
  energy) and returns a :class:`~repro.core.metrics.PerformanceReport`.
"""

from repro.core.dataflow import Dataflow, DataflowValidation
from repro.core.assignment import DataAssignment
from repro.core.spacetime import SpacetimeMap
from repro.core.volumes import VolumeMetrics
from repro.core.utilization import UtilizationMetrics
from repro.core.latency import LatencyBreakdown
from repro.core.bandwidth import BandwidthReport
from repro.core.energy_model import EnergyBreakdown
from repro.core.metrics import PerformanceReport
from repro.core.analyzer import TenetAnalyzer, analyze
from repro.core.backends import BACKEND_NAMES
from repro.core.engine import (
    BatchResult,
    CandidateOutcome,
    EvaluationEngine,
    RelationCache,
    RelationMaterializer,
    dataflow_signature,
)
from repro.core.notation import dataflow_shorthand, parse_shorthand_name
from repro.core.tuning import AutoTuner, ScoreRanker

__all__ = [
    "Dataflow",
    "DataflowValidation",
    "DataAssignment",
    "SpacetimeMap",
    "VolumeMetrics",
    "UtilizationMetrics",
    "LatencyBreakdown",
    "BandwidthReport",
    "EnergyBreakdown",
    "PerformanceReport",
    "TenetAnalyzer",
    "analyze",
    "BACKEND_NAMES",
    "EvaluationEngine",
    "RelationCache",
    "RelationMaterializer",
    "BatchResult",
    "CandidateOutcome",
    "dataflow_signature",
    "dataflow_shorthand",
    "parse_shorthand_name",
    "AutoTuner",
    "ScoreRanker",
]
