"""The TENET analyzer: from (operation, dataflow, architecture) to metrics.

The analyzer materialises the relations of Section IV for a bounded loop nest
and computes every Section V metric:

1. stream the iteration domain and evaluate the space-stamp and time-stamp
   expressions (the dataflow relation Theta);
2. rank the distinct time-stamps in lexicographic order — this linearises the
   execution sequence exactly as the lexicographic comparison of Definition 1;
3. derive PE-utilization statistics and the compute delay (Equation 8);
4. for every tensor, enumerate the data assignment relation (Definition 2) and
   count the Table II volumes against the spacetime map induced by the
   interconnection relation (Definitions 3 and 4);
5. combine volumes into latency (Equation 7), bandwidth (Equations 9 and 10)
   and energy.

The role ISL/Barvinok play in the paper — representing relations and counting
them — is carried by :mod:`repro.isl` plus the vectorised counting here.

Relation materialisation lives in :class:`repro.core.engine.RelationMaterializer`
so that design-space sweeps can cache the dataflow-independent arrays; this
class remains the single-candidate entry point and streams the domain without
retaining it, exactly as before the refactor.  For sweeps over many candidate
dataflows use :class:`repro.core.engine.EvaluationEngine`, which shares the
materialised relations across candidates and can evaluate in parallel.
"""

from __future__ import annotations

import time

import numpy as np

from repro.arch.spec import ArchSpec
from repro.core.bandwidth import compute_bandwidth
from repro.core.dataflow import Dataflow
from repro.core.energy_model import compute_energy
from repro.core.engine import RelationMaterializer, TensorColumns
from repro.core.latency import compute_latency
from repro.core.metrics import PerformanceReport
from repro.core.spacetime import SpacetimeMap
from repro.core.utilization import compute_utilization
from repro.core.volumes import VolumeMetrics, compute_volume_metrics
from repro.errors import DataflowError, ModelError
from repro.tensor.operation import TensorOp

#: Backwards-compatible alias; the element-bounds helper moved to the engine.
_TensorColumns = TensorColumns


class TenetAnalyzer:
    """Analyse one dataflow for one tensor operation on one architecture."""

    def __init__(
        self,
        op: TensorOp,
        dataflow: Dataflow,
        arch: ArchSpec,
        *,
        max_instances: int = 32_000_000,
        chunk_size: int = 1 << 20,
        validate: bool = False,
        temporal_interval: int = 1,
        materializer: RelationMaterializer | None = None,
    ):
        self.op = op
        self.dataflow = dataflow.bind(op)
        self.arch = arch
        self.max_instances = int(max_instances)
        self.chunk_size = int(chunk_size)
        self.should_validate = validate
        self.temporal_interval = int(temporal_interval)
        self.materializer = materializer or RelationMaterializer(op, chunk_size=self.chunk_size)

    # -- public API -------------------------------------------------------------

    def analyze(self) -> PerformanceReport:
        """Run the full analysis and return a :class:`PerformanceReport`."""
        started = time.perf_counter()
        notes: list[str] = []

        box = self.op.domain.box_size()
        if box > self.max_instances:
            raise ModelError(
                f"iteration domain has up to {box} instances, above the analyzer cap of "
                f"{self.max_instances}; scale the workload (repro.workloads.scaling) or "
                "raise max_instances"
            )

        if self.should_validate:
            validation = self.dataflow.validate(self.op, self.arch.pe_array, self.chunk_size)
            if not validation.is_valid:
                raise DataflowError(
                    f"dataflow {self.dataflow.name!r} is invalid for {self.op.name}: "
                    + "; ".join(validation.messages)
                )
            notes.extend(validation.messages)

        pe_lin, t_rank, element_keys, element_extents = self._materialize_relations()
        num_pes = self.arch.pe_array.size

        utilization = compute_utilization(pe_lin, t_rank, num_pes)
        if not utilization.is_injective:
            notes.append(
                "dataflow is not injective: some spacetime stamps execute more than one "
                "instance (the compute delay accounts for the extra cycles)"
            )

        spacetime = SpacetimeMap(
            self.arch.pe_array, self.arch.interconnect, temporal_interval=self.temporal_interval
        )
        predecessor_table = spacetime.predecessor_table()

        volumes: dict[str, VolumeMetrics] = {}
        for tensor, per_reference in element_keys.items():
            references = len(per_reference)
            if references == 1:
                tensor_pe, tensor_rank = pe_lin, t_rank
                tensor_elements = per_reference[0]
            else:
                tensor_pe = np.tile(pe_lin, references)
                tensor_rank = np.tile(t_rank, references)
                tensor_elements = np.concatenate(per_reference)
            volumes[tensor] = compute_volume_metrics(
                tensor,
                tensor_pe,
                tensor_rank,
                tensor_elements,
                predecessor_table,
                num_pes,
                spatial_interval=spacetime.spatial_interval,
                temporal_interval=self.temporal_interval,
                chunk_size=self.chunk_size,
                element_extent=element_extents[tensor],
            )

        latency = compute_latency(
            utilization,
            volumes,
            self.op.input_tensors,
            self.op.output_tensors,
            self.arch.memory,
        )
        bandwidth = compute_bandwidth(volumes, utilization.compute_delay_cycles)
        energy = compute_energy(
            utilization.num_instances,
            volumes,
            self.arch.energy,
            noc_hop_distance=self.arch.interconnect.hop_distance,
        )

        elapsed = time.perf_counter() - started
        return PerformanceReport(
            operation=self.op.name,
            dataflow=self.dataflow.name,
            architecture=self.arch.name,
            volumes=volumes,
            utilization=utilization,
            latency=latency,
            bandwidth=bandwidth,
            energy=energy,
            word_bits=self.arch.memory.word_bits,
            peak_macs_per_cycle=self.arch.peak_macs_per_cycle,
            analysis_seconds=elapsed,
            notes=notes,
        )

    # -- relation materialisation ---------------------------------------------------

    def _element_bounds(self) -> dict[str, TensorColumns]:
        """Shared per-coordinate bounds for every tensor (across its references)."""
        return self.materializer.element_bounds()

    def _materialize_relations(self):
        """Evaluate dataflow and access relations over the whole iteration domain."""
        return self.materializer.materialize(
            self.dataflow, self.arch.pe_array, self.max_instances
        )


def analyze(op: TensorOp, dataflow: Dataflow, arch: ArchSpec, **kwargs) -> PerformanceReport:
    """Convenience wrapper: ``TenetAnalyzer(op, dataflow, arch, **kwargs).analyze()``."""
    return TenetAnalyzer(op, dataflow, arch, **kwargs).analyze()
