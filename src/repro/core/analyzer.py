"""The TENET analyzer: from (operation, dataflow, architecture) to metrics.

The analyzer materialises the relations of Section IV for a bounded loop nest
and computes every Section V metric:

1. stream the iteration domain and evaluate the space-stamp and time-stamp
   expressions (the dataflow relation Theta);
2. rank the distinct time-stamps in lexicographic order — this linearises the
   execution sequence exactly as the lexicographic comparison of Definition 1;
3. derive PE-utilization statistics and the compute delay (Equation 8);
4. for every tensor, enumerate the data assignment relation (Definition 2) and
   count the Table II volumes against the spacetime map induced by the
   interconnection relation (Definitions 3 and 4);
5. combine volumes into latency (Equation 7), bandwidth (Equations 9 and 10)
   and energy.

The role ISL/Barvinok play in the paper — representing relations and counting
them — is carried by :mod:`repro.isl` plus the vectorised counting here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.arch.spec import ArchSpec
from repro.core.bandwidth import compute_bandwidth
from repro.core.dataflow import Dataflow
from repro.core.energy_model import compute_energy
from repro.core.latency import compute_latency
from repro.core.metrics import PerformanceReport
from repro.core.spacetime import SpacetimeMap
from repro.core.utilization import compute_utilization
from repro.core.volumes import VolumeMetrics, compute_volume_metrics
from repro.errors import DataflowError, ModelError
from repro.isl.enumeration import chunk_length
from repro.tensor.operation import TensorOp


@dataclass
class _TensorColumns:
    """Per-reference element-coordinate bounds of one tensor (shared radix)."""

    bounds: list[tuple[int, int]]

    @property
    def extent(self) -> int:
        """Exclusive upper bound of the mixed-radix element keys."""
        total = 1
        for lo, hi in self.bounds:
            total *= max(1, hi - lo + 1)
        return total

    def encode(self, coords: np.ndarray) -> np.ndarray:
        keys = np.zeros(coords.shape[0], dtype=np.int64)
        scale = 1
        for column, (lo, hi) in enumerate(self.bounds):
            extent = max(1, hi - lo + 1)
            keys += (coords[:, column] - lo) * scale
            scale *= extent
        return keys

    def encode_columns(self, columns: Sequence[np.ndarray]) -> np.ndarray:
        """Encode per-coordinate arrays without stacking them first."""
        keys: np.ndarray | None = None
        scale = 1
        for column, (lo, hi) in zip(columns, self.bounds):
            extent = max(1, hi - lo + 1)
            term = (column.astype(np.int64) - lo) * scale
            keys = term if keys is None else keys + term
            scale *= extent
        if keys is None:
            return np.zeros(0, dtype=np.int64)
        return keys


class TenetAnalyzer:
    """Analyse one dataflow for one tensor operation on one architecture."""

    def __init__(
        self,
        op: TensorOp,
        dataflow: Dataflow,
        arch: ArchSpec,
        *,
        max_instances: int = 32_000_000,
        chunk_size: int = 1 << 20,
        validate: bool = False,
        temporal_interval: int = 1,
    ):
        self.op = op
        self.dataflow = dataflow.bind(op)
        self.arch = arch
        self.max_instances = int(max_instances)
        self.chunk_size = int(chunk_size)
        self.should_validate = validate
        self.temporal_interval = int(temporal_interval)

    # -- public API -------------------------------------------------------------

    def analyze(self) -> PerformanceReport:
        """Run the full analysis and return a :class:`PerformanceReport`."""
        started = time.perf_counter()
        notes: list[str] = []

        box = self.op.domain.box_size()
        if box > self.max_instances:
            raise ModelError(
                f"iteration domain has up to {box} instances, above the analyzer cap of "
                f"{self.max_instances}; scale the workload (repro.workloads.scaling) or "
                "raise max_instances"
            )

        if self.should_validate:
            validation = self.dataflow.validate(self.op, self.arch.pe_array, self.chunk_size)
            if not validation.is_valid:
                raise DataflowError(
                    f"dataflow {self.dataflow.name!r} is invalid for {self.op.name}: "
                    + "; ".join(validation.messages)
                )
            notes.extend(validation.messages)

        pe_lin, t_rank, element_keys, element_extents = self._materialize_relations()
        num_pes = self.arch.pe_array.size

        utilization = compute_utilization(pe_lin, t_rank, num_pes)
        if not utilization.is_injective:
            notes.append(
                "dataflow is not injective: some spacetime stamps execute more than one "
                "instance (the compute delay accounts for the extra cycles)"
            )

        spacetime = SpacetimeMap(
            self.arch.pe_array, self.arch.interconnect, temporal_interval=self.temporal_interval
        )
        predecessor_table = spacetime.predecessor_table()

        volumes: dict[str, VolumeMetrics] = {}
        for tensor, per_reference in element_keys.items():
            references = len(per_reference)
            if references == 1:
                tensor_pe, tensor_rank = pe_lin, t_rank
                tensor_elements = per_reference[0]
            else:
                tensor_pe = np.tile(pe_lin, references)
                tensor_rank = np.tile(t_rank, references)
                tensor_elements = np.concatenate(per_reference)
            volumes[tensor] = compute_volume_metrics(
                tensor,
                tensor_pe,
                tensor_rank,
                tensor_elements,
                predecessor_table,
                num_pes,
                spatial_interval=spacetime.spatial_interval,
                temporal_interval=self.temporal_interval,
                chunk_size=self.chunk_size,
                element_extent=element_extents[tensor],
            )

        latency = compute_latency(
            utilization,
            volumes,
            self.op.input_tensors,
            self.op.output_tensors,
            self.arch.memory,
        )
        bandwidth = compute_bandwidth(volumes, utilization.compute_delay_cycles)
        energy = compute_energy(
            utilization.num_instances,
            volumes,
            self.arch.energy,
            noc_hop_distance=self.arch.interconnect.hop_distance,
        )

        elapsed = time.perf_counter() - started
        return PerformanceReport(
            operation=self.op.name,
            dataflow=self.dataflow.name,
            architecture=self.arch.name,
            volumes=volumes,
            utilization=utilization,
            latency=latency,
            bandwidth=bandwidth,
            energy=energy,
            word_bits=self.arch.memory.word_bits,
            peak_macs_per_cycle=self.arch.peak_macs_per_cycle,
            analysis_seconds=elapsed,
            notes=notes,
        )

    # -- relation materialisation ---------------------------------------------------

    def _element_bounds(self) -> dict[str, _TensorColumns]:
        """Shared per-coordinate bounds for every tensor (across its references)."""
        inclusive = {
            dim: (lo, hi - 1) for dim, (lo, hi) in self.op.domain.derived_bounds().items()
        }
        result: dict[str, _TensorColumns] = {}
        for tensor in self.op.tensor_names:
            combined: list[tuple[int, int]] | None = None
            for access in self.op.accesses_to(tensor):
                bounds = [expr.bounds(inclusive) for expr in access.relation.out_exprs]
                if combined is None:
                    combined = bounds
                else:
                    combined = [
                        (min(a[0], b[0]), max(a[1], b[1])) for a, b in zip(combined, bounds)
                    ]
            result[tensor] = _TensorColumns(combined or [])
        return result

    def _materialize_relations(self):
        """Evaluate dataflow and access relations over the whole iteration domain."""
        pe_dims = self.arch.pe_array.dims
        time_bounds = self.dataflow.time_bounds(self.op)
        time_extents = [hi - lo + 1 for lo, hi in time_bounds]
        time_lows = [lo for lo, _ in time_bounds]
        element_bounds = self._element_bounds()

        pe_parts: list[np.ndarray] = []
        time_parts: list[np.ndarray] = []
        element_parts: dict[str, list[list[np.ndarray]]] = {
            tensor: [[] for _ in self.op.accesses_to(tensor)]
            for tensor in self.op.tensor_names
        }

        total = 0
        for chunk in self.op.domain.chunks(self.chunk_size):
            length = chunk_length(chunk)
            total += length
            if total > self.max_instances:
                raise ModelError(
                    f"iteration domain exceeds the analyzer cap of {self.max_instances} "
                    "instances; scale the workload first"
                )

            pe_lin = np.zeros(length, dtype=np.int64)
            for extent, expr in zip(pe_dims, self.dataflow.pe_exprs):
                column = expr.evaluate_vec(chunk)
                if (column < 0).any() or (column >= extent).any():
                    raise DataflowError(
                        f"dataflow {self.dataflow.name!r} maps instances outside the "
                        f"{self.arch.pe_array} array"
                    )
                pe_lin = pe_lin * extent + column
            pe_parts.append(pe_lin)

            time_key = np.zeros(length, dtype=np.int64)
            for axis, (extent, expr) in enumerate(zip(time_extents, self.dataflow.time_exprs)):
                time_key = time_key * extent + (expr.evaluate_vec(chunk) - time_lows[axis])
            time_parts.append(time_key)

            for tensor in self.op.tensor_names:
                columns = element_bounds[tensor]
                for index, access in enumerate(self.op.accesses_to(tensor)):
                    coordinate_arrays = [
                        expr.evaluate_vec(chunk) for expr in access.relation.out_exprs
                    ]
                    element_parts[tensor][index].append(
                        columns.encode_columns(coordinate_arrays)
                    )

        if total == 0:
            raise ModelError(f"operation {self.op.name} has an empty iteration domain")

        from repro.isl.enumeration import sorted_unique

        pe_lin = np.concatenate(pe_parts)
        time_keys = np.concatenate(time_parts)
        unique_times = sorted_unique(time_keys)
        t_rank = np.searchsorted(unique_times, time_keys)

        element_keys = {
            tensor: [np.concatenate(parts) for parts in per_reference]
            for tensor, per_reference in element_parts.items()
        }
        element_extents = {
            tensor: columns.extent for tensor, columns in element_bounds.items()
        }
        return pe_lin, t_rank, element_keys, element_extents


def analyze(op: TensorOp, dataflow: Dataflow, arch: ArchSpec, **kwargs) -> PerformanceReport:
    """Convenience wrapper: ``TenetAnalyzer(op, dataflow, arch, **kwargs).analyze()``."""
    return TenetAnalyzer(op, dataflow, arch, **kwargs).analyze()
