"""Data assignment relations (Definition 2).

The data assignment of a tensor ``F`` under a dataflow chains the inverse of
the dataflow with the access function::

    A_{D,F} = Theta^{-1} . A_{S,F} = { (PE[p] | T[t]) -> F[f] }

Because the dataflow and the access function are both functional in the loop
iterators, the assignment can be written symbolically *parameterised by the
iterators* — exactly how the paper presents it, e.g. for the stationary output
of the GEMM example: ``{(PE[i,j] | T[i+j+k]) -> Y[i,j]}``.  For counting and
reuse analysis the relation is enumerated by the analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.dataflow import Dataflow
from repro.isl.imap import IntMap
from repro.tensor.access import TensorAccess
from repro.tensor.operation import TensorOp


@dataclass
class DataAssignment:
    """The assignment relation of one tensor reference under a dataflow."""

    dataflow: Dataflow
    access: TensorAccess

    @property
    def tensor(self) -> str:
        return self.access.tensor

    # -- symbolic views ---------------------------------------------------------

    def space_assignment(self) -> IntMap:
        """``{ S[n] -> F[f] }`` composed view keyed by the space-stamp expressions.

        The paper calls this the *space assignment* (e.g. ``{PE[i,j] -> Y[i,j]}``
        in Figure 3); it is returned as the functional map from loop instances
        to elements together with the space-stamp expressions for printing.
        """
        return self.access.relation

    def element_exprs(self):
        """Quasi-affine element coordinates as functions of the loop iterators."""
        return self.access.relation.out_exprs

    def elements_for_chunk(self, chunk: Mapping[str, np.ndarray]) -> np.ndarray:
        """Vectorised element coordinates accessed by a chunk of loop instances."""
        return self.access.relation.image_array(chunk)

    def is_pe_stationary(self) -> bool:
        """Heuristic: does every PE keep touching the same element over time?

        True when the element coordinates depend only on iterators that also
        fully determine the space-stamp — e.g. the output ``Y[i,j]`` of the
        GEMM example with ``PE[i,j]``, which the paper describes as "kept
        stationary, and iteratively reused at different time-stamps".
        """
        element_vars = set()
        for expr in self.access.relation.out_exprs:
            element_vars |= expr.variables()
        space_vars = set()
        for expr in self.dataflow.pe_exprs:
            space_vars |= expr.variables()
        return element_vars <= space_vars

    def __str__(self) -> str:
        pe_text = ", ".join(str(e) for e in self.dataflow.pe_exprs)
        time_text = ", ".join(str(e) for e in self.dataflow.time_exprs)
        element_text = ", ".join(str(e) for e in self.access.relation.out_exprs)
        return (
            f"{{ (PE[{pe_text}] | T[{time_text}]) -> "
            f"{self.tensor}[{element_text}] }}"
        )


def assignments_for(op: TensorOp, dataflow: Dataflow, tensor: str) -> list[DataAssignment]:
    """All assignment relations (one per reference) of a tensor under a dataflow."""
    return [DataAssignment(dataflow, access) for access in op.accesses_to(tensor)]
