"""Pluggable evaluation backends for :class:`repro.core.engine.EvaluationEngine`.

Four backends share the engine's ``evaluate_batch`` contract and produce
bit-identical reports; they differ only in how the per-candidate hot path is
computed:

``interp``
    The PR 1 path: interpreted expression trees per candidate, group-major
    sort/adjacency volume kernel.  Baseline for the benchmarks.
``affine``
    Compiled stamps — quasi-affine expressions become integer coefficient
    matrices evaluated with one matmul per candidate window over the cached
    domain chunk (``mod``/``floordiv`` lower to derived columns, anything
    non-affine falls back to the interpreter) — plus the compiled group-layout
    volume kernel, which caches the candidate-invariant (PE, element) group
    structure per space signature.
``bitset``
    Compiled stamps plus the packed ``np.uint64`` occupancy kernel whenever it
    is exact and fits memory; for tensors where it does not apply, behaves
    like ``affine``.
``auto``
    Compiled stamps; per tensor, the bit-set kernel when the packed occupancy
    is smaller than the pair array (small ops), the compiled grouped kernel
    otherwise.  This is the default.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.backends.base import EngineBackend, InterpBackend
from repro.core.backends.affine import AffineBackend
from repro.errors import ExplorationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import EvaluationEngine

#: Valid values for the ``backend=`` engine/explorer/CLI option.
BACKEND_NAMES = ("auto", "interp", "affine", "bitset")


def make_backend(name: str, engine: "EvaluationEngine") -> EngineBackend:
    """Instantiate the backend ``name`` for one engine."""
    if name == "interp":
        return InterpBackend(engine)
    if name == "affine":
        return AffineBackend(engine, bitset_mode="never")
    if name == "bitset":
        backend = AffineBackend(engine, bitset_mode="always")
        backend.name = "bitset"
        return backend
    if name == "auto":
        backend = AffineBackend(engine, bitset_mode="auto")
        backend.name = "auto"
        return backend
    raise ExplorationError(
        f"unknown backend {name!r}; available: {', '.join(BACKEND_NAMES)}"
    )


__all__ = [
    "AffineBackend",
    "BACKEND_NAMES",
    "EngineBackend",
    "InterpBackend",
    "make_backend",
]
