"""Pluggable evaluation backends for :class:`repro.core.engine.EvaluationEngine`.

Five backends share the engine's ``evaluate_batch`` contract and produce
bit-identical reports; they differ only in how the per-candidate hot path is
computed:

``interp``
    The PR 1 path: interpreted expression trees per candidate, group-major
    sort/adjacency volume kernel.  Baseline for the benchmarks.
``affine``
    Compiled stamps — quasi-affine expressions become integer coefficient
    matrices evaluated with one matmul per candidate window over the cached
    domain chunk (``mod``/``floordiv`` lower to derived columns, anything
    non-affine falls back to the interpreter) — plus the compiled group-layout
    volume kernel, which caches the candidate-invariant (PE, element) group
    structure per space signature.
``bitset``
    Compiled stamps plus the packed ``np.uint64`` occupancy kernel whenever it
    is exact and fits memory; for tensors where it does not apply, behaves
    like ``affine``.
``fused``
    Batch-fused evaluation (PR 4): the whole batch's deduplicated coefficient
    rows stack into one matmul per cached domain chunk, uniform-block layouts
    count volumes with segmented sorts and shifted-slice membership windows
    instead of ``searchsorted`` probes, and candidates whose (PE, time-rank)
    columns are *content-identical* to an already evaluated candidate replay
    its report (verified by exact array comparison).
``auto``
    The fused hot path with the bit-set kernel engaged per tensor where the
    packed occupancy is smaller than the pair array (small ops) or the
    temporal interval is beyond the sort kernels' window.  This is the
    default.

The compiled backends (everything but ``interp``) evaluate through the
engine's array namespace (:mod:`repro.core.xp`, selected by the engine's
``device=`` knob): the stacked-coefficient matmul and the fused volume
kernels run on numpy, torch or cupy through one codepath, with reports
bit-identical across namespaces by contract.  ``interp`` is host-only and
rejects non-numpy devices at engine construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.backends.base import EngineBackend, InterpBackend
from repro.core.backends.affine import AffineBackend
from repro.core.backends.fused import FusedBackend
from repro.core.xp import available_namespaces, namespace_probes, resolve_namespace
from repro.errors import ExplorationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import EvaluationEngine

#: Valid values for the ``backend=`` engine/explorer/CLI option.
BACKEND_NAMES = ("auto", "interp", "affine", "bitset", "fused")


def make_backend(name: str, engine: "EvaluationEngine") -> EngineBackend:
    """Instantiate the backend ``name`` for one engine."""
    if name == "interp":
        return InterpBackend(engine)
    if name == "affine":
        return AffineBackend(engine, bitset_mode="never")
    if name == "bitset":
        backend = AffineBackend(engine, bitset_mode="always")
        backend.name = "bitset"
        return backend
    if name == "fused":
        return FusedBackend(engine, bitset_mode="never")
    if name == "auto":
        backend = FusedBackend(engine, bitset_mode="auto")
        backend.name = "auto"
        return backend
    raise ExplorationError(
        f"unknown backend {name!r}; available: {', '.join(BACKEND_NAMES)}"
    )


__all__ = [
    "AffineBackend",
    "BACKEND_NAMES",
    "EngineBackend",
    "FusedBackend",
    "InterpBackend",
    "available_namespaces",
    "make_backend",
    "namespace_probes",
    "resolve_namespace",
]
