"""Compiled affine stamp kernels for batched sweeps.

The interpreted hot path walks every candidate's quasi-affine expression trees
once per candidate (`AffExpr.evaluate_vec`).  This module compiles the batch
instead:

* :func:`lower_expr` turns a quasi-affine expression into one row of an
  integer coefficient matrix over the loop dimensions plus *derived columns*
  (one per distinct ``floor``/``mod``/``abs`` term with an affine argument).
  Expressions with nested quasi terms do not lower and fall back to the
  interpreter, so results stay bit-identical.
* :class:`CompiledExprSet` / :class:`CompiledEvaluator` evaluate all compiled
  rows of a candidate window with a single ``chunk_matrix @ C.T`` matmul over
  the cached domain chunk.  The matmul runs in float64 (BLAS); rows whose
  interval bounds do not fit float64 exactly are evaluated with exact int64
  accumulation instead, so the speedup never costs precision.
* :class:`GroupLayout` caches the candidate-invariant part of the volume
  kernel per (space-stamp signature, tensor): the (PE, element) group sort
  permutation, dense group ids, and per-interconnect-slot source groups.
  With it, :func:`compiled_group_volume_metrics` reduces each candidate's
  Table II counting to one narrow-key sort plus shifted-equality and
  membership tests — the same exact counts as the group-major kernel.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.arch.pe_array import PEArray
from repro.core.backends.base import BatchStampProvider, EngineBackend
from repro.core.dataflow import Dataflow
from repro.core.volumes import VolumeMetrics
from repro.errors import DataflowError, SpaceError
from repro.isl.expr import Abs, AffExpr, FloorDiv, Mod

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import OpRelations, TensorRelations

#: int64 values below this magnitude are represented exactly by float64.
_FLOAT_EXACT = 1 << 53

#: Process-wide thread pool for per-tensor volume kernels.  The kernels are
#: pure numpy whose heavy operations (sort, searchsorted, bincount) release
#: the GIL, so one candidate's tensors run concurrently.  Shared and lazy so
#: the many short-lived engines in tests do not each spawn threads.  Keyed by
#: PID: a pool inherited across ``fork`` (the ``jobs>1`` sweep workers) has
#: no live threads and would deadlock, so each process builds its own.
_VOLUME_POOL: tuple[int, ThreadPoolExecutor] | None = None
_CPU_COUNT = os.cpu_count() or 1


def _volume_pool() -> ThreadPoolExecutor | None:
    global _VOLUME_POOL
    if _CPU_COUNT < 2:
        return None
    pid = os.getpid()
    if _VOLUME_POOL is None or _VOLUME_POOL[0] != pid:
        _VOLUME_POOL = (
            pid,
            ThreadPoolExecutor(
                max_workers=min(4, _CPU_COUNT),
                thread_name_prefix="tenet-volume",
            ),
        )
    return _VOLUME_POOL[1]


def _evict_lru(cache: OrderedDict, max_entries: int, max_bytes: int, nbytes) -> None:
    """Shared LRU budget: drop oldest entries past a count or byte cap."""
    while len(cache) > max_entries or (
        len(cache) > 1 and sum(nbytes(value) for value in cache.values()) > max_bytes
    ):
        cache.popitem(last=False)


# -- expression lowering ---------------------------------------------------------


@dataclass(frozen=True)
class DerivedColumn:
    """A lowered ``floor``/``mod``/``abs`` term with an affine argument."""

    kind: str                # "floordiv" | "mod" | "abs"
    param: int               # divisor / modulus (0 for abs)
    coeffs: tuple[int, ...]  # affine coefficients of the argument over the base dims
    const: int

    def bounds(self, dim_bounds: Sequence[tuple[int, int]]) -> tuple[int, int]:
        lo = hi = self.const
        for coeff, (blo, bhi) in zip(self.coeffs, dim_bounds):
            if coeff >= 0:
                lo += coeff * blo
                hi += coeff * bhi
            else:
                lo += coeff * bhi
                hi += coeff * blo
        if self.kind == "floordiv":
            return lo // self.param, hi // self.param
        if self.kind == "mod":
            if hi - lo + 1 >= self.param:
                return 0, self.param - 1
            lo_m, hi_m = lo % self.param, hi % self.param
            if lo_m <= hi_m:
                return lo_m, hi_m
            return 0, self.param - 1
        if lo >= 0:
            return lo, hi
        if hi <= 0:
            return -hi, -lo
        return 0, max(-lo, hi)

    def evaluate(self, base_columns: Sequence[np.ndarray], length: int) -> np.ndarray:
        total = np.full(length, self.const, dtype=np.int64)
        for coeff, column in zip(self.coeffs, base_columns):
            if coeff:
                total += coeff * column
        if self.kind == "floordiv":
            return total // self.param
        if self.kind == "mod":
            return total % self.param
        return np.abs(total)


def lower_expr(
    expr: AffExpr, dims: Sequence[str]
) -> tuple[tuple[int, ...], int, list[tuple[int, DerivedColumn]]] | None:
    """Lower a quasi-affine expression to coefficient-matrix form.

    Returns ``(base_coefficients, constant, [(coefficient, derived), ...])``
    or ``None`` when the expression cannot be compiled: it references a
    variable outside ``dims``, or a quasi term's argument is itself
    quasi-affine (nested floor/mod/abs) — those fall back to the interpreter.
    """
    try:
        base, const = expr.linear_row(dims)
    except SpaceError:  # references a variable outside the loop dimensions
        return None
    derived: list[tuple[int, DerivedColumn]] = []
    for coeff, term in expr.quasi:
        inner = term.expr
        if not inner.is_affine:
            return None
        try:
            inner_coeffs, inner_const = inner.linear_row(dims)
        except SpaceError:
            return None
        if isinstance(term, FloorDiv):
            kind, param = "floordiv", term.divisor
        elif isinstance(term, Mod):
            kind, param = "mod", term.modulus
        elif isinstance(term, Abs):
            kind, param = "abs", 0
        else:  # pragma: no cover - no other quasi terms exist
            return None
        derived.append((coeff, DerivedColumn(kind, param, inner_coeffs, inner_const)))
    return base, const, derived


class CompiledExprSet:
    """A batch of stamp expressions sharing one coefficient matrix."""

    def __init__(self, dims: Sequence[str], inclusive_bounds: Mapping[str, tuple[int, int]]):
        self.dims = tuple(dims)
        self.dim_bounds = [inclusive_bounds[dim] for dim in self.dims]
        self.derived: list[DerivedColumn] = []
        self._derived_ids: dict[DerivedColumn, int] = {}
        #: row = (base_coeffs, const, ((derived_index, coeff), ...))
        self.rows: list[tuple[tuple[int, ...], int, tuple[tuple[int, int], ...]]] = []
        self._row_ids: dict[tuple, int] = {}
        self.fallback: list[AffExpr] = []
        self._fallback_ids: dict[AffExpr, int] = {}

    def add(self, expr: AffExpr) -> tuple[str, int]:
        """Register an expression; returns ("row", i) or ("interp", i).

        Identical expressions (candidates of a sweep family share most of
        their time expressions) are registered once and evaluated once.
        """
        lowered = lower_expr(expr, self.dims)
        if lowered is None:
            index = self._fallback_ids.get(expr)
            if index is None:
                index = len(self.fallback)
                self._fallback_ids[expr] = index
                self.fallback.append(expr)
            return ("interp", index)
        base, const, derived = lowered
        refs = []
        for coeff, column in derived:
            index = self._derived_ids.get(column)
            if index is None:
                index = len(self.derived)
                self._derived_ids[column] = index
                self.derived.append(column)
            refs.append((index, coeff))
        row = (base, const, tuple(refs))
        index = self._row_ids.get(row)
        if index is None:
            index = len(self.rows)
            self._row_ids[row] = index
            self.rows.append(row)
        return ("row", index)


class CompiledEvaluator:
    """Evaluate compiled rows over one cached domain chunk.

    The evaluator is long-lived (owned by the backend, shared by every batch
    against the same cached relations): derived columns and the float column
    matrix extend incrementally as later batches register new expressions,
    and evaluated row values are memoised — a row is deterministic for a
    fixed domain, so repeated single-candidate evaluations and overlapping
    sweeps pay for each expression once.
    """

    #: Cap on memoised row values (count and bytes).
    _ROW_CACHE_ENTRIES, _ROW_CACHE_BYTES = 512, 256 << 20

    def __init__(
        self,
        exprs: CompiledExprSet,
        domain: Mapping[str, np.ndarray],
        length: int,
        *,
        xp=None,
        on_transfer=None,
    ):
        self.exprs = exprs
        self.domain = domain
        self.length = length
        self.base = [np.asarray(domain[dim], dtype=np.int64) for dim in exprs.dims]
        self.derived_cols = [col.evaluate(self.base, length) for col in exprs.derived]
        self.derived_bounds = [col.bounds(exprs.dim_bounds) for col in exprs.derived]
        self._matrix: np.ndarray | None = None
        #: Device namespace for the stacked matmul; ``None`` keeps the classic
        #: numpy path byte-for-byte (the host namespace needs no uploads).
        self.xp = None if xp is None or xp.is_numpy else xp
        self._on_transfer = on_transfer
        #: Chunk columns resident on the device, uploaded once per relations
        #: object (candidate-invariant) and re-uploaded only when new derived
        #: columns widen the matrix.
        self._device_matrix = None
        self._row_values: OrderedDict[int, np.ndarray] = OrderedDict()
        self._interp_values: OrderedDict[int, np.ndarray] = OrderedDict()

    def _sync_derived(self) -> None:
        """Pick up derived columns registered after this evaluator was built."""
        if len(self.exprs.derived) > len(self.derived_cols):
            for column in self.exprs.derived[len(self.derived_cols) :]:
                self.derived_cols.append(column.evaluate(self.base, self.length))
                self.derived_bounds.append(column.bounds(self.exprs.dim_bounds))
            self._matrix = None
            self._device_matrix = None

    def _float_matrix(self) -> np.ndarray:
        if self._matrix is None:
            columns = self.base + self.derived_cols
            matrix = np.empty((self.length, len(columns) + 1), dtype=np.float64)
            for j, column in enumerate(columns):
                matrix[:, j] = column
            matrix[:, -1] = 1.0
            self._matrix = matrix
            self._device_matrix = None
        return self._matrix

    def _note_transfer(self, started: float) -> None:
        if self._on_transfer is not None:
            self._on_transfer(time.perf_counter() - started)

    def _device_values(self, coeffs: np.ndarray) -> np.ndarray:
        """The stacked matmul on the device namespace, result back on host.

        The coefficient block covers every deduplicated row of the current
        batch window, so the host->device coefficient upload happens once per
        batch, not once per candidate.  Values are integers below the float64
        exactness bound (the caller filtered on ``_row_magnitude``), so the
        int64 conversion on device and the copy back are bit-identical to the
        host matmul.
        """
        xp = self.xp
        matrix = self._float_matrix()
        if self._device_matrix is None:
            started = time.perf_counter()
            self._device_matrix = xp.asarray(np.ascontiguousarray(matrix.T))
            self._note_transfer(started)
        started = time.perf_counter()
        device_coeffs = xp.asarray(coeffs)
        self._note_transfer(started)
        product = xp.astype(xp.matmul(device_coeffs, self._device_matrix), "int64")
        started = time.perf_counter()
        values = np.ascontiguousarray(xp.to_host(product))
        self._note_transfer(started)
        return values

    def _row_magnitude(self, row_id: int) -> int:
        base, const, derived = self.exprs.rows[row_id]
        total = abs(const)
        for coeff, (lo, hi) in zip(base, self.exprs.dim_bounds):
            total += abs(coeff) * max(abs(lo), abs(hi))
        for index, coeff in derived:
            lo, hi = self.derived_bounds[index]
            total += abs(coeff) * max(abs(lo), abs(hi))
        return total

    def _evaluate_exact(self, row_id: int) -> np.ndarray:
        base, const, derived = self.exprs.rows[row_id]
        total = np.full(self.length, const, dtype=np.int64)
        for coeff, column in zip(base, self.base):
            if coeff:
                total += coeff * column
        for index, coeff in derived:
            total += coeff * self.derived_cols[index]
        return total

    def _remember_rows(self, results: dict[int, np.ndarray]) -> None:
        cache = self._row_values
        for rid, values in results.items():
            cache[rid] = values
            cache.move_to_end(rid)
        _evict_lru(
            cache, self._ROW_CACHE_ENTRIES, self._ROW_CACHE_BYTES, lambda a: a.nbytes
        )

    def evaluate_rows(self, row_ids: Sequence[int]) -> dict[int, np.ndarray]:
        """Evaluate compiled rows, batching float-exact rows into one matmul.

        Previously evaluated rows come from the memo; only the rest run.
        """
        self._sync_derived()
        results: dict[int, np.ndarray] = {}
        pending: list[int] = []
        for rid in row_ids:
            cached = self._row_values.get(rid)
            if cached is not None:
                self._row_values.move_to_end(rid)
                results[rid] = cached
            else:
                pending.append(rid)
        if not pending:
            return results
        fresh: dict[int, np.ndarray] = {}
        safe = [rid for rid in pending if self._row_magnitude(rid) < _FLOAT_EXACT]
        safe_set = set(safe)
        for rid in pending:
            if rid not in safe_set:
                fresh[rid] = self._evaluate_exact(rid)
        if safe:
            width = len(self.base) + len(self.derived_cols) + 1
            coeffs = np.zeros((len(safe), width), dtype=np.float64)
            for j, rid in enumerate(safe):
                base, const, derived = self.exprs.rows[rid]
                coeffs[j, : len(base)] = base
                for index, coeff in derived:
                    coeffs[j, len(self.base) + index] += coeff
                coeffs[j, -1] = const
            # Row-major result: one contiguous int64 conversion, then row views.
            if self.xp is None:
                values = (coeffs @ self._float_matrix().T).astype(np.int64)
            else:
                values = self._device_values(coeffs)
            for j, rid in enumerate(safe):
                fresh[rid] = values[j]
        self._remember_rows(fresh)
        results.update(fresh)
        return results

    def evaluate_interp(self, index: int) -> np.ndarray:
        """Interpreter fallback, memoised like the compiled rows."""
        cache = self._interp_values
        values = cache.get(index)
        if values is None:
            values = self.exprs.fallback[index].evaluate_vec(self.domain)
            cache[index] = values
            _evict_lru(
                cache, self._ROW_CACHE_ENTRIES, self._ROW_CACHE_BYTES,
                lambda a: a.nbytes,
            )
        else:
            cache.move_to_end(index)
        return values


# -- candidate-invariant volume layout -------------------------------------------


@dataclass
class GroupLayout:
    """Space-stamp-derived structure of one tensor, shared by a sweep family.

    Pairs are the (instance, distinct reference) accesses of the tensor; a
    *group* is a distinct ``(PE, element)`` pair.  Everything here depends
    only on the space stamps and the cached relations, so candidates that
    share a space signature (the common case in sweep families) reuse it and
    pay only time-stamp-dependent work per candidate.
    """

    #: Instance index of each pair, in group-sorted order.
    perm_mod: np.ndarray
    #: Dense group id of each pair, group-sorted order (int32).
    dense_sorted: np.ndarray
    #: Dense group id of each pair in original (per-reference) order (int32).
    dense_orig: np.ndarray
    group_count: int
    #: Number of *distinct* references (identical references are collapsed).
    references: int
    #: Per interconnect slot: does the pair's group have a valid source group?
    slot_valid: list[np.ndarray]
    #: Per slot: dense source group minus dense group, per pair (int32).
    slot_delta: list[np.ndarray]
    #: Per slot: the delta shared by every valid pair, or ``None`` when it
    #: varies (systolic links between uniformly-populated PEs share one).
    slot_delta_const: list[int | None]
    #: Per slot: dense source group per *group* (sentinel ``group_count``).
    slot_src_group: list[np.ndarray]

    def nbytes(self) -> int:
        total = self.perm_mod.nbytes + self.dense_sorted.nbytes + self.dense_orig.nbytes
        for arrays in (self.slot_valid, self.slot_delta, self.slot_src_group):
            total += sum(a.nbytes for a in arrays)
        return total


def build_group_layout(
    pe_lin: np.ndarray,
    relations: "TensorRelations",
    predecessor_table: np.ndarray,
    spatial_interval: int,
) -> GroupLayout | None:
    """Build the candidate-invariant group structure for one tensor."""
    footprint = relations.footprint
    length = pe_lin.size
    segments = [
        relations.dense_keys[index * length : (index + 1) * length]
        for index in range(relations.references)
    ]
    distinct: list[np.ndarray] = []
    for segment in segments:
        if not any(np.array_equal(segment, seen) for seen in distinct):
            distinct.append(segment)
    groups = [pe_lin * footprint + segment for segment in distinct]
    pairs = groups[0] if len(groups) == 1 else np.concatenate(groups)
    total = pairs.size
    if total == 0 or total >= (1 << 31):
        return None
    perm = np.argsort(pairs, kind="stable")
    ordered = pairs[perm]
    boundary = np.empty(total, dtype=bool)
    boundary[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=boundary[1:])
    dense_sorted64 = np.cumsum(boundary) - 1
    group_count = int(dense_sorted64[-1]) + 1
    unique_groups = ordered[boundary]
    dense_sorted = dense_sorted64.astype(np.int32)
    dense_orig = np.empty(total, dtype=np.int32)
    dense_orig[perm] = dense_sorted
    perm_mod = (perm % length).astype(np.int32)

    group_pe = unique_groups // footprint
    group_elem = unique_groups - group_pe * footprint
    slot_valid: list[np.ndarray] = []
    slot_delta: list[np.ndarray] = []
    slot_delta_const: list[int | None] = []
    slot_src_group: list[np.ndarray] = []
    slots = predecessor_table.shape[1] if predecessor_table.size else 0
    for slot in range(slots):
        src_pe = predecessor_table[group_pe, slot]
        valid = src_pe >= 0
        if spatial_interval == 0:
            valid &= src_pe < group_pe
        src_raw = src_pe * footprint + group_elem
        position = np.clip(np.searchsorted(unique_groups, src_raw), 0, group_count - 1)
        present = valid & (unique_groups[position] == src_raw)
        src_dense = np.where(present, position, group_count).astype(np.int32)
        slot_src_group.append(src_dense)
        slot_valid.append(present[dense_sorted])
        group_delta = src_dense - np.arange(group_count, dtype=np.int32)
        slot_delta.append(group_delta[dense_sorted])
        valid_deltas = group_delta[present]
        if valid_deltas.size and valid_deltas.min() == valid_deltas.max():
            slot_delta_const.append(int(valid_deltas[0]))
        else:
            slot_delta_const.append(None)
    return GroupLayout(
        perm_mod=perm_mod,
        dense_sorted=dense_sorted,
        dense_orig=dense_orig,
        group_count=group_count,
        references=len(distinct),
        slot_valid=slot_valid,
        slot_delta=slot_delta,
        slot_delta_const=slot_delta_const,
        slot_src_group=slot_src_group,
    )


def compiled_group_volume_metrics(
    tensor: str,
    layout: GroupLayout,
    t_rank: np.ndarray,
    *,
    spatial_interval: int,
    temporal_interval: int,
    footprint: int,
    assume_unique: bool,
    rank_span: int | None = None,
    rank32: np.ndarray | None = None,
) -> VolumeMetrics | None:
    """Exact Table II metrics from a cached :class:`GroupLayout`.

    Per candidate this needs one narrow-key in-place sort (int32 whenever the
    dense key span fits), shifted-equality temporal tests, and per-slot
    membership probes whose source groups were precomputed — no divisions, no
    predecessor-table gathers, no re-derivation of the group order.  Counts
    are bit-identical to the group-major kernel; returns ``None`` when the
    temporal interval is outside the adjacency window or keys would overflow.
    """
    ti = temporal_interval
    if ti < 1 or ti > 8:
        return None
    if t_rank.size == 0:
        return None
    if rank_span is None:
        rank_span = int(t_rank.max()) + 1
    group_count = layout.group_count
    span = group_count * rank_span
    if span >= (1 << 62):
        return None

    if span < (1 << 31):
        scaled = layout.dense_sorted * rank_span
        if rank32 is None:
            rank32 = t_rank.astype(np.int32)
        keys = scaled + np.take(rank32, layout.perm_mod)
    else:
        scaled = layout.dense_sorted.astype(np.int64) * rank_span
        keys = scaled + np.take(t_rank, layout.perm_mod)
    keys.sort()  # groups are the high digits, so group blocks stay in place

    slot_valid = layout.slot_valid
    slot_delta = layout.slot_delta
    if assume_unique and layout.references == 1:
        ranks = keys - scaled
    else:
        fresh = np.empty(keys.shape, dtype=bool)
        fresh[0] = True
        np.not_equal(keys[1:], keys[:-1], out=fresh[1:])
        if not fresh.all():
            keys = keys[fresh]
            scaled = scaled[fresh]
            slot_valid = [valid[fresh] for valid in slot_valid]
            slot_delta = [delta[fresh] for delta in slot_delta]
        ranks = keys - scaled
    total = int(keys.size)

    temporal_mask = np.zeros(total, dtype=bool)
    if ti == 1:
        np.equal(keys[:-1], keys[1:] - 1, out=temporal_mask[1:])
    else:
        for back in range(1, ti + 1):
            np.logical_or(
                temporal_mask[back:], keys[:-back] == keys[back:] - ti,
                out=temporal_mask[back:],
            )
    rank_guard = ranks >= ti
    temporal_mask &= rank_guard
    temporal_count = int(np.count_nonzero(temporal_mask))

    spatial_count = 0
    if temporal_count < total and slot_valid:
        if temporal_count == 0:
            # No temporal reuse (typical for input tensors): the probe set is
            # the rank guard itself, no mask inversion needed.
            if spatial_interval == 0:
                probe = None  # probe everything
            elif spatial_interval == ti:
                probe = rank_guard
            else:
                probe = ranks >= spatial_interval
        else:
            probe = ~temporal_mask
            if spatial_interval:
                # Reuse the temporal guard when the intervals coincide (the
                # common systolic case: both are one time-stamp).
                probe &= rank_guard if spatial_interval == ti else ranks >= spatial_interval
        keys_p = keys if probe is None else np.compress(probe, keys)
        if keys_p.size:
            spatial_mask: np.ndarray | None = None
            wide = keys.dtype == np.int64
            for valid, delta, delta_const in zip(
                slot_valid, slot_delta, layout.slot_delta_const
            ):
                valid_p = valid if probe is None else np.compress(probe, valid)
                if not valid_p.any():
                    continue
                if delta_const is not None:
                    # Uniform source offset (systolic links between equally
                    # populated PEs): one scalar add replaces the per-pair
                    # delta gather and multiply.
                    probes = keys_p + (delta_const * rank_span - spatial_interval)
                else:
                    delta_p = delta if probe is None else np.compress(probe, delta)
                    if wide:
                        delta_p = delta_p.astype(np.int64)
                    probes = keys_p + delta_p * rank_span - spatial_interval
                positions = np.searchsorted(keys, probes)
                hits = np.take(keys, positions, mode="clip") == probes
                hits &= valid_p
                if spatial_mask is None:
                    spatial_mask = hits
                else:
                    spatial_mask |= hits
            if spatial_mask is not None:
                spatial_count = int(np.count_nonzero(spatial_mask))

    return VolumeMetrics(
        tensor=tensor,
        total=total,
        reuse=temporal_count + spatial_count,
        temporal_reuse=temporal_count,
        spatial_reuse=spatial_count,
        footprint=footprint,
    )


# -- batched stamp provider ------------------------------------------------------


class _AffineBatchStamps(BatchStampProvider):
    """Windowed, matmul-batched stamp evaluation for a list of candidates."""

    def __init__(
        self,
        backend: "AffineBackend",
        relations: "OpRelations",
        dataflows: Sequence[Dataflow],
        pe_array: PEArray,
    ):
        self.backend = backend
        self.relations = relations
        self.pe_array = pe_array
        self.dataflows = list(dataflows)
        # The expression set and evaluator are backend-owned and shared across
        # batches: row values, derived columns and the float matrix persist,
        # so overlapping sweeps and repeated single-candidate evaluations pay
        # for each distinct expression once.
        self.exprs, self._evaluator = backend.compiled_for(relations)
        self._time_plans: list[list[tuple[str, int]]] = []
        self._pe_plans: list[list[tuple[str, int]] | None] = []
        for dataflow in self.dataflows:
            self._time_plans.append([self.exprs.add(e) for e in dataflow.time_exprs])
            if backend.pe_signature(dataflow) in backend._pe_memo:
                self._pe_plans.append(None)
            else:
                self._pe_plans.append([self.exprs.add(e) for e in dataflow.pe_exprs])
        self._values: dict[int, np.ndarray] = {}
        self._window = (0, 0)
        # Bound transient stamp memory: at most ~8M matrix cells per window.
        self._rows_per_window = max(4, 8_000_000 // max(1, relations.total))

    def _ensure_window(self, position: int) -> None:
        lo, hi = self._window
        if lo <= position < hi:
            return
        lo = position
        hi = position
        row_ids: set[int] = set()
        while hi < len(self.dataflows) and (
            hi == lo or len(row_ids) < self._rows_per_window
        ):
            for kind, index in self._time_plans[hi]:
                if kind == "row":
                    row_ids.add(index)
            plan = self._pe_plans[hi]
            if plan is not None and self.backend.pe_signature(self.dataflows[hi]) not in self.backend._pe_memo:
                row_ids.update(index for kind, index in plan if kind == "row")
            hi += 1
        self._values = self._evaluator.evaluate_rows(sorted(row_ids))
        self._window = (lo, hi)

    def _column(self, kind: str, index: int) -> np.ndarray:
        if kind == "row":
            column = self._values.get(index)
            if column is None:
                # The current window excluded this row (e.g. a PE signature
                # memoised when the window was built but evicted since); the
                # evaluator's row memo keeps the one-off evaluation cheap.
                column = self._evaluator.evaluate_rows([index])[index]
            return column
        self.backend.engine.stats["stamp_fallback_exprs"] += 1
        return self._evaluator.evaluate_interp(index)

    def _pe_lin(self, position: int) -> np.ndarray:
        dataflow = self.dataflows[position]
        signature = self.backend.pe_signature(dataflow)
        memo = self.backend._pe_memo
        cached = memo.get(signature, _MISSING)
        if cached is not _MISSING:
            memo.move_to_end(signature)
            if cached is None:
                raise DataflowError(
                    f"dataflow {dataflow.name!r} maps instances outside the "
                    f"{self.pe_array} array"
                )
            return cached
        plan = self._pe_plans[position]
        if plan is None:  # memoised when the plan was built, evicted since
            plan = [self.exprs.add(e) for e in dataflow.pe_exprs]
            self._pe_plans[position] = plan
            # Force re-evaluation including the new rows (the evaluator picks
            # up any new derived columns itself).
            self._window = (0, 0)
        self._ensure_window(position)
        pe_lin = np.zeros(self.relations.total, dtype=np.int64)
        for extent, (kind, index) in zip(self.pe_array.dims, plan):
            column = self._column(kind, index)
            if (column < 0).any() or (column >= extent).any():
                self.backend.remember_pe(signature, None)
                raise DataflowError(
                    f"dataflow {dataflow.name!r} maps instances outside the "
                    f"{self.pe_array} array"
                )
            pe_lin = pe_lin * extent + column
        self.backend.remember_pe(signature, pe_lin)
        return pe_lin

    def stamps_for(self, position: int) -> tuple[np.ndarray, np.ndarray]:
        from repro.core.engine import _rank_keys

        dataflow = self.dataflows[position]
        self._ensure_window(position)
        pe_lin = self._pe_lin(position)
        bounds = self.relations.inclusive_bounds
        time_key: np.ndarray | None = None
        for expr, (kind, index) in zip(dataflow.time_exprs, self._time_plans[position]):
            lo, hi = expr.bounds(bounds)
            extent = hi - lo + 1
            column = self._column(kind, index)
            if time_key is None:
                time_key = column - lo  # owned copy; columns stay cached
            else:
                time_key *= extent
                time_key += column
                if lo:
                    time_key -= lo
        if time_key is None:
            time_key = np.zeros(self.relations.total, dtype=np.int64)
        return pe_lin, _rank_keys(time_key)


_MISSING = object()


# -- the backend -----------------------------------------------------------------


class AffineBackend(EngineBackend):
    """Compiled stamps plus the group-layout volume kernel.

    ``bitset_mode`` controls the dense bit-set membership kernel (see
    :mod:`repro.core.backends.bitset`): ``"never"`` (pure affine backend),
    ``"auto"`` (use it for tensors whose packed occupancy is smaller than the
    pair array — the small-op regime) or ``"always"`` (use it whenever it is
    exact and fits memory).  Infeasible cases chain down to the compiled
    grouped kernel, then the PR 1 grouped kernel, then the reference kernel.
    """

    name = "affine"

    #: Memory caps for the per-engine memos.
    _PE_MEMO_ENTRIES, _PE_MEMO_BYTES = 64, 256 << 20
    _LAYOUT_ENTRIES, _LAYOUT_BYTES = 32, 256 << 20

    def __init__(self, engine, *, bitset_mode: str = "never"):
        super().__init__(engine)
        self.bitset_mode = bitset_mode
        self._pe_memo: OrderedDict[tuple, np.ndarray | None] = OrderedDict()
        self._layout_memo: OrderedDict[tuple, GroupLayout | None] = OrderedDict()
        #: Per-candidate int32 rank cache shared by the tensors' volume calls;
        #: the strong reference keeps the keyed array's identity stable.
        self._rank32: tuple[np.ndarray, np.ndarray] | None = None
        #: Shared (expression set, evaluator) per cached-relations object.
        self._compiled: tuple[object, CompiledExprSet, CompiledEvaluator] | None = None

    def _add_transfer_seconds(self, seconds: float) -> None:
        stage = self.engine.stage_seconds
        stage["transfer"] = stage.get("transfer", 0.0) + seconds

    def compiled_for(self, relations) -> tuple[CompiledExprSet, CompiledEvaluator]:
        """The backend-wide compiled expression set for one relations object."""
        cached = self._compiled
        if cached is not None and cached[0] is relations:
            return cached[1], cached[2]
        exprs = CompiledExprSet(self.engine.op.loop_dims, relations.inclusive_bounds)
        evaluator = CompiledEvaluator(
            exprs,
            relations.domain,
            relations.total,
            xp=self.engine.xp,
            on_transfer=self._add_transfer_seconds,
        )
        self._compiled = (relations, exprs, evaluator)
        return exprs, evaluator

    # -- stamps -----------------------------------------------------------------

    @staticmethod
    def pe_signature(dataflow: Dataflow) -> tuple[str, ...]:
        signature = getattr(dataflow, "_pe_signature", None)
        if signature is None:
            signature = tuple(str(e) for e in dataflow.pe_exprs)
            dataflow._pe_signature = signature
        return signature

    def remember_pe(self, signature: tuple, pe_lin: np.ndarray | None) -> None:
        memo = self._pe_memo
        memo[signature] = pe_lin
        memo.move_to_end(signature)
        _evict_lru(
            memo, self._PE_MEMO_ENTRIES, self._PE_MEMO_BYTES,
            lambda a: a.nbytes if a is not None else 0,
        )

    def prepare_batch(self, relations, dataflows, pe_array):
        return _AffineBatchStamps(self, relations, dataflows, pe_array)

    def utilization(self, pe_lin, t_rank, num_pes):
        """Dense-histogram utilization with the injective shortcut enabled."""
        from repro.core.engine import _utilization_dense

        return _utilization_dense(pe_lin, t_rank, num_pes, injective_shortcut=True)

    def stamps(self, relations, dataflow, pe_array):
        return _AffineBatchStamps(self, relations, [dataflow], pe_array).stamps_for(0)

    # -- volumes ----------------------------------------------------------------

    def _layout(self, tensor: str, dataflow: Dataflow, pe_lin, relations) -> GroupLayout | None:
        key = (self.pe_signature(dataflow), tensor)
        memo = self._layout_memo
        if key in memo:
            memo.move_to_end(key)
            return memo[key]
        layout = build_group_layout(
            pe_lin,
            relations.tensors[tensor],
            self.engine._predecessor_table,
            self.engine._spacetime.spatial_interval,
        )
        memo[key] = layout
        _evict_lru(
            memo, self._LAYOUT_ENTRIES, self._LAYOUT_BYTES,
            lambda v: v.nbytes() if v is not None else 0,
        )
        return layout

    def _rank32_for(self, t_rank: np.ndarray) -> np.ndarray:
        cached = self._rank32
        if cached is not None and cached[0] is t_rank:
            return cached[1]
        rank32 = t_rank.astype(np.int32)
        self._rank32 = (t_rank, rank32)
        return rank32

    def _volume_sorted(
        self, tensor, layout, t_rank, relations, assume_unique, rank_span, rank32,
    ) -> tuple[VolumeMetrics, str] | None:
        """The sort-based kernel chain for one tensor, after the bit-set try.

        Subclasses insert faster sort-based kernels here (the fused backend's
        windowed kernel chains to this one); the bit-set dispatch stays in
        :meth:`_volume_one` so its gating exists in exactly one place.
        """
        engine = self.engine
        metrics = compiled_group_volume_metrics(
            tensor,
            layout,
            t_rank,
            spatial_interval=engine._spacetime.spatial_interval,
            temporal_interval=engine.temporal_interval,
            footprint=relations.tensors[tensor].footprint,
            assume_unique=assume_unique,
            rank_span=rank_span,
            rank32=rank32,
        )
        if metrics is not None:
            return metrics, "compiled_path"
        return None

    def _volume_one(
        self, tensor, layout, pe_lin, t_rank, relations, assume_unique,
        rank_span, rank32,
    ) -> tuple[VolumeMetrics | None, str | None]:
        """Kernel chain for one tensor: (metrics-or-None, stats key).

        Pure with respect to backend state (layout and rank32 are passed in),
        so several tensors of one candidate can run concurrently.
        """
        engine = self.engine
        footprint = relations.tensors[tensor].footprint
        if layout is not None:
            if self.bitset_mode != "never":
                from repro.core.backends.bitset import bitset_volume_metrics

                metrics = bitset_volume_metrics(
                    tensor,
                    layout,
                    t_rank,
                    spatial_interval=engine._spacetime.spatial_interval,
                    temporal_interval=engine.temporal_interval,
                    footprint=footprint,
                    assume_unique=assume_unique,
                    mode=self.bitset_mode,
                    rank_span=rank_span,
                )
                if metrics is not None:
                    return metrics, "bitset_path"
            sorted_result = self._volume_sorted(
                tensor, layout, t_rank, relations, assume_unique, rank_span, rank32
            )
            if sorted_result is not None:
                return sorted_result
        from repro.core.engine import _grouped_volume_metrics

        metrics = _grouped_volume_metrics(
            tensor,
            pe_lin,
            t_rank,
            relations.tensors[tensor],
            engine._predecessor_table,
            engine.arch.pe_array.size,
            spatial_interval=engine._spacetime.spatial_interval,
            temporal_interval=engine.temporal_interval,
            assume_unique=assume_unique,
        )
        return metrics, None

    def volume_metrics(
        self, tensor, dataflow, pe_lin, t_rank, relations, *, assume_unique,
        rank_span=None,
    ):
        layout = self._layout(tensor, dataflow, pe_lin, relations)
        metrics, path = self._volume_one(
            tensor, layout, pe_lin, t_rank, relations, assume_unique,
            rank_span, self._rank32_for(t_rank),
        )
        if path is not None:
            self.engine.stats[path] += 1
        return metrics

    def volume_metrics_many(
        self, tensors, dataflow, pe_lin, t_rank, relations, *, assume_unique,
        rank_span=None,
    ):
        tensors = list(tensors)
        # Memo mutation happens serially up front; the kernels below only
        # read shared arrays.
        layouts = {
            tensor: self._layout(tensor, dataflow, pe_lin, relations)
            for tensor in tensors
        }
        rank32 = self._rank32_for(t_rank)
        results: dict[str, VolumeMetrics | None] = {}
        pool = _volume_pool() if (
            len(tensors) > 1 and relations.total >= (1 << 16)
        ) else None
        if pool is not None:
            futures = {
                tensor: pool.submit(
                    self._volume_one, tensor, layouts[tensor], pe_lin, t_rank,
                    relations, assume_unique, rank_span, rank32,
                )
                for tensor in tensors
            }
            outcomes = {tensor: future.result() for tensor, future in futures.items()}
        else:
            outcomes = {
                tensor: self._volume_one(
                    tensor, layouts[tensor], pe_lin, t_rank, relations,
                    assume_unique, rank_span, rank32,
                )
                for tensor in tensors
            }
        for tensor, (metrics, path) in outcomes.items():
            if path is not None:
                self.engine.stats[path] += 1
            results[tensor] = metrics
        return results
