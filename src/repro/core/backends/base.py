"""Backend contract for the evaluation engine.

A backend decides *how* the per-candidate hot path of a sweep is computed:

* how the dataflow's space/time stamp columns are evaluated over the cached
  relation chunks (interpreted expression trees vs compiled coefficient
  matrices, candidate-by-candidate vs batched), and
* which exact membership kernel counts the Table II volumes (the group-major
  sort/adjacency kernel vs packed bit-set occupancy words).

Every backend is *exact*: reports are bit-identical across backends, so the
choice is purely a performance decision.  Backends that cannot handle a case
return ``None`` from :meth:`EngineBackend.volume_metrics` and the engine falls
back to the reference kernel, exactly like the PR 1 fast path did.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.arch.pe_array import PEArray
from repro.core.dataflow import Dataflow
from repro.core.volumes import VolumeMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.core.engine import EvaluationEngine, OpRelations


class BatchStampProvider:
    """Per-batch stamp source handed to the engine by ``prepare_batch``.

    ``stamps_for(position)`` returns the ``(pe_lin, t_rank)`` columns of the
    candidate at ``position`` in the prepared list, raising
    :class:`repro.errors.DataflowError` for candidates that map instances
    outside the PE array — the same contract as
    :meth:`repro.core.engine.RelationMaterializer.stamps`.
    """

    def stamps_for(self, position: int) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError


class EngineBackend:
    """Stamp evaluation and volume kernels for one :class:`EvaluationEngine`.

    Device contract: backends that compute through the engine's array
    namespace (``engine.xp``, see :mod:`repro.core.xp`) must keep reports
    bit-identical to the host namespace — integer-exact arithmetic on the
    device, host-side assembly of every report field — and account any
    host<->device copies into the engine's ``transfer`` stage timer.
    Host-only backends simply ignore ``engine.xp``; the engine rejects
    non-numpy devices for :class:`InterpBackend` up front.
    """

    name = "base"

    def __init__(self, engine: "EvaluationEngine"):
        self.engine = engine

    # -- stamp evaluation -------------------------------------------------------

    def stamps(
        self,
        relations: "OpRelations",
        dataflow: Dataflow,
        pe_array: PEArray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Evaluate one candidate's (PE, time-rank) columns over cached relations."""
        raise NotImplementedError

    def prepare_batch(
        self,
        relations: "OpRelations",
        dataflows: Sequence[Dataflow],
        pe_array: PEArray,
    ) -> BatchStampProvider | None:
        """Optionally precompute stamps for a whole batch of candidates.

        Returning ``None`` means the engine evaluates candidate by candidate
        through :meth:`stamps` (the interpreted behaviour).
        """
        return None

    # -- spacetime-content memoisation -------------------------------------------

    def spacetime_report(self, dataflow, pe_lin, t_rank):
        """A finished report for this exact (PE, time-rank) map, or ``None``.

        Structurally distinct candidates can assign identical spacetime
        stamps; backends that fingerprint the stamp *content* (see
        :class:`repro.core.backends.fused.FusedBackend`) replay the finished
        report instead of recounting.  The default keeps no such memo.
        """
        return None

    def spacetime_remember(self, dataflow, pe_lin, t_rank, report) -> None:
        """Record a finished report for :meth:`spacetime_report` lookups."""

    # -- utilization -------------------------------------------------------------

    def utilization(
        self, pe_lin: np.ndarray, t_rank: np.ndarray, num_pes: int
    ):
        """Utilization metrics over cached relations, or ``None`` to use the
        reference :func:`repro.core.utilization.compute_utilization`.

        The default is the dense-histogram kernel of the PR 1 engine; the
        compiled backends add an injective shortcut on top.
        """
        from repro.core.engine import _utilization_dense

        return _utilization_dense(pe_lin, t_rank, num_pes)

    # -- volume kernels ---------------------------------------------------------

    def volume_metrics(
        self,
        tensor: str,
        dataflow: Dataflow,
        pe_lin: np.ndarray,
        t_rank: np.ndarray,
        relations: "OpRelations",
        *,
        assume_unique: bool,
        rank_span: int | None = None,
    ) -> VolumeMetrics | None:
        """Exact Table II metrics, or ``None`` to use the reference kernel.

        ``rank_span`` optionally forwards the (already computed) number of
        distinct time ranks so kernels skip re-deriving ``t_rank.max()``.
        """
        raise NotImplementedError

    def volume_metrics_many(
        self,
        tensors: Sequence[str],
        dataflow: Dataflow,
        pe_lin: np.ndarray,
        t_rank: np.ndarray,
        relations: "OpRelations",
        *,
        assume_unique: bool,
        rank_span: int | None = None,
    ) -> dict[str, VolumeMetrics | None]:
        """Volume metrics for several tensors of one candidate.

        The default evaluates tensors one by one; backends may override to
        batch (the compiled backends run the per-tensor kernels — pure numpy
        whose heavy ops release the GIL — on a shared thread pool).
        """
        return {
            tensor: self.volume_metrics(
                tensor,
                dataflow,
                pe_lin,
                t_rank,
                relations,
                assume_unique=assume_unique,
                rank_span=rank_span,
            )
            for tensor in tensors
        }


class InterpBackend(EngineBackend):
    """The PR 1 hot path: interpreted stamp expressions, group-major kernel.

    Stamps go through :meth:`RelationMaterializer.stamps` (one
    ``AffExpr.evaluate_vec`` tree walk per expression per candidate) and
    volumes through the group-major sort/adjacency kernel.  This backend is
    the baseline the compiled backends are benchmarked against.
    """

    name = "interp"

    def stamps(self, relations, dataflow, pe_array):
        return self.engine.materializer.stamps(relations, dataflow, pe_array)

    def volume_metrics(
        self, tensor, dataflow, pe_lin, t_rank, relations, *, assume_unique,
        rank_span=None,
    ):
        from repro.core.engine import _grouped_volume_metrics

        metrics = _grouped_volume_metrics(
            tensor,
            pe_lin,
            t_rank,
            relations.tensors[tensor],
            self.engine._predecessor_table,
            self.engine.arch.pe_array.size,
            spatial_interval=self.engine._spacetime.spatial_interval,
            temporal_interval=self.engine.temporal_interval,
            assume_unique=assume_unique,
        )
        return metrics
