"""Dense bit-set temporal-membership kernel for small operations.

For small ops the (group, time-rank) occupancy of a tensor is dense enough
that membership tests are cheaper as bit operations than as sorted-array
probes: occupancy is packed into ``np.uint64`` words (one bit per time rank,
one row per dense (PE, element) group) and the group-major sort/adjacency
passes become word-wide shifts and ANDs:

* *temporal* reuse of pair ``(g, r)`` is bit ``r`` of ``B[g] & (B[g] << ti)``,
* *spatial* reuse gathers the precomputed source-group row per interconnect
  slot and shifts it by the spatial interval,
* every count is a ``popcount`` (``np.bitwise_count``).

The kernel supports arbitrary temporal intervals (the sort-based kernels are
limited to an adjacency window) but requires an injective dataflow — the
occupancy words are built with an exact float64 ``bincount`` scatter, which
needs each (group, rank) bit to be set at most once per reference.  Counts
are bit-identical to the reference kernel whenever the kernel applies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.volumes import VolumeMetrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.backends.affine import GroupLayout

#: Hard cap on packed occupancy words (64 MiB) for ``mode="always"``.
_MAX_WORDS = 1 << 23

#: Scatter weights: bit value of each rank-within-word, split into two
#: float64-exact 32-bit halves (float64 cannot hold 1 << 63 exactly).
_LUT_LO = np.array([float(1 << b) if b < 32 else 0.0 for b in range(64)])
_LUT_HI = np.array([float(1 << (b - 32)) if b >= 32 else 0.0 for b in range(64)])


def _shift_ranks(words: np.ndarray, interval: int, width: int) -> np.ndarray:
    """Shift every row's occupancy bits from rank ``r`` to rank ``r + interval``."""
    out = np.zeros_like(words)
    word_shift, bit_shift = divmod(interval, 64)
    if word_shift >= width:
        return out
    if bit_shift == 0:
        out[:, word_shift:] = words[:, : width - word_shift]
    else:
        out[:, word_shift:] = words[:, : width - word_shift] << np.uint64(bit_shift)
        out[:, word_shift + 1 :] |= words[:, : width - word_shift - 1] >> np.uint64(
            64 - bit_shift
        )
    return out


if hasattr(np, "bitwise_count"):  # NumPy >= 2.0

    def _popcount(words: np.ndarray) -> int:
        return int(np.bitwise_count(words).sum())

else:  # pragma: no cover - exercised only on NumPy 1.x
    _POPCOUNT_LUT = np.array([bin(v).count("1") for v in range(256)], dtype=np.uint16)

    def _popcount(words: np.ndarray) -> int:
        return int(_POPCOUNT_LUT[np.ascontiguousarray(words).view(np.uint8)].sum())


def bitset_volume_metrics(
    tensor: str,
    layout: "GroupLayout",
    t_rank: np.ndarray,
    *,
    spatial_interval: int,
    temporal_interval: int,
    footprint: int,
    assume_unique: bool,
    mode: str = "auto",
    rank_span: int | None = None,
) -> VolumeMetrics | None:
    """Exact Table II metrics via packed occupancy words, or ``None``.

    ``mode="auto"`` engages in the two regimes where bit operations beat the
    sort-based kernels: temporal intervals beyond their adjacency window
    (``> 8``, where the only alternative is the chunked reference kernel) and
    occupancies several times denser than the pair array (small ops).
    ``mode="always"`` engages whenever the kernel is exact and the occupancy
    fits :data:`_MAX_WORDS`.
    """
    if not assume_unique:
        return None
    if temporal_interval < 1:
        return None
    length = t_rank.size
    if length == 0:
        return None
    if rank_span is None:
        rank_span = int(t_rank.max()) + 1
    width = (rank_span + 63) >> 6
    group_count = layout.group_count
    words_needed = (group_count + 1) * width
    pairs = layout.dense_orig.size
    if words_needed > _MAX_WORDS:
        return None
    if mode != "always":
        if temporal_interval > 8:
            if words_needed > max(4 * pairs, 1 << 16):
                return None
        elif words_needed * 4 > pairs:
            return None

    word_hi = t_rank >> 6
    weights_lo = _LUT_LO[t_rank & 63]
    weights_hi = _LUT_HI[t_rank & 63]
    flat: np.ndarray | None = None
    for reference in range(layout.references):
        dense = layout.dense_orig[reference * length : (reference + 1) * length]
        word_index = dense * width + word_hi
        low = np.bincount(word_index, weights=weights_lo, minlength=words_needed)
        high = np.bincount(word_index, weights=weights_hi, minlength=words_needed)
        words = low.astype(np.uint64) | (high.astype(np.uint64) << np.uint64(32))
        flat = words if flat is None else flat | words
    occupancy = flat.reshape(group_count + 1, width)

    total = _popcount(occupancy)
    temporal = occupancy & _shift_ranks(occupancy, temporal_interval, width)
    temporal_count = _popcount(temporal)

    spatial_any: np.ndarray | None = None
    for src_rows in layout.slot_src_group:
        source = occupancy[src_rows]  # sentinel row group_count is all-zero
        if spatial_interval:
            source = _shift_ranks(source, spatial_interval, width)
        spatial_any = source if spatial_any is None else spatial_any | source
    if spatial_any is None:
        spatial_count = 0
        reuse = temporal_count
    else:
        spatial = occupancy[:group_count] & spatial_any
        spatial_count = _popcount(spatial & ~temporal[:group_count])
        reuse = _popcount(spatial | temporal[:group_count])

    return VolumeMetrics(
        tensor=tensor,
        total=total,
        reuse=reuse,
        temporal_reuse=temporal_count,
        spatial_reuse=spatial_count,
        footprint=footprint,
    )
