"""Batch-fused evaluation: stacked stamp matmuls, windowed volume kernels and
spacetime-content memoisation.

The affine backend already compiles stamp expressions to coefficient rows and
caches the candidate-invariant (PE, element) group layout per space signature.
Three further sources of redundancy remain in a sweep batch, and this backend
removes them:

* **Stacked stamps** — the affine provider evaluates compiled rows in small
  windows (one matmul per ~8M matrix cells).  The fused provider stacks the
  deduplicated coefficient rows of *every* candidate in the batch into one
  coefficient matrix and evaluates the whole cached domain chunk with a single
  float64-exact BLAS matmul; per-candidate stamp columns are row views of the
  fused result.
* **Windowed volume kernels** — for layouts with *uniform* group blocks (every
  dense (PE, element) group holds the same number of pairs, the common case
  for the paper's operators), the group-major sort degenerates to one segmented
  sort of the ``(groups, m)`` rank matrix, and spatial membership for
  constant-offset interconnect slots becomes ``2m - 1`` shifted *slice*
  comparisons — no ``searchsorted``, no per-pair gathers.  Slots that share a
  source offset share one membership pass.  Everything else falls back to the
  affine kernels, so counts stay bit-identical.
* **Spacetime memoisation** — structurally distinct candidates frequently
  assign *identical* (PE, time-rank) columns (skewed variants of one family
  often collapse onto the same rank order).  The engine memo cannot see that
  (it keys on the expression signature), so the fused backend fingerprints the
  rank column per space signature and replays the finished report — verified
  by exact array comparison, never by hash alone — for candidates whose
  spacetime map was already evaluated.

All three are pure performance transformations: reports are bit-identical to
``interp``/``affine``/``bitset`` across the backend test matrix.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.backends.affine import (
    AffineBackend,
    GroupLayout,
    _AffineBatchStamps,
    _evict_lru,
)
from repro.core.volumes import VolumeMetrics
from repro.core.xp import ArrayNamespace, NumpyNamespace

#: Kernel-level default: the host namespace, so the module stays importable
#: and exact without an engine (unit tests drive the kernel directly).
_HOST = NumpyNamespace()

#: One fused stamp matmul may produce up to this many result cells before the
#: provider splits the batch into several stacked evaluations.  The budget
#: covers a standard sweep batch in one window (a few hundred deduplicated
#: rows over a paper-scale chunk) while keeping the transient float64 result
#: and its int64 conversion near ~128 MB each.
_FUSED_MATMUL_CELLS = 16_000_000

#: Windowed membership is used when the shifted-slice pass (2m - 1 comparisons)
#: is cheaper than a searchsorted probe; beyond this block size it is not.
_WINDOW_MAX_BLOCK = 16


# -- fused layout ------------------------------------------------------------------


@dataclass
class FusedSlot:
    """One interconnect slot, classified for the fused kernel."""

    #: Constant dense-group offset shared by every valid pair, or ``None``.
    delta_const: int | None
    #: Per-pair dense-group offset in group-sorted order (int32).
    delta: np.ndarray
    #: Per-pair validity (source group exists) in group-sorted order.
    valid: np.ndarray
    #: Host-precomputed ``valid.any()`` so slot skipping never syncs a device.
    valid_any: bool = True


@dataclass
class _DeviceLayout:
    """The candidate-invariant layout arrays on one namespace's device.

    On the host namespace these *are* the :class:`GroupLayout` arrays (no
    copies); on a device namespace they are uploaded once per layout and stay
    resident across batches, so per-candidate volume counting only moves the
    rank column.
    """

    #: Gather index over the rank column (int64 on device namespaces, whose
    #: indexing requires it; the original int32 ``perm_mod`` on the host).
    perm: Any
    #: Dense group id per pair, group-sorted (int32).
    dense: Any
    #: Per-slot validity masks (bool) and dense-group offsets (int32).
    slot_valid: list[Any]
    slot_delta: list[Any]


class FusedLayout:
    """Candidate-invariant extras the fused volume kernel needs per tensor.

    Built once per :class:`GroupLayout` (itself cached per space signature),
    so the uniformity check and the slot classification never run per
    candidate.  ``usable`` is ``False`` when the layout breaks one of the
    kernel's assumptions (ragged blocks, collapsed references); callers then
    chain to the affine kernels.
    """

    def __init__(self, layout: GroupLayout):
        self.layout = layout
        pairs = int(layout.dense_sorted.size)
        groups = layout.group_count
        self.pairs = pairs
        self.block = pairs // groups if groups else 0
        self.usable = (
            layout.references == 1
            and groups > 0
            and self.block > 0
            and groups * self.block == pairs
            # Uniform blocks: every group holds exactly ``block`` pairs, so the
            # group of the pair at sorted position p is p // block.
            and bool(
                np.array_equal(
                    layout.dense_sorted,
                    np.arange(pairs, dtype=np.int64) // self.block,
                )
            )
        )
        self.slots: list[FusedSlot] = []
        if self.usable:
            for delta_const, delta, valid in zip(
                layout.slot_delta_const, layout.slot_delta, layout.slot_valid
            ):
                self.slots.append(
                    FusedSlot(delta_const, delta, valid, bool(valid.any()))
                )
        #: Resident per-namespace device copies, keyed ``name:device``.
        self._device: dict[str, _DeviceLayout] = {}

    def device_arrays(self, xp: ArrayNamespace, on_transfer=None) -> _DeviceLayout:
        """The layout arrays on ``xp``'s device, uploaded once and kept."""
        if xp.is_numpy:
            key = "numpy"
        else:
            key = f"{xp.name}:{xp.device}"
        bundle = self._device.get(key)
        if bundle is None:
            layout = self.layout
            if xp.is_numpy:
                bundle = _DeviceLayout(
                    perm=layout.perm_mod,
                    dense=layout.dense_sorted,
                    slot_valid=[slot.valid for slot in self.slots],
                    slot_delta=[slot.delta for slot in self.slots],
                )
            else:
                started = time.perf_counter()
                bundle = _DeviceLayout(
                    perm=xp.asarray(layout.perm_mod, "int64"),
                    dense=xp.asarray(layout.dense_sorted),
                    slot_valid=[xp.asarray(slot.valid) for slot in self.slots],
                    slot_delta=[xp.asarray(slot.delta) for slot in self.slots],
                )
                if on_transfer is not None:
                    on_transfer(time.perf_counter() - started)
            self._device[key] = bundle
        return bundle


def fused_group_volume_metrics(
    tensor: str,
    fused: FusedLayout,
    t_rank: np.ndarray,
    *,
    spatial_interval: int,
    temporal_interval: int,
    footprint: int,
    rank_span: int,
    rank32: np.ndarray,
    xp: ArrayNamespace | None = None,
    rank_wide: Any = None,
    rank_narrow: Any = None,
    on_transfer=None,
) -> VolumeMetrics | None:
    """Exact Table II metrics via segmented sorts and shifted-slice windows.

    Requires a usable :class:`FusedLayout` (uniform blocks, one reference) and
    an injective candidate (unique (stamp, element) pairs); the caller
    guarantees both.  Returns ``None`` when the temporal interval is outside
    the adjacency window or keys would overflow — the affine kernels then take
    over, exactly as they do for each other.

    One codepath for every array namespace: on the host namespace the
    operations below bind directly to numpy, and the integer-only arithmetic
    makes device results bit-identical once copied back.  ``rank_wide`` /
    ``rank_narrow`` optionally pass the rank column already on ``xp``'s device
    (the backend caches that upload per candidate); otherwise the host arrays
    are uploaded here.
    """
    ti = temporal_interval
    if ti < 1 or ti > 8:
        return None
    if xp is None:
        xp = _HOST
    n = fused.pairs
    m = fused.block
    groups = fused.layout.group_count
    span = int(rank_span)
    if n == 0 or span <= 0:
        return None
    # Probe values reach +-(2 * groups * span); keep them exactly representable.
    if 2 * (groups + 1) * span >= (1 << 62):
        return None
    narrow = 2 * (groups + 1) * span < (1 << 31)

    dev = fused.device_arrays(xp, on_transfer)
    if rank_wide is None or rank_narrow is None:
        rank_wide, rank_narrow = t_rank, rank32
        if not xp.is_numpy:
            started = time.perf_counter()
            rank_wide = xp.asarray(t_rank)
            rank_narrow = xp.asarray(rank32)
            if on_transfer is not None:
                on_transfer(time.perf_counter() - started)

    # Segmented sort: ranks per pair in group-sorted order, then each group's
    # block sorted independently.  Within-block sorting never moves a pair
    # across blocks, so the per-pair slot metadata stays aligned.  The int32
    # rank copy is only exact while the span fits; huge-span ops take the
    # int64 path end to end.
    rank_source = rank_narrow if narrow else rank_wide
    ranks = xp.take(rank_source, dev.perm).reshape(groups, m)
    ranks = xp.sort2d(ranks).ravel()
    if narrow:
        keys = dev.dense * xp.int_scalar(span, True)
        keys += ranks
    else:
        keys = xp.astype(dev.dense, "int64") * span
        keys += ranks

    # Temporal reuse: (g, r - ti) can only sit within ti positions back in the
    # block; a value match implies the same group because 0 <= r - ti < span.
    temporal = xp.zeros(n, "bool")
    if ti == 1:
        temporal[1:] = keys[:-1] == keys[1:] - 1
    else:
        for back in range(1, ti + 1):
            temporal[back:] |= keys[:-back] == keys[back:] - ti
    temporal &= ranks >= ti
    temporal_count = xp.count_nonzero(temporal)

    spatial_count = 0
    if temporal_count < n and fused.slots:
        si = spatial_interval
        rank_ok = ranks >= si if si else None
        spatial = xp.zeros(n, "bool")
        window_masks: dict[int, Any] = {}
        for slot_index, slot in enumerate(fused.slots):
            if not slot.valid_any:
                continue
            slot_valid = dev.slot_valid[slot_index]
            if slot.delta_const is not None and m <= _WINDOW_MAX_BLOCK:
                # Constant source offset: the matching position, if any, lies
                # within one block of p + delta * m, so membership is 2m - 1
                # shifted slice comparisons.  Slots sharing an offset share
                # the pass.
                delta = slot.delta_const
                hits = window_masks.get(delta)
                if hits is None:
                    shift = delta * span - si
                    probes = keys + xp.int_scalar(shift, narrow)
                    hits = xp.zeros(n, "bool")
                    centre = delta * m
                    for w in range(centre - m + 1, centre + m):
                        if w >= 0:
                            if w == 0:
                                hits |= keys == probes
                            elif w < n:
                                hits[: n - w] |= keys[w:] == probes[: n - w]
                        elif -w < n:
                            hits[-w:] |= keys[:w] == probes[-w:]
                    if rank_ok is not None:
                        hits &= rank_ok
                    window_masks[delta] = hits
                spatial |= hits & slot_valid
            else:
                # Per-pair source offsets: probe only the pairs that still
                # need an answer (valid, rank-guarded, no temporal reuse).
                needed = slot_valid & ~temporal & ~spatial
                if rank_ok is not None:
                    needed &= rank_ok
                index = xp.flatnonzero(needed)
                if not len(index):
                    continue
                if slot.delta_const is not None:
                    shift = slot.delta_const * span - si
                    probes = keys[index] + xp.int_scalar(shift, narrow)
                else:
                    delta = dev.slot_delta[slot_index][index]
                    if narrow:
                        probes = keys[index] + (
                            delta * xp.int_scalar(span, True)
                            - xp.int_scalar(si, True)
                        )
                    else:
                        probes = keys[index] + (
                            xp.astype(delta, "int64") * span - si
                        )
                positions = xp.searchsorted(keys, probes)
                hits = xp.take_clip(keys, positions) == probes
                spatial[index[hits]] = True
        spatial_count = xp.count_nonzero(spatial & ~temporal)

    return VolumeMetrics(
        tensor=tensor,
        total=n,
        reuse=temporal_count + spatial_count,
        temporal_reuse=temporal_count,
        spatial_reuse=spatial_count,
        footprint=footprint,
    )


# -- spacetime-content memo --------------------------------------------------------


class SpacetimeMemo:
    """Report memo keyed by the *content* of a candidate's spacetime map.

    Two candidates with the same PE column and the same time-rank column
    produce identical reports, whatever their expressions look like.  Entries
    are keyed by (PE signature, a strided fingerprint of the rank column) and
    verified with an exact full-array comparison before a stored report is
    replayed, so a fingerprint collision can never corrupt a result.
    """

    def __init__(self, max_entries: int = 128, max_bytes: int = 128 << 20):
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[tuple, list[tuple[np.ndarray, object]]] = OrderedDict()

    @staticmethod
    def _fingerprint(t_rank: np.ndarray) -> tuple:
        stride = max(1, t_rank.size // 1024)
        digest = hashlib.blake2b(t_rank[::stride].tobytes(), digest_size=16).digest()
        return (t_rank.size, digest)

    def _key(self, pe_signature: tuple, t_rank: np.ndarray) -> tuple:
        return (pe_signature, *self._fingerprint(t_rank))

    def lookup(self, pe_signature: tuple, t_rank: np.ndarray):
        bucket = self._entries.get(self._key(pe_signature, t_rank))
        if bucket is None:
            return None
        for stored, report in bucket:
            if np.array_equal(stored, t_rank):
                self._entries.move_to_end(self._key(pe_signature, t_rank))
                return report
        return None

    def remember(self, pe_signature: tuple, t_rank: np.ndarray, report) -> None:
        key = self._key(pe_signature, t_rank)
        bucket = self._entries.setdefault(key, [])
        bucket.append((t_rank, report))
        self._entries.move_to_end(key)
        _evict_lru(
            self._entries,
            self.max_entries,
            self.max_bytes,
            lambda entries: sum(array.nbytes for array, _ in entries),
        )

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._entries.values())


# -- stacked stamp provider --------------------------------------------------------


class _FusedBatchStamps(_AffineBatchStamps):
    """The affine provider with the whole batch stacked into one matmul.

    The affine provider bounds transient stamp memory to ~8M matrix cells per
    window, which re-enters the BLAS call many times per batch.  The fused
    provider raises the budget so a standard sweep batch evaluates every
    deduplicated compiled row in a single ``coeffs @ chunk.T`` product;
    per-candidate stamp columns are row views of that one result.
    """

    def __init__(self, backend, relations, dataflows, pe_array):
        super().__init__(backend, relations, dataflows, pe_array)
        self._rows_per_window = max(
            self._rows_per_window,
            _FUSED_MATMUL_CELLS // max(1, relations.total),
        )


# -- the backend -------------------------------------------------------------------


class FusedBackend(AffineBackend):
    """Batch-fused stamps and volumes on top of the affine backend.

    ``bitset_mode`` is forwarded unchanged: ``auto`` keeps the packed-word
    kernel for the regimes where it wins (wide temporal intervals, small dense
    ops), and the fused kernel slots in *above* the compiled grouped kernel in
    the fallback chain: fused -> (bitset) -> compiled -> grouped -> reference.
    """

    name = "fused"

    def __init__(self, engine, *, bitset_mode: str = "never"):
        super().__init__(engine, bitset_mode=bitset_mode)
        self._fused_layouts: OrderedDict[int, FusedLayout] = OrderedDict()
        self._rank_device: tuple[int, Any, Any] | None = None
        self.spacetime_memo = SpacetimeMemo()

    # -- stamps -----------------------------------------------------------------

    def prepare_batch(self, relations, dataflows, pe_array):
        return _FusedBatchStamps(self, relations, dataflows, pe_array)

    def stamps(self, relations, dataflow, pe_array):
        return _FusedBatchStamps(self, relations, [dataflow], pe_array).stamps_for(0)

    # -- spacetime memo ---------------------------------------------------------

    def spacetime_report(self, dataflow, pe_lin, t_rank):
        """A finished report for this exact spacetime map, or ``None``."""
        if self.engine.should_validate:
            # Validation notes mention the candidate name; replaying them for
            # another candidate would be wrong, so skip the memo entirely.
            return None
        return self.spacetime_memo.lookup(self.pe_signature(dataflow), t_rank)

    def spacetime_remember(self, dataflow, pe_lin, t_rank, report) -> None:
        if self.engine.should_validate:
            return
        self.spacetime_memo.remember(self.pe_signature(dataflow), t_rank, report)

    # -- volumes ----------------------------------------------------------------

    def _fused_layout(self, layout: GroupLayout | None) -> FusedLayout | None:
        if layout is None:
            return None
        key = id(layout)
        fused = self._fused_layouts.get(key)
        if fused is None or fused.layout is not layout:
            fused = FusedLayout(layout)
            self._fused_layouts[key] = fused
            while len(self._fused_layouts) > self._LAYOUT_ENTRIES:
                self._fused_layouts.popitem(last=False)
        else:
            self._fused_layouts.move_to_end(key)
        return fused

    def _rank_device_for(self, t_rank, rank32):
        """The candidate's rank column on the engine's device, uploaded once.

        Keyed by array identity like ``_rank32_for``: every tensor of a
        candidate shares one ``t_rank``, so per-tensor kernel calls reuse a
        single upload.  The lazy assignment is a benign race under the volume
        thread pool — worst case two threads upload the same column.
        """
        xp = self.engine.xp
        memo = self._rank_device
        key = id(t_rank)
        if memo is not None and memo[0] == key:
            return memo[1], memo[2]
        started = time.perf_counter()
        wide = xp.asarray(t_rank)
        narrow = xp.asarray(rank32)
        self._add_transfer_seconds(time.perf_counter() - started)
        self._rank_device = (key, wide, narrow)
        return wide, narrow

    def _volume_sorted(
        self, tensor, layout, t_rank, relations, assume_unique, rank_span, rank32,
    ):
        # Inserted between the bit-set try (owned by AffineBackend._volume_one,
        # in exactly one place) and the compiled grouped kernel.
        if assume_unique:
            fused = self._fused_layout(layout)
            if fused is not None and fused.usable:
                engine = self.engine
                span = rank_span if rank_span is not None else int(t_rank.max()) + 1
                narrow32 = rank32 if rank32 is not None else t_rank.astype(np.int32)
                xp = engine.xp
                rank_wide = rank_narrow = None
                if not xp.is_numpy:
                    rank_wide, rank_narrow = self._rank_device_for(t_rank, narrow32)
                metrics = fused_group_volume_metrics(
                    tensor,
                    fused,
                    t_rank,
                    spatial_interval=engine._spacetime.spatial_interval,
                    temporal_interval=engine.temporal_interval,
                    footprint=relations.tensors[tensor].footprint,
                    rank_span=span,
                    rank32=narrow32,
                    xp=xp,
                    rank_wide=rank_wide,
                    rank_narrow=rank_narrow,
                    on_transfer=self._add_transfer_seconds,
                )
                if metrics is not None:
                    return metrics, "fused_path"
        return super()._volume_sorted(
            tensor, layout, t_rank, relations, assume_unique, rank_span, rank32
        )
