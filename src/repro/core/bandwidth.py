"""Bandwidth requirements (Section V-B, Equations 9 and 10).

Two bandwidths are reported per tensor and in aggregate:

* **Interconnection bandwidth (IBW)** — data forwarded between PEs:
  ``SpatialReuseVolume / Delay_compute``.
* **Scratchpad bandwidth (SBW)** — data moved between the PE array and the
  scratchpad: ``UniqueVolume / Delay_compute``.

Both are computed in words per cycle and can be converted to bits per cycle
with the memory hierarchy's word size (the unit used in Figures 6 and 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.volumes import VolumeMetrics


@dataclass(frozen=True)
class TensorBandwidth:
    """IBW / SBW requirement of a single tensor (words per cycle)."""

    tensor: str
    interconnect_words_per_cycle: float
    scratchpad_words_per_cycle: float

    def interconnect_bits_per_cycle(self, word_bits: int) -> float:
        return self.interconnect_words_per_cycle * word_bits

    def scratchpad_bits_per_cycle(self, word_bits: int) -> float:
        return self.scratchpad_words_per_cycle * word_bits


@dataclass(frozen=True)
class BandwidthReport:
    """Per-tensor and aggregate bandwidth requirements."""

    per_tensor: dict[str, TensorBandwidth] = field(default_factory=dict)

    @property
    def total_interconnect_words_per_cycle(self) -> float:
        return sum(entry.interconnect_words_per_cycle for entry in self.per_tensor.values())

    @property
    def total_scratchpad_words_per_cycle(self) -> float:
        return sum(entry.scratchpad_words_per_cycle for entry in self.per_tensor.values())

    def total_interconnect_bits_per_cycle(self, word_bits: int) -> float:
        return self.total_interconnect_words_per_cycle * word_bits

    def total_scratchpad_bits_per_cycle(self, word_bits: int) -> float:
        return self.total_scratchpad_words_per_cycle * word_bits

    def __getitem__(self, tensor: str) -> TensorBandwidth:
        return self.per_tensor[tensor]

    def as_dict(self) -> dict[str, dict[str, float]]:
        return {
            name: {
                "ibw_words_per_cycle": entry.interconnect_words_per_cycle,
                "sbw_words_per_cycle": entry.scratchpad_words_per_cycle,
            }
            for name, entry in self.per_tensor.items()
        }


def compute_bandwidth(
    volumes: Mapping[str, VolumeMetrics],
    compute_delay_cycles: float,
) -> BandwidthReport:
    """IBW and SBW per tensor, normalised to the computation delay."""
    per_tensor: dict[str, TensorBandwidth] = {}
    delay = max(float(compute_delay_cycles), 1.0)
    for name, volume in volumes.items():
        per_tensor[name] = TensorBandwidth(
            tensor=name,
            interconnect_words_per_cycle=volume.spatial_reuse / delay,
            scratchpad_words_per_cycle=volume.unique / delay,
        )
    return BandwidthReport(per_tensor=per_tensor)
