"""Dataflow relations (Definition 1).

A dataflow assigns every loop instance ``S[n]`` a *space-stamp* ``PE[p]`` (the
PE that executes it) and a *time-stamp* ``T[t]`` (its position in the PE's
execution sequence, ordered lexicographically)::

    Theta_{S,D} = { S[n] -> (PE[p] | T[t]) }

Both stamps are quasi-affine functions of the loop iterators, which is what
makes the notation strictly more expressive than compute- and data-centric
notations: skewed stamps such as ``T[i + j + k]`` or packed stamps such as
``PE[ry + 3*(c mod 4)]`` are ordinary expressions here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import DataflowError, SpaceError
from repro.isl.enumeration import chunk_length
from repro.isl.expr import AffExpr
from repro.isl.imap import IntMap
from repro.isl.parser import parse_expr, parse_map
from repro.isl.space import Space
from repro.arch.pe_array import PEArray
from repro.tensor.operation import TensorOp


@dataclass
class DataflowValidation:
    """Result of checking a dataflow against an operation and a PE array."""

    is_valid: bool
    num_instances: int
    num_spacetime_stamps: int
    max_instances_per_stamp: int
    out_of_range_instances: int
    messages: list[str] = field(default_factory=list)

    @property
    def is_injective(self) -> bool:
        """True when no two loop instances collide on the same (PE, T) stamp."""
        return self.max_instances_per_stamp <= 1


class Dataflow:
    """A named pair of space-stamp and time-stamp maps."""

    def __init__(self, name: str, space_map: IntMap, time_map: IntMap):
        if not space_map.is_functional or not time_map.is_functional:
            raise DataflowError("space and time maps of a dataflow must be functional")
        if space_map.in_space.dims != time_map.in_space.dims:
            raise DataflowError(
                f"space map iterates over {space_map.in_space} but time map over "
                f"{time_map.in_space}"
            )
        self.name = name
        self.space_map = space_map
        self.time_map = time_map

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_strings(cls, name: str, space_text: str, time_text: str) -> "Dataflow":
        """Build a dataflow from two ISL-like strings (the Table III form)."""
        space_map = parse_map(space_text)
        time_map = parse_map(time_text)
        if not isinstance(space_map, IntMap) or not isinstance(time_map, IntMap):
            raise DataflowError("dataflow maps must be single-piece functional relations")
        return cls(name, space_map, time_map)

    @classmethod
    def from_exprs(
        cls,
        name: str,
        iteration_space: Space | TensorOp,
        pe_exprs: Sequence[AffExpr | int | str],
        time_exprs: Sequence[AffExpr | int | str],
    ) -> "Dataflow":
        """Build a dataflow from expressions (strings are parsed)."""
        if isinstance(iteration_space, TensorOp):
            space = iteration_space.domain.space
        else:
            space = iteration_space
        pe_list = [parse_expr(e) if isinstance(e, str) else e for e in pe_exprs]
        time_list = [parse_expr(e) if isinstance(e, str) else e for e in time_exprs]
        space_map = IntMap.from_exprs(space, "PE", pe_list)
        time_map = IntMap.from_exprs(space, "T", time_list)
        return cls(name, space_map, time_map)

    # -- structural queries ------------------------------------------------------

    @property
    def iteration_dims(self) -> tuple[str, ...]:
        return self.space_map.in_space.dims

    @property
    def pe_rank(self) -> int:
        """Dimensionality of the space-stamp."""
        return self.space_map.out_space.rank

    @property
    def time_rank(self) -> int:
        """Dimensionality of the time-stamp."""
        return self.time_map.out_space.rank

    @property
    def pe_exprs(self) -> tuple[AffExpr, ...]:
        return self.space_map.out_exprs

    @property
    def time_exprs(self) -> tuple[AffExpr, ...]:
        return self.time_map.out_exprs

    @property
    def is_affine(self) -> bool:
        """True when every stamp expression is purely affine (no floor/mod/abs).

        Purely affine dataflows compile to a single coefficient matrix; quasi
        terms need derived columns or the interpreter (see
        :mod:`repro.core.backends.affine`).
        """
        return all(e.is_affine for e in self.pe_exprs + self.time_exprs)

    def stamp_rows(
        self, dims: Sequence[str] | None = None
    ) -> tuple[list[tuple[tuple[int, ...], int] | None], list[tuple[tuple[int, ...], int] | None]]:
        """Affine coefficient rows of the stamp expressions over ``dims``.

        Introspection/debugging view of the dataflow as an integer matrix:
        ``(pe_rows, time_rows)`` where each entry is ``(coefficients,
        constant)`` for a purely affine expression and ``None`` for one with
        quasi terms.  The compiled backends lower expressions through
        :meth:`AffExpr.linear_row` directly (handling quasi terms as derived
        columns); this method mirrors that per-expression view for callers.
        ``dims`` defaults to the iteration dimensions.
        """
        dims = tuple(dims) if dims is not None else self.iteration_dims
        def row(expr: AffExpr):
            return expr.linear_row(dims) if expr.is_affine else None
        return [row(e) for e in self.pe_exprs], [row(e) for e in self.time_exprs]

    def bind(self, op: TensorOp) -> "Dataflow":
        """Return a copy whose maps are restricted to the operation's domain."""
        if self.iteration_dims != op.domain.space.dims:
            raise SpaceError(
                f"dataflow {self.name!r} iterates over {self.iteration_dims} but the "
                f"operation over {op.domain.space.dims}"
            )
        return Dataflow(
            self.name,
            self.space_map.intersect_domain(op.domain),
            self.time_map.intersect_domain(op.domain),
        )

    # -- evaluation ----------------------------------------------------------------

    def stamps_for_chunk(
        self, chunk: Mapping[str, np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised (space-stamp, time-stamp) coordinates for a chunk of instances."""
        pe = self.space_map.image_array(chunk)
        time = self.time_map.image_array(chunk)
        return pe, time

    def stamp_of(self, instance: Sequence[int]) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Spacetime stamp of a single loop instance."""
        pe = self.space_map.apply_point(tuple(instance)).coords
        time = self.time_map.apply_point(tuple(instance)).coords
        return pe, time

    def time_bounds(self, op: TensorOp) -> list[tuple[int, int]]:
        """Inclusive interval of every time-stamp dimension over the operation's domain."""
        inclusive = {
            dim: (lo, hi - 1) for dim, (lo, hi) in op.domain.derived_bounds().items()
        }
        return [expr.bounds(inclusive) for expr in self.time_exprs]

    def pe_bounds(self, op: TensorOp) -> list[tuple[int, int]]:
        """Inclusive interval of every space-stamp dimension over the operation's domain."""
        inclusive = {
            dim: (lo, hi - 1) for dim, (lo, hi) in op.domain.derived_bounds().items()
        }
        return [expr.bounds(inclusive) for expr in self.pe_exprs]

    # -- validation -------------------------------------------------------------------

    def validate(
        self,
        op: TensorOp,
        pe_array: PEArray,
        chunk_size: int = 1 << 20,
    ) -> DataflowValidation:
        """Check the dataflow against an operation and a PE array.

        Verifies that every instance lands on a physical PE and reports how
        many instances collide on the same spacetime stamp (a collision means
        the PE would need more than one MAC per cycle).
        """
        messages: list[str] = []
        if self.iteration_dims != op.domain.space.dims:
            return DataflowValidation(
                False, 0, 0, 0, 0,
                [f"iteration dims {self.iteration_dims} do not match operation "
                 f"{op.domain.space.dims}"],
            )
        if self.pe_rank != pe_array.rank:
            messages.append(
                f"space-stamp rank {self.pe_rank} does not match PE array rank "
                f"{pe_array.rank}"
            )
            return DataflowValidation(False, 0, 0, 0, 0, messages)

        time_bounds = self.time_bounds(op)
        time_extents = [hi - lo + 1 for lo, hi in time_bounds]
        time_lows = [lo for lo, _ in time_bounds]

        num_instances = 0
        out_of_range = 0
        stamp_keys: list[np.ndarray] = []
        for chunk in op.domain.chunks(chunk_size):
            length = chunk_length(chunk)
            num_instances += length
            pe, time = self.stamps_for_chunk(chunk)
            in_range = np.ones(length, dtype=bool)
            for axis, extent in enumerate(pe_array.dims):
                in_range &= (pe[:, axis] >= 0) & (pe[:, axis] < extent)
            out_of_range += int((~in_range).sum())
            pe_lin = np.zeros(length, dtype=np.int64)
            for axis, extent in enumerate(pe_array.dims):
                pe_lin = pe_lin * extent + np.clip(pe[:, axis], 0, extent - 1)
            time_key = np.zeros(length, dtype=np.int64)
            for axis, extent in enumerate(time_extents):
                time_key = time_key * extent + (time[:, axis] - time_lows[axis])
            stamp_keys.append(time_key * pe_array.size + pe_lin)

        if num_instances == 0:
            return DataflowValidation(False, 0, 0, 0, 0, ["empty iteration domain"])

        all_keys = np.concatenate(stamp_keys)
        unique_keys, counts = np.unique(all_keys, return_counts=True)
        max_per_stamp = int(counts.max())
        if out_of_range:
            messages.append(f"{out_of_range} instances map outside the {pe_array} array")
        if max_per_stamp > 1:
            messages.append(
                f"dataflow is not injective: up to {max_per_stamp} instances share one "
                "spacetime stamp"
            )
        is_valid = out_of_range == 0
        return DataflowValidation(
            is_valid,
            num_instances,
            int(unique_keys.size),
            max_per_stamp,
            out_of_range,
            messages,
        )

    # -- formatting ----------------------------------------------------------------------

    def __str__(self) -> str:
        pe_text = ", ".join(str(e) for e in self.pe_exprs)
        time_text = ", ".join(str(e) for e in self.time_exprs)
        dims = ", ".join(self.iteration_dims)
        return f"{{ S[{dims}] -> (PE[{pe_text}] | T[{time_text}]) }}"

    def __repr__(self) -> str:
        return f"Dataflow({self.name!r}, {self})"
