"""Energy model.

Table I lists latency/energy modeling among TENET's capabilities; the energy
estimate charges the architecture's per-action energy table once per event:

* one MAC per loop instance,
* one register-file access per (stamp, element) access pair (``TotalVolume``),
* one NoC hop per spatially reused word (``SpatialReuseVolume``),
* one scratchpad access per word moved between the array and the scratchpad
  (``UniqueVolume``), and
* one DRAM access per distinct element of each tensor (its footprint), i.e.
  each tensor is streamed from/to off-chip memory once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.arch.energy import EnergyTable
from repro.core.volumes import VolumeMetrics


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per event class, in picojoules."""

    mac_pj: float
    register_pj: float
    noc_pj: float
    scratchpad_pj: float
    dram_pj: float

    @property
    def total_pj(self) -> float:
        return self.mac_pj + self.register_pj + self.noc_pj + self.scratchpad_pj + self.dram_pj

    @property
    def total_uj(self) -> float:
        return self.total_pj / 1e6

    @property
    def on_chip_pj(self) -> float:
        """Energy excluding DRAM traffic."""
        return self.mac_pj + self.register_pj + self.noc_pj + self.scratchpad_pj

    def as_dict(self) -> dict[str, float]:
        return {
            "mac_pj": self.mac_pj,
            "register_pj": self.register_pj,
            "noc_pj": self.noc_pj,
            "scratchpad_pj": self.scratchpad_pj,
            "dram_pj": self.dram_pj,
            "total_pj": self.total_pj,
        }


def compute_energy(
    mac_count: int,
    volumes: Mapping[str, VolumeMetrics],
    table: EnergyTable,
    noc_hop_distance: int = 1,
) -> EnergyBreakdown:
    """Combine volume metrics with the per-action energy table."""
    total_accesses = sum(volume.total for volume in volumes.values())
    spatial_reuse = sum(volume.spatial_reuse for volume in volumes.values())
    unique = sum(volume.unique for volume in volumes.values())
    footprint = sum(volume.footprint for volume in volumes.values())
    return EnergyBreakdown(
        mac_pj=mac_count * table.mac_pj,
        register_pj=total_accesses * table.register_access_pj,
        noc_pj=spatial_reuse * noc_hop_distance * table.noc_hop_pj,
        scratchpad_pj=unique * table.scratchpad_access_pj,
        dram_pj=footprint * table.dram_access_pj,
    )
