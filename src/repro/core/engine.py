"""Shared evaluation engine: cached relation materialisation and batched sweeps.

The paper's headline scalability claim — 25 920 CONV dataflows explored in
under an hour — rests on the observation that most of the relation machinery
is *dataflow independent*: the iteration domain, the access relations and the
element encodings depend only on the operation, while a candidate dataflow
only contributes the space-stamp and time-stamp columns.  This module turns
that observation into an architectural seam:

* :class:`RelationMaterializer` extracts relation materialisation out of the
  analyzer.  Without a cache it streams the iteration domain chunk by chunk,
  exactly like the original analyzer.  With a :class:`RelationCache` attached
  it materialises the dataflow-independent relations once per
  ``(operation, chunk_size)`` and re-evaluates only the PE/time stamps per
  candidate.
* :class:`RelationCache` is a small LRU keyed by the operation's structural
  signature, so sweeps over many operations can share one cache.
* :class:`EvaluationEngine` evaluates batches of candidate dataflows with an
  optimised (but bit-identical) metric kernel, optional process-pool
  parallelism (``jobs``), objective-aware early termination, and a report
  memo keyed by ``(operation, dataflow signature, architecture)``.

``TenetAnalyzer.analyze()`` remains the public single-candidate API; it is a
thin wrapper over the streaming materialiser and the shared metric pipeline.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.arch.pe_array import PEArray
from repro.arch.spec import ArchSpec
from repro.core.backends import make_backend
from repro.core.bandwidth import compute_bandwidth
from repro.core.dataflow import Dataflow
from repro.core.energy_model import compute_energy
from repro.core.latency import compute_latency
from repro.core.metrics import PerformanceReport
from repro.core.shm import attach_relations, share_relations
from repro.core.spacetime import SpacetimeMap
from repro.core.utilization import UtilizationMetrics, compute_utilization
from repro.core.volumes import VolumeMetrics, compute_volume_metrics
from repro.core.xp import resolve_namespace
from repro.errors import DataflowError, ExplorationError, ModelError, SpaceError
from repro.isl.enumeration import chunk_length, sorted_unique
from repro.tensor.operation import TensorOp

# -- signatures -------------------------------------------------------------------


def op_signature(op: TensorOp) -> str:
    """Structural identity of an operation (domain plus access relations)."""
    accesses = ";".join(f"{a.tensor}:{a.mode.value}:{a.relation}" for a in op.accesses)
    return f"{op.name}|{op.domain}|{accesses}"


def dataflow_signature(dataflow: Dataflow) -> str:
    """Structural identity of a dataflow: its space/time expressions, not its name.

    Two candidates with the same signature assign every loop instance the same
    spacetime stamp and therefore produce identical performance reports.  The
    signature is cached on the dataflow (its maps are immutable in practice),
    so sweeps do not re-render the expression strings per batch.
    """
    signature = getattr(dataflow, "_signature_cache", None)
    if signature is None:
        pe_text = ",".join(str(e) for e in dataflow.pe_exprs)
        time_text = ",".join(str(e) for e in dataflow.time_exprs)
        signature = f"PE[{pe_text}]|T[{time_text}]"
        dataflow._signature_cache = signature
    return signature


def arch_signature(arch: ArchSpec) -> str:
    """Identity of an architecture for report memoisation."""
    return f"{arch.describe()}|{arch.energy!r}|{arch.frequency_mhz}"


# -- dataflow-independent relations -------------------------------------------------


@dataclass
class TensorColumns:
    """Per-reference element-coordinate bounds of one tensor (shared radix)."""

    bounds: list[tuple[int, int]]

    @property
    def extent(self) -> int:
        """Exclusive upper bound of the mixed-radix element keys."""
        total = 1
        for lo, hi in self.bounds:
            total *= max(1, hi - lo + 1)
        return total

    def encode(self, coords: np.ndarray) -> np.ndarray:
        keys = np.zeros(coords.shape[0], dtype=np.int64)
        scale = 1
        for column, (lo, hi) in enumerate(self.bounds):
            extent = max(1, hi - lo + 1)
            keys += (coords[:, column] - lo) * scale
            scale *= extent
        return keys

    def encode_columns(self, columns: Sequence[np.ndarray]) -> np.ndarray:
        """Encode per-coordinate arrays without stacking them first."""
        keys: np.ndarray | None = None
        scale = 1
        for column, (lo, hi) in zip(columns, self.bounds):
            extent = max(1, hi - lo + 1)
            term = (column.astype(np.int64) - lo) * scale
            keys = term if keys is None else keys + term
            scale *= extent
        if keys is None:
            return np.zeros(0, dtype=np.int64)
        return keys


@dataclass
class TensorRelations:
    """Cached, dataflow-independent view of one tensor's access relation."""

    #: Mixed-radix element keys, one array per textual reference.
    raw_keys: list[np.ndarray]
    #: Keys of all references concatenated and densified to ``[0, footprint)``.
    dense_keys: np.ndarray
    #: Exclusive mixed-radix extent of the raw keys.
    extent: int
    #: Number of distinct elements touched (the tensor's footprint).
    footprint: int

    @property
    def references(self) -> int:
        return len(self.raw_keys)


@dataclass
class OpRelations:
    """Everything about an operation's relations that no dataflow can change."""

    signature: str
    chunk_size: int
    total: int
    #: The full iteration domain, one int64 array per loop dimension.
    domain: dict[str, np.ndarray]
    tensors: dict[str, TensorRelations]
    element_bounds: dict[str, TensorColumns]
    #: Inclusive per-dimension bounds, for time/PE expression intervals.
    inclusive_bounds: dict[str, tuple[int, int]]

    def nbytes(self) -> int:
        total = sum(a.nbytes for a in self.domain.values())
        for rel in self.tensors.values():
            total += rel.dense_keys.nbytes + sum(a.nbytes for a in rel.raw_keys)
        return total


class RelationCache:
    """LRU cache of :class:`OpRelations`, keyed by (op signature, chunk size)."""

    def __init__(
        self,
        max_entries: int = 4,
        max_instances: int = 8_000_000,
        max_bytes: int = 1 << 30,
    ):
        self.max_entries = int(max_entries)
        #: Ops with more instances than this are never cached (memory guard).
        self.max_instances = int(max_instances)
        #: Total byte budget across entries (at least one entry is kept).
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[tuple[str, int], OpRelations] = OrderedDict()
        # Engines of concurrent server threads share one cache; the lock keeps
        # the LRU bookkeeping (move_to_end / eviction scans) coherent.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple[str, int]) -> OpRelations | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
            return entry

    def put(self, key: tuple[str, int], relations: OpRelations) -> None:
        with self._lock:
            self._entries[key] = relations
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries or (
                len(self._entries) > 1
                and sum(entry.nbytes() for entry in self._entries.values())
                > self.max_bytes
            ):
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}


class RelationMaterializer:
    """Materialise the Section IV relations for one operation.

    Stateless with respect to dataflows: :meth:`materialize` accepts any
    candidate and returns the same ``(pe_lin, t_rank, element_keys,
    element_extents)`` tuple the original analyzer produced.  When a
    :class:`RelationCache` is attached, the dataflow-independent arrays are
    built once and only the stamp columns are evaluated per candidate.
    """

    def __init__(
        self,
        op: TensorOp,
        *,
        chunk_size: int = 1 << 20,
        cache: RelationCache | None = None,
    ):
        self.op = op
        self.chunk_size = int(chunk_size)
        self.cache = cache
        self._signature = op_signature(op)
        #: Memo of PE columns keyed by (pe_dims, space-expression signature):
        #: sweep families share a handful of space stamps across candidates.
        self._stamp_memo: OrderedDict[tuple, np.ndarray] = OrderedDict()

    # -- shared bounds ----------------------------------------------------------

    def inclusive_bounds(self) -> dict[str, tuple[int, int]]:
        return {
            dim: (lo, hi - 1) for dim, (lo, hi) in self.op.domain.derived_bounds().items()
        }

    def element_bounds(self) -> dict[str, TensorColumns]:
        """Shared per-coordinate bounds for every tensor (across its references)."""
        inclusive = self.inclusive_bounds()
        result: dict[str, TensorColumns] = {}
        for tensor in self.op.tensor_names:
            combined: list[tuple[int, int]] | None = None
            for access in self.op.accesses_to(tensor):
                bounds = [expr.bounds(inclusive) for expr in access.relation.out_exprs]
                if combined is None:
                    combined = bounds
                else:
                    combined = [
                        (min(a[0], b[0]), max(a[1], b[1])) for a, b in zip(combined, bounds)
                    ]
            result[tensor] = TensorColumns(combined or [])
        return result

    # -- cached relations --------------------------------------------------------

    def relations(self, max_instances: int) -> OpRelations | None:
        """Build (or fetch) the cached relations; ``None`` when uncacheable."""
        if self.cache is None:
            return None
        key = (self._signature, self.chunk_size)
        cached = self.cache.get(key)
        if cached is not None:
            if cached.total > max_instances:
                raise ModelError(
                    f"iteration domain exceeds the analyzer cap of {max_instances} "
                    "instances; scale the workload first"
                )
            return cached
        box = self.op.domain.box_size()
        if box > self.cache.max_instances:
            return None
        built = self._build_relations(min(max_instances, self.cache.max_instances))
        if built is not None:
            self.cache.put(key, built)
        return built

    def _build_relations(self, max_instances: int) -> OpRelations | None:
        element_bounds = self.element_bounds()
        dims = self.op.loop_dims
        domain_parts: dict[str, list[np.ndarray]] = {dim: [] for dim in dims}
        element_parts: dict[str, list[list[np.ndarray]]] = {
            tensor: [[] for _ in self.op.accesses_to(tensor)]
            for tensor in self.op.tensor_names
        }
        total = 0
        for chunk in self.op.domain.chunks(self.chunk_size):
            length = chunk_length(chunk)
            total += length
            if total > max_instances:
                return None
            for dim in dims:
                domain_parts[dim].append(np.asarray(chunk[dim], dtype=np.int64))
            for tensor in self.op.tensor_names:
                columns = element_bounds[tensor]
                for index, access in enumerate(self.op.accesses_to(tensor)):
                    coordinate_arrays = [
                        expr.evaluate_vec(chunk) for expr in access.relation.out_exprs
                    ]
                    element_parts[tensor][index].append(
                        columns.encode_columns(coordinate_arrays)
                    )
        if total == 0:
            raise ModelError(f"operation {self.op.name} has an empty iteration domain")

        domain = {dim: np.concatenate(parts) for dim, parts in domain_parts.items()}
        tensors: dict[str, TensorRelations] = {}
        for tensor, per_reference in element_parts.items():
            raw = [np.concatenate(parts) for parts in per_reference]
            combined = raw[0] if len(raw) == 1 else np.concatenate(raw)
            unique_elements = sorted_unique(combined)
            dense = np.searchsorted(unique_elements, combined)
            tensors[tensor] = TensorRelations(
                raw_keys=raw,
                dense_keys=dense,
                extent=element_bounds[tensor].extent,
                footprint=int(unique_elements.size),
            )
        return OpRelations(
            signature=self._signature,
            chunk_size=self.chunk_size,
            total=total,
            domain=domain,
            tensors=tensors,
            element_bounds=element_bounds,
            inclusive_bounds=self.inclusive_bounds(),
        )

    # -- stamp evaluation ---------------------------------------------------------

    def stamps(
        self,
        relations: OpRelations,
        dataflow: Dataflow,
        pe_array: PEArray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Evaluate the dataflow's (PE, time-rank) columns over cached relations."""
        chunk = relations.domain
        length = relations.total

        memo_key = (pe_array.dims, tuple(str(e) for e in dataflow.pe_exprs))
        pe_lin = self._stamp_memo.get(memo_key)
        if pe_lin is None:
            pe_lin = np.zeros(length, dtype=np.int64)
            for extent, expr in zip(pe_array.dims, dataflow.pe_exprs):
                column = expr.evaluate_vec(chunk)
                if (column < 0).any() or (column >= extent).any():
                    raise DataflowError(
                        f"dataflow {dataflow.name!r} maps instances outside the "
                        f"{pe_array} array"
                    )
                pe_lin = pe_lin * extent + column
            self._stamp_memo[memo_key] = pe_lin
            max_bytes = 256 << 20
            while len(self._stamp_memo) > 64 or (
                len(self._stamp_memo) > 1
                and sum(a.nbytes for a in self._stamp_memo.values()) > max_bytes
            ):
                self._stamp_memo.popitem(last=False)

        time_bounds = [expr.bounds(relations.inclusive_bounds) for expr in dataflow.time_exprs]
        time_key = np.zeros(length, dtype=np.int64)
        for (lo, hi), expr in zip(time_bounds, dataflow.time_exprs):
            extent = hi - lo + 1
            time_key = time_key * extent + (expr.evaluate_vec(chunk) - lo)
        return pe_lin, _rank_keys(time_key)

    # -- analyzer-compatible materialisation ---------------------------------------

    def materialize(
        self,
        dataflow: Dataflow,
        pe_array: PEArray,
        max_instances: int,
    ) -> tuple[np.ndarray, np.ndarray, dict[str, list[np.ndarray]], dict[str, int]]:
        """Evaluate dataflow and access relations over the whole iteration domain.

        Returns the exact ``(pe_lin, t_rank, element_keys, element_extents)``
        tuple of the original ``TenetAnalyzer._materialize_relations``; cached
        and streaming paths produce identical arrays.
        """
        relations = self.relations(max_instances) if self.cache is not None else None
        if relations is not None:
            pe_lin, t_rank = self.stamps(relations, dataflow, pe_array)
            element_keys = {
                tensor: list(rel.raw_keys) for tensor, rel in relations.tensors.items()
            }
            element_extents = {
                tensor: rel.extent for tensor, rel in relations.tensors.items()
            }
            return pe_lin, t_rank, element_keys, element_extents
        return self._materialize_streaming(dataflow, pe_array, max_instances)

    def _materialize_streaming(
        self,
        dataflow: Dataflow,
        pe_array: PEArray,
        max_instances: int,
    ) -> tuple[np.ndarray, np.ndarray, dict[str, list[np.ndarray]], dict[str, int]]:
        op = self.op
        pe_dims = pe_array.dims
        time_bounds = dataflow.time_bounds(op)
        time_extents = [hi - lo + 1 for lo, hi in time_bounds]
        time_lows = [lo for lo, _ in time_bounds]
        element_bounds = self.element_bounds()

        pe_parts: list[np.ndarray] = []
        time_parts: list[np.ndarray] = []
        element_parts: dict[str, list[list[np.ndarray]]] = {
            tensor: [[] for _ in op.accesses_to(tensor)]
            for tensor in op.tensor_names
        }

        total = 0
        for chunk in op.domain.chunks(self.chunk_size):
            length = chunk_length(chunk)
            total += length
            if total > max_instances:
                raise ModelError(
                    f"iteration domain exceeds the analyzer cap of {max_instances} "
                    "instances; scale the workload first"
                )

            pe_lin = np.zeros(length, dtype=np.int64)
            for extent, expr in zip(pe_dims, dataflow.pe_exprs):
                column = expr.evaluate_vec(chunk)
                if (column < 0).any() or (column >= extent).any():
                    raise DataflowError(
                        f"dataflow {dataflow.name!r} maps instances outside the "
                        f"{pe_array} array"
                    )
                pe_lin = pe_lin * extent + column
            pe_parts.append(pe_lin)

            time_key = np.zeros(length, dtype=np.int64)
            for axis, (extent, expr) in enumerate(zip(time_extents, dataflow.time_exprs)):
                time_key = time_key * extent + (expr.evaluate_vec(chunk) - time_lows[axis])
            time_parts.append(time_key)

            for tensor in op.tensor_names:
                columns = element_bounds[tensor]
                for index, access in enumerate(op.accesses_to(tensor)):
                    coordinate_arrays = [
                        expr.evaluate_vec(chunk) for expr in access.relation.out_exprs
                    ]
                    element_parts[tensor][index].append(
                        columns.encode_columns(coordinate_arrays)
                    )

        if total == 0:
            raise ModelError(f"operation {op.name} has an empty iteration domain")

        pe_lin = np.concatenate(pe_parts)
        time_keys = np.concatenate(time_parts)
        unique_times = sorted_unique(time_keys)
        t_rank = np.searchsorted(unique_times, time_keys)

        element_keys = {
            tensor: [np.concatenate(parts) for parts in per_reference]
            for tensor, per_reference in element_parts.items()
        }
        element_extents = {
            tensor: columns.extent for tensor, columns in element_bounds.items()
        }
        return pe_lin, t_rank, element_keys, element_extents


# -- fast exact helpers ---------------------------------------------------------------


def _rank_keys(keys: np.ndarray) -> np.ndarray:
    """Dense lexicographic rank of every key (``searchsorted(unique, keys)``).

    When the key range is comparable to the array length a presence bitmap and
    a cumulative sum replace the sort, which is the common case for time-stamp
    keys built from tight per-dimension bounds.
    """
    if keys.size == 0:
        return keys
    max_key = int(keys.max())
    if max_key <= max(4 * keys.size, 1 << 22):
        presence = np.zeros(max_key + 1, dtype=bool)
        presence[keys] = True
        lut = np.cumsum(presence)
        lut -= 1
        return lut[keys]
    unique_keys = sorted_unique(keys)
    return np.searchsorted(unique_keys, keys)


def _utilization_dense(
    pe_lin: np.ndarray,
    t_rank: np.ndarray,
    num_pes: int,
    injective_shortcut: bool = False,
) -> UtilizationMetrics | None:
    """Sort-free :func:`compute_utilization` via a dense (time, PE) histogram.

    Valid because ``t_rank`` is dense (every rank in ``[0, max+1)`` occurs);
    returns ``None`` when the histogram would dwarf the instance count.

    ``injective_shortcut`` (used by the compiled backends) collapses the
    per-rank reductions when every stamp holds at most one instance: every
    rank is occupied, the compute delay is the rank count, and the instances
    per rank *are* the active PEs per rank.
    """
    num_instances = int(pe_lin.size)
    if num_instances == 0:
        return None
    num_ranks = int(t_rank.max()) + 1
    if num_ranks * num_pes > max(8 * num_instances, 1 << 22):
        return None
    counts = np.bincount(t_rank * num_pes + pe_lin, minlength=num_ranks * num_pes)
    counts = counts.reshape(num_ranks, num_pes)
    if injective_shortcut and int(counts.max()) == 1:
        active_per_stamp = counts.sum(axis=1)
        return UtilizationMetrics(
            num_instances=num_instances,
            num_pes=num_pes,
            num_time_stamps=num_ranks,
            occupied_stamps=num_instances,
            compute_delay_cycles=num_ranks,
            max_active_pes=int(active_per_stamp.max()),
        )
    occupied = counts > 0
    active_per_stamp = occupied.sum(axis=1)
    return UtilizationMetrics(
        num_instances=num_instances,
        num_pes=num_pes,
        num_time_stamps=int((active_per_stamp > 0).sum()),
        occupied_stamps=int(occupied.sum()),
        compute_delay_cycles=int(counts.max(axis=1).sum()),
        max_active_pes=int(active_per_stamp.max()),
    )


# -- fast exact volume kernel ---------------------------------------------------------


def _grouped_volume_metrics(
    tensor: str,
    pe_lin: np.ndarray,
    t_rank: np.ndarray,
    relations: TensorRelations,
    predecessor_table: np.ndarray,
    num_pes: int,
    spatial_interval: int,
    temporal_interval: int,
    assume_unique: bool = False,
) -> VolumeMetrics | None:
    """Exact Table II metrics via a group-major key layout.

    Instead of the stamp-major keys of :func:`compute_volume_metrics`, pairs
    are sorted by ``((pe, element), time-rank)``.  In that layout a temporal
    predecessor (same PE, same element, ``temporal_interval`` ranks earlier)
    is at most ``temporal_interval`` positions back in the sorted array, so
    the dominant membership ``searchsorted`` degenerates to shifted equality
    tests.  Spatial membership is then only probed for pairs without temporal
    reuse, which the sweeps' best candidates make a small minority.

    Returns ``None`` when the layout would overflow int64 or the temporal
    interval is too wide for the adjacency test; callers fall back to the
    reference implementation.
    """
    if temporal_interval < 1 or temporal_interval > 8:
        return None
    max_rank = int(t_rank.max()) + 1
    footprint = relations.footprint
    if num_pes * footprint * max_rank >= (1 << 62):
        return None

    references = relations.references
    if references > 1:
        pe_lin = np.tile(pe_lin, references)
        t_rank = np.tile(t_rank, references)
    elements = relations.dense_keys

    keys = (pe_lin * footprint + elements) * max_rank + t_rank
    keys = np.sort(keys, kind="stable")
    if assume_unique and references == 1:
        # An injective dataflow assigns unique stamps, so single-reference
        # (stamp, element) pairs cannot collide.
        unique_keys = keys
    else:
        fresh = np.empty(keys.shape, dtype=bool)
        fresh[0] = True
        np.not_equal(keys[1:], keys[:-1], out=fresh[1:])
        unique_keys = keys if fresh.all() else keys[fresh]
    total = int(unique_keys.size)

    ranks = unique_keys % max_rank

    # Temporal reuse: (pe, element, rank - ti) differs from the key by exactly
    # ``ti``; any key strictly between shares the group, so it can only occupy
    # one of the ``ti`` preceding slots of the sorted unique array.
    ti = temporal_interval
    target = unique_keys - ti
    temporal_mask = np.zeros(total, dtype=bool)
    for back in range(1, ti + 1):
        np.logical_or(
            temporal_mask[back:], unique_keys[:-back] == target[back:],
            out=temporal_mask[back:],
        )
    temporal_mask &= ranks >= ti
    temporal_count = int(temporal_mask.sum())

    # Spatial reuse only matters for pairs without temporal reuse (the counts
    # of the reference kernel are ``spatial & ~temporal`` and the union).
    spatial_count = 0
    if temporal_count < total and predecessor_table.size:
        if temporal_count == 0:
            keys_p, ranks_p = unique_keys, ranks
        else:
            probe = ~temporal_mask
            keys_p = unique_keys[probe]
            ranks_p = ranks[probe]
        stride = footprint * max_rank
        pes_p = keys_p // stride
        rank_valid = ranks_p >= spatial_interval
        spatial_mask = np.zeros(keys_p.shape, dtype=bool)
        for slot in range(predecessor_table.shape[1]):
            sources = predecessor_table[pes_p, slot]
            slot_valid = rank_valid & (sources >= 0)
            if spatial_interval == 0:
                slot_valid &= sources < pes_p
            if not slot_valid.any():
                continue
            candidates = keys_p + (sources - pes_p) * stride - spatial_interval
            positions = np.minimum(np.searchsorted(unique_keys, candidates), total - 1)
            spatial_mask |= slot_valid & (unique_keys[positions] == candidates)
        spatial_count = int(spatial_mask.sum())

    return VolumeMetrics(
        tensor=tensor,
        total=total,
        reuse=temporal_count + spatial_count,
        temporal_reuse=temporal_count,
        spatial_reuse=spatial_count,
        footprint=footprint,
    )


# -- objectives and lower bounds ------------------------------------------------------

Objective = Callable[[PerformanceReport], float]

OBJECTIVES: dict[str, Objective] = {
    "latency": lambda report: report.latency_cycles,
    "energy": lambda report: report.energy.total_pj,
    "edp": lambda report: report.latency_cycles * report.energy.total_pj,
    "sbw": lambda report: report.scratchpad_bandwidth_bits(),
    "unique_volume": lambda report: float(report.unique_volume()),
}


def _latency_lower_bound(
    utilization: UtilizationMetrics, arch: ArchSpec, footprints: dict[str, int] | None
) -> float:
    # Latency is the max of compute/read/write delays, so compute alone bounds it.
    return float(utilization.compute_delay_cycles)


def _energy_lower_bound(
    utilization: UtilizationMetrics, arch: ArchSpec, footprints: dict[str, int] | None
) -> float:
    # MAC energy is volume-independent and every other term is non-negative.
    return utilization.num_instances * arch.energy.mac_pj


def _edp_lower_bound(
    utilization: UtilizationMetrics, arch: ArchSpec, footprints: dict[str, int] | None
) -> float:
    return _latency_lower_bound(utilization, arch, footprints) * _energy_lower_bound(
        utilization, arch, footprints
    )


def _unique_volume_lower_bound(
    utilization: UtilizationMetrics, arch: ArchSpec, footprints: dict[str, int] | None
) -> float:
    # Every distinct element must cross the scratchpad boundary at least once,
    # so the per-tensor footprint is a floor on its unique volume.  When the
    # interconnect has no links the engine passes the candidate's distinct
    # (PE, element) group counts instead — a tighter, candidate-dependent
    # floor (each group's first access cannot be reused from anywhere).
    if not footprints:
        return float("-inf")
    return float(sum(footprints.values()))


def _sbw_lower_bound(
    utilization: UtilizationMetrics, arch: ArchSpec, footprints: dict[str, int] | None
) -> float:
    # SBW = sum(unique volume) * word_bits / max(compute delay, 1); the unique
    # volume is bounded below by the footprint and the compute delay is already
    # exact at this point, so this bound is candidate-dependent: highly parallel
    # candidates (short delay) are pruned once a low-bandwidth one is known.
    if not footprints:
        return float("-inf")
    delay = max(float(utilization.compute_delay_cycles), 1.0)
    return sum(footprints.values()) * arch.memory.word_bits / delay


#: Sound per-objective lower bounds computable before the volume metrics.
#: ``latency``/``edp`` bound from the compute delay alone; ``sbw`` and
#: ``unique_volume`` bound from the per-tensor footprints (dataflow
#: independent, cached with the relations) — ``sbw``'s bound divides by the
#: candidate's own compute delay, so it actually discriminates candidates.
#: On link-free interconnects the engine upgrades both floors to the
#: candidate's distinct-(PE, element) group counts, which discriminate
#: candidates even at equal compute delay.
#: ``energy``'s bound would be the same for every candidate of an operation
#: (it can never exceed the best score), so it has no entry.
LOWER_BOUNDS: dict[
    str, Callable[[UtilizationMetrics, ArchSpec, dict[str, int] | None], float]
] = {
    "latency": _latency_lower_bound,
    "edp": _edp_lower_bound,
    "sbw": _sbw_lower_bound,
    "unique_volume": _unique_volume_lower_bound,
}


# -- batch outcomes -------------------------------------------------------------------


@dataclass
class CandidateOutcome:
    """Result of evaluating (or skipping) one candidate in a batch."""

    index: int
    name: str
    signature: str
    report: PerformanceReport | None = None
    error: str | None = None
    pruned: bool = False
    bound: float | None = None
    memo_hit: bool = False

    @property
    def ok(self) -> bool:
        return self.report is not None


@dataclass
class BatchResult:
    """Outcome of one :meth:`EvaluationEngine.evaluate_batch` call."""

    outcomes: list[CandidateOutcome] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def reports(self) -> list[PerformanceReport]:
        return [outcome.report for outcome in self.outcomes if outcome.report is not None]

    @property
    def failures(self) -> list[tuple[str, str]]:
        return [
            (outcome.name, outcome.error)
            for outcome in self.outcomes
            if outcome.error is not None
        ]

    @property
    def pruned(self) -> list[tuple[str, float]]:
        return [
            (outcome.name, outcome.bound)
            for outcome in self.outcomes
            if outcome.pruned
        ]


#: Minimum candidates per parallel task.  A task's dispatch cost (pickling
#: candidates, queue round-trips, shipping outcomes back) is roughly constant
#: and the fused backend stacks stamps across a task's whole slice, so tiny
#: tasks pay full freight for almost no work — the committed ``jobs=2``
#: slower-than-serial regression on 40-candidate batches.
MIN_TASK_CANDIDATES = 8


def parallel_task_chunk(count: int, jobs: int) -> int:
    """Per-task candidate count for a parallel batch.

    Targets ~4 tasks per worker for load balance, floored at
    :data:`MIN_TASK_CANDIDATES` so dispatch overhead amortises, and capped at
    an even split so the floor never leaves a worker idle on small batches.
    """
    jobs = max(1, jobs)
    balanced = -(-count // (jobs * 4))
    even_split = -(-count // jobs)
    return max(1, min(max(MIN_TASK_CANDIDATES, balanced), even_split))


class EvaluationEngine:
    """Evaluate candidate dataflows for one (operation, architecture) pair.

    The engine owns a :class:`RelationMaterializer` (optionally backed by a
    shared :class:`RelationCache`), a report memo, and the batched sweep
    logic: parallel workers, objective-aware early termination, and the
    optimised volume kernel.  Reports are bit-identical to
    :meth:`repro.core.analyzer.TenetAnalyzer.analyze` (modulo the wall-clock
    ``analysis_seconds`` field).
    """

    def __init__(
        self,
        op: TensorOp,
        arch: ArchSpec,
        *,
        max_instances: int = 32_000_000,
        chunk_size: int = 1 << 20,
        temporal_interval: int = 1,
        validate: bool = False,
        jobs: int = 1,
        cache: RelationCache | None = None,
        memoize: bool = True,
        backend: str = "auto",
        device: str = "numpy",
        tune: str | dict | bool | None = "off",
    ):
        self.op = op
        self.arch = arch
        self.max_instances = int(max_instances)
        self.chunk_size = int(chunk_size)
        self.temporal_interval = int(temporal_interval)
        self.should_validate = bool(validate)
        self.jobs = max(1, int(jobs))
        self.cache = cache if cache is not None else RelationCache()
        self.materializer = RelationMaterializer(op, chunk_size=self.chunk_size, cache=self.cache)
        self.memoize = bool(memoize)
        self._memo: dict[tuple[str, str, str], PerformanceReport] = {}
        self._memo_prefix = (op_signature(op), arch_signature(arch))
        self._spacetime = SpacetimeMap(
            arch.pe_array, arch.interconnect, temporal_interval=self.temporal_interval
        )
        self._predecessor_table = self._spacetime.predecessor_table()
        #: Whether any PE can forward data to another.  Without links there is
        #: no spatial reuse, which makes the distinct-(PE, element) group count
        #: a sound (and candidate-dependent) unique-volume floor.
        self._has_links = bool((self._predecessor_table >= 0).any())
        self._pool: ProcessPoolExecutor | None = None
        self._pool_jobs = 0
        #: Parent-owned shared-memory segment holding the cached relations for
        #: ``jobs > 1`` workers (see :mod:`repro.core.shm`); ``close()`` owns it.
        self._shared_relations = None
        self.backend_name = str(backend)
        self.device_name = str(device)
        #: The resolved array namespace every compiled kernel computes on.
        #: Resolution fails loudly (listing available namespaces) before any
        #: evaluation starts, so a missing torch/cupy is a clear capability
        #: error instead of a mid-sweep crash.
        self.xp = resolve_namespace(self.device_name)
        if not self.xp.is_numpy and self.backend_name == "interp":
            raise ExplorationError(
                "backend 'interp' evaluates on the host interpreter and does "
                f"not support device '{self.device_name}'; use a compiled "
                "backend (auto/affine/bitset/fused)"
            )
        self.backend = make_backend(self.backend_name, self)
        self.stats: dict[str, int] = {
            "evaluated": 0,
            "memo_hits": 0,
            "pruned": 0,
            "failures": 0,
            "fast_path": 0,
            "reference_path": 0,
            # Candidates evaluated without cached relations (op above the
            # cache's max_instances guard): correct but not accelerated.
            "streaming_path": 0,
            # Per-tensor kernel choices of the compiled backends.
            "compiled_path": 0,
            "bitset_path": 0,
            "fused_path": 0,
            # Candidates replayed from the fused backend's spacetime-content
            # memo (identical (PE, rank) columns under different expressions).
            "spacetime_hits": 0,
            # Stamp expressions the compiled backends handed back to the
            # interpreter (nested floor/mod/abs terms).
            "stamp_fallback_exprs": 0,
        }
        #: Wall-clock seconds per pipeline stage, for ``tenet explore
        #: --profile``: where a sweep's time actually goes (stamps vs volume
        #: counting vs ranking), aggregated across workers like ``stats``.
        self.stage_seconds: dict[str, float] = {
            "materialise": 0.0,
            "stamps": 0.0,
            "utilization": 0.0,
            "volumes": 0.0,
            "rank": 0.0,
            # Host<->device copies (uploads + result downloads) on non-numpy
            # namespaces; stays 0.0 on the host namespace.
            "transfer": 0.0,
        }
        #: Optional measurement-driven controller (:mod:`repro.core.tuning`):
        #: ``"auto"`` calibrates batch/backend/jobs on the first batches,
        #: a profile dict pins previously learned decisions, ``"off"`` keeps
        #: every knob exactly as constructed.  Tuning never changes which
        #: reports are produced — only evaluation order and speed.
        self.tuner = None
        if tune not in (None, False, "off"):
            from repro.core.tuning import AutoTuner

            if tune in (True, "auto"):
                self.tuner = AutoTuner(self)
            elif isinstance(tune, dict):
                self.tuner = AutoTuner(self, profile=tune)
            else:
                raise ExplorationError(
                    f"tune must be 'auto', 'off', or a tuning profile dict; "
                    f"got {tune!r}"
                )

    def set_backend(self, backend: str) -> None:
        """Switch the evaluation backend in place (tuner calibration races).

        Safe mid-sweep because every backend is bit-identical; only cost
        changes.  The worker pool (whose workers captured the old backend at
        initialisation) is torn down and lazily rebuilt on the next parallel
        batch.
        """
        backend = str(backend)
        if backend == self.backend_name:
            return
        if not self.xp.is_numpy and backend == "interp":
            raise ExplorationError(
                "backend 'interp' evaluates on the host interpreter and does "
                f"not support device '{self.device_name}'; use a compiled "
                "backend (auto/affine/bitset/fused)"
            )
        self.backend_name = backend
        self.backend = make_backend(backend, self)
        if self._pool is not None:
            self.close()

    def close(self) -> None:
        """Shut down the persistent worker pool and release shared memory.

        Owns the lifecycle of the relations segment: the ``/dev/shm`` entry is
        unlinked here (and, as a backstop, at interpreter exit), never by the
        workers.  A later parallel batch transparently recreates both the pool
        and the segment.
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_jobs = 0
        if self._shared_relations is not None:
            self._shared_relations.close()
            self._shared_relations = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    def cache_stats(self) -> dict[str, int]:
        """Relation-cache counters, including the aggregated worker caches."""
        stats = dict(self.cache.stats())
        stats["worker_hits"] = self.stats.get("worker_cache_hits", 0)
        stats["worker_misses"] = self.stats.get("worker_cache_misses", 0)
        return stats

    def profile(self) -> dict[str, float]:
        """Per-stage wall-clock breakdown (seconds), workers aggregated in."""
        return dict(self.stage_seconds)

    # -- single-candidate evaluation ---------------------------------------------

    def evaluate(self, dataflow: Dataflow) -> PerformanceReport:
        """Evaluate one candidate, using the memo and the relation cache."""
        report, _ = self._evaluate_memo(dataflow)
        assert isinstance(report, PerformanceReport)
        return report

    def _memo_key(self, dataflow: Dataflow) -> tuple[str, str, str]:
        op_sig, arch_sig = self._memo_prefix
        return (op_sig, dataflow_signature(dataflow), arch_sig)

    def _evaluate_memo(
        self,
        dataflow: Dataflow,
        *,
        objective: str | None = None,
        best_score: float | None = None,
        stamps: Callable[[], tuple[np.ndarray, np.ndarray]] | None = None,
    ) -> tuple[PerformanceReport | float, bool]:
        """Memoised evaluation; returns (report-or-lower-bound, memo hit)."""
        key = self._memo_key(dataflow)
        if self.memoize:
            hit = self._memo.get(key)
            if hit is not None:
                self.stats["memo_hits"] += 1
                return hit, True
        result = self._evaluate(
            dataflow, objective=objective, best_score=best_score, stamps=stamps
        )
        if isinstance(result, PerformanceReport):
            if self.memoize:
                self._memo[key] = result
            self.stats["evaluated"] += 1
        else:
            self.stats["pruned"] += 1
        return result, False

    def _evaluate(
        self,
        dataflow: Dataflow,
        *,
        objective: str | None = None,
        best_score: float | None = None,
        stamps: Callable[[], tuple[np.ndarray, np.ndarray]] | None = None,
    ) -> PerformanceReport | float:
        """Full metric pipeline; returns a lower bound instead of a report when
        the candidate provably cannot beat ``best_score`` under ``objective``.

        ``stamps`` optionally supplies precomputed (PE, time-rank) columns —
        the batched backends evaluate whole candidate windows at once and hand
        each candidate's columns in through here.
        """
        started = time.perf_counter()
        notes: list[str] = []

        box = self.op.domain.box_size()
        if box > self.max_instances:
            raise ModelError(
                f"iteration domain has up to {box} instances, above the analyzer cap of "
                f"{self.max_instances}; scale the workload (repro.workloads.scaling) or "
                "raise max_instances"
            )

        bound = dataflow.bind(self.op)
        if self.should_validate:
            validation = bound.validate(self.op, self.arch.pe_array, self.chunk_size)
            if not validation.is_valid:
                raise DataflowError(
                    f"dataflow {bound.name!r} is invalid for {self.op.name}: "
                    + "; ".join(validation.messages)
                )
            notes.extend(validation.messages)

        stage = self.stage_seconds
        mark = time.perf_counter()
        relations = self.materializer.relations(self.max_instances)
        num_pes = self.arch.pe_array.size
        now = time.perf_counter()
        stage["materialise"] += now - mark
        mark = now

        if relations is not None:
            if stamps is not None:
                pe_lin, t_rank = stamps()
            else:
                pe_lin, t_rank = self.backend.stamps(relations, bound, self.arch.pe_array)
            element_keys = None
        else:
            self.stats["streaming_path"] += 1
            pe_lin, t_rank, element_keys, element_extents = (
                self.materializer._materialize_streaming(
                    bound, self.arch.pe_array, self.max_instances
                )
            )
        now = time.perf_counter()
        stage["stamps"] += now - mark
        mark = now

        utilization = None
        if relations is not None:
            utilization = self.backend.utilization(pe_lin, t_rank, num_pes)
        if utilization is None:
            utilization = compute_utilization(pe_lin, t_rank, num_pes)
        now = time.perf_counter()
        stage["utilization"] += now - mark
        mark = now
        if not utilization.is_injective:
            notes.append(
                "dataflow is not injective: some spacetime stamps execute more than one "
                "instance (the compute delay accounts for the extra cycles)"
            )

        if objective is not None and best_score is not None:
            bound_fn = LOWER_BOUNDS.get(objective)
            if bound_fn is not None:
                floors = None
                if relations is not None:
                    if not self._has_links and objective in ("unique_volume", "sbw"):
                        # Without interconnect links the only reuse is temporal
                        # within one (PE, element) group, so every distinct
                        # group costs at least one scratchpad transfer.  This
                        # floor depends on the candidate's PE assignment, so it
                        # discriminates where the constant per-op footprint
                        # floor cannot.
                        floors = self._group_count_floors(pe_lin, relations)
                    else:
                        floors = {
                            t: rel.footprint for t, rel in relations.tensors.items()
                        }
                lower = bound_fn(utilization, self.arch, floors)
                if lower > best_score:
                    return lower

        if relations is not None and self.memoize:
            # Content-level dedup: a candidate whose (PE, rank) columns are
            # array-identical to an evaluated one has the same report by
            # construction, whatever its expressions look like.  Consulted
            # *after* the lower-bound check so early termination makes exactly
            # the pruning decisions the other backends (and a resumed sweep
            # with a cold memo) would make.
            memo_report = self.backend.spacetime_report(bound, pe_lin, t_rank)
            if memo_report is not None:
                self.stats["spacetime_hits"] += 1
                return replace(
                    memo_report,
                    dataflow=bound.name,
                    analysis_seconds=time.perf_counter() - started,
                    notes=list(memo_report.notes),
                )

        backend_metrics: dict[str, VolumeMetrics | None] = {}
        if relations is not None:
            backend_metrics = self.backend.volume_metrics_many(
                self.op.tensor_names,
                bound,
                pe_lin,
                t_rank,
                relations,
                assume_unique=utilization.is_injective,
                # Ranks are dense, so the occupied-stamp count *is* the span.
                rank_span=utilization.num_time_stamps,
            )

        volumes: dict[str, VolumeMetrics] = {}
        for tensor in self.op.tensor_names:
            metrics = backend_metrics.get(tensor)
            if metrics is not None:
                self.stats["fast_path"] += 1
            else:
                self.stats["reference_path"] += 1
                if relations is not None:
                    per_reference = relations.tensors[tensor].raw_keys
                    extent = relations.tensors[tensor].extent
                else:
                    per_reference = element_keys[tensor]
                    extent = element_extents[tensor]
                references = len(per_reference)
                if references == 1:
                    tensor_pe, tensor_rank = pe_lin, t_rank
                    tensor_elements = per_reference[0]
                else:
                    tensor_pe = np.tile(pe_lin, references)
                    tensor_rank = np.tile(t_rank, references)
                    tensor_elements = np.concatenate(per_reference)
                metrics = compute_volume_metrics(
                    tensor,
                    tensor_pe,
                    tensor_rank,
                    tensor_elements,
                    self._predecessor_table,
                    num_pes,
                    spatial_interval=self._spacetime.spatial_interval,
                    temporal_interval=self.temporal_interval,
                    chunk_size=self.chunk_size,
                    element_extent=extent,
                )
            volumes[tensor] = metrics
        now = time.perf_counter()
        stage["volumes"] += now - mark
        mark = now

        latency = compute_latency(
            utilization,
            volumes,
            self.op.input_tensors,
            self.op.output_tensors,
            self.arch.memory,
        )
        bandwidth = compute_bandwidth(volumes, utilization.compute_delay_cycles)
        energy = compute_energy(
            utilization.num_instances,
            volumes,
            self.arch.energy,
            noc_hop_distance=self.arch.interconnect.hop_distance,
        )

        elapsed = time.perf_counter() - started
        report = PerformanceReport(
            operation=self.op.name,
            dataflow=bound.name,
            architecture=self.arch.name,
            volumes=volumes,
            utilization=utilization,
            latency=latency,
            bandwidth=bandwidth,
            energy=energy,
            word_bits=self.arch.memory.word_bits,
            peak_macs_per_cycle=self.arch.peak_macs_per_cycle,
            analysis_seconds=elapsed,
            notes=notes,
        )
        if relations is not None and self.memoize:
            self.backend.spacetime_remember(bound, pe_lin, t_rank, report)
        stage["rank"] += time.perf_counter() - mark
        return report

    def _group_count_floors(
        self, pe_lin: np.ndarray, relations: OpRelations
    ) -> dict[str, int]:
        """Per-tensor distinct-(PE, element) group counts for one candidate.

        A sound unique-volume floor when the interconnect has no links: each
        group's first access cannot be reused temporally (same group only) or
        spatially (no links), so it must cross the scratchpad boundary.  The
        count needs only a sort over the combined keys — cheaper than the full
        volume kernel whose adjacency and spatial probes it lets the sweep
        skip.
        """
        floors: dict[str, int] = {}
        for tensor, rel in relations.tensors.items():
            if rel.references == 1:
                pe_column = pe_lin
            else:
                pe_column = np.tile(pe_lin, rel.references)
            keys = pe_column * rel.footprint + rel.dense_keys
            floors[tensor] = int(np.unique(keys).size)
        return floors

    # -- batched evaluation -------------------------------------------------------

    def evaluate_batch(
        self,
        dataflows: Iterable[Dataflow],
        *,
        objective: str | None = None,
        early_termination: bool = False,
        jobs: int | None = None,
        best_score: float | None = None,
    ) -> BatchResult:
        """Evaluate a batch of candidates and return per-candidate outcomes.

        ``objective`` (a name from :data:`OBJECTIVES`) enables objective-aware
        early termination: when a candidate's partial lower bound already
        exceeds the best fully evaluated score, the remaining metric
        computation is skipped and the candidate is reported as pruned.
        ``best_score`` seeds that running best, so streaming callers (one
        :class:`repro.sweep.SweepSession` batch after another) make exactly
        the pruning decisions a single whole-space batch would have made.
        Candidate order is preserved in the returned outcomes.
        """
        candidates = list(dataflows)
        if objective is not None and objective not in OBJECTIVES:
            raise ExplorationError(
                f"unknown objective {objective!r}; available: {sorted(OBJECTIVES)}"
            )
        started = time.perf_counter()
        jobs = self.jobs if jobs is None else max(1, int(jobs))
        if self.tuner is not None and candidates:
            # Calibration races and backend/jobs decisions: the tuner may
            # switch the (bit-identical) backend or force a serial batch, so
            # the measurement/decision happens before dispatch.
            self.tuner.tune_engine(self, len(candidates))
            jobs = self.tuner.effective_jobs(
                jobs, len(candidates), pool_warm=self._pool is not None
            )
        parallel = jobs > 1 and len(candidates) > 1
        if parallel:
            outcomes = self._evaluate_parallel(
                candidates, jobs, objective=objective,
                early_termination=early_termination, best_score=best_score,
            )
        else:
            outcomes = self._evaluate_serial(
                candidates, objective=objective,
                early_termination=early_termination, best_score=best_score,
            )
        seconds = time.perf_counter() - started
        if self.tuner is not None and candidates:
            self.tuner.observe_batch(
                outcomes,
                seconds,
                backend=self.backend_name,
                jobs=jobs if parallel else 1,
            )
        return BatchResult(outcomes=outcomes, seconds=seconds)

    def _prepare_batch_stamps(
        self, candidates: Sequence[Dataflow]
    ) -> tuple[object | None, dict[int, int]]:
        """Hand the batch to the backend for whole-batch stamp evaluation.

        Memoised candidates are excluded, so the backend only compiles and
        evaluates stamps that will actually be consumed.  Returns the provider
        (or ``None``) plus a map from batch index to provider slot.
        """
        try:
            relations = self.materializer.relations(self.max_instances)
        except ModelError:
            relations = None  # per-candidate evaluation reports the error
        if relations is None:
            return None, {}
        slots: dict[int, int] = {}
        pending: list[Dataflow] = []
        for index, dataflow in enumerate(candidates):
            if self.memoize and self._memo_key(dataflow) in self._memo:
                continue
            slots[index] = len(pending)
            pending.append(dataflow)
        if not pending:
            return None, {}
        provider = self.backend.prepare_batch(relations, pending, self.arch.pe_array)
        return provider, slots if provider is not None else {}

    def _evaluate_serial(
        self,
        candidates: Sequence[Dataflow],
        *,
        objective: str | None,
        early_termination: bool,
        best_score: float | None = None,
    ) -> list[CandidateOutcome]:
        score_fn = OBJECTIVES.get(objective) if objective else None
        outcomes: list[CandidateOutcome] = []
        provider, provider_slots = self._prepare_batch_stamps(candidates)
        for index, dataflow in enumerate(candidates):
            signature = dataflow_signature(dataflow)
            outcome = CandidateOutcome(index=index, name=dataflow.name, signature=signature)
            slot = provider_slots.get(index)
            stamps = (
                (lambda s=slot: provider.stamps_for(s))
                if provider is not None and slot is not None
                else None
            )
            try:
                result, outcome.memo_hit = self._evaluate_memo(
                    dataflow,
                    objective=objective if early_termination else None,
                    best_score=best_score if early_termination else None,
                    stamps=stamps,
                )
                if isinstance(result, PerformanceReport):
                    outcome.report = result
                else:
                    outcome.pruned = True
                    outcome.bound = float(result)
            except (ModelError, DataflowError, SpaceError) as error:
                # Repro modelling errors mark the candidate invalid; anything
                # else (TypeError, KeyboardInterrupt, ...) is a real bug and
                # propagates.
                self.stats["failures"] += 1
                outcome.error = f"{type(error).__name__}: {error}"
            if outcome.report is not None and score_fn is not None:
                score = score_fn(outcome.report)
                if best_score is None or score < best_score:
                    best_score = score
            outcomes.append(outcome)
        return outcomes

    def _evaluate_parallel(
        self,
        candidates: Sequence[Dataflow],
        jobs: int,
        *,
        objective: str | None,
        early_termination: bool,
        best_score: float | None = None,
    ) -> list[CandidateOutcome]:
        # The operation, architecture and engine parameters travel once per
        # worker (pool initializer), not once per task: each worker builds one
        # engine, materialises the relations a single time, and then receives
        # only candidate lists.  Several tasks per worker keep the load
        # balanced without re-shipping anything heavy.  The pool itself
        # persists across batches (streaming sweeps call this repeatedly), so
        # later batches reuse warm workers; ``close()`` tears it down.
        chunk = parallel_task_chunk(len(candidates), jobs)
        tasks = [
            list(range(start, min(start + chunk, len(candidates))))
            for start in range(0, len(candidates), chunk)
        ]
        outcomes: list[CandidateOutcome | None] = [None] * len(candidates)
        pool = self._ensure_pool(jobs)
        try:
            futures = [
                pool.submit(
                    _sweep_worker_run,
                    [candidates[i] for i in indices],
                    indices,
                    objective,
                    early_termination,
                    best_score,
                )
                for indices in tasks
            ]
            results = [future.result() for future in futures]
        except BrokenProcessPool:
            # A crashed worker kills this batch (as it always did), but must
            # not poison the engine: drop the pool so the next batch rebuilds.
            self.close()
            raise
        for worker_outcomes, worker_stats, worker_cache, worker_stages in results:
            for outcome in worker_outcomes:
                outcomes[outcome.index] = outcome
            for key, value in worker_stats.items():
                self.stats[key] = self.stats.get(key, 0) + value
            self.stats["worker_cache_hits"] = (
                self.stats.get("worker_cache_hits", 0) + worker_cache["hits"]
            )
            self.stats["worker_cache_misses"] = (
                self.stats.get("worker_cache_misses", 0) + worker_cache["misses"]
            )
            for key, value in worker_stages.items():
                self.stage_seconds[key] = self.stage_seconds.get(key, 0.0) + value
        return [outcome for outcome in outcomes if outcome is not None]

    def _shared_descriptor(self):
        """Share the cached relations for zero-copy worker mapping.

        Built lazily (and rebuilt after ``close()``): the candidate-invariant
        arrays travel through one ``/dev/shm`` segment instead of being
        re-materialised privately by every worker.  ``None`` when the op is
        uncacheable or shared memory is unavailable — workers then fall back
        to materialising their own copy, exactly as before.
        """
        if self._shared_relations is not None and self._shared_relations.alive:
            return self._shared_relations.descriptor
        try:
            relations = self.materializer.relations(self.max_instances)
        except ModelError:
            relations = None  # per-candidate evaluation reports the error
        if relations is None:
            return None
        # None when shared memory is unavailable or /dev/shm cannot hold the
        # arrays — workers then materialise privately, as before this seam.
        self._shared_relations = share_relations(relations)
        if self._shared_relations is None:
            return None
        return self._shared_relations.descriptor

    def _ensure_pool(self, jobs: int) -> ProcessPoolExecutor:
        """The persistent worker pool, (re)built when the job count changes
        or a worker crash broke the executor (a broken pool would otherwise
        poison every later batch of a long-lived engine)."""
        if self._pool is not None and (
            self._pool_jobs != jobs or getattr(self._pool, "_broken", False)
        ):
            self.close()
        if self._pool is None:
            payload_params = {
                "max_instances": self.max_instances,
                "chunk_size": self.chunk_size,
                "temporal_interval": self.temporal_interval,
                "validate": self.should_validate,
                "backend": self.backend_name,
                "device": self.device_name,
                "memoize": self.memoize,
            }
            self._pool = ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_sweep_worker_init,
                initargs=(self.op, self.arch, payload_params, self._shared_descriptor()),
            )
            self._pool_jobs = jobs
        return self._pool


#: Per-process engine of the sweep workers, built once by the pool initializer
#: so the operation and its materialised relations are shipped/built once per
#: worker instead of once per task.
_WORKER_ENGINE: "EvaluationEngine | None" = None
_WORKER_SNAPSHOT: tuple[dict[str, int], dict[str, int], dict[str, float]] | None = None


def _sweep_worker_init(
    op: TensorOp, arch: ArchSpec, params: dict, shared=None
) -> None:
    global _WORKER_ENGINE, _WORKER_SNAPSHOT
    _WORKER_ENGINE = EvaluationEngine(op, arch, jobs=1, **params)
    if shared is not None:
        # Map the parent's relation arrays zero-copy instead of enumerating
        # the iteration domain again; the first relations() call below then
        # hits the worker cache.
        relations = attach_relations(shared)
        if relations is not None:
            _WORKER_ENGINE.cache.put(
                (relations.signature, relations.chunk_size), relations
            )
    _WORKER_SNAPSHOT = (
        dict(_WORKER_ENGINE.stats),
        dict(_WORKER_ENGINE.cache.stats()),
        dict(_WORKER_ENGINE.stage_seconds),
    )


def _sweep_worker_run(
    candidates: list[Dataflow],
    indices: list[int],
    objective: str | None,
    early_termination: bool,
    best_score: float | None = None,
) -> tuple[list[CandidateOutcome], dict[str, int], dict[str, int], dict[str, float]]:
    """Evaluate one task's candidates on the worker's persistent engine.

    Returns the outcomes plus the engine's stat, relation-cache and
    stage-timing *deltas* since the previous task, so the parent can aggregate
    counters across workers without double counting.
    """
    global _WORKER_SNAPSHOT
    engine = _WORKER_ENGINE
    outcomes = engine._evaluate_serial(
        candidates, objective=objective, early_termination=early_termination,
        best_score=best_score,
    )
    for outcome, index in zip(outcomes, indices):
        outcome.index = index
    previous_stats, previous_cache, previous_stages = _WORKER_SNAPSHOT
    stats = {key: value - previous_stats.get(key, 0) for key, value in engine.stats.items()}
    cache = {
        key: value - previous_cache.get(key, 0) for key, value in engine.cache.stats().items()
    }
    stages = {
        key: value - previous_stages.get(key, 0.0)
        for key, value in engine.stage_seconds.items()
    }
    _WORKER_SNAPSHOT = (
        dict(engine.stats), dict(engine.cache.stats()), dict(engine.stage_seconds)
    )
    return outcomes, stats, cache, stages
