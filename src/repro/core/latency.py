"""Latency model (Section V-B, Equations 7 and 8).

Buffers, network and arithmetic are assumed to be pipelined with double
buffering, so communication overlaps computation and the dataflow latency is
the maximum of three delays:

* ``Delay_compute`` — cycles needed by the PE array itself (Equation 8), which
  the utilization walk provides directly.
* ``Delay_read``    — ``UniqueVolume`` of all *input* tensors divided by the
  scratchpad bandwidth (Equation 7).
* ``Delay_write``   — ``UniqueVolume`` of all *output* tensors divided by the
  scratchpad bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.arch.memory import MemoryHierarchy
from repro.core.utilization import UtilizationMetrics
from repro.core.volumes import VolumeMetrics


@dataclass(frozen=True)
class LatencyBreakdown:
    """The three delays and the resulting dataflow latency (cycles)."""

    compute_delay: float
    read_delay: float
    write_delay: float
    read_volume_words: int
    write_volume_words: int

    @property
    def latency(self) -> float:
        """Overall latency: max of the pipelined delays."""
        return max(self.compute_delay, self.read_delay, self.write_delay)

    @property
    def bottleneck(self) -> str:
        """Which delay dominates ("compute", "read" or "write")."""
        delays = {
            "compute": self.compute_delay,
            "read": self.read_delay,
            "write": self.write_delay,
        }
        return max(delays, key=delays.get)

    @property
    def is_compute_bound(self) -> bool:
        return self.bottleneck == "compute"

    @property
    def is_memory_bound(self) -> bool:
        return not self.is_compute_bound

    def as_dict(self) -> dict[str, float]:
        return {
            "compute_delay": self.compute_delay,
            "read_delay": self.read_delay,
            "write_delay": self.write_delay,
            "latency": self.latency,
            "bottleneck": self.bottleneck,
        }


def compute_latency(
    utilization: UtilizationMetrics,
    volumes: Mapping[str, VolumeMetrics],
    input_tensors: Sequence[str],
    output_tensors: Sequence[str],
    memory: MemoryHierarchy,
) -> LatencyBreakdown:
    """Combine the compute delay with the scratchpad transfer delays.

    The scratchpad bandwidth is specified in bits per cycle (the x-axis of
    Figure 6); volumes are word counts, so the division uses the hierarchy's
    word size.
    """
    words_per_cycle = memory.scratchpad_words_per_cycle
    read_words = sum(volumes[name].unique for name in input_tensors if name in volumes)
    write_words = sum(volumes[name].unique for name in output_tensors if name in volumes)
    read_delay = read_words / words_per_cycle if words_per_cycle else float("inf")
    write_delay = write_words / words_per_cycle if words_per_cycle else float("inf")
    return LatencyBreakdown(
        compute_delay=float(utilization.compute_delay_cycles),
        read_delay=read_delay,
        write_delay=write_delay,
        read_volume_words=read_words,
        write_volume_words=write_words,
    )
