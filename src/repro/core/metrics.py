"""Aggregated performance report returned by the analyzer."""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.core.bandwidth import BandwidthReport
from repro.core.energy_model import EnergyBreakdown
from repro.core.latency import LatencyBreakdown
from repro.core.utilization import UtilizationMetrics
from repro.core.volumes import VolumeMetrics


@dataclass
class PerformanceReport:
    """Every metric TENET derives for one (operation, dataflow, architecture) triple."""

    operation: str
    dataflow: str
    architecture: str
    volumes: dict[str, VolumeMetrics]
    utilization: UtilizationMetrics
    latency: LatencyBreakdown
    bandwidth: BandwidthReport
    energy: EnergyBreakdown
    word_bits: int = 16
    peak_macs_per_cycle: int = 1
    analysis_seconds: float = 0.0
    notes: list[str] = field(default_factory=list)

    # -- headline numbers -------------------------------------------------------

    @property
    def latency_cycles(self) -> float:
        return self.latency.latency

    @property
    def macs(self) -> int:
        return self.utilization.num_instances

    @property
    def ideal_latency_cycles(self) -> float:
        """Latency at 100% utilization and unlimited bandwidth (Figure 7's baseline)."""
        return self.macs / self.peak_macs_per_cycle if self.peak_macs_per_cycle else 0.0

    @property
    def normalized_latency(self) -> float:
        """Latency normalised to the ideal latency (>= 1.0 for a single-MAC PE)."""
        ideal = self.ideal_latency_cycles
        return self.latency_cycles / ideal if ideal else 0.0

    @property
    def macs_per_cycle(self) -> float:
        return self.macs / self.latency_cycles if self.latency_cycles else 0.0

    @property
    def average_pe_utilization(self) -> float:
        return self.utilization.average_utilization

    @property
    def max_pe_utilization(self) -> float:
        return self.utilization.max_utilization

    def reuse_factor(self, tensor: str) -> float:
        return self.volumes[tensor].reuse_factor

    def unique_volume(self, tensor: str | None = None) -> int:
        if tensor is not None:
            return self.volumes[tensor].unique
        return sum(volume.unique for volume in self.volumes.values())

    def scratchpad_bandwidth_bits(self) -> float:
        """Total SBW requirement in bits per cycle."""
        return self.bandwidth.total_scratchpad_bits_per_cycle(self.word_bits)

    def interconnect_bandwidth_bits(self) -> float:
        """Total IBW requirement in bits per cycle."""
        return self.bandwidth.total_interconnect_bits_per_cycle(self.word_bits)

    # -- serialisation -------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "operation": self.operation,
            "dataflow": self.dataflow,
            "architecture": self.architecture,
            "latency_cycles": self.latency_cycles,
            "normalized_latency": self.normalized_latency,
            "bottleneck": self.latency.bottleneck,
            "average_pe_utilization": self.average_pe_utilization,
            "max_pe_utilization": self.max_pe_utilization,
            "macs": self.macs,
            "volumes": {name: volume.as_dict() for name, volume in self.volumes.items()},
            "bandwidth": self.bandwidth.as_dict(),
            "energy": self.energy.as_dict(),
            "analysis_seconds": self.analysis_seconds,
        }

    def summary(self) -> str:
        """Compact multi-line text summary (used by the CLI and examples)."""
        lines = [
            f"operation      : {self.operation}",
            f"dataflow       : {self.dataflow}",
            f"architecture   : {self.architecture}",
            f"MACs           : {self.macs}",
            f"latency        : {self.latency_cycles:.0f} cycles "
            f"({self.latency.bottleneck}-bound, ideal {self.ideal_latency_cycles:.0f})",
            f"PE utilization : avg {self.average_pe_utilization:.1%}, "
            f"max {self.max_pe_utilization:.1%}",
            f"SBW / IBW      : {self.scratchpad_bandwidth_bits():.1f} / "
            f"{self.interconnect_bandwidth_bits():.1f} bit/cycle",
            f"energy         : {self.energy.total_pj / 1e6:.3f} uJ",
        ]
        for name, volume in self.volumes.items():
            lines.append(f"  {volume}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.summary()
