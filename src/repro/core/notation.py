"""Dataflow naming helpers.

The evaluation names dataflows after the dimensions appearing in the
space-stamp and in the (innermost two) time-stamp dimensions, e.g.
``(IJ-P | J,IJK-T)`` for ``{S[i,j,k] -> PE[i%8, j%8]}``,
``{S[i,j,k] -> T[fl(i/8), fl(j/8), i%8+j%8+k]}`` (Table III).  These helpers
format and parse that shorthand so reports can use the same labels as the
paper.
"""

from __future__ import annotations

import re
from typing import Sequence

from repro.errors import ParseError


def dataflow_shorthand(space_groups: Sequence[str], time_groups: Sequence[str]) -> str:
    """Format a Table III style name.

    ``space_groups`` lists the loop dimensions mapped to each PE-array axis;
    ``time_groups`` lists the dimensions of the innermost time-stamp axes
    (outermost first).  Dimension names are upper-cased, and dimensions fused
    by an affine transformation are simply concatenated, as in the paper.
    """
    space_text = "".join(group.upper() for group in space_groups)
    time_text = ",".join(group.upper() for group in time_groups)
    return f"({space_text}-P | {time_text}-T)"


_SHORTHAND_RE = re.compile(
    r"^\(\s*(?P<space>[A-Za-z]+)\s*-\s*P\s*\|\s*(?P<time>[A-Za-z,\s]+?)\s*-\s*T\s*\)$"
)


def parse_shorthand_name(name: str) -> tuple[str, tuple[str, ...]]:
    """Parse ``"(IJ-P | J,IJK-T)"`` into ``("IJ", ("J", "IJK"))``."""
    match = _SHORTHAND_RE.match(name.strip())
    if not match:
        raise ParseError(f"cannot parse dataflow shorthand {name!r}")
    space = match.group("space").strip().upper()
    time_groups = tuple(
        group.strip().upper() for group in match.group("time").split(",") if group.strip()
    )
    return space, time_groups


def shorthand_matches(name: str, space: str, time_groups: Sequence[str]) -> bool:
    """Check whether a shorthand name corresponds to the given groups."""
    parsed_space, parsed_time = parse_shorthand_name(name)
    return parsed_space == space.upper() and parsed_time == tuple(g.upper() for g in time_groups)
