"""Zero-copy sharing of cached relations across sweep worker processes.

``jobs > 1`` sweeps ship the operation to every worker once (the pool
initializer), but each worker then *re-materialises* the candidate-invariant
relation arrays — the iteration domain, the per-reference element keys and the
densified footprints — privately.  For paper-scale operations that is both
startup latency (each worker redoes the same enumeration) and N copies of
read-only data.

This module moves those arrays into one :class:`multiprocessing.shared_memory.
SharedMemory` segment owned by the parent engine:

* :func:`share_relations` packs every array of an :class:`~repro.core.engine.
  OpRelations` into a single segment and returns a picklable
  :class:`SharedRelationsDescriptor` (segment name + array table + the scalar
  fields).
* :func:`attach_relations` rebuilds the ``OpRelations`` in a worker with every
  array a *read-only view* into the mapped segment — no copies, regardless of
  how many workers attach.
* :class:`SharedRelations` owns the segment lifecycle on the parent side:
  ``close()`` unlinks it, and a module-level ``atexit`` registry unlinks any
  segment that is still alive at interpreter exit, so a sweep that never calls
  :meth:`EvaluationEngine.close` does not leak ``/dev/shm`` entries.

Workers unregister their attachment from the ``resource_tracker`` (attaching
registers a second owner on CPython < 3.13, which would double-unlink and spam
warnings at exit); the parent remains the single owner.
"""

from __future__ import annotations

import atexit
import weakref
from dataclasses import dataclass, field

import numpy as np

try:  # pragma: no cover - absent on exotic platforms; sweeps degrade gracefully
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None


def shared_memory_available() -> bool:
    return _shared_memory is not None


@dataclass(frozen=True)
class _ArraySpec:
    """Location of one array inside the shared segment."""

    offset: int
    dtype: str
    shape: tuple[int, ...]


@dataclass
class SharedRelationsDescriptor:
    """Everything a worker needs to rebuild ``OpRelations`` zero-copy.

    The descriptor is small and picklable: the segment name, one
    :class:`_ArraySpec` per array, and the relations' scalar fields verbatim.
    """

    segment: str
    signature: str
    chunk_size: int
    total: int
    domain: dict[str, _ArraySpec] = field(default_factory=dict)
    #: tensor -> (raw key specs, dense key spec, extent, footprint)
    tensors: dict[str, tuple[list[_ArraySpec], _ArraySpec, int, int]] = field(
        default_factory=dict
    )
    element_bounds: dict[str, list[tuple[int, int]]] = field(default_factory=dict)
    inclusive_bounds: dict[str, tuple[int, int]] = field(default_factory=dict)


#: Parent-side segments still alive, unlinked at interpreter exit.
_LIVE_SEGMENTS: "weakref.WeakSet[SharedRelations]" = weakref.WeakSet()


def _cleanup_live_segments() -> None:  # pragma: no cover - exercised via subprocess
    for shared in list(_LIVE_SEGMENTS):
        shared.close()


atexit.register(_cleanup_live_segments)


class SharedRelations:
    """Parent-side owner of one shared relations segment."""

    def __init__(self, shm, descriptor: SharedRelationsDescriptor):
        self._shm = shm
        self.descriptor = descriptor
        _LIVE_SEGMENTS.add(self)

    @property
    def name(self) -> str:
        return self.descriptor.segment

    @property
    def nbytes(self) -> int:
        return self._shm.size if self._shm is not None else 0

    def close(self) -> None:
        """Unlink the segment (idempotent; workers keep their mappings)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - already gone
            pass

    @property
    def alive(self) -> bool:
        return self._shm is not None

    def __del__(self):  # pragma: no cover - best-effort backstop
        try:
            self.close()
        except Exception:
            pass


def _aligned(offset: int, alignment: int = 64) -> int:
    return (offset + alignment - 1) & ~(alignment - 1)


def share_relations(relations) -> SharedRelations | None:
    """Copy an ``OpRelations``'s arrays into one shared segment.

    Returns ``None`` when shared memory is unavailable on the platform; the
    sweep then falls back to per-worker materialisation.
    """
    if _shared_memory is None:  # pragma: no cover
        return None

    arrays: list[np.ndarray] = []
    specs: list[_ArraySpec] = []
    offset = 0

    def register(array: np.ndarray) -> _ArraySpec:
        nonlocal offset
        array = np.ascontiguousarray(array)
        offset = _aligned(offset)
        spec = _ArraySpec(offset=offset, dtype=array.dtype.str, shape=array.shape)
        arrays.append(array)
        specs.append(spec)
        offset += array.nbytes
        return spec

    descriptor = SharedRelationsDescriptor(
        segment="",
        signature=relations.signature,
        chunk_size=relations.chunk_size,
        total=relations.total,
        element_bounds={
            tensor: list(columns.bounds)
            for tensor, columns in relations.element_bounds.items()
        },
        inclusive_bounds=dict(relations.inclusive_bounds),
    )
    for dim, array in relations.domain.items():
        descriptor.domain[dim] = register(array)
    for tensor, rel in relations.tensors.items():
        raw_specs = [register(array) for array in rel.raw_keys]
        dense_spec = register(rel.dense_keys)
        descriptor.tensors[tensor] = (raw_specs, dense_spec, rel.extent, rel.footprint)

    try:
        shm = _shared_memory.SharedMemory(create=True, size=max(1, offset))
    except OSError:
        # /dev/shm too small (containers often cap it at 64 MB) or exhausted:
        # degrade to per-worker materialisation instead of failing the sweep.
        return None
    descriptor.segment = shm.name
    try:
        for array, spec in zip(arrays, specs):
            view = np.ndarray(
                spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
            )
            view[...] = array
    except OSError:  # pragma: no cover - overcommitted tmpfs surfacing late
        shm.close()
        try:
            shm.unlink()
        except OSError:
            pass
        return None
    return SharedRelations(shm, descriptor)


#: Worker-side mapped segments, keyed by name, kept alive while views exist.
_ATTACHED: dict[str, object] = {}


def attach_relations(descriptor: SharedRelationsDescriptor):
    """Rebuild ``OpRelations`` from a shared segment with zero-copy views.

    Returns ``None`` when the segment cannot be mapped (already unlinked, or
    shared memory unavailable); the worker then materialises privately.
    """
    if _shared_memory is None:  # pragma: no cover
        return None
    from repro.core.engine import OpRelations, TensorColumns, TensorRelations

    shm = _ATTACHED.get(descriptor.segment)
    if shm is None:
        try:
            # ``track=False`` (CPython >= 3.13) keeps the attachment out of
            # the resource tracker entirely: the parent is the only owner.
            # Earlier interpreters register the attachment too, which is
            # harmless under fork (the shared tracker's registry is a set and
            # the parent's unlink clears the name once).
            try:
                shm = _shared_memory.SharedMemory(name=descriptor.segment, track=False)
            except TypeError:  # pragma: no cover - Python < 3.13
                shm = _shared_memory.SharedMemory(name=descriptor.segment)
        except (FileNotFoundError, OSError):
            return None
        _ATTACHED[descriptor.segment] = shm

    def view(spec: _ArraySpec) -> np.ndarray:
        array = np.ndarray(spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset)
        array.flags.writeable = False
        return array

    domain = {dim: view(spec) for dim, spec in descriptor.domain.items()}
    tensors = {}
    for tensor, (raw_specs, dense_spec, extent, footprint) in descriptor.tensors.items():
        tensors[tensor] = TensorRelations(
            raw_keys=[view(spec) for spec in raw_specs],
            dense_keys=view(dense_spec),
            extent=extent,
            footprint=footprint,
        )
    return OpRelations(
        signature=descriptor.signature,
        chunk_size=descriptor.chunk_size,
        total=descriptor.total,
        domain=domain,
        tensors=tensors,
        element_bounds={
            tensor: TensorColumns([tuple(b) for b in bounds])
            for tensor, bounds in descriptor.element_bounds.items()
        },
        inclusive_bounds={
            dim: tuple(bounds) for dim, bounds in descriptor.inclusive_bounds.items()
        },
    )
