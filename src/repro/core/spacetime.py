"""Spacetime-stamp maps (Definition 4).

A spacetime map links spacetime stamps that can exchange (or retain) data:

* **temporal** adjacency — same PE, previous time-stamp (data stays in the
  PE's registers), and
* **spatial** adjacency — interconnected PEs separated by the interconnect's
  *time interval*: one time-stamp for store-and-forward links (systolic,
  mesh) and zero for multicast wires, as prescribed in Section V-A.

The analyzer consumes the *neighbour table* produced here: a dense array that
lists, for every PE, the linear indices of the PEs that can forward data to
it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.interconnect import Interconnect
from repro.arch.pe_array import PEArray


@dataclass
class SpacetimeMap:
    """Adjacency of spacetime stamps for a (PE array, interconnect) pair."""

    pe_array: PEArray
    interconnect: Interconnect

    #: Time-stamp distance across which register (temporal) reuse happens.
    temporal_interval: int = 1

    @property
    def spatial_interval(self) -> int:
        """Time-stamp distance for reuse through the interconnect."""
        return self.interconnect.time_interval

    # -- neighbour table -------------------------------------------------------

    def predecessor_table(self) -> np.ndarray:
        """``(num_pes, max_in_degree)`` array of predecessor linear indices.

        Rows are padded with ``-1``.  Row ``p`` lists every PE that can send
        data to PE ``p`` through the interconnect.
        """
        predecessors = self.interconnect.predecessors(self.pe_array)
        num_pes = self.pe_array.size
        max_degree = max((len(v) for v in predecessors.values()), default=0)
        table = np.full((num_pes, max(1, max_degree)), -1, dtype=np.int64)
        for coord, sources in predecessors.items():
            row = self.pe_array.linear_index(coord)
            for slot, source in enumerate(sources):
                table[row, slot] = self.pe_array.linear_index(source)
        return table

    def in_degree(self) -> float:
        """Average number of predecessors per PE."""
        return self.interconnect.degree(self.pe_array)

    # -- symbolic examples -------------------------------------------------------

    def example_maps(self, origin: tuple[int, ...] = None, time: int = 0) -> list[str]:
        """Human-readable spacetime maps out of one stamp (Equation 6 style)."""
        if origin is None:
            origin = (0,) * self.pe_array.rank
        origin = tuple(origin)
        maps = [
            f"([PE{list(origin)} | T[{time}]]) -> ([PE{list(origin)} | T[{time + self.temporal_interval}]])"
        ]
        successors = self.interconnect.successors(self.pe_array)
        for destination in successors.get(origin, []):
            maps.append(
                f"([PE{list(origin)} | T[{time}]]) -> "
                f"([PE{list(destination)} | T[{time + self.spatial_interval}]])"
            )
        return maps

    def __str__(self) -> str:
        return (
            f"SpacetimeMap({self.pe_array}, {self.interconnect.name}, "
            f"spatial interval {self.spatial_interval})"
        )
