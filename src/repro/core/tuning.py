"""Measurement-driven auto-tuning of sweep knobs.

Every throughput knob the engine exposes — batch size, backend, effective
worker count, candidate order — used to be static, chosen once at
construction.  :class:`AutoTuner` turns them into *measured* decisions, in
the spirit of the data-driven ISCA retrospectives: observe the first batches
of a sweep per (op, arch, backend, device), then

* resolve ``backend="auto"`` through a short **calibration race** (one batch
  on each of :data:`CALIBRATION_BACKENDS`) instead of a static rule,
* pick a batch size that amortises per-batch overhead against the measured
  per-candidate cost,
* decide whether ``jobs>1`` is worth its pool: when a batch carries less
  work than the dispatch overhead it must amortise, the tuner runs it
  serially (the committed ``jobs=2`` 1.9x regression on small batches), and
* order candidate streams **best-first** with :class:`ScoreRanker`, a cheap
  bound-regression over signature features seeded from checkpointed history
  (:func:`repro.sweep.sinks.load_ranking` records), so objective early
  termination prunes sooner.

The contract tuning must never break: decisions only change *order and
speed*, never which reports are produced.  Backends are bit-identical by
construction, reordering a full sweep cannot change its (score, name,
signature)-sorted ranking, and under early termination the true best
candidate can never be pruned (its score lower-bounds every running best) —
so the guarantees of an untuned sweep hold verbatim.

Learned decisions serialise through :meth:`AutoTuner.profile_dict` into the
checkpoint as a ``{"kind": "tuning"}`` block; a resumed sweep adopts the
profile and skips calibration.  A profile is identity-checked against the
engine's (op, arch): adopting a foreign profile is a loud error, not a
silently mistuned sweep.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Sequence

import numpy as np

from repro.core.backends import BACKEND_NAMES
from repro.core.engine import arch_signature, dataflow_signature, op_signature
from repro.errors import ExplorationError

PROFILE_VERSION = 1

#: Backends raced (one calibration batch each) to resolve ``backend="auto"``.
#: ``fused`` is the expected winner on uniform-block layouts; ``affine`` wins
#: where fused falls back per tensor often enough to lose its batch fusion.
CALIBRATION_BACKENDS = ("fused", "affine")


def _short_hash(text: str) -> str:
    return hashlib.blake2b(text.encode("utf-8"), digest_size=8).hexdigest()


def signature_features(signature: str) -> np.ndarray:
    """Cheap numeric features of a dataflow's structural signature.

    The signature (``PE[...]|T[...]``) is the one candidate descriptor that
    exists for *both* live dataflows and checkpoint-restored history records,
    so the ranker regresses over text-derived features: expression counts,
    operator densities, and stamp-expression lengths.  They only need to
    correlate with the objective well enough to order a stream — prediction
    error costs speed, never correctness.
    """
    pe_text, _, time_text = signature.partition("|T[")
    return np.array(
        [
            1.0,
            float(len(signature)),
            float(len(pe_text)),
            float(len(time_text)),
            float(pe_text.count(",") + 1),
            float(time_text.count(",") + 1),
            float(signature.count("%")),
            float(signature.count("//")),
            float(signature.count("+")),
            float(signature.count("-")),
        ]
    )


class ScoreRanker:
    """Least-squares bound-regression: signature features -> objective score.

    Samples come from checkpointed history (``seed``) and from the sweep's
    own live scores (``observe``); ``fit`` refits lazily over the sample rows
    in sorted-signature order, so the coefficients — and therefore the
    best-first order — are deterministic regardless of arrival order.
    """

    #: Below this many samples a fit would mostly memorise noise.
    min_samples = 8
    #: Sample cap so paper-scale sweeps keep the fit cost and memory bounded.
    max_samples = 4096

    def __init__(self, coef: Sequence[float] | None = None):
        self.coef: np.ndarray | None = (
            np.asarray(coef, dtype=float) if coef is not None else None
        )
        self._scores: dict[str, float] = {}
        self._dirty = False

    @property
    def ready(self) -> bool:
        return self.coef is not None

    def observe(self, signature: str, score: float | None) -> None:
        if score is None or not math.isfinite(score):
            return
        if len(self._scores) >= self.max_samples and signature not in self._scores:
            return
        if self._scores.get(signature) != float(score):
            self._scores[signature] = float(score)
            self._dirty = True

    def seed(self, entries: Iterable[tuple[str, float]]) -> None:
        for signature, score in entries:
            self.observe(signature, score)

    def fit(self) -> None:
        if not self._dirty or len(self._scores) < self.min_samples:
            return
        signatures = sorted(self._scores)
        features = np.array([signature_features(s) for s in signatures])
        # log1p compresses the objectives' dynamic range (latency spans orders
        # of magnitude across serial-vs-parallel candidates); ordering only
        # needs the prediction to be monotone-ish, not calibrated.
        scores = np.log1p(np.maximum([self._scores[s] for s in signatures], 0.0))
        self.coef, *_ = np.linalg.lstsq(features, scores, rcond=None)
        self._dirty = False

    def predict(self, signature: str) -> float:
        assert self.coef is not None, "predict() before fit()"
        return float(signature_features(signature) @ self.coef)


class AutoTuner:
    """Per-engine controller: measure the first batches, then pick the knobs.

    Owned by an :class:`~repro.core.engine.EvaluationEngine` built with
    ``tune="auto"`` (or a pinned profile dict).  The engine consults it at
    every ``evaluate_batch`` (:meth:`tune_engine`, :meth:`effective_jobs`,
    :meth:`observe_batch`); the :class:`~repro.sweep.session.SweepSession`
    drives the stream-level decisions (:meth:`order`, ``decided_batch_size``,
    history seeding, profile persistence).
    """

    #: Calibrated batch sizes target this much wall clock per batch: long
    #: enough to amortise per-batch costs (stamp stacking, pool dispatch),
    #: short enough to bound checkpoint loss and keep best-first windows fresh.
    target_batch_seconds = 0.25
    min_batch_size = 8
    max_batch_size = 1024
    #: A *cold* pool (workers to spawn, relations to map) only pays off when
    #: the batch carries at least this much serial work.
    cold_pool_seconds = 1.5
    #: A warm pool still charges dispatch/result shipping per batch.
    warm_pool_seconds = 0.05
    #: Best-first ordering looks ahead this many batches of stream.
    lookahead = 4
    #: Slice size while calibrating: small enough that a short sweep still
    #: completes every calibration leg, large enough to amortise per-batch
    #: fixed costs out of the per-candidate measurement.
    calibration_batch_size = 16

    def __init__(self, engine, *, profile: dict | None = None):
        self.op_hash = _short_hash(op_signature(engine.op))
        self.arch_hash = _short_hash(arch_signature(engine.arch))
        self.device = engine.device_name
        self.requested_backend = engine.backend_name
        #: Backends still to race; empty when the backend was pinned.
        self._race = (
            list(CALIBRATION_BACKENDS) if self.requested_backend == "auto" else []
        )
        self.calibration_batches = max(1, len(self._race))
        self.calibrated = False
        self.backend_decided: str | None = None
        self.decided_batch_size: int | None = None
        self.per_candidate_seconds: float | None = None
        #: Human-readable decision log (``--profile`` and ``stats`` surface it).
        self.decisions: list[str] = []
        self.ranker = ScoreRanker()
        #: (counted, seconds, backend, jobs) per observed batch.
        self._observations: list[tuple[int, float, str, int]] = []
        #: Best serial per-candidate seconds seen per backend.
        self._backend_per_candidate: dict[str, float] = {}
        self._jobs_note_logged = False
        if profile is not None:
            self.adopt(profile)

    # -- engine-side hooks --------------------------------------------------------

    @property
    def remaining_calibration_legs(self) -> int:
        """Measurement batches still needed before decisions can lock in."""
        if self.calibrated:
            return 0
        return max(0, self.calibration_batches - len(self._observations))

    def tune_engine(self, engine, batch_len: int) -> None:
        """Apply the current decision (or the next calibration leg) to the engine."""
        if self.calibrated:
            if (
                self.backend_decided is not None
                and engine.backend_name != self.backend_decided
            ):
                engine.set_backend(self.backend_decided)
            return
        if self._race:
            leg = self._race[min(len(self._observations), len(self._race) - 1)]
            if engine.backend_name != leg:
                engine.set_backend(leg)

    def effective_jobs(self, requested: int, batch_len: int, *, pool_warm: bool) -> int:
        """Serial when the batch's measured work cannot amortise the pool."""
        if requested <= 1 or batch_len <= 1:
            return requested
        if not self.calibrated or self.per_candidate_seconds is None:
            # Calibration batches run serially: they are the measurement.
            return 1
        work = self.per_candidate_seconds * batch_len
        floor = self.warm_pool_seconds if pool_warm else self.cold_pool_seconds
        if work < floor:
            if not self._jobs_note_logged:
                self._jobs_note_logged = True
                self.decisions.append(
                    f"jobs: {batch_len} candidates x "
                    f"{self.per_candidate_seconds * 1e3:.2f} ms = {work:.3f}s of "
                    f"work under the {floor:.2f}s "
                    f"{'dispatch' if pool_warm else 'pool spin-up'} floor -> "
                    f"serial (requested jobs={requested})"
                )
            return 1
        return requested

    def observe_batch(
        self, outcomes, seconds: float, *, backend: str, jobs: int
    ) -> None:
        """Record one evaluated batch (engines call this after every batch)."""
        counted = sum(
            1 for o in outcomes if o.report is not None and not o.memo_hit
        )
        self.observe_measurement(counted, seconds, backend=backend, jobs=jobs)

    def observe_measurement(
        self, counted: int, seconds: float, *, backend: str, jobs: int = 1
    ) -> None:
        """The raw measurement feed; decisions are a pure function of it."""
        if counted <= 0 or seconds <= 0:
            return
        self._observations.append((counted, seconds, backend, jobs))
        if jobs == 1:
            per = seconds / counted
            previous = self._backend_per_candidate.get(backend)
            self._backend_per_candidate[backend] = (
                per if previous is None else min(previous, per)
            )
            if self.calibrated and backend == (
                self.backend_decided or self.requested_backend
            ):
                # Track drift after calibration so the jobs floor stays honest
                # on long sweeps whose per-candidate cost changes.
                self.per_candidate_seconds = per
        if not self.calibrated and len(self._observations) >= self.calibration_batches:
            self.finalize()

    def finalize(self) -> None:
        """Lock in decisions from whatever has been measured (idempotent)."""
        if self.calibrated:
            # Decisions are locked, but refresh the ranker fit so the
            # persisted profile carries the latest coefficients.
            self.ranker.fit()
            return
        if self._backend_per_candidate:
            if self._race:
                timings = ", ".join(
                    f"{name} {per * 1e3:.2f} ms/cand"
                    for name, per in sorted(self._backend_per_candidate.items())
                )
                self.backend_decided = min(
                    sorted(self._backend_per_candidate),
                    key=lambda name: self._backend_per_candidate[name],
                )
                self.decisions.append(
                    f"backend: calibration race ({timings}) -> {self.backend_decided}"
                )
            per = self._backend_per_candidate.get(
                self.backend_decided or self.requested_backend
            )
            if per is None:
                per = min(self._backend_per_candidate.values())
            self.per_candidate_seconds = per
            batch = int(self.target_batch_seconds / per) if per > 0 else None
            if batch is not None:
                # Round to a multiple of 8 inside the clamp so decided sizes
                # are stable across small measurement jitter.
                batch = max(
                    self.min_batch_size,
                    min(self.max_batch_size, (batch // 8) * 8 or self.min_batch_size),
                )
                self.decided_batch_size = batch
                self.decisions.append(
                    f"batch size: {per * 1e3:.2f} ms/candidate -> {batch} "
                    f"(~{self.target_batch_seconds:.2f}s per batch)"
                )
        self.calibrated = True
        # Fit whatever scores were observed so the persisted profile carries
        # ranker coefficients a resumed sweep can order with immediately.
        self.ranker.fit()

    # -- stream-side hooks --------------------------------------------------------

    def seed_history(self, entries: Iterable[tuple[str, float]]) -> None:
        """Seed the best-first ranker from checkpointed (signature, score) pairs."""
        self.ranker.seed(entries)

    def observe_score(self, signature: str, score: float) -> None:
        self.ranker.observe(signature, score)

    def order(self, candidates: list) -> list:
        """Best-first (ascending predicted score) reorder of a stream window.

        A pure permutation: every candidate in, every candidate out, ties kept
        in stream order — so dedupe/shard/resume semantics and the final
        ranking are untouched; only early termination bites sooner.
        """
        self.ranker.fit()
        if not self.ranker.ready or len(candidates) < 2:
            return list(candidates)
        predictions = [
            self.ranker.predict(dataflow_signature(c)) for c in candidates
        ]
        indices = sorted(range(len(candidates)), key=lambda i: (predictions[i], i))
        return [candidates[i] for i in indices]

    # -- profile persistence ------------------------------------------------------

    def profile_dict(self) -> dict:
        """The JSON-serialisable learned profile (checkpoint ``tuning`` block)."""
        return {
            "version": PROFILE_VERSION,
            "op": self.op_hash,
            "arch": self.arch_hash,
            "device": self.device,
            "requested_backend": self.requested_backend,
            "backend": self.backend_decided,
            "batch_size": self.decided_batch_size,
            "per_candidate_seconds": (
                round(self.per_candidate_seconds, 6)
                if self.per_candidate_seconds is not None
                else None
            ),
            "ranker_coef": (
                [float(c) for c in self.ranker.coef]
                if self.ranker.coef is not None
                else None
            ),
            "calibrated": self.calibrated,
            "decisions": list(self.decisions),
        }

    def adopt(self, profile: dict) -> None:
        """Apply a persisted profile (checkpoint resume, ``tune=<dict>``).

        Identity-checked: a profile learned for another (op, arch) — or a
        newer profile format — is refused loudly instead of silently
        mistuning the sweep.
        """
        if not isinstance(profile, dict):
            raise ExplorationError(
                f"tuning profile must be a dict, got {type(profile).__name__}"
            )
        version = profile.get("version", PROFILE_VERSION)
        if not isinstance(version, int) or version > PROFILE_VERSION:
            raise ExplorationError(
                f"tuning profile version {version!r} is newer than this "
                f"engine understands ({PROFILE_VERSION}); re-tune with "
                "tune='auto'"
            )
        for key, expected in (("op", self.op_hash), ("arch", self.arch_hash)):
            recorded = profile.get(key)
            if recorded is not None and recorded != expected:
                raise ExplorationError(
                    f"tuning profile was learned for a different sweep "
                    f"({key}={recorded!r}, this engine is {expected!r}); "
                    "refusing to apply a foreign profile — re-tune with "
                    "tune='auto'"
                )
        backend = profile.get("backend")
        if backend is not None:
            if backend not in BACKEND_NAMES:
                raise ExplorationError(
                    f"tuning profile pins unknown backend {backend!r}; "
                    f"known: {sorted(BACKEND_NAMES)}"
                )
            # A profile only steers the backend the caller left to "auto";
            # an explicitly pinned backend stays authoritative.
            if self.requested_backend == "auto":
                self.backend_decided = backend
        batch_size = profile.get("batch_size")
        if batch_size is not None:
            self.decided_batch_size = max(1, int(batch_size))
        per = profile.get("per_candidate_seconds")
        if per is not None:
            self.per_candidate_seconds = float(per)
        coef = profile.get("ranker_coef")
        if coef is not None and len(coef) == signature_features("").size:
            self.ranker.coef = np.asarray(coef, dtype=float)
        if profile.get("calibrated", True):
            self.calibrated = True
            self._race = []
        self.decisions.append(
            "adopted persisted profile "
            f"(backend={self.backend_decided or self.requested_backend}, "
            f"batch_size={self.decided_batch_size}, "
            f"ranker={'seeded' if self.ranker.ready else 'cold'})"
        )
