"""PE utilization and compute-delay statistics.

The paper estimates PE utilization "by going through all time-stamps to check
whether a PE is assigned" (Section VI-E), rather than with a polynomial of the
array and problem sizes.  The same walk also yields the compute delay of
Equation 8: with one MAC per PE per cycle, each time-stamp takes as many
cycles as the busiest PE has instances assigned to it (one cycle exactly when
the dataflow is injective).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True)
class UtilizationMetrics:
    """Occupancy statistics of the PE array over the execution."""

    num_instances: int
    num_pes: int
    num_time_stamps: int
    occupied_stamps: int
    compute_delay_cycles: int
    max_active_pes: int

    @property
    def average_utilization(self) -> float:
        """Average fraction of busy PEs per cycle (Equation 8's ``Util_PE``)."""
        if self.compute_delay_cycles == 0 or self.num_pes == 0:
            return 0.0
        return self.num_instances / (self.num_pes * self.compute_delay_cycles)

    @property
    def max_utilization(self) -> float:
        """Peak fraction of busy PEs in any single time-stamp."""
        if self.num_pes == 0:
            return 0.0
        return self.max_active_pes / self.num_pes

    @property
    def is_injective(self) -> bool:
        return self.occupied_stamps == self.num_instances

    def as_dict(self) -> dict[str, float]:
        return {
            "num_instances": self.num_instances,
            "num_pes": self.num_pes,
            "num_time_stamps": self.num_time_stamps,
            "occupied_stamps": self.occupied_stamps,
            "compute_delay_cycles": self.compute_delay_cycles,
            "average_utilization": self.average_utilization,
            "max_utilization": self.max_utilization,
        }


def compute_utilization(
    pe_lin: np.ndarray,
    t_rank: np.ndarray,
    num_pes: int,
) -> UtilizationMetrics:
    """Derive utilization metrics from per-instance (PE, time-rank) arrays."""
    if pe_lin.shape != t_rank.shape:
        raise ModelError("pe_lin and t_rank must have identical shapes")
    num_instances = int(pe_lin.size)
    if num_instances == 0:
        return UtilizationMetrics(0, num_pes, 0, 0, 0, 0)

    from repro.isl.enumeration import sorted_unique

    stamp_keys = t_rank.astype(np.int64) * num_pes + pe_lin
    occupied, instances_per_stamp = sorted_unique(stamp_keys, return_counts=True)
    stamp_times = occupied // num_pes

    # Boundaries between consecutive time-stamps in the sorted stamp array.
    change = np.flatnonzero(np.diff(stamp_times)) + 1
    boundaries = np.concatenate(([0], change))
    num_time_stamps = boundaries.size

    # Active PEs per time-stamp = run length of each time value.
    run_lengths = np.diff(np.concatenate((boundaries, [occupied.size])))
    max_active_pes = int(run_lengths.max())

    # Per time-stamp, the busiest PE determines the stamp's cycle count.
    per_stamp_max = np.maximum.reduceat(instances_per_stamp, boundaries)
    compute_delay = int(per_stamp_max.sum())

    return UtilizationMetrics(
        num_instances=num_instances,
        num_pes=num_pes,
        num_time_stamps=num_time_stamps,
        occupied_stamps=int(occupied.size),
        compute_delay_cycles=compute_delay,
        max_active_pes=max_active_pes,
    )
