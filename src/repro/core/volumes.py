"""Volume metrics (Table II and Figure 5).

All metrics are counts of relation elements:

* ``TotalVolume``  — number of (spacetime stamp, element) pairs of the data
  assignment relation: every access the PE array makes to the tensor.
* ``ReuseVolume``  — pairs whose element is also present at an *adjacent
  predecessor* stamp (same PE one time-stamp earlier, or an interconnected PE
  within the interconnect's time interval), i.e. accesses that do not need the
  scratchpad.
* ``UniqueVolume`` — ``Total - Reuse``: the minimum traffic between the PE
  array and the scratchpad.
* ``TemporalReuseVolume`` / ``SpatialReuseVolume`` — the two disjoint parts of
  ``ReuseVolume`` (same-PE register reuse vs. reuse through the interconnect).
* ``ReuseFactor``  — ``Total / Unique``.

The computation enumerates the assignment relation as integer key arrays and
answers the adjacency queries with sorted-array membership tests, processing
the relation in bounded-size chunks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True)
class VolumeMetrics:
    """Volume metrics of one tensor under one dataflow."""

    tensor: str
    total: int
    reuse: int
    temporal_reuse: int
    spatial_reuse: int
    footprint: int

    @property
    def unique(self) -> int:
        """Minimum words transferred between the PE array and the scratchpad."""
        return self.total - self.reuse

    @property
    def reuse_factor(self) -> float:
        """How many times a word is used per scratchpad transfer (Table II)."""
        if self.unique == 0:
            return float(self.total) if self.total else 1.0
        return self.total / self.unique

    @property
    def temporal_reuse_fraction(self) -> float:
        return self.temporal_reuse / self.total if self.total else 0.0

    @property
    def spatial_reuse_fraction(self) -> float:
        return self.spatial_reuse / self.total if self.total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "tensor": self.tensor,
            "total": self.total,
            "reuse": self.reuse,
            "unique": self.unique,
            "temporal_reuse": self.temporal_reuse,
            "spatial_reuse": self.spatial_reuse,
            "footprint": self.footprint,
            "reuse_factor": self.reuse_factor,
        }

    def __str__(self) -> str:
        return (
            f"{self.tensor}: total={self.total} unique={self.unique} "
            f"temporal={self.temporal_reuse} spatial={self.spatial_reuse} "
            f"reuse_factor={self.reuse_factor:.2f}"
        )


def _membership(sorted_keys: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Vectorised membership of ``candidates`` in the sorted key array."""
    positions = np.searchsorted(sorted_keys, candidates)
    positions = np.clip(positions, 0, sorted_keys.size - 1)
    return sorted_keys[positions] == candidates


def compute_volume_metrics(
    tensor: str,
    pe_lin: np.ndarray,
    t_rank: np.ndarray,
    element_keys: np.ndarray,
    predecessor_table: np.ndarray,
    num_pes: int,
    spatial_interval: int,
    temporal_interval: int = 1,
    chunk_size: int = 1 << 20,
    element_extent: int | None = None,
) -> VolumeMetrics:
    """Compute the Table II metrics for one tensor.

    Parameters
    ----------
    pe_lin, t_rank, element_keys:
        Parallel arrays with one entry per (instance, reference) access pair:
        the executing PE's linear index, the dense rank of its time-stamp in
        the global lexicographic execution order, and an integer key
        identifying the accessed element.
    predecessor_table:
        ``(num_pes, max_degree)`` array of interconnect predecessors, ``-1``
        padded (see :class:`repro.core.spacetime.SpacetimeMap`).
    spatial_interval:
        Time-stamp distance for reuse through the interconnect (1 for
        systolic/mesh links, 0 for multicast wires).
    temporal_interval:
        Time-stamp distance for register reuse within one PE (1 in the paper's
        model).
    element_extent:
        Exclusive upper bound on ``element_keys`` (the mixed-radix extent of
        the element coordinates).  When provided and small enough, the raw
        keys are combined with the spacetime keys directly; otherwise the
        element keys are first densified.
    """
    from repro.isl.enumeration import sorted_unique

    if not (pe_lin.shape == t_rank.shape == element_keys.shape):
        raise ModelError("assignment arrays must have identical shapes")
    if pe_lin.size == 0:
        return VolumeMetrics(tensor, 0, 0, 0, 0, 0)

    unique_elements = sorted_unique(element_keys)
    footprint_count = int(unique_elements.size)

    max_rank = int(t_rank.max()) + 1
    stamp_extent = max_rank * num_pes

    if element_extent is not None and stamp_extent * element_extent < (1 << 62):
        footprint = int(element_extent)
        dense_elements = element_keys
    elif stamp_extent * footprint_count < (1 << 62):
        footprint = footprint_count
        dense_elements = np.searchsorted(unique_elements, element_keys)
    else:
        raise ModelError(
            "assignment relation too large for int64 keys; scale the workload "
            "(see repro.workloads.scaling)"
        )

    pair_keys = (t_rank.astype(np.int64) * num_pes + pe_lin) * footprint + dense_elements
    assign_keys = sorted_unique(pair_keys)
    total = int(assign_keys.size)

    temporal_count = 0
    spatial_count = 0
    reuse_count = 0

    max_degree = predecessor_table.shape[1] if predecessor_table.size else 0
    for start in range(0, total, chunk_size):
        stop = min(start + chunk_size, total)
        keys = assign_keys[start:stop]
        elements = keys % footprint
        stamps = keys // footprint
        pes = stamps % num_pes
        ranks = stamps // num_pes

        # Temporal reuse: same PE, ``temporal_interval`` time-stamps earlier.
        previous_rank = ranks - temporal_interval
        valid = previous_rank >= 0
        candidates = (previous_rank * num_pes + pes) * footprint + elements
        temporal_mask = valid & _membership(assign_keys, candidates)

        # Spatial reuse: an interconnected predecessor PE, ``spatial_interval`` earlier.
        # For same-cycle (multicast) reuse one PE in the group must act as the
        # fetcher, so only providers with a smaller linear index count — this
        # keeps UniqueVolume >= footprint.
        spatial_mask = np.zeros(keys.shape, dtype=bool)
        source_rank = ranks - spatial_interval
        rank_valid = source_rank >= 0
        for slot in range(max_degree):
            sources = predecessor_table[pes, slot]
            slot_valid = rank_valid & (sources >= 0)
            if spatial_interval == 0:
                slot_valid &= sources < pes
            if not slot_valid.any():
                continue
            candidates = (source_rank * num_pes + sources) * footprint + elements
            spatial_mask |= slot_valid & _membership(assign_keys, candidates)

        temporal_count += int(temporal_mask.sum())
        spatial_count += int((spatial_mask & ~temporal_mask).sum())
        reuse_count += int((temporal_mask | spatial_mask).sum())

    return VolumeMetrics(
        tensor=tensor,
        total=total,
        reuse=reuse_count,
        temporal_reuse=temporal_count,
        spatial_reuse=spatial_count,
        footprint=footprint_count,
    )
