"""Array-namespace layer: one device-portable codepath for the fused backend.

The fused backend's hot loops are a handful of array primitives — a stacked
float64 matmul, segmented sorts, ``searchsorted`` membership probes, gathers
and boolean comparisons.  This module resolves a *device spec* (``numpy``,
``torch``, ``torch:cpu``, ``torch:cuda``, ``cupy``) to an
:class:`ArrayNamespace` exposing exactly those primitives, so the evaluation
kernels are written once and run unchanged on every registered namespace.

Exactness contract
    Every kernel value is an integer.  The stamp matmul runs in float64 and is
    gated by the affine backend's per-row magnitude bound (partial sums below
    ``2**53`` are exactly representable, so any BLAS summation order yields the
    same integers); rows above the bound fall back to the exact host int64
    path.  The volume kernels are integer-only.  Device results therefore come
    back to the host bit-identical to the numpy path.

Registration and probing
    Namespaces register through :func:`register_namespace`; an unavailable one
    (library not installed, no device) is *reported* by
    :func:`namespace_probes` and raises a capability error listing the
    available namespaces only when actually selected — never at import time.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import ExplorationError

#: Device specs accepted by ``--device`` (a ``:suffix`` selects the library's
#: device, e.g. ``torch:cpu``); ``cpu`` is an alias for ``numpy``.
NAMESPACE_NAMES = ("numpy", "torch", "cupy")

_ALIASES = {"cpu": "numpy", "np": "numpy"}


class ArrayNamespace:
    """The small common array API the evaluation kernels are written against.

    ``dtype`` arguments are the strings ``"bool" | "int32" | "int64" |
    "float64"`` so adapters map them to their library's dtype objects.
    Methods that return counts or indices for *control flow* return host
    values; everything else may stay device-resident until :meth:`to_host`.
    """

    name: str = "abstract"
    #: Human-readable device the namespace computes on (``cpu``, ``cuda:0``).
    device: str = "cpu"
    #: True for the host numpy namespace: callers may then skip uploads
    #: entirely and operate on the host arrays in place.
    is_numpy: bool = False

    # -- transfer ---------------------------------------------------------------
    def asarray(self, array: np.ndarray, dtype: str | None = None) -> Any:
        raise NotImplementedError

    def to_host(self, array: Any) -> np.ndarray:
        raise NotImplementedError

    # -- compute ----------------------------------------------------------------
    def matmul(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def sort2d(self, a: Any) -> Any:
        """Sort along the last axis; may sort in place and return ``a``."""
        raise NotImplementedError

    def argsort(self, a: Any) -> Any:
        raise NotImplementedError

    def searchsorted(self, sorted_a: Any, values: Any) -> Any:
        raise NotImplementedError

    def take(self, a: Any, indices: Any) -> Any:
        raise NotImplementedError

    def take_clip(self, a: Any, indices: Any) -> Any:
        """``a[clip(indices, 0, len(a) - 1)]`` (numpy ``take(mode="clip")``)."""
        raise NotImplementedError

    def zeros(self, length: int, dtype: str) -> Any:
        raise NotImplementedError

    def astype(self, a: Any, dtype: str) -> Any:
        raise NotImplementedError

    def flatnonzero(self, mask: Any) -> Any:
        raise NotImplementedError

    def count_nonzero(self, mask: Any) -> int:
        raise NotImplementedError

    def int_scalar(self, value: int, narrow: bool) -> Any:
        """An integer scalar that keeps ``array op scalar`` in the array dtype."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}:{self.device}>"


class NumpyNamespace(ArrayNamespace):
    """Host numpy: the reference namespace every other one must match."""

    name = "numpy"
    device = "cpu"
    is_numpy = True

    _DTYPES = {"bool": np.bool_, "int32": np.int32, "int64": np.int64,
               "float64": np.float64}

    def asarray(self, array, dtype=None):
        if dtype is None:
            return np.asarray(array)
        return np.asarray(array, dtype=self._DTYPES[dtype])

    def to_host(self, array):
        return array

    def matmul(self, a, b):
        return a @ b

    def sort2d(self, a):
        a.sort(axis=-1)
        return a

    def argsort(self, a):
        return np.argsort(a, kind="stable")

    def searchsorted(self, sorted_a, values):
        return np.searchsorted(sorted_a, values)

    def take(self, a, indices):
        return np.take(a, indices)

    def take_clip(self, a, indices):
        return np.take(a, indices, mode="clip")

    def zeros(self, length, dtype):
        return np.zeros(length, dtype=self._DTYPES[dtype])

    def astype(self, a, dtype):
        return a.astype(self._DTYPES[dtype])

    def flatnonzero(self, mask):
        return np.flatnonzero(mask)

    def count_nonzero(self, mask):
        return int(np.count_nonzero(mask))

    def int_scalar(self, value, narrow):
        return np.int32(value) if narrow else np.int64(value)


class TorchNamespace(ArrayNamespace):
    """PyTorch on ``cuda`` when available, else CPU (``torch:cpu`` forces it).

    Integer kernels and the magnitude-gated float64 matmul are exact on any
    torch device, so results are bit-identical to numpy once copied back.
    """

    name = "torch"
    is_numpy = False

    def __init__(self, device: str | None = None):
        import torch

        self._torch = torch
        if device is None or device == "":
            device = "cuda" if torch.cuda.is_available() else "cpu"
        self._device = torch.device(device)
        self.device = str(self._device)
        self._dtypes = {"bool": torch.bool, "int32": torch.int32,
                        "int64": torch.int64, "float64": torch.float64}

    def asarray(self, array, dtype=None):
        tensor = self._torch.from_numpy(np.ascontiguousarray(array))
        if dtype is not None:
            tensor = tensor.to(self._dtypes[dtype])
        return tensor.to(self._device)

    def to_host(self, array):
        return array.detach().cpu().numpy()

    def matmul(self, a, b):
        return self._torch.matmul(a, b)

    def sort2d(self, a):
        return self._torch.sort(a, dim=-1).values

    def argsort(self, a):
        return self._torch.argsort(a, stable=True)

    def searchsorted(self, sorted_a, values):
        return self._torch.searchsorted(sorted_a, values)

    def take(self, a, indices):
        return a[indices]

    def take_clip(self, a, indices):
        return a[indices.clamp(0, a.numel() - 1)]

    def zeros(self, length, dtype):
        return self._torch.zeros(length, dtype=self._dtypes[dtype],
                                 device=self._device)

    def astype(self, a, dtype):
        return a.to(self._dtypes[dtype])

    def flatnonzero(self, mask):
        return self._torch.nonzero(mask).flatten()

    def count_nonzero(self, mask):
        return int(self._torch.count_nonzero(mask))

    def int_scalar(self, value, narrow):
        return int(value)


class CupyNamespace(ArrayNamespace):
    """CuPy: numpy semantics on a CUDA device, so adapters are one-liners."""

    name = "cupy"
    is_numpy = False

    def __init__(self, device: str | None = None):
        import cupy

        self._cupy = cupy
        if device:
            cupy.cuda.Device(int(device.removeprefix("cuda:") or 0)).use()
        self.device = f"cuda:{cupy.cuda.runtime.getDevice()}"
        self._dtypes = {"bool": cupy.bool_, "int32": cupy.int32,
                        "int64": cupy.int64, "float64": cupy.float64}

    def asarray(self, array, dtype=None):
        if dtype is None:
            return self._cupy.asarray(array)
        return self._cupy.asarray(array, dtype=self._dtypes[dtype])

    def to_host(self, array):
        return self._cupy.asnumpy(array)

    def matmul(self, a, b):
        return a @ b

    def sort2d(self, a):
        a.sort(axis=-1)
        return a

    def argsort(self, a):
        return self._cupy.argsort(a)

    def searchsorted(self, sorted_a, values):
        return self._cupy.searchsorted(sorted_a, values)

    def take(self, a, indices):
        return self._cupy.take(a, indices)

    def take_clip(self, a, indices):
        return self._cupy.take(a, indices, mode="clip")

    def zeros(self, length, dtype):
        return self._cupy.zeros(length, dtype=self._dtypes[dtype])

    def astype(self, a, dtype):
        return a.astype(self._dtypes[dtype])

    def flatnonzero(self, mask):
        return self._cupy.flatnonzero(mask)

    def count_nonzero(self, mask):
        return int(self._cupy.count_nonzero(mask))

    def int_scalar(self, value, narrow):
        return self._cupy.int32(value) if narrow else self._cupy.int64(value)


# -- registry and capability probing ------------------------------------------------

#: name -> factory(device_suffix_or_None) -> ArrayNamespace
_REGISTRY: dict[str, Callable[[str | None], ArrayNamespace]] = {}
#: Probe results, cached per process: name -> (available, detail).
_PROBES: dict[str, tuple[bool, str]] = {}
#: Resolved singletons, keyed (name, device suffix).
_INSTANCES: dict[tuple[str, str], ArrayNamespace] = {}


def register_namespace(name: str, factory: Callable[[str | None], ArrayNamespace]) -> None:
    """Register (or replace) an array namespace under ``name``.

    Registration is cheap and never imports the backing library; the factory
    runs — and may fail with an informative error — only when the namespace is
    probed or selected.
    """
    _REGISTRY[str(name)] = factory
    _PROBES.pop(name, None)
    for key in [key for key in _INSTANCES if key[0] == name]:
        del _INSTANCES[key]


register_namespace("numpy", lambda device: NumpyNamespace())
register_namespace("torch", lambda device: TorchNamespace(device))
register_namespace("cupy", lambda device: CupyNamespace(device))


def _smoke_test(xp: ArrayNamespace) -> None:
    """One tiny end-to-end pass over the API; raises when the device is broken."""
    a = xp.asarray(np.array([[1.0, 2.0], [3.0, 4.0]]))
    product = xp.to_host(xp.astype(xp.matmul(a, a), "int64"))
    if not np.array_equal(product, np.array([[7, 10], [15, 22]], dtype=np.int64)):
        raise ExplorationError(f"namespace {xp.name!r} failed the exactness smoke test")
    keys = xp.asarray(np.array([0, 2, 4, 6], dtype=np.int64))
    positions = xp.to_host(xp.searchsorted(keys, xp.asarray(np.array([3, 4], dtype=np.int64))))
    if list(positions) != [2, 2]:
        raise ExplorationError(f"namespace {xp.name!r} failed the searchsorted smoke test")


def probe_namespace(name: str) -> tuple[bool, str]:
    """``(available, detail)`` for one registered namespace, cached.

    ``detail`` is a short human-readable string: the library version and
    device when available, the import/device error when not.
    """
    cached = _PROBES.get(name)
    if cached is not None:
        return cached
    factory = _REGISTRY.get(name)
    if factory is None:
        result = (False, "not registered")
    else:
        try:
            xp = factory(None)
            _smoke_test(xp)
        except Exception as error:  # noqa: BLE001 - any import/device failure
            result = (False, f"unavailable: {error}")
        else:
            try:
                version = getattr(__import__(name), "__version__", "?")
            except ImportError:  # a custom namespace not backed by a module
                version = "?"
            result = (True, f"{name} {version} ({xp.device})")
    _PROBES[name] = result
    return result


def namespace_probes() -> dict[str, tuple[bool, str]]:
    """Probe every registered namespace; never raises."""
    return {name: probe_namespace(name) for name in _REGISTRY}


def available_namespaces() -> list[str]:
    """Names of the namespaces that probe as usable on this machine."""
    return [name for name, (ok, _) in namespace_probes().items() if ok]


def resolve_namespace(spec: str | None) -> ArrayNamespace:
    """Resolve a ``--device`` spec to a live :class:`ArrayNamespace`.

    Accepts ``name`` or ``name:device`` (``torch:cpu``, ``torch:cuda:1``).
    Unavailable or unknown namespaces raise a capability error that lists
    what *is* available, so callers can route work elsewhere.
    """
    spec = (spec or "numpy").strip().lower()
    name, _, device = spec.partition(":")
    name = _ALIASES.get(name, name)
    if name not in _REGISTRY:
        raise ExplorationError(
            f"unknown device {spec!r}; registered namespaces: "
            f"{', '.join(sorted(_REGISTRY))}"
        )
    key = (name, device)
    instance = _INSTANCES.get(key)
    if instance is not None:
        return instance
    ok, detail = probe_namespace(name)
    if not ok:
        raise ExplorationError(
            f"array namespace {name!r} is {detail}; available namespaces: "
            f"{', '.join(available_namespaces()) or 'none'}"
        )
    try:
        instance = _REGISTRY[name](device or None)
    except Exception as error:  # noqa: BLE001 - e.g. an explicit cuda suffix on a CPU box
        raise ExplorationError(
            f"device {spec!r} could not be initialised ({error}); available "
            f"namespaces: {', '.join(available_namespaces()) or 'none'}"
        ) from error
    _INSTANCES[key] = instance
    return instance


__all__ = [
    "ArrayNamespace",
    "CupyNamespace",
    "NAMESPACE_NAMES",
    "NumpyNamespace",
    "TorchNamespace",
    "available_namespaces",
    "namespace_probes",
    "probe_namespace",
    "register_namespace",
    "resolve_namespace",
]
