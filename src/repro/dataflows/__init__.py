"""Catalog of named dataflows (Table III).

Every dataflow of Table III is available as a parameterised factory: the
PE-array extent along each axis is an argument, so the same ``(IJ-P |
J,IJK-T)`` recipe can target a 4x4, 8x8 or 16x16 array.  Where the paper's
table abbreviates the time-stamp (it only prints the innermost dimensions),
the factories add the remaining loop dimensions as outer time-stamp axes so
the resulting dataflows are complete and injective.

Use :func:`repro.dataflows.catalog.get_dataflow` /
:func:`repro.dataflows.catalog.dataflows_for` to access entries by name or by
kernel.
"""

from repro.dataflows.catalog import (
    CatalogEntry,
    all_entries,
    dataflows_for,
    get_dataflow,
    get_entry,
)
from repro.dataflows import conv2d, gemm, jacobi, mmc, mttkrp

__all__ = [
    "CatalogEntry",
    "all_entries",
    "dataflows_for",
    "get_dataflow",
    "get_entry",
    "gemm",
    "conv2d",
    "mttkrp",
    "mmc",
    "jacobi",
]
