"""Registry of the Table III dataflows.

Every entry records the factory that builds the dataflow for a given PE-array
size, whether the dataflow is expressible in the data-centric notation (the
"x" marks in Table III), and the PE-array shape the paper evaluates it on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.dataflow import Dataflow
from repro.dataflows import conv2d, gemm, jacobi, mmc, mttkrp


@dataclass(frozen=True)
class CatalogEntry:
    """One named dataflow of the catalog."""

    name: str
    kernel: str
    factory: Callable[..., Dataflow]
    data_centric_expressible: bool
    preferred_pe_dims: tuple[int, ...]
    description: str = ""
    data_centric_directives: tuple[str, ...] = field(default=())

    def build(self, **kwargs) -> Dataflow:
        """Instantiate the dataflow (keyword arguments override the defaults)."""
        return self.factory(**kwargs)

    def __str__(self) -> str:
        marker = "data-centric" if self.data_centric_expressible else "TENET-only"
        return f"{self.kernel} {self.name} [{marker}]"


_ENTRIES: list[CatalogEntry] = [
    # ---------------------------------------------------------------- GEMM
    CatalogEntry(
        "(IJ-P | J,IJK-T)", "gemm", gemm.ij_p, False, (8, 8),
        "Output-stationary systolic GEMM as applied in the TPU.",
    ),
    CatalogEntry(
        "(KJ-P | K,IJK-T)", "gemm", gemm.kj_p, False, (8, 8),
        "Skewed GEMM dataflow parallel over (k, j).",
    ),
    CatalogEntry(
        "(IK-P | K,IJK-T)", "gemm", gemm.ik_p, False, (8, 8),
        "Skewed GEMM dataflow parallel over (i, k).",
    ),
    CatalogEntry(
        "(K-P | I,J-T)", "gemm", gemm.k_p, True, (64,),
        "Reduction-parallel 1-D GEMM dataflow.",
        ("SpMap(1,1) K", "TpMap(1,1) I", "TpMap(1,1) J"),
    ),
    CatalogEntry(
        "(J-P | I,K-T)", "gemm", gemm.j_p, True, (64,),
        "Output-column-parallel 1-D GEMM dataflow.",
        ("SpMap(1,1) J", "TpMap(1,1) I", "TpMap(1,1) K"),
    ),
    CatalogEntry(
        "(JK-P | K,IJK-T)", "gemm", gemm.jk_p, False, (8, 8),
        "Extra skewed GEMM dataflow used in the Figure 10 bandwidth study.",
    ),
    CatalogEntry(
        "(IJ-P | K-T)", "gemm", gemm.ij_p_output_stationary, True, (8, 8),
        "Non-skewed output-stationary GEMM, the best data-centric baseline of Figure 6.",
        ("SpMap(1,1) I", "SpMap(1,1) J", "TpMap(1,1) K"),
    ),
    # ---------------------------------------------------------------- 2D-CONV
    CatalogEntry(
        "(KC-P | OY,KCOX-T)", "conv2d", conv2d.kc_p_skewed, False, (8, 8),
        "Skewed systolic CONV dataflow parallel over output/input channels.",
    ),
    CatalogEntry(
        "(KOX-P | OY,KOXC-T)", "conv2d", conv2d.kox_p_skewed, False, (8, 8),
        "Skewed systolic CONV dataflow parallel over output channel and column.",
    ),
    CatalogEntry(
        "(KC-P | C,KOX-T)", "conv2d", conv2d.kc_p_c_skewed, False, (8, 8),
        "Skewed CONV dataflow with the channel tile iterated late.",
    ),
    CatalogEntry(
        "(K-P | OX,OY-T)", "conv2d", conv2d.k_p, True, (64,),
        "Output-channel-parallel 1-D CONV dataflow.",
        ("SpMap(1,1) K", "TpMap(1,1) C", "TpMap(Sz(RX),1) X", "TpMap(Sz(RY),1) Y",
         "TpMap(Sz(RY),Sz(RY)) R_Y", "TpMap(Sz(RX),Sz(RX)) R_X"),
    ),
    CatalogEntry(
        "(C-P | OY,OX-T)", "conv2d", conv2d.c_p, True, (64,),
        "Input-channel-parallel 1-D CONV dataflow.",
        ("SpMap(1,1) C", "TpMap(1,1) K", "TpMap(Sz(RY),1) Y", "TpMap(Sz(RX),1) X",
         "TpMap(Sz(RY),Sz(RY)) R_Y", "TpMap(Sz(RX),Sz(RX)) R_X"),
    ),
    CatalogEntry(
        "(RYOY-P | OY,OX-T)", "conv2d", conv2d.ryoy_p_eyeriss, True, (12, 14),
        "Eyeriss-motivated row-stationary dataflow (needs clustering in MAESTRO).",
        ("TpMap(4,4) C", "TpMap(16,16) K", "SpMap(Sz(RY),1) Y", "TpMap(Sz(RX),1) X",
         "Cluster(Sz(RY),P)", "TpMap(1,1) C", "TpMap(1,1) K", "SpMap(1,1) Y",
         "SpMap(1,1) R_Y"),
    ),
    CatalogEntry(
        "(OYOX-P | OY,OX-T)", "conv2d", conv2d.oyox_p_shidiannao, True, (8, 8),
        "ShiDianNao-motivated output-stationary dataflow.",
        ("TpMap(1,1) K", "TpMap(1,1) C", "SpMap(Sz(RY),1) Y", "TpMap(10,8) X",
         "TpMap(Sz(RY),Sz(RY)) R_Y", "TpMap(Sz(RX),Sz(RX)) R_X", "Cluster(8,P)",
         "SpMap(Sz(RX),1) X"),
    ),
    CatalogEntry(
        "(KC-P | OY,OX-T)", "conv2d", conv2d.kc_p_nvdla, True, (8, 8),
        "NVDLA-motivated dataflow parallel over output and input channels.",
        ("SpMap(1,1) K", "TpMap(8,8) C", "TpMap(Sz(RY),Sz(RY)) R_Y",
         "TpMap(Sz(RX),Sz(RX)) R_X", "TpMap(Sz(RY),1) Y", "TpMap(Sz(RX),1) X",
         "Cluster(8,P)", "SpMap(1,1) C"),
    ),
    CatalogEntry(
        "(OXOY-P | OX,C-T)", "conv2d", conv2d.oxoy_p_ox_c, False, (8, 8),
        "Extra output-parallel dataflow used in the Figure 10 bandwidth study.",
    ),
    CatalogEntry(
        "(OXOY-P | C,RX-T)", "conv2d", conv2d.oxoy_p_c_rx, False, (8, 8),
        "Extra output-parallel dataflow used in the Figure 10 bandwidth study.",
    ),
    CatalogEntry(
        "(RYOY-P | OYOX-T)", "conv2d", conv2d.ryoy_p_oyox, False, (12, 14),
        "Row-stationary variant with the filter stationary across time-stamps.",
    ),
    # ---------------------------------------------------------------- MTTKRP
    CatalogEntry(
        "(IJ-P | J,IJL-T)", "mttkrp", mttkrp.ij_p, False, (8, 8),
        "Output-stationary skewed MTTKRP dataflow.",
    ),
    CatalogEntry(
        "(KJ-P | J,KJL-T)", "mttkrp", mttkrp.kj_p, False, (8, 8),
        "Skewed MTTKRP dataflow parallel over (k, j).",
    ),
    CatalogEntry(
        "(KL-P | L,KLJ-T)", "mttkrp", mttkrp.kl_p, False, (8, 8),
        "Skewed MTTKRP dataflow parallel over both reduction dimensions.",
    ),
    # ---------------------------------------------------------------- Jacobi-2D
    CatalogEntry(
        "(I-P | I,J-T)", "jacobi2d", jacobi.i_p, False, (64,),
        "Row-parallel Jacobi-2D dataflow on a 1-D array.",
    ),
    CatalogEntry(
        "(IJ-P | I,J-T)", "jacobi2d", jacobi.ij_p, False, (8, 8),
        "Tile-parallel Jacobi-2D dataflow on a 2-D array.",
    ),
    # ---------------------------------------------------------------- MMc
    CatalogEntry(
        "(IJ-P | J,IJL-T)", "mmc", mmc.ij_p, False, (8, 8),
        "Output-stationary skewed MMc dataflow.",
    ),
    CatalogEntry(
        "(KJ-P | J,KJL-T)", "mmc", mmc.kj_p, False, (8, 8),
        "Skewed MMc dataflow parallel over (k, j).",
    ),
]


def all_entries() -> tuple[CatalogEntry, ...]:
    """Every catalog entry, in Table III order."""
    return tuple(_ENTRIES)


def dataflows_for(kernel: str) -> tuple[CatalogEntry, ...]:
    """All entries of one kernel (``"gemm"``, ``"conv2d"``, ``"mttkrp"``, ...)."""
    kernel = kernel.lower()
    return tuple(entry for entry in _ENTRIES if entry.kernel == kernel)


def get_entry(kernel: str, name: str) -> CatalogEntry:
    """Look up one entry by kernel and Table III name."""
    for entry in _ENTRIES:
        if entry.kernel == kernel.lower() and entry.name == name:
            return entry
    known = [entry.name for entry in dataflows_for(kernel)]
    raise KeyError(f"no dataflow {name!r} for kernel {kernel!r}; known: {known}")


def get_dataflow(kernel: str, name: str, **kwargs) -> Dataflow:
    """Build one catalog dataflow by kernel and name."""
    return get_entry(kernel, name).build(**kwargs)
