"""2D-CONV dataflows from Table III (plus the extra Figure 10 variants).

The loop nest is ``S[k, c, ox, oy, rx, ry]`` for
``Y[k,ox,oy] += A[c, ox+rx, oy+ry] * B[k,c,rx,ry]``.

Table III only prints the innermost time-stamp dimensions; the factories here
add the remaining loop dimensions as outer time-stamp axes (in a fixed
canonical order) so every dataflow is a complete, injective assignment of
instances to spacetime stamps.
"""

from __future__ import annotations

from repro.core.dataflow import Dataflow
from repro.isl.expr import var
from repro.isl.space import Space


def _space() -> Space:
    return Space("S", ["k", "c", "ox", "oy", "rx", "ry"])


def _dims():
    return (var("k"), var("c"), var("ox"), var("oy"), var("rx"), var("ry"))


def kc_p_skewed(rows: int = 8, cols: int = 8) -> Dataflow:
    """``(KC-P | OY,KCOX-T)`` — skewed systolic dataflow (TENET-only in Table III)."""
    k, c, ox, oy, rx, ry = _dims()
    return Dataflow.from_exprs(
        "(KC-P | OY,KCOX-T)",
        _space(),
        [k % rows, c % cols],
        [rx, ry, k // rows, c // cols, oy, (k % rows) + (c % cols) + ox],
    )


def kox_p_skewed(rows: int = 8, cols: int = 8) -> Dataflow:
    """``(KOX-P | OY,KOXC-T)`` — skewed systolic dataflow (TENET-only in Table III)."""
    k, c, ox, oy, rx, ry = _dims()
    return Dataflow.from_exprs(
        "(KOX-P | OY,KOXC-T)",
        _space(),
        [k % rows, ox % cols],
        [rx, ry, k // rows, ox // cols, oy, (k % rows) + (ox % cols) + c],
    )


def kc_p_c_skewed(rows: int = 8, cols: int = 8) -> Dataflow:
    """``(KC-P | C,KOX-T)`` — skewed dataflow with the channel loop innermost but one."""
    k, c, ox, oy, rx, ry = _dims()
    return Dataflow.from_exprs(
        "(KC-P | C,KOX-T)",
        _space(),
        [k % rows, c % cols],
        [rx, ry, k // rows, oy, c // cols, (k % rows) + ox],
    )


def k_p(lanes: int = 64) -> Dataflow:
    """``(K-P | OX,OY-T)`` — output-channel parallel 1-D dataflow (data-centric expressible)."""
    k, c, ox, oy, rx, ry = _dims()
    return Dataflow.from_exprs(
        "(K-P | OX,OY-T)",
        _space(),
        [k % lanes],
        [rx, ry, k // lanes, c, ox, oy],
    )


def c_p(lanes: int = 64) -> Dataflow:
    """``(C-P | OY,OX-T)`` — input-channel parallel 1-D dataflow (data-centric expressible)."""
    k, c, ox, oy, rx, ry = _dims()
    return Dataflow.from_exprs(
        "(C-P | OY,OX-T)",
        _space(),
        [c % lanes],
        [rx, ry, c // lanes, k, oy, ox],
    )


def ryoy_p_eyeriss(
    rows: int = 12,
    cols: int = 14,
    filter_rows: int = 3,
    channel_fold: int | None = None,
) -> Dataflow:
    """``(RYOY-P | OY,OX-T)`` — Eyeriss-style row-stationary dataflow.

    The filter-row dimension ``ry`` and a slice of the channel dimension are
    packed onto the first PE-array axis with the affine transformation
    ``ry + filter_rows * (c mod channel_fold)`` (Section VI-E, where the paper
    uses ``ry + 3*(c%4)`` for a 3-row filter on 12 PE rows); the second axis
    carries ``oy``.  This packing is exactly what the data-centric notation
    cannot express without clustering tricks.
    """
    if channel_fold is None:
        channel_fold = max(1, rows // max(1, filter_rows))
    k, c, ox, oy, rx, ry = _dims()
    return Dataflow.from_exprs(
        "(RYOY-P | OY,OX-T)",
        _space(),
        [ry + filter_rows * (c % channel_fold), oy % cols],
        [rx, k // 16, k % 16, c // channel_fold, oy // cols, ox],
    )


def oyox_p_shidiannao(rows: int = 8, cols: int = 8) -> Dataflow:
    """``(OYOX-P | OY,OX-T)`` — ShiDianNao-style output-stationary dataflow."""
    k, c, ox, oy, rx, ry = _dims()
    return Dataflow.from_exprs(
        "(OYOX-P | OY,OX-T)",
        _space(),
        [oy % rows, ox % cols],
        [rx, ry, k, c, oy // rows, ox // cols],
    )


def kc_p_nvdla(rows: int = 8, cols: int = 8) -> Dataflow:
    """``(KC-P | OY,OX-T)`` — NVDLA-style dataflow parallel over output and input channels."""
    k, c, ox, oy, rx, ry = _dims()
    return Dataflow.from_exprs(
        "(KC-P | OY,OX-T)",
        _space(),
        [k % rows, c % cols],
        [rx, ry, k // rows, c // cols, oy, ox],
    )


def oxoy_p_ox_c(rows: int = 8, cols: int = 8) -> Dataflow:
    """``(OXOY-P | OX,C-T)`` — extra output-parallel dataflow used in Figure 10."""
    k, c, ox, oy, rx, ry = _dims()
    return Dataflow.from_exprs(
        "(OXOY-P | OX,C-T)",
        _space(),
        [ox % rows, oy % cols],
        [rx, ry, k, ox // rows, oy // cols, c],
    )


def oxoy_p_c_rx(rows: int = 8, cols: int = 8) -> Dataflow:
    """``(OXOY-P | C,RX-T)`` — extra output-parallel dataflow used in Figure 10."""
    k, c, ox, oy, rx, ry = _dims()
    return Dataflow.from_exprs(
        "(OXOY-P | C,RX-T)",
        _space(),
        [ox % rows, oy % cols],
        [ry, k, ox // rows, oy // cols, c, rx],
    )


def ryoy_p_oyox(
    rows: int = 12,
    cols: int = 14,
    filter_rows: int = 3,
    channel_fold: int | None = None,
) -> Dataflow:
    """``(RYOY-P | OYOX-T)`` — row-stationary variant iterating ``ox`` before the ``oy`` tile.

    Used in the Figure 10 bandwidth study; the filter stays stationary in a PE
    across consecutive time-stamps, which lowers the interconnect bandwidth of
    a 1-D systolic topology relative to a 2-D one.
    """
    if channel_fold is None:
        channel_fold = max(1, rows // max(1, filter_rows))
    k, c, ox, oy, rx, ry = _dims()
    return Dataflow.from_exprs(
        "(RYOY-P | OYOX-T)",
        _space(),
        [ry + filter_rows * (c % channel_fold), oy % cols],
        [rx, k // 16, k % 16, c // channel_fold, ox, oy // cols],
    )
