"""GEMM dataflows from Table III.

The loop nest is ``S[i, j, k]`` (``Y[i,j] += A[i,k] * B[k,j]``).  Five
dataflows are evaluated in the paper; the first three use a two-dimensional
space-stamp with a skewed (affine-transformed) innermost time-stamp and cannot
be written in the data-centric notation, the last two use a one-dimensional
space-stamp and can.
"""

from __future__ import annotations

from repro.core.dataflow import Dataflow
from repro.isl.expr import var


def ij_p(rows: int = 8, cols: int = 8) -> Dataflow:
    """``(IJ-P | J,IJK-T)`` — output-stationary systolic GEMM (TPU-style)."""
    i, j, k = var("i"), var("j"), var("k")
    return Dataflow.from_exprs(
        "(IJ-P | J,IJK-T)",
        _space(),
        [i % rows, j % cols],
        [i // rows, j // cols, (i % rows) + (j % cols) + k],
    )


def kj_p(rows: int = 8, cols: int = 8) -> Dataflow:
    """``(KJ-P | K,IJK-T)`` — skewed dataflow parallel over (k, j)."""
    i, j, k = var("i"), var("j"), var("k")
    return Dataflow.from_exprs(
        "(KJ-P | K,IJK-T)",
        _space(),
        [k % rows, j % cols],
        [j // cols, k // rows, i + (j % cols) + (k % rows)],
    )


def ik_p(rows: int = 8, cols: int = 8) -> Dataflow:
    """``(IK-P | K,IJK-T)`` — skewed dataflow parallel over (i, k)."""
    i, j, k = var("i"), var("j"), var("k")
    return Dataflow.from_exprs(
        "(IK-P | K,IJK-T)",
        _space(),
        [i % rows, k % cols],
        [i // rows, k // cols, j + (i % rows) + (k % cols)],
    )


def k_p(lanes: int = 64) -> Dataflow:
    """``(K-P | I,J-T)`` — 1-D reduction-parallel dataflow (data-centric expressible)."""
    i, j, k = var("i"), var("j"), var("k")
    return Dataflow.from_exprs(
        "(K-P | I,J-T)",
        _space(),
        [k % lanes],
        [k // lanes, i, j],
    )


def j_p(lanes: int = 64) -> Dataflow:
    """``(J-P | I,K-T)`` — 1-D output-column-parallel dataflow (data-centric expressible)."""
    i, j, k = var("i"), var("j"), var("k")
    return Dataflow.from_exprs(
        "(J-P | I,K-T)",
        _space(),
        [j % lanes],
        [j // lanes, i, k],
    )


def ij_p_output_stationary(rows: int = 8, cols: int = 8) -> Dataflow:
    """``(IJ-P | K-T)`` — non-skewed output-stationary GEMM (data-centric expressible).

    This is the strongest baseline the data-centric notation can express with
    two SpatialMaps (the blue line of Figure 6(b)): the same PE assignment as
    ``(IJ-P | J,IJK-T)`` but without the affine time skew, so operands cannot
    ride the systolic links.
    """
    i, j, k = var("i"), var("j"), var("k")
    return Dataflow.from_exprs(
        "(IJ-P | K-T)",
        _space(),
        [i % rows, j % cols],
        [i // rows, j // cols, k],
    )


def jk_p(rows: int = 8, cols: int = 8) -> Dataflow:
    """``(JK-P | K,IJK-T)`` — extra dataflow used in the bandwidth study (Figure 10)."""
    i, j, k = var("i"), var("j"), var("k")
    return Dataflow.from_exprs(
        "(JK-P | K,IJK-T)",
        _space(),
        [j % rows, k % cols],
        [j // rows, k // cols, i + (j % rows) + (k % cols)],
    )


def _space():
    from repro.isl.space import Space

    return Space("S", ["i", "j", "k"])
