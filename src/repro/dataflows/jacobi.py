"""Jacobi-2D dataflows from Table III.

The loop nest is ``S[i, j]`` for the five-point stencil
``Y[i,j] = (A[i,j] + A[i-1,j] + A[i,j-1] + A[i+1,j] + A[i,j+1]) / 5``.
"""

from __future__ import annotations

from repro.core.dataflow import Dataflow
from repro.isl.expr import var
from repro.isl.space import Space


def _space() -> Space:
    return Space("S", ["i", "j"])


def i_p(lanes: int = 64) -> Dataflow:
    """``(I-P | I,J-T)`` — one grid row per PE on a 1-D array."""
    i, j = var("i"), var("j")
    return Dataflow.from_exprs(
        "(I-P | I,J-T)",
        _space(),
        [i % lanes],
        [i // lanes, j],
    )


def ij_p(rows: int = 8, cols: int = 8) -> Dataflow:
    """``(IJ-P | I,J-T)`` — a 2-D tile of grid points per time-stamp."""
    i, j = var("i"), var("j")
    return Dataflow.from_exprs(
        "(IJ-P | I,J-T)",
        _space(),
        [i % rows, j % cols],
        [i // rows, j // cols],
    )
