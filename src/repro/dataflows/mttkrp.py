"""MTTKRP dataflows from Table III.

The loop nest is ``S[i, j, k, l]`` for ``Y[i,j] += A[i,k,l] * B[k,j] * C[l,j]``.
"""

from __future__ import annotations

from repro.core.dataflow import Dataflow
from repro.isl.expr import var
from repro.isl.space import Space


def _space() -> Space:
    return Space("S", ["i", "j", "k", "l"])


def ij_p(rows: int = 8, cols: int = 8) -> Dataflow:
    """``(IJ-P | J,IJL-T)`` — output-stationary skewed dataflow."""
    i, j, k, l = var("i"), var("j"), var("k"), var("l")
    return Dataflow.from_exprs(
        "(IJ-P | J,IJL-T)",
        _space(),
        [i % rows, j % cols],
        [k, i // rows, j // cols, (i % rows) + (j % cols) + l],
    )


def kj_p(rows: int = 8, cols: int = 8) -> Dataflow:
    """``(KJ-P | J,KJL-T)`` — skewed dataflow parallel over (k, j)."""
    i, j, k, l = var("i"), var("j"), var("k"), var("l")
    return Dataflow.from_exprs(
        "(KJ-P | J,KJL-T)",
        _space(),
        [k % rows, j % cols],
        [i, k // rows, j // cols, (k % rows) + (j % cols) + l],
    )


def kl_p(rows: int = 8, cols: int = 8) -> Dataflow:
    """``(KL-P | L,KLJ-T)`` — skewed dataflow parallel over the two reduction dims."""
    i, j, k, l = var("i"), var("j"), var("k"), var("l")
    return Dataflow.from_exprs(
        "(KL-P | L,KLJ-T)",
        _space(),
        [k % rows, l % cols],
        [i, k // rows, l // cols, (k % rows) + (l % cols) + j],
    )
