"""Dataflow design-space exploration (Section IV-A sizing and Section VI-B DSE).

Three pieces:

* :mod:`repro.dse.space` — the unpruned space: every 0/1 affine transformation
  of the loop iterators, whose size ``2^(n^2)`` the paper contrasts with the
  ``n! * C(n, 2)`` mappings reachable by the data-centric primitives.
* :mod:`repro.dse.pruning` — the pruned space of Section VI-B: enumerate the
  data movements the interconnect can support per tensor, then the possible
  boundary-PE data assignments.
* :mod:`repro.dse.explorer` — rank candidates under a chosen objective; the
  sweep itself (streaming batches, sharding, checkpoint/resume) runs through
  the shared :class:`repro.sweep.SweepSession`.
"""

from repro.dse.space import (
    data_centric_space_size,
    enumerate_binary_dataflows,
    relation_centric_space_size,
)
from repro.dse.pruning import paper_pruned_count, pruned_candidates
from repro.dse.explorer import DesignSpaceExplorer, ExplorationResult

__all__ = [
    "relation_centric_space_size",
    "data_centric_space_size",
    "enumerate_binary_dataflows",
    "pruned_candidates",
    "paper_pruned_count",
    "DesignSpaceExplorer",
    "ExplorationResult",
]
