"""Objective-driven exploration of candidate dataflows.

The explorer is a thin consumer of :class:`repro.core.engine.EvaluationEngine`:
it deduplicates structurally identical candidates, evaluates the batch (with
the shared relation cache, optional process-pool parallelism and optional
objective-aware early termination) and ranks the survivors.  Ranking is
deterministic: ties on the objective are broken by dataflow name, so equal
score candidates order stably across runs and across worker processes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.arch.spec import ArchSpec
from repro.core.dataflow import Dataflow
from repro.core.engine import (
    OBJECTIVES,
    EvaluationEngine,
    RelationCache,
    dataflow_signature,
)
from repro.core.metrics import PerformanceReport
from repro.errors import ExplorationError
from repro.tensor.operation import TensorOp

Objective = Callable[[PerformanceReport], float]

#: Backwards-compatible alias; the canonical registry lives in the engine.
_OBJECTIVES: dict[str, Objective] = OBJECTIVES


@dataclass
class ExplorationResult:
    """Outcome of a design-space exploration run."""

    objective: str
    evaluated: list[PerformanceReport] = field(default_factory=list)
    failures: list[tuple[str, str]] = field(default_factory=list)
    #: Candidates skipped by early termination: (name, lower bound on score).
    pruned: list[tuple[str, float]] = field(default_factory=list)
    #: Structurally identical candidates skipped before evaluation.
    duplicates: int = 0
    seconds: float = 0.0

    @property
    def best(self) -> PerformanceReport:
        if not self.evaluated:
            raise ExplorationError("no candidate dataflow could be evaluated")
        return self.evaluated[0]

    @property
    def num_candidates(self) -> int:
        return len(self.evaluated) + len(self.failures) + len(self.pruned) + self.duplicates

    def top(self, count: int = 5) -> list[PerformanceReport]:
        return self.evaluated[:count]

    def summary(self, count: int = 5) -> str:
        lines = [
            f"explored {self.num_candidates} candidates in {self.seconds:.1f}s "
            f"({len(self.failures)} invalid, {len(self.pruned)} pruned, "
            f"{self.duplicates} duplicate), objective = {self.objective}",
        ]
        for rank, report in enumerate(self.top(count), start=1):
            lines.append(
                f"  {rank}. {report.dataflow:30s} latency={report.latency_cycles:.0f} "
                f"util={report.average_pe_utilization:.2f} "
                f"sbw={report.scratchpad_bandwidth_bits():.1f} bit/cycle"
            )
        return "\n".join(lines)


class DesignSpaceExplorer:
    """Evaluate candidate dataflows with the evaluation engine and rank them."""

    def __init__(
        self,
        op: TensorOp,
        arch: ArchSpec,
        objective: str | Objective = "latency",
        *,
        max_instances: int = 4_000_000,
        chunk_size: int = 1 << 20,
        jobs: int = 1,
        cache: RelationCache | None = None,
        backend: str = "auto",
    ):
        self.op = op
        self.arch = arch
        if callable(objective):
            self.objective_name = getattr(objective, "__name__", "custom")
            self.objective = objective
            self._objective_key = None
        else:
            if objective not in OBJECTIVES:
                raise ExplorationError(
                    f"unknown objective {objective!r}; available: {sorted(OBJECTIVES)}"
                )
            self.objective_name = objective
            self.objective = OBJECTIVES[objective]
            self._objective_key = objective
        self.max_instances = max_instances
        self.chunk_size = chunk_size
        self.jobs = max(1, int(jobs))
        self.engine = EvaluationEngine(
            op,
            arch,
            max_instances=max_instances,
            chunk_size=chunk_size,
            jobs=self.jobs,
            cache=cache,
            backend=backend,
        )

    def explore(
        self,
        candidates: Iterable[Dataflow],
        *,
        early_termination: bool = False,
        dedupe: bool = True,
    ) -> ExplorationResult:
        """Analyse every candidate and return them sorted by the objective.

        Only repro modelling errors (``ModelError``/``DataflowError``/
        ``SpaceError``) mark a candidate as invalid; genuine bugs — a
        ``TypeError`` in a custom objective, ``KeyboardInterrupt`` —
        propagate to the caller.

        ``early_termination`` prunes candidates whose partial lower bound
        already exceeds the best score.  Only the *best* candidate is
        guaranteed unchanged: lower ranks may be pruned, so request a full
        sweep when the whole top-k matters.  It requires a named objective
        with a registered lower bound (``latency``/``edp`` bound from the
        compute delay; ``sbw``/``unique_volume`` from the cached per-tensor
        footprints) and is silently a no-op otherwise (in particular for
        callable objectives).
        """
        started = time.perf_counter()
        result = ExplorationResult(objective=self.objective_name)

        batch_candidates: list[Dataflow] = []
        if dedupe:
            seen: set[str] = set()
            for dataflow in candidates:
                signature = dataflow_signature(dataflow)
                if signature in seen:
                    result.duplicates += 1
                    continue
                seen.add(signature)
                batch_candidates.append(dataflow)
        else:
            batch_candidates = list(candidates)

        batch = self.engine.evaluate_batch(
            batch_candidates,
            objective=self._objective_key if early_termination else None,
            early_termination=early_termination,
        )
        for outcome in batch.outcomes:
            if outcome.report is not None:
                result.evaluated.append(outcome.report)
            elif outcome.pruned:
                result.pruned.append((outcome.name, outcome.bound))
            elif outcome.error is not None:
                result.failures.append((outcome.name, outcome.error))
        result.evaluated.sort(key=lambda report: (self.objective(report), report.dataflow))
        result.seconds = time.perf_counter() - started
        return result
