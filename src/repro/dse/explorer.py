"""Objective-driven exploration of candidate dataflows."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.arch.spec import ArchSpec
from repro.core.analyzer import TenetAnalyzer
from repro.core.dataflow import Dataflow
from repro.core.metrics import PerformanceReport
from repro.errors import ExplorationError
from repro.tensor.operation import TensorOp

Objective = Callable[[PerformanceReport], float]

_OBJECTIVES: dict[str, Objective] = {
    "latency": lambda report: report.latency_cycles,
    "energy": lambda report: report.energy.total_pj,
    "edp": lambda report: report.latency_cycles * report.energy.total_pj,
    "sbw": lambda report: report.scratchpad_bandwidth_bits(),
    "unique_volume": lambda report: float(report.unique_volume()),
}


@dataclass
class ExplorationResult:
    """Outcome of a design-space exploration run."""

    objective: str
    evaluated: list[PerformanceReport] = field(default_factory=list)
    failures: list[tuple[str, str]] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def best(self) -> PerformanceReport:
        if not self.evaluated:
            raise ExplorationError("no candidate dataflow could be evaluated")
        return self.evaluated[0]

    @property
    def num_candidates(self) -> int:
        return len(self.evaluated) + len(self.failures)

    def top(self, count: int = 5) -> list[PerformanceReport]:
        return self.evaluated[:count]

    def summary(self) -> str:
        lines = [
            f"explored {self.num_candidates} candidates in {self.seconds:.1f}s "
            f"({len(self.failures)} invalid), objective = {self.objective}",
        ]
        for rank, report in enumerate(self.top(), start=1):
            lines.append(
                f"  {rank}. {report.dataflow:30s} latency={report.latency_cycles:.0f} "
                f"util={report.average_pe_utilization:.2f} "
                f"sbw={report.scratchpad_bandwidth_bits():.1f} bit/cycle"
            )
        return "\n".join(lines)


class DesignSpaceExplorer:
    """Evaluate candidate dataflows with the TENET analyzer and rank them."""

    def __init__(
        self,
        op: TensorOp,
        arch: ArchSpec,
        objective: str | Objective = "latency",
        *,
        max_instances: int = 4_000_000,
        chunk_size: int = 1 << 20,
    ):
        self.op = op
        self.arch = arch
        if callable(objective):
            self.objective_name = getattr(objective, "__name__", "custom")
            self.objective = objective
        else:
            if objective not in _OBJECTIVES:
                raise ExplorationError(
                    f"unknown objective {objective!r}; available: {sorted(_OBJECTIVES)}"
                )
            self.objective_name = objective
            self.objective = _OBJECTIVES[objective]
        self.max_instances = max_instances
        self.chunk_size = chunk_size

    def explore(self, candidates: Iterable[Dataflow]) -> ExplorationResult:
        """Analyse every candidate and return them sorted by the objective."""
        started = time.perf_counter()
        result = ExplorationResult(objective=self.objective_name)
        for dataflow in candidates:
            try:
                report = TenetAnalyzer(
                    self.op,
                    dataflow,
                    self.arch,
                    max_instances=self.max_instances,
                    chunk_size=self.chunk_size,
                ).analyze()
            except Exception as error:  # noqa: BLE001 - candidates may be invalid by design
                result.failures.append((dataflow.name, f"{type(error).__name__}: {error}"))
                continue
            result.evaluated.append(report)
        result.evaluated.sort(key=self.objective)
        result.seconds = time.perf_counter() - started
        return result
