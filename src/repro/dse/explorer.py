"""Objective-driven exploration of candidate dataflows.

The explorer is a thin facade over :class:`repro.sweep.SweepSession`: it owns
an :class:`repro.core.engine.EvaluationEngine` for one (operation,
architecture) pair and hands every sweep — deduplication, streaming batches,
sharding, checkpoint/resume, ranking — to the shared session.  Ranking is
deterministic: ties on the objective are broken by dataflow name (and, in the
merged ranking, by structural signature), so equal-score candidates order
stably across runs, shards and worker processes.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.arch.spec import ArchSpec
from repro.core.dataflow import Dataflow
from repro.core.engine import OBJECTIVES, EvaluationEngine, RelationCache
from repro.core.metrics import PerformanceReport
from repro.sweep import CandidateSource, SweepResult, SweepSession
from repro.sweep.session import resolve_objective
from repro.tensor.operation import TensorOp

Objective = Callable[[PerformanceReport], float]

#: Backwards-compatible alias; the canonical registry lives in the engine.
_OBJECTIVES: dict[str, Objective] = OBJECTIVES

#: The exploration result *is* the sweep result; the old name stays exported.
ExplorationResult = SweepResult


class DesignSpaceExplorer:
    """Evaluate candidate dataflows with the evaluation engine and rank them."""

    def __init__(
        self,
        op: TensorOp,
        arch: ArchSpec,
        objective: str | Objective = "latency",
        *,
        max_instances: int = 4_000_000,
        chunk_size: int = 1 << 20,
        jobs: int = 1,
        cache: RelationCache | None = None,
        backend: str = "auto",
        device: str = "numpy",
        batch_size: int = 64,
        tune: str | dict | bool | None = "off",
    ):
        self.op = op
        self.arch = arch
        self.max_instances = max_instances
        self.chunk_size = chunk_size
        self.jobs = max(1, int(jobs))
        self.batch_size = int(batch_size)
        self.engine = EvaluationEngine(
            op,
            arch,
            max_instances=max_instances,
            chunk_size=chunk_size,
            jobs=self.jobs,
            cache=cache,
            backend=backend,
            device=device,
            tune=tune,
        )
        # Unknown objective names raise here, not at sweep time.
        self.objective_name, self.objective, _ = resolve_objective(objective)
        self._objective = objective

    def session(
        self,
        *,
        early_termination: bool = False,
        checkpoint: str | None = None,
        resume: bool = False,
        checkpoint_fsync: int | None = None,
        top_k: int | None = None,
    ) -> SweepSession:
        """A sweep session on this explorer's warm engine."""
        return SweepSession(
            self.engine,
            objective=self._objective,
            batch_size=self.batch_size,
            early_termination=early_termination,
            checkpoint=checkpoint,
            resume=resume,
            checkpoint_fsync=checkpoint_fsync,
            top_k=top_k,
        )

    def explore(
        self,
        candidates: CandidateSource | Iterable[Dataflow],
        *,
        early_termination: bool = False,
        dedupe: bool = True,
        shard: tuple[int, int] | None = None,
        checkpoint: str | None = None,
        resume: bool = False,
        checkpoint_fsync: int | None = None,
        top_k: int | None = None,
    ) -> ExplorationResult:
        """Sweep every candidate and return them ranked by the objective.

        Only repro modelling errors (``ModelError``/``DataflowError``/
        ``SpaceError``) mark a candidate as invalid; genuine bugs — a
        ``TypeError`` in a custom objective, ``KeyboardInterrupt`` —
        propagate to the caller.

        ``early_termination`` prunes candidates whose partial lower bound
        already exceeds the best score.  Only the *best* candidate is
        guaranteed unchanged: lower ranks may be pruned, so request a full
        sweep when the whole top-k matters.  It requires a named objective
        with a registered lower bound (``latency``/``edp`` bound from the
        compute delay; ``sbw``/``unique_volume`` from the cached per-tensor
        footprints, upgraded to distinct-group counts on link-free
        interconnects) and is silently a no-op otherwise (in particular for
        callable objectives).

        ``shard=(i, n)`` sweeps only the deterministic ``i``-th of ``n``
        signature-hash partitions; ``checkpoint``/``resume`` persist and
        restore per-candidate results (see :mod:`repro.sweep`).

        ``top_k`` bounds the in-memory ranking to the best ``k`` entries
        (``result.evaluated`` stays empty; attach a checkpoint for the full
        record).
        """
        session = self.session(
            early_termination=early_termination, checkpoint=checkpoint,
            resume=resume, checkpoint_fsync=checkpoint_fsync, top_k=top_k,
        )
        return session.run(candidates, shard=shard, dedupe=dedupe)
