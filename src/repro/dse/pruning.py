"""Pruned design space (Section VI-B).

The full relation-centric space is huge, so the paper prunes it by fixing the
*data movement* of each input tensor to one of the movements the interconnect
can implement (stationary, horizontal, vertical or diagonal systolic flow,
multicast along a row/column), and then enumerating the *data assignment* of
the boundary PEs.  For 2D-CONV this yields 12 legal movements per input tensor
and 180 boundary assignments, i.e. ``12 * 12 * 180 = 25 920`` dataflows, which
the paper explores in under an hour.

This module provides both the analytic count and a concrete candidate
generator.  The generator builds structurally distinct dataflows: it picks an
ordered pair of loop dimensions for the PE axes (possibly packing two
dimensions onto one axis), optionally skews the innermost time-stamp with the
space-stamp expressions (which realises the systolic movements), and orders
the remaining dimensions as outer time-stamp axes.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.core.dataflow import Dataflow
from repro.core.engine import dataflow_signature
from repro.isl.expr import AffExpr, var
from repro.tensor.operation import TensorOp


def paper_pruned_count(
    movements_per_tensor: int = 12,
    input_tensors: int = 2,
    boundary_assignments: int = 180,
) -> int:
    """The Section VI-B count: movements per input tensor times boundary assignments."""
    return (movements_per_tensor ** input_tensors) * boundary_assignments


def pruned_candidates(
    op: TensorOp,
    pe_dims: tuple[int, int] = (8, 8),
    *,
    allow_skew: bool = True,
    allow_packing: bool = False,
    max_candidates: int | None = None,
) -> Iterator[Dataflow]:
    """Generate structurally distinct candidate dataflows for a 2-D PE array.

    Every candidate maps one loop dimension (folded by the array extent) to
    each PE axis, optionally skews the innermost time-stamp by the two space
    expressions (the systolic movement family), and iterates the remaining
    dimensions as outer time loops in their original order.  With
    ``allow_packing`` an additional family packs two dimensions onto the first
    PE axis (the Eyeriss-style transformation).

    Structurally identical candidates (same space/time expression signature
    reached through different enumeration paths) are emitted only once, so
    ``max_candidates`` counts distinct dataflows.
    """
    dims = list(op.loop_dims)
    sizes = op.loop_sizes()
    rows, cols = pe_dims
    count = 0
    seen: set[str] = set()

    def emit(dataflow: Dataflow) -> Iterator[Dataflow]:
        nonlocal count
        signature = dataflow_signature(dataflow)
        if signature in seen:
            return
        seen.add(signature)
        count += 1
        yield dataflow

    for first, second in itertools.permutations(dims, 2):
        remaining = [dim for dim in dims if dim not in (first, second)]
        space_exprs = [var(first) % rows, var(second) % cols]
        outer = [var(first) // rows, var(second) // cols]
        for skew in ((False, True) if allow_skew else (False,)):
            for inner_dim in remaining or [None]:
                time_exprs: list[AffExpr] = []
                time_exprs.extend(var(dim) for dim in remaining if dim != inner_dim)
                time_exprs.extend(outer)
                if inner_dim is not None:
                    inner: AffExpr = var(inner_dim)
                else:
                    inner = AffExpr.constant(0)
                if skew:
                    inner = inner + space_exprs[0] + space_exprs[1]
                time_exprs.append(inner)
                name = f"({first.upper()}{second.upper()}-P | "
                name += f"{(inner_dim or 'const').upper()}{'+skew' if skew else ''}-T)"
                yield from emit(Dataflow.from_exprs(name, op.domain.space, space_exprs, time_exprs))
                if max_candidates is not None and count >= max_candidates:
                    return

    if allow_packing:
        for packed_a, packed_b, second in itertools.permutations(dims, 3):
            size_a = sizes[packed_a]
            if size_a == 0 or size_a > rows:
                continue
            fold = max(1, rows // size_a)
            remaining = [dim for dim in dims if dim not in (packed_a, packed_b, second)]
            space_exprs = [var(packed_a) + size_a * (var(packed_b) % fold), var(second) % cols]
            time_exprs = [var(dim) for dim in remaining]
            time_exprs.append(var(packed_b) // fold)
            time_exprs.append(var(second) // cols)
            name = f"({packed_a.upper()}{packed_b.upper()}-P | packed)"
            yield from emit(Dataflow.from_exprs(name, op.domain.space, space_exprs, time_exprs))
            if max_candidates is not None and count >= max_candidates:
                return
