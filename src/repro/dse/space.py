"""The unpruned dataflow design space (Section IV-A).

Under the fair-comparison assumptions of the paper — one MAC per PE, a
two-dimensional PE array, data-centric size/offset parameters fixed to 1, and
affine coefficients restricted to 0/1 — each relation-centric dataflow is an
``n x n`` 0/1 transformation matrix over the ``n`` loop iterators (the first
two rows are the space-stamp, the rest the time-stamp).  That gives
``2^(n^2)`` dataflows, against the ``n! * C(n, 2)`` arrangements reachable
with ``n`` data-centric primitives of which exactly two are SpatialMaps
(for GEMM: 512 vs 18, a 28x difference).
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, Sequence

from repro.core.dataflow import Dataflow
from repro.isl.expr import AffExpr, var
from repro.isl.space import Space


def relation_centric_space_size(num_loops: int) -> int:
    """``2^(n^2)``: one 0/1 coefficient per (stamp dimension, loop iterator) pair."""
    return 2 ** (num_loops * num_loops)


def data_centric_space_size(num_loops: int, spatial_maps: int = 2) -> int:
    """``n! * C(n, spatial_maps)``: primitive orderings times the SpatialMap choice."""
    return math.factorial(num_loops) * math.comb(num_loops, spatial_maps)


def _row_expr(row: Sequence[int], dims: Sequence[str]) -> AffExpr:
    expr = AffExpr.constant(0)
    for coefficient, dim in zip(row, dims):
        if coefficient:
            expr = expr + var(dim)
    return expr


def enumerate_binary_dataflows(
    dims: Sequence[str],
    pe_rank: int = 2,
    require_nonzero_rows: bool = True,
    limit: int | None = None,
) -> Iterator[Dataflow]:
    """Enumerate dataflows whose stamps are 0/1 combinations of the iterators.

    Each candidate is an ``n x n`` matrix of 0/1 coefficients: the first
    ``pe_rank`` rows form the space-stamp, the remaining rows the time-stamp.
    ``require_nonzero_rows`` skips matrices with an all-zero row (they waste a
    stamp dimension); ``limit`` caps the number of yielded candidates.
    """
    dims = list(dims)
    n = len(dims)
    space = Space("S", dims)
    row_choices = list(itertools.product((0, 1), repeat=n))
    if require_nonzero_rows:
        row_choices = [row for row in row_choices if any(row)]
    count = 0
    for matrix in itertools.product(row_choices, repeat=n):
        pe_exprs = [_row_expr(row, dims) for row in matrix[:pe_rank]]
        time_exprs = [_row_expr(row, dims) for row in matrix[pe_rank:]]
        if not time_exprs:
            time_exprs = [AffExpr.constant(0)]
        name = "T" + "".join("".join(str(c) for c in row) for row in matrix)
        yield Dataflow.from_exprs(name, space, pe_exprs, time_exprs)
        count += 1
        if limit is not None and count >= limit:
            return
