"""Exception hierarchy shared across the TENET reproduction."""


class TenetError(Exception):
    """Base class for all errors raised by this package."""


class SpaceError(TenetError):
    """Raised for inconsistent spaces or dimension mismatches."""


class ParseError(TenetError):
    """Raised when an ISL-like relation string or a C loop nest cannot be parsed."""


class UnboundedSetError(TenetError):
    """Raised when enumeration is requested for a set without finite bounds."""


class NotFunctionalError(TenetError):
    """Raised when a functional (single-valued) map is required but the map is a relation."""


class DataflowError(TenetError):
    """Raised when a dataflow relation is malformed (collisions, out-of-range PEs, ...)."""


class ArchitectureError(TenetError):
    """Raised for invalid spatial-architecture specifications."""


class ModelError(TenetError):
    """Raised when a performance-model computation cannot be carried out."""


class ExplorationError(TenetError):
    """Raised by the design-space exploration engine."""
