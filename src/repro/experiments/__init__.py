"""Experiment drivers: one module per table/figure of the paper's evaluation.

Every module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.common.ExperimentResult` whose rows reproduce the
corresponding table rows / figure series.  The ``benchmarks/`` directory wraps
these drivers with pytest-benchmark so the whole evaluation can be regenerated
with ``pytest benchmarks/ --benchmark-only``.

Experiments and their paper artefacts:

===========================  ==========================================
Module                       Paper artefact
===========================  ==========================================
``table1_features``          Table I (notation capability matrix)
``fig1_reuse_example``       Figure 1(c) (reuse-accuracy example)
``design_space_size``        Section IV-A design-space sizes
``table3_notations``         Table III (dataflow notations)
``fig6_latency_bandwidth``   Figure 6 (latency vs bandwidth)
``fig7_large_apps``          Figure 7 (large-scale applications)
``fig8_runtime``             Figure 8 (modeling runtime)
``fig9_metrics``             Figure 9 (critical metrics per dataflow)
``fig10_bandwidth``          Figure 10 (bandwidth per topology)
``fig11_accuracy``           Figure 11 (latency / utilisation accuracy)
``fig12_reuse``              Figure 12 (reuse-factor comparison)
``dse_experiment``           Section VI-B (pruned design-space exploration)
===========================  ==========================================
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
