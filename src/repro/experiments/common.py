"""Shared infrastructure for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.arch.interconnect import make_interconnect
from repro.arch.memory import MemoryHierarchy
from repro.arch.pe_array import PEArray
from repro.arch.spec import ArchSpec
from repro.core.engine import EvaluationEngine, RelationCache
from repro.sweep import SweepSession
from repro.workloads.dnn import Layer
from repro.workloads.scaling import scale_layer


@dataclass
class ExperimentResult:
    """Rows reproducing one table or figure, plus free-form headline numbers."""

    name: str
    description: str
    rows: list[dict] = field(default_factory=list)
    headline: dict[str, float | str] = field(default_factory=dict)

    def add_row(self, **values) -> None:
        self.rows.append(values)

    def column(self, key: str) -> list:
        return [row.get(key) for row in self.rows]

    def filter_rows(self, **criteria) -> list[dict]:
        selected = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                selected.append(row)
        return selected

    def table(self, columns: Sequence[str] | None = None, max_rows: int | None = None) -> str:
        """Render the rows as a fixed-width text table."""
        rows = self.rows[:max_rows] if max_rows else self.rows
        if not rows:
            return f"{self.name}: (no rows)"
        if columns is None:
            columns = list(rows[0].keys())
        widths = {column: len(str(column)) for column in columns}
        rendered: list[list[str]] = []
        for row in rows:
            cells = []
            for column in columns:
                value = row.get(column, "")
                if isinstance(value, float):
                    text = f"{value:.4g}"
                else:
                    text = str(value)
                widths[column] = max(widths[column], len(text))
                cells.append(text)
            rendered.append(cells)
        header = "  ".join(str(c).ljust(widths[c]) for c in columns)
        lines = [f"== {self.name} ==", self.description, header, "-" * len(header)]
        for cells in rendered:
            lines.append("  ".join(cell.ljust(widths[column]) for cell, column in zip(cells, columns)))
        if self.headline:
            lines.append("")
            for key, value in self.headline.items():
                lines.append(f"  {key}: {value}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.table()


def geometric_mean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def average(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def percent_reduction(baseline: float, improved: float) -> float:
    """``(baseline - improved) / baseline`` in percent (0 when baseline is 0)."""
    if baseline <= 0:
        return 0.0
    return (baseline - improved) / baseline * 100.0


def make_arch(
    pe_dims: Sequence[int] = (8, 8),
    interconnect: str = "2d-systolic",
    bandwidth_bits: float = 128.0,
    word_bits: int = 16,
    name: str | None = None,
    **interconnect_kwargs,
) -> ArchSpec:
    """Build an architecture from compact experiment parameters."""
    pe_array = PEArray(tuple(pe_dims))
    network = make_interconnect(interconnect, **interconnect_kwargs)
    memory = MemoryHierarchy.default(
        scratchpad_bandwidth_bits=bandwidth_bits, word_bits=word_bits
    )
    label = name or f"{'x'.join(str(d) for d in pe_dims)}-{network.name}"
    return ArchSpec(pe_array=pe_array, interconnect=network, memory=memory, name=label)


def scaled_layer_op(layer: Layer, max_instances: int):
    """Scale a workload layer to the enumeration budget and return (op, factor)."""
    scaled, factor = scale_layer(layer, max_instances)
    return scaled.to_op(), factor, scaled


#: Relation cache shared by every experiment driver in this process, so that
#: drivers sweeping several dataflows (or architectures) over the same
#: operation materialise its relations exactly once.
_SHARED_RELATION_CACHE = RelationCache(max_entries=8)


def shared_relation_cache() -> RelationCache:
    """The process-wide relation cache used by the experiment drivers."""
    return _SHARED_RELATION_CACHE


def make_engine(op, arch, *, jobs: int = 1, backend: str = "auto", **kwargs) -> EvaluationEngine:
    """Build an :class:`EvaluationEngine` wired to the shared relation cache."""
    kwargs.setdefault("cache", _SHARED_RELATION_CACHE)
    return EvaluationEngine(op, arch, jobs=jobs, backend=backend, **kwargs)


def make_session(
    op,
    arch,
    *,
    objective="latency",
    jobs: int = 1,
    backend: str = "auto",
    session_kwargs: Mapping | None = None,
    **engine_kwargs,
) -> SweepSession:
    """A :class:`SweepSession` on a shared-cache engine — the experiment
    drivers' one way to sweep candidates."""
    engine = make_engine(op, arch, jobs=jobs, backend=backend, **engine_kwargs)
    return SweepSession(engine, objective=objective, **dict(session_kwargs or {}))
