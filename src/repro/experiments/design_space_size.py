"""Section IV-A: size of the dataflow design space.

Under the fair-comparison assumptions, a relation-centric dataflow is an
``n x n`` 0/1 transformation matrix (``2^(n^2)`` choices), while the
data-centric notation arranges ``n`` primitives of which exactly two are
SpatialMaps (``n! * C(n, 2)`` choices).  For GEMM (n = 3) this is 512 vs 18 —
a 28x larger space.
"""

from __future__ import annotations

from repro.dse.space import (
    data_centric_space_size,
    enumerate_binary_dataflows,
    relation_centric_space_size,
)
from repro.experiments.common import ExperimentResult


def run(max_loops: int = 6, verify_enumeration_up_to: int = 3) -> ExperimentResult:
    result = ExperimentResult(
        name="design-space-size",
        description="Number of dataflows expressible by each notation "
                    "(Section IV-A; GEMM row should read 512 vs 18).",
    )
    for loops in range(2, max_loops + 1):
        relation = relation_centric_space_size(loops)
        data_centric = data_centric_space_size(loops)
        enumerated = None
        if loops <= verify_enumeration_up_to:
            dims = [f"d{i}" for i in range(loops)]
            enumerated = sum(
                1 for _ in enumerate_binary_dataflows(dims, pe_rank=2, require_nonzero_rows=False)
            )
        result.add_row(
            loops=loops,
            kernel="GEMM" if loops == 3 else ("2D-CONV" if loops == 6 else f"{loops}-loop"),
            relation_centric=relation,
            data_centric=data_centric,
            ratio=relation / data_centric,
            enumerated=enumerated if enumerated is not None else "-",
        )
    gemm_row = result.filter_rows(loops=3)[0]
    result.headline = {
        "gemm_relation_centric": gemm_row["relation_centric"],
        "gemm_data_centric": gemm_row["data_centric"],
        "gemm_ratio": f"{gemm_row['ratio']:.0f}x (paper: 28x)",
    }
    return result
