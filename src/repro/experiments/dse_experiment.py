"""Section VI-B: pruned design-space exploration.

The paper prunes the 2D-CONV space to ``12 * 12 * 180 = 25 920`` dataflows and
explores it in under an hour.  This driver reports the analytic count and runs
the concrete pruned generator (a structurally distinct subset) through the
shared sweep pipeline on a scaled CONV layer, reporting the best dataflows
found and the exploration throughput, from which the time to sweep the
paper-sized space is extrapolated.

The sweep is a plain :class:`repro.sweep.SweepSession` run: relations are
materialised once per operation (shared cache), candidates stream through the
engine in batches (``jobs`` worker processes, optional early termination), and
``shard``/``checkpoint`` make the driver a building block for multi-machine
runs — ``shard=(0, 2)`` on one machine and ``shard=(1, 2)`` on another sweep
the paper space with no coordination.
"""

from __future__ import annotations

from repro.dse.pruning import paper_pruned_count, pruned_candidates
from repro.experiments.common import ExperimentResult, make_arch, make_session
from repro.sweep import CandidateSource
from repro.tensor.kernels import conv2d


def run(
    conv_sizes: tuple[int, int, int, int, int, int] = (16, 16, 7, 7, 3, 3),
    max_candidates: int = 40,
    objective: str = "latency",
    jobs: int = 1,
    early_termination: bool = False,
    backend: str = "auto",
    shard: tuple[int, int] | None = None,
    checkpoint: str | None = None,
    resume: bool = False,
    top_k: int | None = None,
) -> ExperimentResult:
    result = ExperimentResult(
        name="dse-pruned-exploration",
        description="Pruned dataflow design-space exploration for 2D-CONV (Section VI-B).",
    )
    op = conv2d(*conv_sizes)
    arch = make_arch(pe_dims=(8, 8), interconnect="2d-systolic")
    session = make_session(
        op,
        arch,
        objective=objective,
        jobs=jobs,
        backend=backend,
        session_kwargs=dict(
            early_termination=early_termination, checkpoint=checkpoint,
            resume=resume, top_k=top_k,
        ),
    )
    source = CandidateSource(
        lambda: pruned_candidates(
            op, pe_dims=(8, 8), allow_packing=True, max_candidates=max_candidates
        ),
        name="pruned[conv2d]",
    )
    exploration = session.run(source, shard=shard)

    for rank, entry in enumerate(exploration.ranking[:10], start=1):
        result.add_row(
            rank=rank,
            dataflow=entry.name,
            latency_cycles=entry.data["latency_cycles"],
            avg_pe_utilization=entry.data["average_pe_utilization"],
            sbw_bits_per_cycle=entry.data["sbw_bits_per_cycle"],
        )

    # Projection basis: wall-clock per *evaluated* candidate (as the paper
    # reports), not per processed candidate — pruned candidates are cheap, so
    # the processed-based throughput would understate the full-space time.
    # ``evaluated_count`` (not len(evaluated)) also covers bounded top_k runs.
    evaluated_count = max(1, exploration.evaluated_count)
    seconds_per_candidate = exploration.seconds / evaluated_count
    projected_hours = seconds_per_candidate * paper_pruned_count() / 3600.0
    engine = session.engine
    stats = engine.stats
    cache_stats = engine.cache_stats()
    result.headline = {
        "candidates_evaluated": exploration.num_candidates,
        "invalid_candidates": len(exploration.failures),
        "pruned_candidates": len(exploration.pruned),
        "exploration_seconds": round(exploration.seconds, 1),
        "candidates_per_second": round(exploration.throughput, 1),
        "jobs": jobs,
        "backend": backend,
        "shard": f"{shard[0]}/{shard[1]}" if shard else "none",
        "engine_fast_path_tensors": stats["fast_path"],
        "relation_cache_hits": cache_stats["hits"] + cache_stats["worker_hits"],
        "relation_cache_misses": cache_stats["misses"] + cache_stats["worker_misses"],
        "paper_pruned_space": paper_pruned_count(),
        "projected_hours_for_paper_space": round(projected_hours, 2),
        "paper_reported": "25 920 dataflows explored in under one hour",
    }
    return result
