"""Section VI-B: pruned design-space exploration.

The paper prunes the 2D-CONV space to ``12 * 12 * 180 = 25 920`` dataflows and
explores it in under an hour.  This driver reports the analytic count and runs
the concrete pruned generator (a structurally distinct subset) through the
engine-backed explorer on a scaled CONV layer, reporting the best dataflows
found and the exploration throughput, from which the time to sweep the
paper-sized space is extrapolated.

The sweep exercises the shared evaluation engine: relations are materialised
once per operation, candidates can be evaluated by ``jobs`` worker processes,
and ``early_termination`` skips the volume counting of candidates whose
compute-delay lower bound already exceeds the best latency seen.
"""

from __future__ import annotations

from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.pruning import paper_pruned_count, pruned_candidates
from repro.experiments.common import ExperimentResult, make_arch, shared_relation_cache
from repro.tensor.kernels import conv2d


def run(
    conv_sizes: tuple[int, int, int, int, int, int] = (16, 16, 7, 7, 3, 3),
    max_candidates: int = 40,
    objective: str = "latency",
    jobs: int = 1,
    early_termination: bool = False,
    backend: str = "auto",
) -> ExperimentResult:
    result = ExperimentResult(
        name="dse-pruned-exploration",
        description="Pruned dataflow design-space exploration for 2D-CONV (Section VI-B).",
    )
    op = conv2d(*conv_sizes)
    arch = make_arch(pe_dims=(8, 8), interconnect="2d-systolic")
    explorer = DesignSpaceExplorer(
        op, arch, objective=objective, jobs=jobs, cache=shared_relation_cache(),
        backend=backend,
    )
    candidates = pruned_candidates(op, pe_dims=(8, 8), allow_packing=True,
                                   max_candidates=max_candidates)
    exploration = explorer.explore(candidates, early_termination=early_termination)

    for rank, report in enumerate(exploration.top(10), start=1):
        result.add_row(
            rank=rank,
            dataflow=report.dataflow,
            latency_cycles=report.latency_cycles,
            avg_pe_utilization=report.average_pe_utilization,
            sbw_bits_per_cycle=report.scratchpad_bandwidth_bits(),
        )

    evaluated = max(1, len(exploration.evaluated))
    seconds_per_candidate = exploration.seconds / evaluated
    projected_hours = seconds_per_candidate * paper_pruned_count() / 3600.0
    stats = explorer.engine.stats
    cache_stats = explorer.engine.cache_stats()
    result.headline = {
        "candidates_evaluated": exploration.num_candidates,
        "invalid_candidates": len(exploration.failures),
        "pruned_candidates": len(exploration.pruned),
        "exploration_seconds": round(exploration.seconds, 1),
        "jobs": jobs,
        "backend": backend,
        "engine_fast_path_tensors": stats["fast_path"],
        "relation_cache_hits": cache_stats["hits"] + cache_stats["worker_hits"],
        "relation_cache_misses": cache_stats["misses"] + cache_stats["worker_misses"],
        "paper_pruned_space": paper_pruned_count(),
        "projected_hours_for_paper_space": round(projected_hours, 2),
        "paper_reported": "25 920 dataflows explored in under one hour",
    }
    return result
