"""Figure 10: interconnect and scratchpad bandwidth per topology.

Selected dataflows of every kernel are analysed under three interconnect
topologies (2D-systolic, mesh, 1D-systolic) and the per-tensor IBW and SBW
requirements are reported, normalised per 1000 cycles of compute delay (the
paper normalises to the computation latency).  The observations to reproduce:
topologies mostly agree, except that dataflows with diagonal input reuse (the
row-stationary CONV dataflow, Jacobi-2D) gain interconnect reuse — hence lower
SBW — on a mesh.
"""

from __future__ import annotations

from repro.core.analyzer import analyze
from repro.dataflows.catalog import get_entry
from repro.experiments.common import ExperimentResult, make_arch
from repro.tensor.kernels import conv2d, gemm, jacobi2d, mmc, mttkrp

_TOPOLOGIES = ("2d-systolic", "mesh", "1d-systolic")

#: (kernel, dataflow name, PE dims)
_CASES = [
    ("conv2d", "(RYOY-P | OYOX-T)", (12, 14)),
    ("conv2d", "(OXOY-P | OX,C-T)", (8, 8)),
    ("conv2d", "(OYOX-P | OY,OX-T)", (8, 8)),
    ("conv2d", "(OXOY-P | C,RX-T)", (8, 8)),
    ("conv2d", "(KC-P | OY,OX-T)", (8, 8)),
    ("gemm", "(IJ-P | J,IJK-T)", (8, 8)),
    ("gemm", "(KJ-P | K,IJK-T)", (8, 8)),
    ("gemm", "(JK-P | K,IJK-T)", (8, 8)),
    ("mttkrp", "(IJ-P | J,IJL-T)", (8, 8)),
    ("mttkrp", "(KJ-P | J,KJL-T)", (8, 8)),
    ("mttkrp", "(KL-P | L,KLJ-T)", (8, 8)),
    ("jacobi2d", "(IJ-P | I,J-T)", (8, 8)),
]


def default_operations():
    return {
        "gemm": gemm(64, 64, 64),
        "conv2d": conv2d(16, 16, 14, 14, 3, 3),
        "mttkrp": mttkrp(32, 32, 16, 16),
        "mmc": mmc(32, 32, 16, 16),
        "jacobi2d": jacobi2d(66, 66),
    }


def run(max_instances: int = 4_000_000) -> ExperimentResult:
    result = ExperimentResult(
        name="fig10-bandwidth-by-topology",
        description="Per-tensor interconnect (IBW) and scratchpad (SBW) bandwidth for "
                    "selected dataflows under three interconnect topologies (Figure 10).",
    )
    operations = default_operations()
    mesh_gain_cases = []
    for kernel, dataflow_name, pe_dims in _CASES:
        op = operations[kernel]
        entry = get_entry(kernel, dataflow_name)
        dataflow = entry.build(rows=pe_dims[0], cols=pe_dims[1]) if len(pe_dims) == 2 else entry.build()
        sbw_by_topology = {}
        for topology in _TOPOLOGIES:
            arch = make_arch(pe_dims=pe_dims, interconnect=topology)
            report = analyze(op, dataflow, arch, max_instances=max_instances)
            row = dict(
                kernel=kernel,
                dataflow=dataflow_name,
                topology=topology,
                total_ibw_bits=report.interconnect_bandwidth_bits(),
                total_sbw_bits=report.scratchpad_bandwidth_bits(),
            )
            for tensor, bandwidth in report.bandwidth.per_tensor.items():
                row[f"ibw_{tensor}"] = bandwidth.interconnect_bits_per_cycle(report.word_bits)
                row[f"sbw_{tensor}"] = bandwidth.scratchpad_bits_per_cycle(report.word_bits)
            result.rows.append(row)
            sbw_by_topology[topology] = report.scratchpad_bandwidth_bits()
        if sbw_by_topology["mesh"] < sbw_by_topology["2d-systolic"] - 1e-9:
            mesh_gain_cases.append(f"{kernel} {dataflow_name}")

    result.headline = {
        "dataflows_where_mesh_lowers_sbw": ", ".join(mesh_gain_cases) or "none",
        "paper_observation": "diagonal-reuse dataflows (row-stationary CONV, Jacobi-2D) "
                             "benefit from the mesh topology; the others are insensitive",
    }
    return result
