"""Figure 11: latency and PE-utilisation estimation accuracy.

The paper compares TENET's and MAESTRO's estimates against the latencies
published for Eyeriss (row-stationary dataflow, AlexNet CONV1-5) and MAERI
(reduction-tree dataflow, VGG CONV1-1..5-1).  Those chips cannot be
re-measured here, so the reference simulator (:mod:`repro.sim`) provides the
ground truth: it executes the same dataflow explicitly with per-PE register
files, NoC forwarding and finite scratchpad bandwidth.

The claim to reproduce is the *ordering* of errors: the relation-centric
analytical model tracks the executed behaviour closely (because it walks
every time-stamp and models the packed PE assignment), while the polynomial
data-centric estimate misses the affine packing and reports larger errors.
"""

from __future__ import annotations

from repro.core.analyzer import analyze
from repro.dataflows.conv2d import oyox_p_shidiannao, ryoy_p_eyeriss
from repro.experiments.common import ExperimentResult, average, make_arch, scaled_layer_op
from repro.maestro.directives import DataCentricMapping, SpatialMap, TemporalMap
from repro.maestro.model import MaestroModel
from repro.sim.engine import simulate
from repro.workloads import alexnet, vgg16
from repro.workloads.dnn import ConvLayer


def _error_pct(estimate: float, golden: float) -> float:
    if golden == 0:
        return 0.0
    return abs(estimate - golden) / golden * 100.0


def _eyeriss_dataflow(layer: ConvLayer, rows: int = 12, cols: int = 14):
    return ryoy_p_eyeriss(rows=rows, cols=cols, filter_rows=layer.filter_y)


def _maestro_mapping_eyeriss() -> DataCentricMapping:
    """Row-stationary approximation without the channel packing (c fixed to one fold)."""
    return DataCentricMapping(
        "row-stationary (data-centric)",
        [TemporalMap("k"), TemporalMap("c"), SpatialMap("oy"), SpatialMap("ry"),
         TemporalMap("rx"), TemporalMap("ox")],
    )


def _maestro_mapping_maeri() -> DataCentricMapping:
    return DataCentricMapping(
        "reduction-tree (data-centric)",
        [SpatialMap("oy"), SpatialMap("ox"), TemporalMap("k"), TemporalMap("c"),
         TemporalMap("ry"), TemporalMap("rx")],
    )


def run(max_instances: int = 400_000, bandwidth_bits: float = 256.0) -> ExperimentResult:
    result = ExperimentResult(
        name="fig11-estimation-accuracy",
        description="Latency and PE-utilisation estimation error of TENET and the "
                    "data-centric baseline against the reference simulator (Figure 11).",
    )

    studies = [
        ("Eyeriss/AlexNet", alexnet(), "eyeriss"),
        ("MAERI/VGG16", vgg16(), "maeri"),
    ]
    tenet_latency_errors: list[float] = []
    baseline_latency_errors: list[float] = []
    tenet_util_errors: list[float] = []
    baseline_util_errors: list[float] = []

    for study_name, workload, style in studies:
        for layer in workload:
            op, factor, scaled = scaled_layer_op(layer, max_instances)
            if style == "eyeriss":
                pe_dims = (12, 14)
                dataflow = _eyeriss_dataflow(scaled)
                arch = make_arch(pe_dims=pe_dims, interconnect="mesh",
                                 bandwidth_bits=bandwidth_bits)
                mapping = _maestro_mapping_eyeriss()
            else:
                pe_dims = (8, 8)
                dataflow = oyox_p_shidiannao(rows=pe_dims[0], cols=pe_dims[1])
                arch = make_arch(pe_dims=pe_dims, interconnect="multicast",
                                 reach=pe_dims[1] - 1, bandwidth_bits=bandwidth_bits)
                mapping = _maestro_mapping_maeri()

            golden = simulate(op, dataflow, arch, max_instances=max_instances)
            tenet = analyze(op, dataflow, arch, max_instances=max_instances)
            baseline = MaestroModel(
                num_pes=pe_dims[0] * pe_dims[1], bandwidth_bits_per_cycle=bandwidth_bits
            ).analyze(op, mapping)

            tenet_latency_error = _error_pct(tenet.latency_cycles, golden.total_cycles)
            baseline_latency_error = _error_pct(baseline.latency_cycles, golden.total_cycles)
            tenet_util_error = _error_pct(
                tenet.average_pe_utilization, golden.average_pe_utilization
            )
            baseline_util_error = _error_pct(
                baseline.average_pe_utilization, golden.average_pe_utilization
            )
            tenet_latency_errors.append(tenet_latency_error)
            baseline_latency_errors.append(baseline_latency_error)
            tenet_util_errors.append(tenet_util_error)
            baseline_util_errors.append(baseline_util_error)

            result.add_row(
                study=study_name,
                layer=layer.name,
                scale_factor=round(factor, 1),
                golden_latency=golden.total_cycles,
                tenet_latency=tenet.latency_cycles,
                baseline_latency=baseline.latency_cycles,
                tenet_latency_error_pct=tenet_latency_error,
                baseline_latency_error_pct=baseline_latency_error,
                golden_utilization=golden.average_pe_utilization,
                tenet_utilization=tenet.average_pe_utilization,
                baseline_utilization=baseline.average_pe_utilization,
                tenet_util_error_pct=tenet_util_error,
                baseline_util_error_pct=baseline_util_error,
            )

    result.headline = {
        "tenet_latency_accuracy_pct": round(100 - average(tenet_latency_errors), 1),
        "baseline_latency_accuracy_pct": round(100 - average(baseline_latency_errors), 1),
        "tenet_util_error_pct": round(average(tenet_util_errors), 1),
        "baseline_util_error_pct": round(average(baseline_util_errors), 1),
        "paper_reported": "Eyeriss: 71.9% -> 89.6% latency accuracy; MAERI: 92.3% -> 96.3%",
    }
    return result
