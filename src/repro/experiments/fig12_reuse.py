"""Figure 12: reuse-factor comparison on four DNNs.

For each network the paper picks a representative dataflow and compares the
per-tensor ReuseFactor computed by TENET with MAESTRO's estimate.  The
behaviours to reproduce: the data-centric polynomial reports no reuse for the
output tensor in every case, and it overestimates input reuse whenever the
subscripts couple loop dimensions (the ``ox + rx`` halo) or the dataflow packs
several dimensions onto one PE axis; the depthwise and pointwise MobileNet
layers show the characteristic drop in input reuse.
"""

from __future__ import annotations

from repro.core.analyzer import analyze
from repro.dataflows.conv2d import oyox_p_shidiannao, ryoy_p_eyeriss
from repro.experiments.common import ExperimentResult, make_arch, scaled_layer_op
from repro.maestro.directives import DataCentricMapping, SpatialMap, TemporalMap
from repro.maestro.model import MaestroModel
from repro.workloads import alexnet, googlenet, mobilenet, vgg16
from repro.workloads.dnn import ConvLayer


def _configuration(network: str, layer: ConvLayer):
    """Dataflow, architecture and data-centric mapping used for one network."""
    if network == "AlexNet":
        dataflow = ryoy_p_eyeriss(rows=12, cols=14, filter_rows=layer.filter_y)
        arch = make_arch(pe_dims=(12, 14), interconnect="mesh")
        mapping = DataCentricMapping(
            "(RYOY-P | OY,OX-T)",
            [TemporalMap("k"), TemporalMap("c"), SpatialMap("oy"), SpatialMap("ry"),
             TemporalMap("rx"), TemporalMap("ox")],
        )
    elif network == "VGG16":
        dataflow = oyox_p_shidiannao()
        arch = make_arch(pe_dims=(8, 8), interconnect="mesh")
        mapping = DataCentricMapping(
            "(OYOX-P | OY,OX-T)",
            [SpatialMap("oy"), SpatialMap("ox"), TemporalMap("k"), TemporalMap("c"),
             TemporalMap("ry"), TemporalMap("rx")],
        )
    else:  # GoogLeNet and MobileNet use a channel-parallel, accumulation-inner dataflow
        dataflow = _kc_accumulation_inner()
        arch = make_arch(pe_dims=(8, 8), interconnect="2d-systolic")
        if layer.depthwise:
            mapping = DataCentricMapping(
                "(C-P | OY,OX-T)",
                [SpatialMap("c"), TemporalMap("ry"), TemporalMap("rx"),
                 TemporalMap("oy"), TemporalMap("ox")],
            )
        else:
            mapping = DataCentricMapping(
                "(KC-P | OY,OX-T)",
                [SpatialMap("k"), SpatialMap("c"), TemporalMap("ry"), TemporalMap("rx"),
                 TemporalMap("oy"), TemporalMap("ox")],
            )
    return dataflow, arch, mapping


def _kc_accumulation_inner(rows: int = 8, cols: int = 8):
    """``(KC-P | OY,OX,RY,RX-T)``: channel-parallel with the filter window innermost.

    Keeping the reduction window (ry, rx) in the innermost time-stamp axes makes
    the output accumulate in the PE registers across consecutive time-stamps,
    which is exactly the output reuse the data-centric polynomial cannot report.
    """
    from repro.core.dataflow import Dataflow
    from repro.isl.expr import var
    from repro.isl.space import Space

    k, c, ox, oy, rx, ry = (var(d) for d in ["k", "c", "ox", "oy", "rx", "ry"])
    return Dataflow.from_exprs(
        "(KC-P | OY,OX,RY,RX-T)",
        Space("S", ["k", "c", "ox", "oy", "rx", "ry"]),
        [k % rows, c % cols],
        [k // rows, c // cols, oy, ox, ry, rx],
    )


def _depthwise_fallback(layer: ConvLayer):
    """Depthwise layers have no K loop; use a channel-parallel dataflow instead."""
    from repro.core.dataflow import Dataflow
    from repro.isl.expr import var

    op = layer.to_op()
    c, ox, oy, rx, ry = (var(d) for d in ["c", "ox", "oy", "rx", "ry"])
    dataflow = Dataflow.from_exprs(
        "(C-P | OY,OX-T)", op.domain.space,
        [c % 8, oy % 8],
        [ry, rx, c // 8, oy // 8, ox],
    )
    return dataflow


def run(max_instances: int = 600_000, layers_per_network: int | None = None) -> ExperimentResult:
    result = ExperimentResult(
        name="fig12-reuse-factors",
        description="Per-tensor reuse factors: TENET relation counting vs the data-centric "
                    "polynomial (Figure 12).",
    )
    networks = [alexnet(), vgg16(), googlenet(), mobilenet()]
    output_zero_reuse = 0
    output_rows = 0

    for workload in networks:
        layers = list(workload)[:layers_per_network] if layers_per_network else list(workload)
        for layer in layers:
            op, factor, scaled = scaled_layer_op(layer, max_instances)
            dataflow, arch, mapping = _configuration(workload.name, scaled)
            if isinstance(scaled, ConvLayer) and scaled.depthwise:
                dataflow = _depthwise_fallback(scaled)
                op = scaled.to_op()
            report = analyze(op, dataflow, arch, max_instances=max_instances)
            baseline = MaestroModel(num_pes=arch.num_pes).analyze(op, mapping)

            for tensor in report.volumes:
                is_output = tensor in op.output_tensors
                tenet_reuse = report.reuse_factor(tensor)
                maestro_reuse = baseline.reuse_factor(tensor) if tensor in baseline.tensors else None
                if is_output and maestro_reuse is not None:
                    output_rows += 1
                    if maestro_reuse <= 1.0:
                        output_zero_reuse += 1
                result.add_row(
                    network=workload.name,
                    layer=layer.name,
                    scale_factor=round(factor, 1),
                    tensor=tensor,
                    role="output" if is_output else ("filter" if tensor == "B" else "input"),
                    tenet_reuse_factor=tenet_reuse,
                    maestro_reuse_factor=maestro_reuse,
                )

    result.headline = {
        "output_tensors_with_no_baseline_reuse": f"{output_zero_reuse}/{output_rows}",
        "paper_observation": "MAESTRO reports no reuse for the output tensor in all cases "
                             "and overestimates input/filter reuse for packed dataflows",
    }
    return result
