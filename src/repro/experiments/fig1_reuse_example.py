"""Figure 1(c): the reuse-accuracy motivating example.

A 1-D convolution ``Y[i] += A[i+j] * B[j]`` with ``i < 4`` and ``j < 3`` is
mapped with ``spatial map i`` / ``temporal map j``.  The skewed access to
``A`` means the actual reuse of ``A`` is 6 (the overlap of the sliding
windows), while the data-centric polynomial reports 8 because it cannot model
the movement of ``A`` at all.
"""

from __future__ import annotations

from repro.core.analyzer import analyze
from repro.core.dataflow import Dataflow
from repro.experiments.common import ExperimentResult, make_arch
from repro.maestro.directives import DataCentricMapping, SpatialMap, TemporalMap
from repro.maestro.model import MaestroModel
from repro.tensor.kernels import conv1d


def run(size_i: int = 4, size_j: int = 3) -> ExperimentResult:
    op = conv1d(size_i, size_j)
    dataflow = Dataflow.from_exprs("spatial-i/temporal-j", op, ["i"], ["j"])
    arch = make_arch(pe_dims=(size_i,), interconnect="mesh", name="1d-mesh")
    report = analyze(op, dataflow, arch)

    mapping = DataCentricMapping(
        "spatial map (1,1) i; temporal map (1,1) j",
        [SpatialMap("i"), TemporalMap("j")],
    )
    baseline = MaestroModel(num_pes=size_i).analyze(op, mapping)

    tenet_reuse = report.volumes["A"].reuse
    maestro_reuse = baseline.tensors["A"].total_accesses - baseline.tensors["A"].unique_volume

    result = ExperimentResult(
        name="fig1-reuse-example",
        description="Reuse of tensor A for the skewed 1D-CONV of Figure 1 "
                    "(paper: actual 6, data-centric estimate 8).",
    )
    result.add_row(model="TENET (relation-centric)", tensor="A",
                   total=report.volumes["A"].total, reuse=tenet_reuse,
                   unique=report.volumes["A"].unique)
    result.add_row(model="data-centric polynomial", tensor="A",
                   total=baseline.tensors["A"].total_accesses,
                   reuse=maestro_reuse,
                   unique=baseline.tensors["A"].unique_volume)
    result.headline = {
        "tenet_reuse_of_A": tenet_reuse,
        "data_centric_reuse_of_A": maestro_reuse,
        "paper_expected": "6 vs 8",
    }
    return result
