"""Figure 6: latency of TENET-only vs data-centric dataflows across bandwidths.

For each kernel the TENET-only dataflows (which need affine transformations)
are compared against the best dataflows expressible in the data-centric
notation, sweeping the scratchpad bandwidth.  At high bandwidth everything is
compute bound and the dataflows converge; as the bandwidth shrinks, the
skewed dataflows' better reuse (smaller UniqueVolume) keeps them compute bound
longer, which is where the paper's 37.4% (CONV) and 51.4% (GEMM) average
latency reductions come from.

The volume metrics are bandwidth independent, so each dataflow is analysed
once and the latency is re-derived per bandwidth point.
"""

from __future__ import annotations

from typing import Sequence

from repro.arch.memory import MemoryHierarchy
from repro.core.analyzer import analyze
from repro.core.latency import compute_latency
from repro.dataflows.catalog import get_entry
from repro.experiments.common import (
    ExperimentResult,
    average,
    make_arch,
    percent_reduction,
)
from repro.tensor.kernels import conv2d, gemm

DEFAULT_BANDWIDTHS = (64.0, 80.0, 96.0, 112.0, 128.0, 144.0, 160.0)

#: (catalog kernel, dataflow name, architecture kwargs, is TENET-only)
GEMM_CASES = [
    ("gemm", "(IJ-P | J,IJK-T)", dict(pe_dims=(8, 8), interconnect="2d-systolic"), True),
    ("gemm", "(KJ-P | K,IJK-T)", dict(pe_dims=(8, 8), interconnect="2d-systolic"), True),
    # The paper configures the data-centric baseline with a mesh, "since MAESTRO
    # models a hierarchical PE array with the assumption that each PE can
    # communicate with adjacent PEs" (Section VI-A).
    ("gemm", "(IJ-P | K-T)", dict(pe_dims=(8, 8), interconnect="mesh"), False),
    ("gemm", "(K-P | I,J-T)", dict(pe_dims=(64,), interconnect="multicast", reach=63), False),
    ("gemm", "(J-P | I,K-T)", dict(pe_dims=(64,), interconnect="multicast", reach=63), False),
]

CONV_CASES = [
    ("conv2d", "(KC-P | OY,KCOX-T)", dict(pe_dims=(8, 8), interconnect="2d-systolic"), True),
    ("conv2d", "(KOX-P | OY,KOXC-T)", dict(pe_dims=(8, 8), interconnect="2d-systolic"), True),
    ("conv2d", "(OYOX-P | OY,OX-T)", dict(pe_dims=(8, 8), interconnect="mesh"), False),
    ("conv2d", "(KC-P | OY,OX-T)", dict(pe_dims=(8, 8), interconnect="2d-systolic"), False),
]


def _sweep(op, cases, bandwidths, word_bits: int, max_instances: int, rows, kernel_label: str):
    reports = []
    for kernel, name, arch_kwargs, tenet_only in cases:
        entry = get_entry(kernel, name)
        dataflow = entry.build()
        arch = make_arch(word_bits=word_bits, **arch_kwargs)
        report = analyze(op, dataflow, arch, max_instances=max_instances)
        reports.append((name, tenet_only, report))

    reductions = []
    for bandwidth in bandwidths:
        memory = MemoryHierarchy.default(
            scratchpad_bandwidth_bits=bandwidth, word_bits=word_bits
        )
        latencies = {}
        for name, tenet_only, report in reports:
            latency = compute_latency(
                report.utilization,
                report.volumes,
                [t for t in report.volumes if t != "Y"],
                ["Y"],
                memory,
            ).latency
            latencies[name] = latency
            rows.append(dict(
                kernel=kernel_label,
                dataflow=name,
                notation="relation-only" if tenet_only else "data-centric",
                bandwidth_bits=bandwidth,
                latency_cycles=latency,
            ))
        best_tenet = min(lat for (name, tenet_only, _), lat in
                         zip(reports, latencies.values()) if tenet_only)
        best_data = min(lat for (name, tenet_only, _), lat in
                        zip(reports, latencies.values()) if not tenet_only)
        reductions.append(percent_reduction(best_data, min(best_tenet, best_data)))
    return average(reductions)


def run(
    bandwidths: Sequence[float] = DEFAULT_BANDWIDTHS,
    gemm_size: int = 64,
    conv_sizes: tuple[int, int, int, int, int, int] = (32, 32, 14, 14, 3, 3),
    word_bits: int = 16,
    max_instances: int = 4_000_000,
) -> ExperimentResult:
    result = ExperimentResult(
        name="fig6-latency-vs-bandwidth",
        description="Latency of TENET-only vs data-centric-expressible dataflows under a "
                    "scratchpad bandwidth sweep (Figure 6).",
    )

    gemm_op = gemm(gemm_size, gemm_size, gemm_size)
    gemm_reduction = _sweep(
        gemm_op, GEMM_CASES, bandwidths, word_bits, max_instances, result.rows, "GEMM"
    )

    conv_op = conv2d(*conv_sizes)
    conv_reduction = _sweep(
        conv_op, CONV_CASES, bandwidths, word_bits, max_instances, result.rows, "2D-CONV"
    )

    result.headline = {
        "gemm_avg_latency_reduction_pct": round(gemm_reduction, 1),
        "conv_avg_latency_reduction_pct": round(conv_reduction, 1),
        "paper_reported": "GEMM 51.4%, CONV 37.4% (average over the sweep)",
    }
    return result
