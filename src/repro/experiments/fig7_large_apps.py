"""Figure 7: latency and bandwidth on the large-scale applications of Table IV.

For every application (GoogLeNet, MobileNet, ALS, Transformer) each layer is
analysed twice:

* with the best TENET dataflow from a small relation-centric candidate set,
  swept through :class:`repro.sweep.SweepSession` (one warm engine per
  architecture, relations shared across architectures), and
* with the best data-centric mapping, evaluated by the polynomial baseline
  model (MAESTRO's estimates in the paper's figure).

Latency is normalised to the ideal latency (MACs / number of multipliers) and
bandwidth is the UniqueVolume normalised to the computation latency — the two
y-axes of Figure 7.  Layers are scaled down to the enumeration budget; the
scale factor is recorded per row.  The paper reports no MAESTRO bars for ALS
and Transformer (unsupported operators), which this driver mirrors.
"""

from __future__ import annotations

from repro.core.metrics import PerformanceReport
from repro.dataflows.catalog import get_entry
from repro.experiments.common import (
    ExperimentResult,
    average,
    make_arch,
    make_session,
    percent_reduction,
    scaled_layer_op,
)
from repro.maestro.directives import DataCentricMapping, SpatialMap, TemporalMap
from repro.maestro.model import MaestroModel
from repro.workloads import als, googlenet, mobilenet, transformer
from repro.workloads.dnn import ConvLayer, MmcLayer, MttkrpLayer

#: TENET candidate dataflows per kernel kind (catalog kernel, name, arch kwargs).
_TENET_CANDIDATES = {
    "conv2d": [
        ("conv2d", "(KC-P | OY,KCOX-T)", dict(pe_dims=(8, 8), interconnect="2d-systolic")),
        ("conv2d", "(KC-P | OY,OX-T)", dict(pe_dims=(8, 8), interconnect="2d-systolic")),
    ],
    "mttkrp": [
        ("mttkrp", "(IJ-P | J,IJL-T)", dict(pe_dims=(8, 8), interconnect="2d-systolic")),
        ("mttkrp", "(KL-P | L,KLJ-T)", dict(pe_dims=(8, 8), interconnect="2d-systolic")),
    ],
    "mmc": [
        ("mmc", "(IJ-P | J,IJL-T)", dict(pe_dims=(8, 8), interconnect="2d-systolic")),
        ("mmc", "(KJ-P | J,KJL-T)", dict(pe_dims=(8, 8), interconnect="2d-systolic")),
    ],
}

#: Best dataflows the data-centric notation can express, evaluated with the same
#: precise analyzer so the comparison isolates dataflow quality (Figure 7's bars).
_DATA_CENTRIC_CANDIDATES = {
    "conv2d": [
        ("conv2d", "(OYOX-P | OY,OX-T)", dict(pe_dims=(8, 8), interconnect="mesh")),
        ("conv2d", "(K-P | OX,OY-T)", dict(pe_dims=(64,), interconnect="multicast", reach=63)),
    ],
    "mttkrp": [],
    "mmc": [],
}


def _kernel_kind(layer) -> str:
    if isinstance(layer, ConvLayer):
        return "conv2d"
    if isinstance(layer, MttkrpLayer):
        return "mttkrp"
    if isinstance(layer, MmcLayer):
        return "mmc"
    return "gemm"


def _best_by_latency(
    op, specs, *, bandwidth_bits: float, max_instances: int
) -> PerformanceReport | None:
    """Best-latency report across (kernel, name, arch kwargs) candidate specs.

    Candidates sharing an architecture sweep together through one
    :class:`repro.sweep.SweepSession` (one warm engine per architecture; the
    operation's relations are shared across architectures by the common
    cache).  Candidates that do not fit a layer raise modelling errors
    (``ModelError``/``DataflowError``/``SpaceError``) which the sweep records
    as failures; unlike the pre-sweep driver's blanket ``except Exception``,
    any other exception is a real bug and propagates.
    """
    groups: dict[tuple, list] = {}
    for kernel, name, arch_kwargs in specs:
        key = tuple(sorted(arch_kwargs.items()))
        groups.setdefault(key, []).append((kernel, name, arch_kwargs))
    best: PerformanceReport | None = None
    for group in groups.values():
        arch = make_arch(bandwidth_bits=bandwidth_bits, **group[0][2])
        dataflows = [get_entry(kernel, name).build() for kernel, name, _ in group]
        session = make_session(
            op, arch, objective="latency", max_instances=max_instances
        )
        result = session.run(dataflows)
        if result.evaluated:
            report = result.evaluated[0]
            if best is None or report.latency_cycles < best.latency_cycles:
                best = report
    return best


def _maestro_mapping(layer) -> DataCentricMapping | None:
    """Best-effort data-centric mapping; None mirrors the unsupported cases."""
    if isinstance(layer, ConvLayer) and not layer.depthwise:
        return DataCentricMapping(
            "(KC-P | OY,OX-T) data-centric",
            [SpatialMap("k"), SpatialMap("c"), TemporalMap("ry"), TemporalMap("rx"),
             TemporalMap("oy"), TemporalMap("ox")],
        )
    if isinstance(layer, ConvLayer) and layer.depthwise:
        return DataCentricMapping(
            "(C-P | OY,OX-T) data-centric",
            [SpatialMap("c"), TemporalMap("ry"), TemporalMap("rx"),
             TemporalMap("oy"), TemporalMap("ox")],
        )
    # ALS (MTTKRP) and Transformer (MMc) are the paper's unsupported cases.
    return None


def run(
    max_instances: int = 1_000_000,
    bandwidth_bits: float = 128.0,
    num_pes: int = 64,
) -> ExperimentResult:
    result = ExperimentResult(
        name="fig7-large-apps",
        description="Normalised latency and scratchpad bandwidth of the Table IV "
                    "applications: best TENET dataflow vs data-centric baseline (Figure 7).",
    )
    applications = [googlenet(), mobilenet(), als(), transformer()]
    per_app_latency_reduction: dict[str, float] = {}
    per_app_bandwidth_reduction: dict[str, float] = {}

    for workload in applications:
        tenet_norm_latencies = []
        maestro_norm_latencies = []
        tenet_bandwidths = []
        maestro_bandwidths = []
        for layer in workload:
            op, factor, scaled = scaled_layer_op(layer, max_instances)
            kind = _kernel_kind(scaled)
            # The relation-centric space is a superset of the data-centric space, so
            # the data-centric candidates are legitimate TENET candidates as well.
            specs = _TENET_CANDIDATES.get(kind, []) + _DATA_CENTRIC_CANDIDATES.get(kind, [])
            if isinstance(scaled, ConvLayer) and scaled.depthwise:
                specs = []
            best = _best_by_latency(
                op, specs, bandwidth_bits=bandwidth_bits, max_instances=max_instances
            )
            if best is None:
                # Fall back to a generic output-parallel dataflow on a 1-D array.
                from repro.core.dataflow import Dataflow
                from repro.isl.expr import var

                dims = op.loop_dims
                lanes = num_pes
                pe_expr = var(dims[0]) % lanes
                time_exprs = [var(dims[0]) // lanes] + [var(d) for d in dims[1:]]
                dataflow = Dataflow.from_exprs("(row-P | fallback-T)", op.domain.space,
                                               [pe_expr], time_exprs)
                arch = make_arch(pe_dims=(lanes,), interconnect="multicast", reach=lanes - 1,
                                 bandwidth_bits=bandwidth_bits)
                session = make_session(
                    op, arch, objective="latency", max_instances=max_instances
                )
                best = session.evaluate(dataflow)

            tenet_norm_latencies.append(best.normalized_latency)
            tenet_bandwidths.append(best.scratchpad_bandwidth_bits())
            result.add_row(
                application=workload.name,
                layer=layer.name,
                scale_factor=round(factor, 1),
                framework="TENET",
                dataflow=best.dataflow,
                normalized_latency=best.normalized_latency,
                sbw_bits_per_cycle=best.scratchpad_bandwidth_bits(),
                avg_pe_utilization=best.average_pe_utilization,
            )

            # The data-centric side: the best dataflow its notation can express,
            # evaluated with the same precise engine (the paper's Figure 7 bars
            # compare the dataflows each notation can reach).
            data_centric_best = _best_by_latency(
                op,
                _DATA_CENTRIC_CANDIDATES.get(kind, []),
                bandwidth_bits=bandwidth_bits,
                max_instances=max_instances,
            )

            mapping = _maestro_mapping(scaled)
            if data_centric_best is not None:
                maestro_norm_latencies.append(data_centric_best.normalized_latency)
                maestro_bandwidths.append(data_centric_best.scratchpad_bandwidth_bits())
                result.add_row(
                    application=workload.name,
                    layer=layer.name,
                    scale_factor=round(factor, 1),
                    framework="data-centric best",
                    dataflow=data_centric_best.dataflow,
                    normalized_latency=data_centric_best.normalized_latency,
                    sbw_bits_per_cycle=data_centric_best.scratchpad_bandwidth_bits(),
                    avg_pe_utilization=data_centric_best.average_pe_utilization,
                )
            else:
                result.add_row(
                    application=workload.name,
                    layer=layer.name,
                    scale_factor=round(factor, 1),
                    framework="data-centric best",
                    dataflow="unsupported",
                    normalized_latency=None,
                    sbw_bits_per_cycle=None,
                    avg_pe_utilization=None,
                )

            if mapping is not None:
                baseline = MaestroModel(
                    num_pes=num_pes, bandwidth_bits_per_cycle=bandwidth_bits
                ).analyze(op, mapping)
                result.add_row(
                    application=workload.name,
                    layer=layer.name,
                    scale_factor=round(factor, 1),
                    framework="MAESTRO-estimate",
                    dataflow=baseline.mapping,
                    normalized_latency=baseline.normalized_latency,
                    sbw_bits_per_cycle=baseline.scratchpad_bandwidth_bits(),
                    avg_pe_utilization=baseline.average_pe_utilization,
                )

        if maestro_norm_latencies:
            per_app_latency_reduction[workload.name] = percent_reduction(
                average(maestro_norm_latencies), average(tenet_norm_latencies)
            )
            per_app_bandwidth_reduction[workload.name] = percent_reduction(
                average(maestro_bandwidths), average(tenet_bandwidths)
            )

    result.headline = {
        f"{app}_latency_reduction_pct": round(value, 1)
        for app, value in per_app_latency_reduction.items()
    }
    result.headline.update({
        f"{app}_bandwidth_reduction_pct": round(value, 1)
        for app, value in per_app_bandwidth_reduction.items()
    })
    result.headline["paper_reported"] = (
        "GoogLeNet 74% / 63%, MobileNet 22% / 54% latency / bandwidth reduction"
    )
    return result
