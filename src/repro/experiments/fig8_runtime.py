"""Figure 8: modeling runtime of TENET vs the polynomial baseline.

One dataflow is modeled for 2D-CONV and GEMM on 4x4, 8x8 and 16x16 PE arrays
under three interconnects.  The paper's observations to reproduce: the
polynomial model is roughly an order of magnitude faster (10^-2 s vs 10^-1 s
in the paper), TENET's runtime grows with interconnect complexity, and it is
comparatively insensitive to the PE-array size.

Beyond the paper, the driver also times the evaluation engine's warm path —
relations already materialised in the shared cache, as during a design-space
sweep — to quantify how much of the single-candidate cost is amortisable.
"""

from __future__ import annotations

import time

from repro.core.analyzer import analyze
from repro.dataflows.catalog import get_entry
from repro.experiments.common import ExperimentResult, make_arch, make_session
from repro.maestro.directives import DataCentricMapping, SpatialMap, TemporalMap
from repro.maestro.model import MaestroModel
from repro.tensor.kernels import conv2d, gemm

_INTERCONNECTS = ("1d-systolic", "2d-systolic", "mesh")
_PE_SIZES = ((4, 4), (8, 8), (16, 16))


def run(
    gemm_size: int = 32,
    conv_sizes: tuple[int, int, int, int, int, int] = (16, 16, 14, 14, 3, 3),
    repeats: int = 1,
    backend: str = "auto",
) -> ExperimentResult:
    result = ExperimentResult(
        name="fig8-modeling-runtime",
        description="Time to model a single dataflow: TENET relation counting vs the "
                    "polynomial data-centric baseline (Figure 8).",
    )
    kernels = {
        "GEMM": (gemm(gemm_size, gemm_size, gemm_size), ("gemm", "(IJ-P | J,IJK-T)")),
        "2D-CONV": (conv2d(*conv_sizes), ("conv2d", "(KC-P | OY,OX-T)")),
    }
    maestro_mappings = {
        "GEMM": DataCentricMapping("(K-P | I,J-T)", [SpatialMap("k"), TemporalMap("i"),
                                                     TemporalMap("j")]),
        "2D-CONV": DataCentricMapping("(K-P | OX,OY-T)", [SpatialMap("k"), TemporalMap("c"),
                                                          TemporalMap("rx"), TemporalMap("ry"),
                                                          TemporalMap("ox"), TemporalMap("oy")]),
    }

    tenet_times = []
    warm_times = []
    compiled_times = []
    maestro_times = []
    for kernel_label, (op, (catalog_kernel, dataflow_name)) in kernels.items():
        for pe_dims in _PE_SIZES:
            for interconnect in _INTERCONNECTS:
                dataflow = get_entry(catalog_kernel, dataflow_name).build(
                    rows=pe_dims[0], cols=pe_dims[1]
                )
                arch = make_arch(pe_dims=pe_dims, interconnect=interconnect)
                best = float("inf")
                for _ in range(repeats):
                    started = time.perf_counter()
                    analyze(op, dataflow, arch)
                    best = min(best, time.perf_counter() - started)
                tenet_times.append(best)
                result.add_row(
                    kernel=kernel_label, model="TENET", pe_array=f"{pe_dims[0]}x{pe_dims[1]}",
                    interconnect=interconnect, seconds=best,
                )

                # Warm sweep path: a sweep session whose engine has the
                # relations cached, report memo disabled so the measurement
                # covers the real per-candidate evaluation; once on the
                # interpreted backend, once on the compiled one.
                session = make_session(op, arch, memoize=False, backend="interp")
                session.evaluate(dataflow)
                best_warm = float("inf")
                for _ in range(max(repeats, 2)):
                    started = time.perf_counter()
                    session.evaluate(dataflow)
                    best_warm = min(best_warm, time.perf_counter() - started)
                warm_times.append(best_warm)
                result.add_row(
                    kernel=kernel_label, model="TENET-cached",
                    pe_array=f"{pe_dims[0]}x{pe_dims[1]}",
                    interconnect=interconnect, seconds=best_warm,
                )

                compiled = make_session(op, arch, memoize=False, backend=backend)
                compiled.evaluate(dataflow)
                best_compiled = float("inf")
                for _ in range(max(repeats, 2)):
                    started = time.perf_counter()
                    compiled.evaluate(dataflow)
                    best_compiled = min(best_compiled, time.perf_counter() - started)
                compiled_times.append(best_compiled)
                result.add_row(
                    kernel=kernel_label, model=f"TENET-{backend}",
                    pe_array=f"{pe_dims[0]}x{pe_dims[1]}",
                    interconnect=interconnect, seconds=best_compiled,
                )

            baseline_model = MaestroModel(num_pes=pe_dims[0] * pe_dims[1])
            best = float("inf")
            for _ in range(max(repeats, 3)):
                started = time.perf_counter()
                baseline_model.analyze(op, maestro_mappings[kernel_label])
                best = min(best, time.perf_counter() - started)
            maestro_times.append(best)
            result.add_row(
                kernel=kernel_label, model="MAESTRO-style", pe_array=f"{pe_dims[0]}x{pe_dims[1]}",
                interconnect="n/a", seconds=best,
            )

    avg_tenet = sum(tenet_times) / len(tenet_times)
    avg_warm = sum(warm_times) / len(warm_times)
    avg_compiled = sum(compiled_times) / len(compiled_times)
    avg_maestro = sum(maestro_times) / len(maestro_times)
    result.headline = {
        "avg_tenet_seconds": round(avg_tenet, 4),
        "avg_tenet_cached_seconds": round(avg_warm, 4),
        "cached_speedup": round(avg_tenet / avg_warm, 2) if avg_warm else float("inf"),
        "avg_tenet_compiled_seconds": round(avg_compiled, 4),
        "compiled_backend": backend,
        "compiled_speedup": round(avg_tenet / avg_compiled, 2) if avg_compiled else float("inf"),
        "avg_baseline_seconds": round(avg_maestro, 6),
        "slowdown_factor": round(avg_tenet / avg_maestro, 1) if avg_maestro else float("inf"),
        "paper_reported": "TENET ~1e-1 s, MAESTRO ~1e-2 s per dataflow",
    }
    return result
