"""Figure 9: critical metrics for every Table III dataflow.

For each kernel every catalog dataflow is analysed under a systolic
interconnect (as in the paper) and the figure's five series are reported:
normalised temporal and spatial reuse of the input and output tensors, maximum
and average PE utilisation, and latency.
"""

from __future__ import annotations

from repro.core.analyzer import analyze
from repro.dataflows.catalog import dataflows_for
from repro.experiments.common import ExperimentResult, make_arch
from repro.tensor.kernels import conv2d, gemm, jacobi2d, mmc, mttkrp


def default_operations(scale: float = 1.0):
    """The kernel instances evaluated by the figure (modest sizes by default)."""
    factor = max(1, int(round(scale)))
    return {
        "gemm": gemm(64 * factor, 64, 64),
        "conv2d": conv2d(16 * factor, 16, 14, 14, 3, 3),
        "mttkrp": mttkrp(32 * factor, 32, 16, 16),
        "mmc": mmc(32 * factor, 32, 16, 16),
        "jacobi2d": jacobi2d(66, 66),
    }


def run(scale: float = 1.0, max_instances: int = 4_000_000) -> ExperimentResult:
    result = ExperimentResult(
        name="fig9-critical-metrics",
        description="Normalised temporal/spatial reuse, PE utilisation and latency for "
                    "every Table III dataflow under a systolic interconnect (Figure 9).",
    )
    operations = default_operations(scale)
    for kernel, op in operations.items():
        instances = op.num_instances()
        for entry in dataflows_for(kernel):
            dataflow = entry.build()
            interconnect = "2d-systolic" if len(entry.preferred_pe_dims) == 2 else "1d-systolic"
            arch = make_arch(pe_dims=entry.preferred_pe_dims, interconnect=interconnect)
            report = analyze(op, dataflow, arch, max_instances=max_instances)
            row = dict(
                kernel=kernel,
                dataflow=entry.name,
                latency_cycles=report.latency_cycles,
                avg_pe_utilization=report.average_pe_utilization,
                max_pe_utilization=report.max_pe_utilization,
            )
            for tensor, volume in report.volumes.items():
                row[f"temporal_reuse_{tensor}"] = volume.temporal_reuse / instances
                row[f"spatial_reuse_{tensor}"] = volume.spatial_reuse / instances
                row[f"reuse_factor_{tensor}"] = volume.reuse_factor
            result.rows.append(row)
    best_gemm = min(
        (row for row in result.rows if row["kernel"] == "gemm"),
        key=lambda row: row["latency_cycles"],
    )
    result.headline = {
        "best_gemm_dataflow": best_gemm["dataflow"],
        "observation": "2-D space-stamp GEMM dataflows outperform 1-D ones; high reuse "
                       "plus high utilisation is required for low latency (Section VI-C)",
    }
    return result
