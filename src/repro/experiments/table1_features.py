"""Table I: qualitative capability matrix of the four notations.

The table itself is qualitative; this driver regenerates it from the
capability flags the reproduction actually implements, so the row for the
relation-centric notation is backed by code (each "yes" cell names the module
that provides the capability).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult

_FEATURES = [
    # feature, compute-centric, data-centric, STT, relation-centric (module that backs it)
    ("instance execution sequence", "loop order", "temporal maps", "time-stamp vector",
     "multi-dim time-stamp (repro.core.dataflow)"),
    ("PE workload assignment", "parallel directive", "spatial maps", "space-stamp matrix",
     "multi-dim space-stamp (repro.core.dataflow)"),
    ("affine loop transformation", "no", "no", "yes", "yes (repro.isl.expr)"),
    ("spatial architectures", "yes", "yes", "no", "yes (repro.arch)"),
    ("PE interconnection", "no", "no", "no", "yes (repro.arch.interconnect)"),
    ("precise reuse analysis", "no", "no", "no", "yes (repro.core.volumes)"),
    ("data assignment analysis", "no", "yes", "no", "yes (repro.core.assignment)"),
    ("bandwidth analysis", "no", "yes", "no", "yes (repro.core.bandwidth)"),
    ("latency / energy modeling", "partial", "yes", "no",
     "yes (repro.core.latency, repro.core.energy_model)"),
    ("general tensor apps", "no", "no", "yes", "yes (repro.tensor)"),
]


def run() -> ExperimentResult:
    result = ExperimentResult(
        name="table1-features",
        description="Notation capability matrix (Table I); the relation-centric column "
                    "cites the module of this reproduction providing each capability.",
    )
    for feature, compute, data, stt, relation in _FEATURES:
        result.add_row(
            feature=feature,
            compute_centric=compute,
            data_centric=data,
            space_time_transform=stt,
            relation_centric=relation,
        )
    result.headline = {"features_supported_by_relation_centric": len(_FEATURES)}
    return result
