"""Table III: the dataflow notation catalog.

Regenerates the relation-centric notation strings (space-stamp and time-stamp
relations) for every catalog dataflow, alongside whether a data-centric
notation exists for it.
"""

from __future__ import annotations

from repro.dataflows.catalog import all_entries
from repro.experiments.common import ExperimentResult


def run() -> ExperimentResult:
    result = ExperimentResult(
        name="table3-notations",
        description="Relation-centric notation of every Table III dataflow, with the "
                    "data-centric expressibility flag ('x' rows in the paper).",
    )
    tenet_only = 0
    for entry in all_entries():
        dataflow = entry.build()
        if not entry.data_centric_expressible:
            tenet_only += 1
        result.add_row(
            kernel=entry.kernel,
            name=entry.name,
            space_stamp="PE[" + ", ".join(str(e) for e in dataflow.pe_exprs) + "]",
            time_stamp="T[" + ", ".join(str(e) for e in dataflow.time_exprs) + "]",
            data_centric="yes" if entry.data_centric_expressible else "x",
            preferred_pe="x".join(str(d) for d in entry.preferred_pe_dims),
        )
    result.headline = {
        "total_dataflows": len(result.rows),
        "tenet_only_dataflows": tenet_only,
    }
    return result
