"""Integer sets and quasi-affine relations (the ISL/Barvinok substitute).

The paper implements its performance analysis on top of the ISL and Barvinok
C libraries.  Those libraries are used for two things only:

1. representing relations between named integer tuples (loop instances,
   PE coordinates, time-stamps, tensor elements), and
2. counting the cardinality of sets and relations.

This package provides both from scratch in Python:

* :class:`~repro.isl.space.Space` — a named tuple space such as ``S[i, j, k]``.
* :class:`~repro.isl.expr.AffExpr` — quasi-affine expressions: linear
  combinations of dimensions plus ``floor(e / d)``, ``e mod d`` and ``abs(e)``
  terms, which is exactly the expression family the paper's dataflows use.
* :class:`~repro.isl.constraint.Constraint` — ``expr == 0`` / ``expr >= 0``.
* :class:`~repro.isl.iset.IntSet` — a set of integer points in a space.
* :class:`~repro.isl.imap.IntMap` — a relation between two spaces, with a
  fast path for *functional* maps (``out = f(in)``), which covers dataflow,
  access and assignment relations.
* :class:`~repro.isl.union.UnionSet` / :class:`~repro.isl.union.UnionMap`.
* :mod:`repro.isl.parser` — an ISL-like string syntax, e.g.
  ``"{ S[i,j,k] -> PE[i mod 8, j mod 8] : 0 <= i < 64 }"``.
* :mod:`repro.isl.enumerate` / :mod:`repro.isl.count` — vectorised point
  enumeration and exact cardinality counting, the stand-in for Barvinok.
"""

from repro.isl.space import Space
from repro.isl.expr import AffExpr, var, const
from repro.isl.constraint import Constraint
from repro.isl.point import Point
from repro.isl.iset import IntSet
from repro.isl.imap import IntMap
from repro.isl.union import UnionMap, UnionSet
from repro.isl.parser import parse_set, parse_map, parse_expr
from repro.isl.count import count_points
from repro.isl.builders import box_set, identity_map, functional_map

__all__ = [
    "Space",
    "AffExpr",
    "var",
    "const",
    "Constraint",
    "Point",
    "IntSet",
    "IntMap",
    "UnionMap",
    "UnionSet",
    "parse_set",
    "parse_map",
    "parse_expr",
    "count_points",
    "box_set",
    "identity_map",
    "functional_map",
]
