"""Convenience constructors for common sets and maps."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.isl.expr import AffExpr
from repro.isl.imap import IntMap
from repro.isl.iset import IntSet
from repro.isl.space import Space


def box_set(name: str, bounds: Mapping[str, tuple[int, int]] | Mapping[str, int]) -> IntSet:
    """Build a box set from either ``{dim: (lo, hi)}`` or ``{dim: size}``.

    ``{dim: size}`` is shorthand for ``0 <= dim < size``.
    """
    normalised: dict[str, tuple[int, int]] = {}
    for dim, value in bounds.items():
        if isinstance(value, tuple):
            normalised[dim] = (int(value[0]), int(value[1]))
        else:
            normalised[dim] = (0, int(value))
    space = Space(name, list(bounds.keys()))
    return IntSet.box(space, normalised)


def identity_map(space: Space, domain: IntSet | None = None) -> IntMap:
    """The identity relation on a space."""
    return IntMap.identity(space, domain=domain)


def functional_map(
    in_space: Space | IntSet,
    out_name: str,
    exprs: Sequence[AffExpr | int],
    out_dims: Sequence[str] | None = None,
) -> IntMap:
    """Build a functional map; accepts either a space or a domain set for the input."""
    if isinstance(in_space, IntSet):
        return IntMap.from_exprs(in_space.space, out_name, exprs, domain=in_space, out_dims=out_dims)
    return IntMap.from_exprs(in_space, out_name, exprs, out_dims=out_dims)
