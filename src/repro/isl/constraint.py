"""Constraints over quasi-affine expressions.

A :class:`Constraint` is either ``expr == 0`` or ``expr >= 0``.  Sets and
relations are conjunctions of constraints; disjunctions are represented one
level up as unions (:mod:`repro.isl.union`), mirroring ISL's basic-set /
union-set split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.isl.expr import AffExpr, ExprLike, _as_expr

EQ = "eq"
GE = "ge"


@dataclass(frozen=True)
class Constraint:
    """``expr == 0`` (kind ``"eq"``) or ``expr >= 0`` (kind ``"ge"``)."""

    expr: AffExpr
    kind: str = GE

    def __post_init__(self):
        if self.kind not in (EQ, GE):
            raise ValueError(f"unknown constraint kind {self.kind!r}")

    # -- constructors --------------------------------------------------------

    @staticmethod
    def eq(lhs: ExprLike, rhs: ExprLike = 0) -> "Constraint":
        """``lhs == rhs``."""
        return Constraint(_as_expr(lhs) - _as_expr(rhs), EQ)

    @staticmethod
    def ge(lhs: ExprLike, rhs: ExprLike = 0) -> "Constraint":
        """``lhs >= rhs``."""
        return Constraint(_as_expr(lhs) - _as_expr(rhs), GE)

    @staticmethod
    def le(lhs: ExprLike, rhs: ExprLike = 0) -> "Constraint":
        """``lhs <= rhs``."""
        return Constraint(_as_expr(rhs) - _as_expr(lhs), GE)

    @staticmethod
    def lt(lhs: ExprLike, rhs: ExprLike) -> "Constraint":
        """``lhs < rhs`` (integer semantics: ``lhs <= rhs - 1``)."""
        return Constraint(_as_expr(rhs) - _as_expr(lhs) - 1, GE)

    @staticmethod
    def gt(lhs: ExprLike, rhs: ExprLike) -> "Constraint":
        """``lhs > rhs`` (integer semantics: ``lhs >= rhs + 1``)."""
        return Constraint(_as_expr(lhs) - _as_expr(rhs) - 1, GE)

    # -- evaluation -------------------------------------------------------------

    def satisfied(self, env: Mapping[str, int]) -> bool:
        value = self.expr.evaluate(env)
        return value == 0 if self.kind == EQ else value >= 0

    def satisfied_vec(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        value = self.expr.evaluate_vec(env)
        return value == 0 if self.kind == EQ else value >= 0

    # -- transformation -----------------------------------------------------------

    def substitute(self, mapping: Mapping[str, AffExpr]) -> "Constraint":
        return Constraint(self.expr.substitute(mapping), self.kind)

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        return Constraint(self.expr.rename(mapping), self.kind)

    def variables(self) -> frozenset[str]:
        return self.expr.variables()

    @property
    def is_trivially_true(self) -> bool:
        if not self.expr.is_constant:
            return False
        return self.expr.const == 0 if self.kind == EQ else self.expr.const >= 0

    @property
    def is_trivially_false(self) -> bool:
        if not self.expr.is_constant:
            return False
        return self.expr.const != 0 if self.kind == EQ else self.expr.const < 0

    # -- formatting ------------------------------------------------------------------

    def __str__(self) -> str:
        op = "=" if self.kind == EQ else ">="
        return f"{self.expr} {op} 0"
