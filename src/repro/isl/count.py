"""Exact cardinality counting (the Barvinok substitute).

Counting proceeds in two steps:

1. **Factoring.**  Dimensions that never appear together in a multi-variable
   constraint are independent, so the set factors into a product of lower
   dimensional sets.  Each connected component of the "appears in the same
   constraint" graph is counted separately and the results are multiplied.
   Dimensions that only appear in single-variable (box) constraints contribute
   their extent directly.
2. **Enumeration.**  Each component is counted by enumerating its bounding box
   in chunks and applying the component's constraints as vectorised
   predicates.

For the bounded quasi-affine sets used by the paper's dataflows this yields the
same exact counts Barvinok would produce symbolically.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import UnboundedSetError
from repro.isl.constraint import Constraint
from repro.isl.enumeration import chunk_length, filter_chunk, iter_box_chunks
from repro.isl.iset import IntSet


def _connected_components(dims: Sequence[str], constraints: Sequence[Constraint]) -> list[set[str]]:
    """Group dimensions that are linked by multi-variable constraints."""
    parent = {dim: dim for dim in dims}

    def find(node: str) -> str:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for constraint in constraints:
        names = [n for n in constraint.variables() if n in parent]
        for first, second in zip(names, names[1:]):
            union(first, second)

    groups: dict[str, set[str]] = {}
    for dim in dims:
        groups.setdefault(find(dim), set()).add(dim)
    return list(groups.values())


def count_points(iset: IntSet, chunk_size: int = 1 << 20) -> int:
    """Exact number of integer points in ``iset``."""
    bounds = iset.derived_bounds()
    for constraint in iset.constraints:
        if constraint.is_trivially_false:
            return 0

    components = _connected_components(iset.space.dims, iset.constraints)
    total = 1
    for component in components:
        member_dims = [dim for dim in iset.space.dims if dim in component]
        member_constraints = [
            c for c in iset.constraints if c.variables() & component
        ]
        if not member_constraints or all(len(c.variables()) <= 1 for c in member_constraints):
            count = _count_box_with_unary(member_dims, bounds, member_constraints, chunk_size)
        else:
            count = _count_by_enumeration(member_dims, bounds, member_constraints, chunk_size)
        if count == 0:
            return 0
        total *= count
    return total


def _count_box_with_unary(
    dims: Sequence[str],
    bounds,
    constraints: Sequence[Constraint],
    chunk_size: int,
) -> int:
    """Count a component whose constraints each involve at most one variable.

    Affine single-variable constraints are already folded into the derived
    bounds; quasi-affine unary constraints (e.g. ``i mod 2 = 0``) still need
    per-dimension filtering, which stays cheap because each dimension is
    handled independently.
    """
    total = 1
    for dim in dims:
        lo, hi = bounds[dim]
        extent = max(0, hi - lo)
        unary = [
            c for c in constraints
            if c.variables() == {dim} and not c.expr.is_affine
        ]
        if unary:
            count = 0
            for chunk in iter_box_chunks({dim: (lo, hi)}, [dim], chunk_size):
                count += chunk_length(filter_chunk(chunk, unary))
            total *= count
        else:
            total *= extent
    return total


def _count_by_enumeration(
    dims: Sequence[str],
    bounds,
    constraints: Sequence[Constraint],
    chunk_size: int,
) -> int:
    component_bounds = {dim: bounds[dim] for dim in dims}
    count = 0
    for chunk in iter_box_chunks(component_bounds, dims, chunk_size):
        count += chunk_length(filter_chunk(chunk, constraints))
    return count


def count_map_pairs(imap, chunk_size: int = 1 << 20) -> int:
    """Number of (input, output) pairs of a map restricted to its domain.

    For a functional map this is simply the cardinality of the domain.  For a
    general relation the pairs are enumerated over the product of the domain
    and range boxes.
    """
    from repro.isl.imap import IntMap  # local import to avoid a cycle

    if not isinstance(imap, IntMap):
        raise TypeError(f"expected an IntMap, got {type(imap)!r}")
    if imap.is_functional:
        if imap.domain is None:
            raise UnboundedSetError("functional map has no domain to count over")
        return count_points(imap.domain, chunk_size)
    return imap.count_pairs(chunk_size=chunk_size)
