"""Vectorised enumeration of integer sets.

This module is the workhorse behind counting and analysis: every set the
paper manipulates is finite (loop nests have explicit bounds), so cardinality
and membership questions are answered by enumerating points with numpy.

Points are generated in *chunks* so arbitrarily large boxes never materialise
at once: a chunk is a dictionary mapping dimension names to equally long
``int64`` arrays.  Constraints are then applied as vectorised predicates.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import UnboundedSetError
from repro.isl.constraint import Constraint

#: Default number of candidate points generated per chunk.
DEFAULT_CHUNK = 1 << 20

#: Hard cap on the number of candidate points enumerated for a single set.
#: Workloads larger than this must be scaled (see ``repro.workloads.scaling``).
MAX_CANDIDATE_POINTS = 1 << 33


Bounds = Mapping[str, tuple[int, int]]


def box_size(bounds: Bounds, dims: Sequence[str]) -> int:
    """Number of candidate points in the box spanned by ``dims``."""
    total = 1
    for dim in dims:
        lo, hi = bounds[dim]
        total *= max(0, hi - lo)
    return total


def iter_box_chunks(
    bounds: Bounds,
    dims: Sequence[str],
    chunk_size: int = DEFAULT_CHUNK,
) -> Iterator[dict[str, np.ndarray]]:
    """Yield chunks of all integer points in a box.

    Points are produced in lexicographic order of ``dims``.  Each chunk maps
    every dimension name to an ``int64`` array; all arrays in a chunk have the
    same length (at most ``chunk_size``).
    """
    dims = list(dims)
    sizes = []
    lows = []
    for dim in dims:
        lo, hi = bounds[dim]
        size = hi - lo
        if size <= 0:
            return
        sizes.append(size)
        lows.append(lo)
    total = 1
    for size in sizes:
        total *= size
    if total > MAX_CANDIDATE_POINTS:
        raise UnboundedSetError(
            f"refusing to enumerate {total} candidate points "
            f"(cap is {MAX_CANDIDATE_POINTS}); scale the workload first"
        )
    shape = tuple(sizes)
    for start in range(0, total, chunk_size):
        stop = min(start + chunk_size, total)
        flat = np.arange(start, stop, dtype=np.int64)
        coords = np.unravel_index(flat, shape)
        chunk = {
            dim: coords[index] + lows[index] for index, dim in enumerate(dims)
        }
        yield chunk


def filter_chunk(
    chunk: dict[str, np.ndarray],
    constraints: Iterable[Constraint],
) -> dict[str, np.ndarray]:
    """Keep only the points of a chunk that satisfy every constraint."""
    mask: np.ndarray | None = None
    for constraint in constraints:
        ok = constraint.satisfied_vec(chunk)
        mask = ok if mask is None else (mask & ok)
    if mask is None:
        return chunk
    return {dim: values[mask] for dim, values in chunk.items()}


def chunk_length(chunk: Mapping[str, np.ndarray]) -> int:
    """Number of points in a chunk (0 for an empty chunk dictionary)."""
    for values in chunk.values():
        return int(values.shape[0])
    return 0


def chunk_to_array(chunk: Mapping[str, np.ndarray], dims: Sequence[str]) -> np.ndarray:
    """Stack a chunk into an ``(N, len(dims))`` array in the given dim order."""
    if not dims:
        return np.zeros((chunk_length(chunk), 0), dtype=np.int64)
    return np.stack([np.asarray(chunk[dim], dtype=np.int64) for dim in dims], axis=1)


def array_to_chunk(array: np.ndarray, dims: Sequence[str]) -> dict[str, np.ndarray]:
    """Inverse of :func:`chunk_to_array`."""
    array = np.asarray(array, dtype=np.int64)
    if array.ndim != 2 or array.shape[1] != len(dims):
        raise ValueError(f"expected an (N, {len(dims)}) array, got shape {array.shape}")
    return {dim: array[:, index] for index, dim in enumerate(dims)}


def concat_chunks(chunks: Sequence[Mapping[str, np.ndarray]], dims: Sequence[str]) -> dict[str, np.ndarray]:
    """Concatenate chunks into a single chunk (empty chunks allowed)."""
    parts = [chunk for chunk in chunks if chunk_length(chunk)]
    if not parts:
        return {dim: np.zeros(0, dtype=np.int64) for dim in dims}
    return {dim: np.concatenate([np.asarray(part[dim]) for part in parts]) for dim in dims}


def sorted_unique(array: np.ndarray, return_counts: bool = False):
    """Sort-based unique for integer keys.

    numpy's hash-based ``np.unique`` is noticeably slower than sorting for the
    key arrays this package produces (tens of millions of int64), so the
    analyzer uses this helper instead.  Results are returned sorted.
    """
    array = np.asarray(array)
    if array.size == 0:
        empty = array[:0]
        return (empty, np.zeros(0, dtype=np.int64)) if return_counts else empty
    ordered = np.sort(array, kind="stable")
    new_value = np.empty(ordered.shape, dtype=bool)
    new_value[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=new_value[1:])
    unique_values = ordered[new_value]
    if not return_counts:
        return unique_values
    boundaries = np.flatnonzero(new_value)
    counts = np.diff(np.concatenate((boundaries, [ordered.size])))
    return unique_values, counts


def encode_rows(array: np.ndarray, bounds_per_col: Sequence[tuple[int, int]] | None = None) -> np.ndarray:
    """Encode integer rows into single int64 keys (for hashing / set membership).

    When ``bounds_per_col`` is given the encoding is a mixed-radix number and
    guaranteed collision free as long as the product of extents fits in 63
    bits; otherwise a large-prime hash combination is used, which is collision
    free in practice for the coordinate ranges this package manipulates.
    """
    array = np.asarray(array, dtype=np.int64)
    if array.ndim != 2:
        raise ValueError("encode_rows expects a 2-D array")
    if array.shape[1] == 0:
        return np.zeros(array.shape[0], dtype=np.int64)
    if bounds_per_col is not None:
        total = 1
        for lo, hi in bounds_per_col:
            total *= max(1, hi - lo)
        if total >= (1 << 62):
            raise ValueError(
                "coordinate ranges too large for collision-free int64 encoding; "
                "scale the workload (see repro.workloads.scaling)"
            )
        keys = np.zeros(array.shape[0], dtype=np.int64)
        scale = 1
        for col, (lo, hi) in enumerate(bounds_per_col):
            extent = max(1, hi - lo)
            keys += (array[:, col] - lo) * scale
            scale *= extent
        return keys
    primes = np.array(
        [1_000_003, 998_244_353, 1_000_000_007, 786_433, 921_557, 694_847_539,
         354_745_169, 899_809_363, 373_587_883, 982_451_653],
        dtype=np.int64,
    )
    keys = np.zeros(array.shape[0], dtype=np.int64)
    for col in range(array.shape[1]):
        keys = keys * np.int64(1_000_000_009) + array[:, col] * primes[col % len(primes)]
    return keys
