"""Quasi-affine integer expressions.

The dataflows in the paper are built from *quasi-affine* expressions: integer
linear combinations of loop iterators extended with ``floor(e / d)``,
``e mod d`` (Section IV-A, "quasi-affine transformation") and, for interconnect
conditions, ``abs(e)``.  :class:`AffExpr` represents such an expression as an
immutable tree:

* a linear part: ``{variable: coefficient}`` plus an integer constant, and
* a list of ``(coefficient, term)`` pairs where each term is a
  :class:`FloorDiv`, :class:`Mod` or :class:`Abs` node wrapping a nested
  :class:`AffExpr`.

Expressions support arithmetic (``+``, ``-``, ``*`` by an integer, ``//`` and
``%`` by a positive integer), substitution of variables by sub-expressions,
scalar evaluation, and vectorised evaluation over numpy arrays.  Floor and mod
follow ISL semantics (floor division, non-negative remainder for positive
moduli), which match Python's ``//`` and ``%``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Union

import numpy as np

from repro.errors import SpaceError

Number = int
ExprLike = Union["AffExpr", int]


def _as_expr(value: ExprLike) -> "AffExpr":
    if isinstance(value, AffExpr):
        return value
    if isinstance(value, (int, np.integer)):
        return AffExpr(const=int(value))
    raise TypeError(f"cannot interpret {value!r} as a quasi-affine expression")


@dataclass(frozen=True)
class FloorDiv:
    """``floor(expr / divisor)`` with a positive integer divisor."""

    expr: "AffExpr"
    divisor: int

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.expr.evaluate(env) // self.divisor

    def evaluate_vec(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        return self.expr.evaluate_vec(env) // self.divisor

    def substitute(self, mapping: Mapping[str, "AffExpr"]) -> "FloorDiv":
        return FloorDiv(self.expr.substitute(mapping), self.divisor)

    def variables(self) -> frozenset[str]:
        return self.expr.variables()

    def bounds(self, env_bounds: Mapping[str, tuple[int, int]]) -> tuple[int, int]:
        lo, hi = self.expr.bounds(env_bounds)
        return lo // self.divisor, hi // self.divisor

    def __str__(self) -> str:
        return f"floor(({self.expr})/{self.divisor})"


@dataclass(frozen=True)
class Mod:
    """``expr mod modulus`` with a positive integer modulus."""

    expr: "AffExpr"
    modulus: int

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.expr.evaluate(env) % self.modulus

    def evaluate_vec(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        return self.expr.evaluate_vec(env) % self.modulus

    def substitute(self, mapping: Mapping[str, "AffExpr"]) -> "Mod":
        return Mod(self.expr.substitute(mapping), self.modulus)

    def variables(self) -> frozenset[str]:
        return self.expr.variables()

    def bounds(self, env_bounds: Mapping[str, tuple[int, int]]) -> tuple[int, int]:
        lo, hi = self.expr.bounds(env_bounds)
        if hi - lo + 1 >= self.modulus:
            return 0, self.modulus - 1
        lo_mod, hi_mod = lo % self.modulus, hi % self.modulus
        if lo_mod <= hi_mod:
            return lo_mod, hi_mod
        return 0, self.modulus - 1

    def __str__(self) -> str:
        return f"(({self.expr}) mod {self.modulus})"


@dataclass(frozen=True)
class Abs:
    """``abs(expr)``; used by interconnect conditions such as mesh adjacency."""

    expr: "AffExpr"

    def evaluate(self, env: Mapping[str, int]) -> int:
        return abs(self.expr.evaluate(env))

    def evaluate_vec(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        return np.abs(self.expr.evaluate_vec(env))

    def substitute(self, mapping: Mapping[str, "AffExpr"]) -> "Abs":
        return Abs(self.expr.substitute(mapping))

    def variables(self) -> frozenset[str]:
        return self.expr.variables()

    def bounds(self, env_bounds: Mapping[str, tuple[int, int]]) -> tuple[int, int]:
        lo, hi = self.expr.bounds(env_bounds)
        if lo >= 0:
            return lo, hi
        if hi <= 0:
            return -hi, -lo
        return 0, max(-lo, hi)

    def __str__(self) -> str:
        return f"abs({self.expr})"


QuasiTerm = Union[FloorDiv, Mod, Abs]


class AffExpr:
    """An immutable quasi-affine expression over named integer variables."""

    __slots__ = ("terms", "const", "quasi", "_hash")

    def __init__(
        self,
        terms: Mapping[str, int] | None = None,
        const: int = 0,
        quasi: tuple[tuple[int, QuasiTerm], ...] = (),
    ):
        cleaned = {}
        if terms:
            for name, coeff in terms.items():
                coeff = int(coeff)
                if coeff != 0:
                    cleaned[str(name)] = coeff
        self.terms: dict[str, int] = cleaned
        self.const: int = int(const)
        self.quasi: tuple[tuple[int, QuasiTerm], ...] = tuple(
            (int(c), t) for c, t in quasi if int(c) != 0
        )
        self._hash: int | None = None

    # -- constructors --------------------------------------------------------

    @staticmethod
    def variable(name: str) -> "AffExpr":
        return AffExpr({name: 1})

    @staticmethod
    def constant(value: int) -> "AffExpr":
        return AffExpr(const=value)

    # -- structural queries ----------------------------------------------------

    def variables(self) -> frozenset[str]:
        names = set(self.terms)
        for _, term in self.quasi:
            names |= term.variables()
        return frozenset(names)

    @property
    def is_affine(self) -> bool:
        """True when the expression has no floor/mod/abs terms."""
        return not self.quasi

    @property
    def is_constant(self) -> bool:
        return not self.terms and not self.quasi

    def coefficient(self, name: str) -> int:
        return self.terms.get(name, 0)

    def linear_row(self, dims: "Sequence[str]") -> tuple[tuple[int, ...], int]:
        """Coefficients of the *affine part* over ``dims`` plus the constant.

        This is the introspection hook used by the compiled stamp kernels: an
        affine expression becomes one row of an integer coefficient matrix.
        Quasi terms (floor/mod/abs) are not represented here — callers lower
        them to derived columns or fall back to :meth:`evaluate_vec`.  Raises
        :class:`SpaceError` when the affine part references a variable outside
        ``dims``.
        """
        known = set(dims)
        for name in self.terms:
            if name not in known:
                raise SpaceError(
                    f"expression references {name!r} outside the dimensions {tuple(dims)}"
                )
        return tuple(self.terms.get(dim, 0) for dim in dims), self.const

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: ExprLike) -> "AffExpr":
        other = _as_expr(other)
        terms = dict(self.terms)
        for name, coeff in other.terms.items():
            terms[name] = terms.get(name, 0) + coeff
        return AffExpr(terms, self.const + other.const, self.quasi + other.quasi)

    __radd__ = __add__

    def __neg__(self) -> "AffExpr":
        return AffExpr(
            {name: -c for name, c in self.terms.items()},
            -self.const,
            tuple((-c, t) for c, t in self.quasi),
        )

    def __sub__(self, other: ExprLike) -> "AffExpr":
        return self + (-_as_expr(other))

    def __rsub__(self, other: ExprLike) -> "AffExpr":
        return _as_expr(other) + (-self)

    def __mul__(self, factor: int) -> "AffExpr":
        if isinstance(factor, AffExpr):
            if factor.is_constant:
                factor = factor.const
            else:
                raise TypeError("quasi-affine expressions only support multiplication by integers")
        factor = int(factor)
        return AffExpr(
            {name: c * factor for name, c in self.terms.items()},
            self.const * factor,
            tuple((c * factor, t) for c, t in self.quasi),
        )

    __rmul__ = __mul__

    def __floordiv__(self, divisor: int) -> "AffExpr":
        divisor = int(divisor)
        if divisor <= 0:
            raise ValueError("floor division requires a positive integer divisor")
        if divisor == 1:
            return self
        if self.is_constant:
            return AffExpr(const=self.const // divisor)
        return AffExpr(quasi=((1, FloorDiv(self, divisor)),))

    def __mod__(self, modulus: int) -> "AffExpr":
        modulus = int(modulus)
        if modulus <= 0:
            raise ValueError("modulo requires a positive integer modulus")
        if modulus == 1:
            return AffExpr.constant(0)
        if self.is_constant:
            return AffExpr(const=self.const % modulus)
        return AffExpr(quasi=((1, Mod(self, modulus)),))

    def abs(self) -> "AffExpr":
        if self.is_constant:
            return AffExpr(const=abs(self.const))
        return AffExpr(quasi=((1, Abs(self)),))

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate the expression with integer values for every variable."""
        total = self.const
        for name, coeff in self.terms.items():
            try:
                total += coeff * int(env[name])
            except KeyError as exc:
                raise SpaceError(f"no value provided for variable {name!r}") from exc
        for coeff, term in self.quasi:
            total += coeff * term.evaluate(env)
        return total

    def evaluate_vec(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        """Evaluate the expression over numpy arrays (vectorised, int64)."""
        total: np.ndarray | int = self.const
        for name, coeff in self.terms.items():
            try:
                total = total + coeff * env[name]
            except KeyError as exc:
                raise SpaceError(f"no value provided for variable {name!r}") from exc
        for coeff, term in self.quasi:
            total = total + coeff * term.evaluate_vec(env)
        if np.isscalar(total):
            sizes = {v.shape for v in env.values() if hasattr(v, "shape")}
            shape = sizes.pop() if sizes else ()
            return np.full(shape, total, dtype=np.int64)
        return np.asarray(total, dtype=np.int64)

    def bounds(self, env_bounds: Mapping[str, tuple[int, int]]) -> tuple[int, int]:
        """Interval bounds of the expression given inclusive per-variable bounds.

        ``env_bounds`` maps each variable to an inclusive ``(lo, hi)`` range.
        The result is a conservative (but for the paper's dataflow expressions,
        usually tight) inclusive interval computed by interval arithmetic.
        """
        lo = hi = self.const
        for name, coeff in self.terms.items():
            try:
                vlo, vhi = env_bounds[name]
            except KeyError as exc:
                raise SpaceError(f"no bounds provided for variable {name!r}") from exc
            if coeff >= 0:
                lo += coeff * vlo
                hi += coeff * vhi
            else:
                lo += coeff * vhi
                hi += coeff * vlo
        for coeff, term in self.quasi:
            tlo, thi = term.bounds(env_bounds)
            if coeff >= 0:
                lo += coeff * tlo
                hi += coeff * thi
            else:
                lo += coeff * thi
                hi += coeff * tlo
        return lo, hi

    # -- substitution -------------------------------------------------------------

    def substitute(self, mapping: Mapping[str, "AffExpr"]) -> "AffExpr":
        """Replace variables by sub-expressions (used to compose relations)."""
        result = AffExpr(const=self.const)
        for name, coeff in self.terms.items():
            if name in mapping:
                result = result + _as_expr(mapping[name]) * coeff
            else:
                result = result + AffExpr({name: coeff})
        for coeff, term in self.quasi:
            result = result + AffExpr(quasi=((coeff, term.substitute(mapping)),))
        return result

    def rename(self, mapping: Mapping[str, str]) -> "AffExpr":
        """Rename variables (a cheap special case of :meth:`substitute`)."""
        return self.substitute({old: AffExpr.variable(new) for old, new in mapping.items()})

    # -- equality / hashing ----------------------------------------------------------

    def _key(self):
        return (
            tuple(sorted(self.terms.items())),
            self.const,
            tuple(sorted(((c, str(t)) for c, t in self.quasi))),
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, AffExpr):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def __setattr__(self, name, value):
        if name in ("terms", "const", "quasi", "_hash") and not hasattr(self, "_hash"):
            object.__setattr__(self, name, value)
        elif name == "_hash":
            object.__setattr__(self, name, value)
        else:
            raise AttributeError("AffExpr is immutable")

    # -- formatting -----------------------------------------------------------------

    def __str__(self) -> str:
        parts: list[str] = []
        for name in sorted(self.terms):
            coeff = self.terms[name]
            if coeff == 1:
                parts.append(f"+ {name}")
            elif coeff == -1:
                parts.append(f"- {name}")
            elif coeff > 0:
                parts.append(f"+ {coeff}{name}")
            else:
                parts.append(f"- {-coeff}{name}")
        for coeff, term in self.quasi:
            if coeff == 1:
                parts.append(f"+ {term}")
            elif coeff == -1:
                parts.append(f"- {term}")
            elif coeff > 0:
                parts.append(f"+ {coeff}*{term}")
            else:
                parts.append(f"- {-coeff}*{term}")
        if self.const > 0 or not parts:
            parts.append(f"+ {self.const}")
        elif self.const < 0:
            parts.append(f"- {-self.const}")
        text = " ".join(parts)
        if text.startswith("+ "):
            text = text[2:]
        elif text.startswith("- "):
            text = "-" + text[2:]
        return text

    def __repr__(self) -> str:
        return f"AffExpr({self})"


def var(name: str) -> AffExpr:
    """Shorthand for :meth:`AffExpr.variable`."""
    return AffExpr.variable(name)


def const(value: int) -> AffExpr:
    """Shorthand for :meth:`AffExpr.constant`."""
    return AffExpr.constant(value)


def vars_(*names: str) -> tuple[AffExpr, ...]:
    """Create several variables at once: ``i, j, k = vars_("i", "j", "k")``."""
    return tuple(AffExpr.variable(name) for name in names)
