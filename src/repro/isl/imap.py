"""Relations between named integer tuple spaces.

An :class:`IntMap` relates points of an input space to points of an output
space.  Two representations are supported:

* **Functional maps** — every output coordinate is a quasi-affine expression
  of the input dimensions (``out = f(in)``).  Dataflow relations, access
  functions and data assignments are all functional, and functional maps
  compose symbolically (ISL's ``apply_range``).
* **General relations** — a conjunction of constraints over the union of the
  input and output dimensions.  Interconnection relations (e.g. mesh
  adjacency) take this form.

Output dimension names are always kept disjoint from input dimension names;
colliding names are primed automatically, following ISL's convention for
``PE -> PE`` style maps.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import NotFunctionalError, SpaceError, UnboundedSetError
from repro.isl.constraint import Constraint
from repro.isl.enumeration import (
    DEFAULT_CHUNK,
    chunk_length,
    chunk_to_array,
    filter_chunk,
    iter_box_chunks,
)
from repro.isl.expr import AffExpr
from repro.isl.iset import IntSet
from repro.isl.point import Point, env_from
from repro.isl.space import Space, ensure_disjoint


class IntMap:
    """A relation ``{ in_space -> out_space : constraints }``."""

    __slots__ = ("in_space", "out_space", "out_exprs", "constraints", "domain", "range_")

    def __init__(
        self,
        in_space: Space,
        out_space: Space,
        out_exprs: Sequence[AffExpr] | None = None,
        constraints: Iterable[Constraint] = (),
        domain: IntSet | None = None,
        range_: IntSet | None = None,
    ):
        out_space = ensure_disjoint(in_space, out_space)
        self.in_space = in_space
        self.out_space = out_space
        if out_exprs is not None:
            out_exprs = tuple(out_exprs)
            if len(out_exprs) != out_space.rank:
                raise SpaceError(
                    f"{len(out_exprs)} output expressions for output space {out_space} "
                    f"of rank {out_space.rank}"
                )
            allowed = set(in_space.dims)
            for expr in out_exprs:
                extra = expr.variables() - allowed
                if extra:
                    raise SpaceError(
                        f"functional output expression '{expr}' uses variables {sorted(extra)} "
                        f"outside input space {in_space}"
                    )
        self.out_exprs = out_exprs
        allowed = set(in_space.dims) | set(out_space.dims)
        constraint_list = []
        for constraint in constraints:
            extra = constraint.variables() - allowed
            if extra:
                raise SpaceError(
                    f"constraint '{constraint}' uses variables {sorted(extra)} outside "
                    f"{in_space} -> {out_space}"
                )
            constraint_list.append(constraint)
        self.constraints = tuple(constraint_list)
        if domain is not None and domain.space.dims != in_space.dims:
            raise SpaceError(f"domain {domain.space} does not match input space {in_space}")
        if range_ is not None and range_.space.dims != out_space.dims:
            raise SpaceError(f"range {range_.space} does not match output space {out_space}")
        self.domain = domain
        self.range_ = range_

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_exprs(
        cls,
        in_space: Space,
        out_name: str,
        exprs: Sequence[AffExpr | int],
        domain: IntSet | None = None,
        out_dims: Sequence[str] | None = None,
    ) -> "IntMap":
        """Build a functional map ``{ in_space -> out_name[exprs...] }``."""
        exprs = tuple(e if isinstance(e, AffExpr) else AffExpr.constant(int(e)) for e in exprs)
        if out_dims is None:
            prefix = out_name.lower() if out_name else "o"
            out_dims = tuple(f"{prefix}{i}" for i in range(len(exprs)))
        out_space = Space(out_name, out_dims)
        return cls(in_space, out_space, out_exprs=exprs, domain=domain)

    @classmethod
    def identity(cls, space: Space, domain: IntSet | None = None) -> "IntMap":
        exprs = tuple(AffExpr.variable(dim) for dim in space.dims)
        return cls.from_exprs(space, space.name, exprs, domain=domain)

    # -- basic queries -----------------------------------------------------------

    @property
    def is_functional(self) -> bool:
        return self.out_exprs is not None

    def _require_functional(self) -> None:
        if not self.is_functional:
            raise NotFunctionalError(
                f"map {self} is a general relation; a functional map is required here"
            )

    # -- application ----------------------------------------------------------------

    def apply_env(self, env: Mapping[str, int]) -> tuple[int, ...]:
        """Apply a functional map to one point given as a name -> value mapping."""
        self._require_functional()
        return tuple(expr.evaluate(env) for expr in self.out_exprs)

    def apply_point(self, point: Point | Sequence[int]) -> Point:
        """Apply a functional map to one point of the input space."""
        if isinstance(point, Point):
            env = point.env()
        else:
            env = env_from(self.in_space, point)
        return Point(self.out_space, self.apply_env(env))

    def apply_chunk(self, env: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Vectorised application: input chunk -> output chunk (keyed by out dims)."""
        self._require_functional()
        return {
            dim: expr.evaluate_vec(env)
            for dim, expr in zip(self.out_space.dims, self.out_exprs)
        }

    def image_array(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        """Vectorised application returning an ``(N, out_rank)`` array."""
        out = self.apply_chunk(env)
        return chunk_to_array(out, self.out_space.dims)

    # -- composition -------------------------------------------------------------------

    def compose(self, other: "IntMap") -> "IntMap":
        """``self.compose(other)`` is ISL's ``apply_range``: ``x -> other(self(x))``.

        Both maps must be functional.  ``other``'s input space is matched to
        ``self``'s output space positionally; ``other``'s own domain
        constraints are assumed to be implied by ``self``'s domain (true for
        the relation chains used in the paper, where the access function is
        total over the iteration domain).
        """
        self._require_functional()
        other._require_functional()
        if other.in_space.rank != self.out_space.rank:
            raise SpaceError(
                f"cannot compose {self.out_space} with {other.in_space}: rank mismatch"
            )
        mapping = {
            dim: expr for dim, expr in zip(other.in_space.dims, self.out_exprs)
        }
        new_exprs = tuple(expr.substitute(mapping) for expr in other.out_exprs)
        return IntMap(
            self.in_space,
            other.out_space,
            out_exprs=new_exprs,
            domain=self.domain,
        )

    apply_range = compose

    def range_box(self) -> IntSet:
        """A bounding box of the map's image (functional maps with a domain only).

        The box is computed by interval arithmetic over the output expressions
        and is used to give reversed maps an enumerable domain; the equality
        constraints of the reversed map keep membership exact.
        """
        self._require_functional()
        if self.domain is None:
            raise UnboundedSetError(f"map {self} has no domain; cannot bound its range")
        domain_bounds = self.domain.derived_bounds()
        inclusive = {dim: (lo, hi - 1) for dim, (lo, hi) in domain_bounds.items()}
        box: dict[str, tuple[int, int]] = {}
        for dim, expr in zip(self.out_space.dims, self.out_exprs):
            lo, hi = expr.bounds(inclusive)
            box[dim] = (lo, hi + 1)
        return IntSet.box(self.out_space, box)

    def reverse(self) -> "IntMap":
        """Swap input and output (ISL's ``isl_union_map_reverse``).

        The result is a general relation: the functional form, if any, is
        encoded as equality constraints.  For functional maps with a bounded
        domain, the reversed map's domain is the bounding box of the original
        image so that pair enumeration stays possible.
        """
        constraints = list(self.constraints)
        if self.is_functional:
            for dim, expr in zip(self.out_space.dims, self.out_exprs):
                constraints.append(Constraint.eq(AffExpr.variable(dim), expr))
        new_domain = self.range_
        if new_domain is None and self.is_functional and self.domain is not None:
            new_domain = self.range_box()
        return IntMap(
            self.out_space,
            self.in_space,
            out_exprs=None,
            constraints=constraints,
            domain=new_domain,
            range_=self.domain,
        )

    # -- restriction -------------------------------------------------------------------

    def intersect_domain(self, domain: IntSet) -> "IntMap":
        new_domain = domain if self.domain is None else self.domain.intersect(domain)
        return IntMap(
            self.in_space,
            self.out_space,
            out_exprs=self.out_exprs,
            constraints=self.constraints,
            domain=new_domain,
            range_=self.range_,
        )

    def intersect_range(self, range_: IntSet) -> "IntMap":
        new_range = range_ if self.range_ is None else self.range_.intersect(range_)
        return IntMap(
            self.in_space,
            self.out_space,
            out_exprs=self.out_exprs,
            constraints=self.constraints,
            domain=self.domain,
            range_=new_range,
        )

    # -- membership ----------------------------------------------------------------------

    def contains(self, in_coords: Sequence[int], out_coords: Sequence[int]) -> bool:
        env = env_from(self.in_space, in_coords)
        env.update(env_from(self.out_space, out_coords))
        if self.domain is not None and not self.domain.contains(in_coords):
            return False
        if self.range_ is not None and not self.range_.contains(out_coords):
            return False
        if self.is_functional:
            expected = self.apply_env(env)
            if tuple(int(c) for c in out_coords) != expected:
                return False
        return all(constraint.satisfied(env) for constraint in self.constraints)

    def contains_pairs_vec(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        """Vectorised membership test for candidate (in, out) pairs.

        ``env`` must bind both input and output dimension names to arrays.
        """
        mask: np.ndarray | None = None
        if self.is_functional:
            for dim, expr in zip(self.out_space.dims, self.out_exprs):
                ok = env[dim] == expr.evaluate_vec(env)
                mask = ok if mask is None else mask & ok
        for constraint in self.constraints:
            ok = constraint.satisfied_vec(env)
            mask = ok if mask is None else mask & ok
        if self.domain is not None:
            ok = self.domain.contains_vec(env)
            mask = ok if mask is None else mask & ok
        if self.range_ is not None:
            ok = self.range_.contains_vec(env)
            mask = ok if mask is None else mask & ok
        if mask is None:
            length = chunk_length({d: env[d] for d in self.in_space.dims})
            return np.ones(length, dtype=bool)
        return mask

    # -- enumeration ----------------------------------------------------------------------

    def _pair_bounds(self) -> dict[str, tuple[int, int]]:
        bounds: dict[str, tuple[int, int]] = {}
        if self.domain is None:
            raise UnboundedSetError(f"map {self} has no domain; cannot enumerate pairs")
        bounds.update(self.domain.derived_bounds())
        if self.is_functional:
            return bounds
        if self.range_ is None:
            # try to derive output bounds from the constraints alone
            probe = IntSet(Space("", self.out_space.dims), [
                c for c in self.constraints if c.variables() <= set(self.out_space.dims)
            ])
            bounds.update(probe.derived_bounds())
        else:
            bounds.update(self.range_.derived_bounds())
        return bounds

    def pairs_chunks(self, chunk_size: int = DEFAULT_CHUNK) -> Iterator[dict[str, np.ndarray]]:
        """Yield chunks of (input, output) pairs as per-dimension arrays."""
        if self.is_functional:
            for chunk in self.domain.chunks(chunk_size):
                if self.constraints:
                    chunk = filter_chunk(chunk, self.constraints)
                    if not chunk_length(chunk):
                        continue
                out = self.apply_chunk(chunk)
                merged = dict(chunk)
                merged.update(out)
                if self.range_ is not None:
                    mask = self.range_.contains_vec(merged)
                    merged = {k: v[mask] for k, v in merged.items()}
                if chunk_length(merged):
                    yield merged
            return
        bounds = self._pair_bounds()
        dims = tuple(self.in_space.dims) + tuple(self.out_space.dims)
        for chunk in iter_box_chunks(bounds, dims, chunk_size):
            mask = self.contains_pairs_vec(chunk)
            filtered = {k: v[mask] for k, v in chunk.items()}
            if chunk_length(filtered):
                yield filtered

    def pairs_array(self, chunk_size: int = DEFAULT_CHUNK) -> np.ndarray:
        """All pairs as an ``(N, in_rank + out_rank)`` array."""
        dims = tuple(self.in_space.dims) + tuple(self.out_space.dims)
        parts = [chunk_to_array(chunk, dims) for chunk in self.pairs_chunks(chunk_size)]
        if not parts:
            return np.zeros((0, len(dims)), dtype=np.int64)
        return np.concatenate(parts, axis=0)

    def count_pairs(self, chunk_size: int = DEFAULT_CHUNK) -> int:
        """Number of (input, output) pairs (the map's cardinality)."""
        if self.is_functional and not self.constraints and self.range_ is None:
            return self.domain.count() if self.domain is not None else 0
        return sum(chunk_length(chunk) for chunk in self.pairs_chunks(chunk_size))

    # -- formatting -----------------------------------------------------------------------

    def __str__(self) -> str:
        if self.is_functional:
            out = f"{self.out_space.name}[{', '.join(str(e) for e in self.out_exprs)}]"
        else:
            out = str(self.out_space)
        conditions = [str(c) for c in self.constraints]
        if self.domain is not None and self.domain.constraints:
            conditions.extend(str(c) for c in self.domain.constraints)
        tail = f" : {' and '.join(conditions)}" if conditions else ""
        return f"{{ {self.in_space} -> {out}{tail} }}"

    def __repr__(self) -> str:
        return f"IntMap({self})"
