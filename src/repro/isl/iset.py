"""Integer sets: conjunctions of quasi-affine constraints over a named space."""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import SpaceError, UnboundedSetError
from repro.isl.constraint import EQ, Constraint
from repro.isl.enumeration import (
    DEFAULT_CHUNK,
    chunk_length,
    chunk_to_array,
    filter_chunk,
    iter_box_chunks,
)
from repro.isl.expr import AffExpr
from repro.isl.point import Point, env_from
from repro.isl.space import Space


class IntSet:
    """A finite set of integer points described by quasi-affine constraints.

    A set is a conjunction of constraints over the dimensions of its
    :class:`~repro.isl.space.Space`.  Explicit box bounds can be supplied to
    make enumeration cheap; otherwise bounds are derived from single-variable
    affine constraints.
    """

    __slots__ = ("space", "constraints", "_explicit_bounds")

    def __init__(
        self,
        space: Space,
        constraints: Iterable[Constraint] = (),
        bounds: Mapping[str, tuple[int, int]] | None = None,
    ):
        self.space = space
        constraint_list = []
        for constraint in constraints:
            unknown = constraint.variables() - set(space.dims)
            if unknown:
                raise SpaceError(
                    f"constraint '{constraint}' uses variables {sorted(unknown)} "
                    f"outside space {space}"
                )
            if not constraint.is_trivially_true:
                constraint_list.append(constraint)
        self.constraints: tuple[Constraint, ...] = tuple(constraint_list)
        self._explicit_bounds = dict(bounds) if bounds else {}

    # -- constructors --------------------------------------------------------

    @classmethod
    def box(cls, space: Space, bounds: Mapping[str, tuple[int, int]]) -> "IntSet":
        """A rectangular set: ``lo <= dim < hi`` for every dimension."""
        constraints = []
        for dim in space.dims:
            if dim not in bounds:
                raise SpaceError(f"no bounds supplied for dimension {dim!r} of {space}")
            lo, hi = bounds[dim]
            constraints.append(Constraint.ge(AffExpr.variable(dim), lo))
            constraints.append(Constraint.lt(AffExpr.variable(dim), hi))
        return cls(space, constraints, bounds=bounds)

    @classmethod
    def from_sizes(cls, name: str, dims: Sequence[str], sizes: Sequence[int]) -> "IntSet":
        """A box ``0 <= dim < size`` for each (dim, size) pair."""
        if len(dims) != len(sizes):
            raise SpaceError("dims and sizes must have the same length")
        space = Space(name, dims)
        return cls.box(space, {d: (0, int(s)) for d, s in zip(dims, sizes)})

    # -- derived sets ----------------------------------------------------------

    def add_constraints(self, constraints: Iterable[Constraint]) -> "IntSet":
        return IntSet(self.space, self.constraints + tuple(constraints), self._explicit_bounds)

    def intersect(self, other: "IntSet") -> "IntSet":
        if other.space.name != self.space.name or other.space.dims != self.space.dims:
            raise SpaceError(f"cannot intersect sets in different spaces: {self.space} vs {other.space}")
        merged_bounds = dict(self._explicit_bounds)
        for dim, (lo, hi) in other._explicit_bounds.items():
            if dim in merged_bounds:
                olo, ohi = merged_bounds[dim]
                merged_bounds[dim] = (max(lo, olo), min(hi, ohi))
            else:
                merged_bounds[dim] = (lo, hi)
        return IntSet(self.space, self.constraints + other.constraints, merged_bounds)

    def fix_dim(self, dim: str, value: int) -> "IntSet":
        """Restrict one dimension to a constant value."""
        return self.add_constraints([Constraint.eq(AffExpr.variable(dim), value)])

    # -- bounds ------------------------------------------------------------------

    def derived_bounds(self) -> dict[str, tuple[int, int]]:
        """Box bounds per dimension, combining explicit and derived bounds.

        Bounds are derived from constraints whose expression involves a single
        variable and no floor/mod/abs terms.  Raises
        :class:`~repro.errors.UnboundedSetError` if any dimension remains
        unbounded on either side.
        """
        lows: dict[str, int] = {}
        highs: dict[str, int] = {}
        for dim, (lo, hi) in self._explicit_bounds.items():
            lows[dim] = lo
            highs[dim] = hi - 1
        for constraint in self.constraints:
            expr = constraint.expr
            if not expr.is_affine or len(expr.terms) != 1:
                continue
            (name, coeff), = expr.terms.items()
            if constraint.kind == EQ:
                if expr.const % coeff == 0:
                    value = -expr.const // coeff
                    lows[name] = max(lows.get(name, value), value)
                    highs[name] = min(highs.get(name, value), value)
                continue
            # coeff * name + const >= 0
            if coeff > 0:
                bound = math.ceil(-expr.const / coeff)
                lows[name] = max(lows.get(name, bound), bound)
            else:
                bound = math.floor(expr.const / (-coeff))
                highs[name] = min(highs.get(name, bound), bound)
        bounds: dict[str, tuple[int, int]] = {}
        for dim in self.space.dims:
            if dim not in lows or dim not in highs:
                raise UnboundedSetError(
                    f"dimension {dim!r} of {self.space} has no finite bounds; "
                    "add explicit bounds or bounding constraints"
                )
            bounds[dim] = (lows[dim], highs[dim] + 1)
        return bounds

    def dim_extent(self, dim: str) -> tuple[int, int]:
        """Half-open bound of one dimension."""
        return self.derived_bounds()[dim]

    # -- membership ----------------------------------------------------------------

    def contains(self, coords: Sequence[int] | Point | Mapping[str, int]) -> bool:
        if isinstance(coords, Point):
            env = coords.env()
        elif isinstance(coords, Mapping):
            env = {dim: int(coords[dim]) for dim in self.space.dims}
        else:
            env = env_from(self.space, coords)
        for dim, (lo, hi) in self._explicit_bounds.items():
            if not lo <= env[dim] < hi:
                return False
        return all(constraint.satisfied(env) for constraint in self.constraints)

    def contains_vec(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        """Vectorised membership test for a chunk of candidate points."""
        mask: np.ndarray | None = None
        for dim, (lo, hi) in self._explicit_bounds.items():
            ok = (env[dim] >= lo) & (env[dim] < hi)
            mask = ok if mask is None else mask & ok
        for constraint in self.constraints:
            ok = constraint.satisfied_vec(env)
            mask = ok if mask is None else mask & ok
        if mask is None:
            length = chunk_length({dim: env[dim] for dim in self.space.dims})
            return np.ones(length, dtype=bool)
        return mask

    # -- enumeration ------------------------------------------------------------------

    def chunks(self, chunk_size: int = DEFAULT_CHUNK) -> Iterator[dict[str, np.ndarray]]:
        """Yield the set's points as chunks of per-dimension arrays."""
        bounds = self.derived_bounds()
        for chunk in iter_box_chunks(bounds, self.space.dims, chunk_size):
            filtered = filter_chunk(chunk, self.constraints)
            if chunk_length(filtered):
                yield filtered

    def points_array(self, chunk_size: int = DEFAULT_CHUNK) -> np.ndarray:
        """All points as an ``(N, rank)`` array (use only for modest sets)."""
        parts = [chunk_to_array(chunk, self.space.dims) for chunk in self.chunks(chunk_size)]
        if not parts:
            return np.zeros((0, self.space.rank), dtype=np.int64)
        return np.concatenate(parts, axis=0)

    def points(self) -> Iterator[Point]:
        """Iterate points one by one (convenience for tests and small sets)."""
        for chunk in self.chunks():
            array = chunk_to_array(chunk, self.space.dims)
            for row in array:
                yield Point(self.space, tuple(int(v) for v in row))

    def count(self) -> int:
        """Exact cardinality (delegates to :mod:`repro.isl.count`)."""
        from repro.isl.count import count_points

        return count_points(self)

    def is_empty(self) -> bool:
        for chunk in self.chunks():
            if chunk_length(chunk):
                return False
        return True

    def box_size(self) -> int:
        """Number of candidate points in the bounding box (an upper bound)."""
        bounds = self.derived_bounds()
        total = 1
        for dim in self.space.dims:
            lo, hi = bounds[dim]
            total *= max(0, hi - lo)
        return total

    # -- formatting --------------------------------------------------------------------

    def __str__(self) -> str:
        condition = " and ".join(str(c) for c in self.constraints)
        if condition:
            return f"{{ {self.space} : {condition} }}"
        return f"{{ {self.space} }}"

    def __repr__(self) -> str:
        return f"IntSet({self})"
