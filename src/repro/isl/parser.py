"""ISL-like string syntax for sets and relations.

The notation mirrors the paper's examples directly, e.g.::

    parse_map("{ S[i,j,k] -> PE[i mod 8, j mod 8] : 0 <= i,j < 64 and 0 <= k < 16 }")
    parse_map("{ PE[i,j] -> PE[i',j'] : (i' = i and j' = j + 1) or (i' = i + 1 and j' = j) }")
    parse_set("{ PE[i,j] : 0 <= i < 8 and 0 <= j < 8 }")

Supported expression syntax: integer literals, dimension names, ``+``, ``-``,
``*`` (by an integer), ``e mod N`` / ``e % N``, ``floor(e / N)`` (``fl`` is an
accepted abbreviation, matching Table III), and ``abs(e)``.  Conditions are
(chained) comparisons combined with ``and`` / ``or``; ``or`` produces a union.
A comma-separated left-hand side in a chained comparison, such as
``0 <= i,j < 64``, expands to one chain per listed expression.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ParseError
from repro.isl.constraint import Constraint
from repro.isl.expr import AffExpr
from repro.isl.imap import IntMap
from repro.isl.iset import IntSet
from repro.isl.space import Space
from repro.isl.union import UnionMap, UnionSet

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<arrow>->)"
    r"|(?P<num>\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*'*)"
    r"|(?P<op><=|>=|==|!=|[{}\[\](),:+\-*/%<>=])"
    r")"
)

_KEYWORDS = {"and", "or", "mod", "floor", "fl", "abs"}


@dataclass
class _Token:
    kind: str  # "arrow" | "num" | "name" | "op" | "kw" | "end"
    text: str


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"cannot tokenize {remainder[:20]!r} in relation string")
        pos = match.end()
        if match.lastgroup == "name" and match.group("name") in _KEYWORDS:
            tokens.append(_Token("kw", match.group("name")))
        elif match.lastgroup is not None:
            tokens.append(_Token(match.lastgroup, match.group(match.lastgroup)))
    tokens.append(_Token("end", ""))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers -------------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def next(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.next()
        if token.kind != kind or (text is not None and token.text != text):
            raise ParseError(
                f"expected {text or kind!r} but found {token.text!r} in {self.text!r}"
            )
        return token

    def accept(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            self.index += 1
            return True
        return False

    # -- grammar -------------------------------------------------------------

    def parse_relation(self):
        self.expect("op", "{")
        in_name, in_entries = self.parse_tuple()
        out_tuple = None
        if self.accept("arrow"):
            out_tuple = self.parse_tuple()
        disjuncts: list[list[Constraint]] = [[]]
        if self.accept("op", ":"):
            disjuncts = self.parse_condition()
        self.expect("op", "}")
        if self.peek().kind != "end":
            raise ParseError(f"unexpected trailing input in {self.text!r}")
        return in_name, in_entries, out_tuple, disjuncts

    def parse_tuple(self) -> tuple[str, list[AffExpr]]:
        name = ""
        if self.peek().kind == "name":
            name = self.next().text
        self.expect("op", "[")
        entries: list[AffExpr] = []
        if not self.accept("op", "]"):
            entries.append(self.parse_expr())
            while self.accept("op", ","):
                entries.append(self.parse_expr())
            self.expect("op", "]")
        return name, entries

    # condition := conj ('or' conj)*  -> DNF as list of constraint lists
    def parse_condition(self) -> list[list[Constraint]]:
        result = self.parse_conjunction()
        while self.accept("kw", "or"):
            result = result + self.parse_conjunction()
        return result

    def parse_conjunction(self) -> list[list[Constraint]]:
        result = self.parse_condition_atom()
        while self.accept("kw", "and"):
            right = self.parse_condition_atom()
            result = [left + extra for left in result for extra in right]
        return result

    def parse_condition_atom(self) -> list[list[Constraint]]:
        if self.peek().kind == "op" and self.peek().text == "(" and self._looks_like_condition():
            self.expect("op", "(")
            inner = self.parse_condition()
            self.expect("op", ")")
            return inner
        return [self.parse_chain()]

    def _looks_like_condition(self) -> bool:
        """Lookahead: does the parenthesis at the cursor wrap a condition (vs an expression)?"""
        depth = 0
        for token in self.tokens[self.index:]:
            if token.kind == "op" and token.text == "(":
                depth += 1
            elif token.kind == "op" and token.text == ")":
                depth -= 1
                if depth == 0:
                    return False
            elif depth >= 1:
                if token.kind == "kw" and token.text in ("and", "or"):
                    return True
                if token.kind == "op" and token.text in ("<", "<=", ">", ">=", "=", "=="):
                    return True
            elif token.kind == "end":
                break
        return False

    def parse_chain(self) -> list[Constraint]:
        left_group = [self.parse_expr()]
        while self.accept("op", ","):
            left_group.append(self.parse_expr())
        constraints: list[Constraint] = []
        ops: list[str] = []
        groups: list[list[AffExpr]] = [left_group]
        while self.peek().kind == "op" and self.peek().text in ("<", "<=", ">", ">=", "=", "=="):
            op = self.next().text
            group = [self.parse_expr()]
            while self.accept("op", ","):
                group.append(self.parse_expr())
            ops.append(op)
            groups.append(group)
        if not ops:
            raise ParseError(f"expected a comparison in condition of {self.text!r}")
        for position, op in enumerate(ops):
            for lhs in groups[position]:
                for rhs in groups[position + 1]:
                    constraints.append(_make_constraint(lhs, op, rhs))
        return constraints

    # -- expressions ------------------------------------------------------------

    def parse_expr(self) -> AffExpr:
        expr = self.parse_term()
        while self.peek().kind == "op" and self.peek().text in ("+", "-"):
            op = self.next().text
            term = self.parse_term()
            expr = expr + term if op == "+" else expr - term
        return expr

    def parse_term(self) -> AffExpr:
        expr = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text == "*":
                self.next()
                rhs = self.parse_unary()
                expr = _multiply(expr, rhs)
            elif token.kind == "op" and token.text == "%":
                self.next()
                rhs = self.parse_unary()
                expr = expr % _require_const(rhs, "mod")
            elif token.kind == "kw" and token.text == "mod":
                self.next()
                rhs = self.parse_unary()
                expr = expr % _require_const(rhs, "mod")
            elif token.kind == "op" and token.text == "/":
                self.next()
                rhs = self.parse_unary()
                expr = expr // _require_const(rhs, "division")
            else:
                return expr

    def parse_unary(self) -> AffExpr:
        token = self.peek()
        if token.kind == "op" and token.text == "-":
            self.next()
            return -self.parse_unary()
        if token.kind == "op" and token.text == "+":
            self.next()
            return self.parse_unary()
        if token.kind == "num":
            self.next()
            return AffExpr.constant(int(token.text))
        if token.kind == "kw" and token.text in ("floor", "fl"):
            # ``floor(e / N)``: the division inside already produces the floor
            # term (all divisions in this dialect are integer floor divisions).
            self.next()
            self.expect("op", "(")
            inner = self.parse_expr()
            self.expect("op", ")")
            return inner
        if token.kind == "kw" and token.text == "abs":
            self.next()
            self.expect("op", "(")
            inner = self.parse_expr()
            self.expect("op", ")")
            return inner.abs()
        if token.kind == "name":
            self.next()
            return AffExpr.variable(token.text)
        if token.kind == "op" and token.text == "(":
            self.next()
            inner = self.parse_expr()
            self.expect("op", ")")
            return inner
        raise ParseError(f"unexpected token {token.text!r} in expression of {self.text!r}")


def _require_const(expr: AffExpr, operation: str) -> int:
    if not expr.is_constant:
        raise ParseError(f"{operation} requires an integer constant, got '{expr}'")
    return expr.const


def _multiply(lhs: AffExpr, rhs: AffExpr) -> AffExpr:
    if rhs.is_constant:
        return lhs * rhs.const
    if lhs.is_constant:
        return rhs * lhs.const
    raise ParseError(f"cannot multiply two non-constant expressions '{lhs}' and '{rhs}'")


def _make_constraint(lhs: AffExpr, op: str, rhs: AffExpr) -> Constraint:
    if op in ("=", "=="):
        return Constraint.eq(lhs, rhs)
    if op == "<=":
        return Constraint.le(lhs, rhs)
    if op == "<":
        return Constraint.lt(lhs, rhs)
    if op == ">=":
        return Constraint.ge(lhs, rhs)
    if op == ">":
        return Constraint.gt(lhs, rhs)
    raise ParseError(f"unsupported comparison operator {op!r}")


def _entries_as_dims(entries: Sequence[AffExpr], what: str) -> list[str]:
    dims = []
    for entry in entries:
        if entry.is_affine and entry.const == 0 and len(entry.terms) == 1:
            (name, coeff), = entry.terms.items()
            if coeff == 1:
                dims.append(name)
                continue
        raise ParseError(f"{what} tuple entries must be plain dimension names, got '{entry}'")
    return dims


def parse_expr(text: str, *, _parser: _Parser | None = None) -> AffExpr:
    """Parse a standalone quasi-affine expression such as ``"i mod 8 + floor(j/4)"``."""
    parser = _Parser(text)
    expr = parser.parse_expr()
    if parser.peek().kind != "end":
        raise ParseError(f"unexpected trailing input in expression {text!r}")
    return expr


def parse_set(text: str) -> IntSet | UnionSet:
    """Parse a set string such as ``"{ PE[i,j] : 0 <= i,j < 8 }"``."""
    parser = _Parser(text)
    name, entries, out_tuple, disjuncts = parser.parse_relation()
    if out_tuple is not None:
        raise ParseError(f"{text!r} is a map, not a set; use parse_map")
    dims = _entries_as_dims(entries, "set")
    space = Space(name, dims)
    pieces = [IntSet(space, constraints) for constraints in disjuncts]
    return pieces[0] if len(pieces) == 1 else UnionSet(pieces)


def parse_map(text: str) -> IntMap | UnionMap:
    """Parse a relation string such as ``"{ S[i,j] -> PE[i mod 8] : 0 <= i < 64 }"``.

    The output tuple may either list fresh dimension names (a general
    relation, e.g. interconnect adjacency) or expressions over the input
    dimensions (a functional map, e.g. a dataflow or access function).
    """
    parser = _Parser(text)
    in_name, in_entries, out_tuple, disjuncts = parser.parse_relation()
    if out_tuple is None:
        raise ParseError(f"{text!r} is a set, not a map; use parse_set")
    in_dims = _entries_as_dims(in_entries, "input")
    in_space = Space(in_name, in_dims)
    out_name, out_entries = out_tuple

    fresh_names: list[str] | None = []
    for entry in out_entries:
        if (
            entry.is_affine
            and entry.const == 0
            and len(entry.terms) == 1
            and list(entry.terms.values()) == [1]
            and list(entry.terms)[0] not in in_dims
        ):
            fresh_names.append(list(entry.terms)[0])
        else:
            fresh_names = None
            break

    pieces: list[IntMap] = []
    for constraints in disjuncts:
        in_only = [c for c in constraints if c.variables() <= set(in_dims)]
        mixed = [c for c in constraints if not (c.variables() <= set(in_dims))]
        domain = IntSet(in_space, in_only) if in_only else None
        if fresh_names is not None and out_entries:
            out_space = Space(out_name, fresh_names)
            pieces.append(
                IntMap(in_space, out_space, out_exprs=None, constraints=mixed, domain=domain)
            )
        else:
            for constraint in mixed:
                extra = constraint.variables() - set(in_dims)
                raise ParseError(
                    f"constraint '{constraint}' of functional map uses unknown names {sorted(extra)}"
                )
            prefix = (out_name.lower() or "o")
            out_dims = [f"{prefix}{i}" for i in range(len(out_entries))]
            out_space = Space(out_name, out_dims)
            pieces.append(
                IntMap(in_space, out_space, out_exprs=tuple(out_entries), domain=domain)
            )
    return pieces[0] if len(pieces) == 1 else UnionMap(pieces)
