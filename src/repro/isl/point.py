"""Integer points inside a named space."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import SpaceError
from repro.isl.space import Space


@dataclass(frozen=True)
class Point:
    """A single integer point, e.g. ``S[1, 0, 2]``."""

    space: Space
    coords: tuple[int, ...]

    def __init__(self, space: Space, coords: Sequence[int]):
        coords = tuple(int(c) for c in coords)
        if len(coords) != space.rank:
            raise SpaceError(
                f"point of rank {len(coords)} does not fit space {space} of rank {space.rank}"
            )
        object.__setattr__(self, "space", space)
        object.__setattr__(self, "coords", coords)

    def env(self) -> dict[str, int]:
        """Bind the space's dimension names to this point's coordinates."""
        return dict(zip(self.space.dims, self.coords))

    def __getitem__(self, index: int) -> int:
        return self.coords[index]

    def __iter__(self):
        return iter(self.coords)

    def __len__(self) -> int:
        return len(self.coords)

    def value(self, dim: str) -> int:
        return self.coords[self.space.index(dim)]

    def __str__(self) -> str:
        return f"{self.space.name}[{', '.join(str(c) for c in self.coords)}]"


def env_from(space: Space, coords: Sequence[int]) -> dict[str, int]:
    """Bind coordinates to a space's dimension names without building a Point."""
    if len(coords) != space.rank:
        raise SpaceError(f"expected {space.rank} coordinates for {space}, got {len(coords)}")
    return {dim: int(value) for dim, value in zip(space.dims, coords)}


def env_from_mapping(space: Space, mapping: Mapping[str, int]) -> dict[str, int]:
    """Restrict a name->value mapping to a space's dimensions (all must be present)."""
    return {dim: int(mapping[dim]) for dim in space.dims}
