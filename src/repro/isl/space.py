"""Named tuple spaces.

A :class:`Space` identifies the universe a set or one side of a relation lives
in: a tuple name (``S``, ``PE``, ``T``, or a tensor name such as ``A``) and an
ordered list of dimension names.  Dimension names double as the variable names
used in quasi-affine expressions, so they must be unique within a space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SpaceError


@dataclass(frozen=True)
class Space:
    """A named integer tuple space, e.g. ``S[i, j, k]`` or ``PE[p0, p1]``."""

    name: str
    dims: tuple[str, ...]

    def __init__(self, name: str, dims: Sequence[str]):
        dims = tuple(str(d) for d in dims)
        if len(set(dims)) != len(dims):
            raise SpaceError(f"duplicate dimension names in space {name}[{', '.join(dims)}]")
        object.__setattr__(self, "name", str(name))
        object.__setattr__(self, "dims", dims)

    # -- basic queries -----------------------------------------------------

    @property
    def rank(self) -> int:
        """Number of dimensions in the space."""
        return len(self.dims)

    def __len__(self) -> int:
        return len(self.dims)

    def index(self, dim: str) -> int:
        """Position of dimension ``dim`` within the space."""
        try:
            return self.dims.index(dim)
        except ValueError as exc:
            raise SpaceError(f"space {self} has no dimension named {dim!r}") from exc

    def has_dim(self, dim: str) -> bool:
        return dim in self.dims

    # -- derived spaces ------------------------------------------------------

    def renamed(self, new_dims: Sequence[str]) -> "Space":
        """Return a space with the same tuple name but new dimension names."""
        if len(new_dims) != len(self.dims):
            raise SpaceError(
                f"cannot rename {self}: expected {len(self.dims)} names, got {len(new_dims)}"
            )
        return Space(self.name, tuple(new_dims))

    def primed(self) -> "Space":
        """Return a copy with every dimension name suffixed by a prime.

        Used to keep input and output dimension names distinct when both
        sides of a relation use the same space (e.g. ``PE -> PE``).
        """
        return Space(self.name, tuple(f"{d}'" for d in self.dims))

    def with_name(self, name: str) -> "Space":
        return Space(name, self.dims)

    def disjoint_from(self, other: "Space") -> bool:
        """True when the two spaces share no dimension names."""
        return not set(self.dims) & set(other.dims)

    # -- formatting ----------------------------------------------------------

    def __str__(self) -> str:
        return f"{self.name}[{', '.join(self.dims)}]"

    def __repr__(self) -> str:
        return f"Space({self.name!r}, {list(self.dims)!r})"


def ensure_disjoint(in_space: Space, out_space: Space) -> Space:
    """Return ``out_space`` with dimensions renamed so they do not collide.

    Relations store constraints over the union of input and output dimension
    names, so the two sides must not share names.  Colliding output dimensions
    are primed (``i`` becomes ``i'``); the primes stack if necessary.
    """
    taken = set(in_space.dims)
    new_dims = []
    for dim in out_space.dims:
        candidate = dim
        while candidate in taken or candidate in new_dims:
            candidate = candidate + "'"
        new_dims.append(candidate)
    if tuple(new_dims) == out_space.dims:
        return out_space
    return out_space.renamed(new_dims)


def flatten_dims(spaces: Iterable[Space]) -> tuple[str, ...]:
    """Concatenate the dimension names of several spaces (must be disjoint)."""
    dims: list[str] = []
    for space in spaces:
        for dim in space.dims:
            if dim in dims:
                raise SpaceError(f"dimension {dim!r} appears in more than one space")
            dims.append(dim)
    return tuple(dims)
