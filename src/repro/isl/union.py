"""Unions of sets and maps.

ISL distinguishes *basic* sets/maps (single conjunctions) from unions of them.
The same split is used here: :class:`IntSet` / :class:`IntMap` are single
conjunctions, and :class:`UnionSet` / :class:`UnionMap` hold several pieces —
for example, a disjunctive interconnect condition (2D systolic: "right
neighbour or down neighbour") or a statement accessing the same tensor through
several references (Jacobi-2D reads ``A`` five times).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import SpaceError
from repro.isl.imap import IntMap
from repro.isl.iset import IntSet


class UnionSet:
    """A union of :class:`IntSet` pieces living in the same space."""

    def __init__(self, pieces: Iterable[IntSet] = ()):
        self.pieces: list[IntSet] = list(pieces)
        if self.pieces:
            first = self.pieces[0].space
            for piece in self.pieces[1:]:
                if piece.space.dims != first.dims or piece.space.name != first.name:
                    raise SpaceError("all pieces of a UnionSet must share one space")

    @property
    def space(self):
        if not self.pieces:
            raise SpaceError("empty UnionSet has no space")
        return self.pieces[0].space

    def add(self, piece: IntSet) -> "UnionSet":
        return UnionSet(self.pieces + [piece])

    def contains(self, coords) -> bool:
        return any(piece.contains(coords) for piece in self.pieces)

    def contains_vec(self, env) -> np.ndarray:
        mask = None
        for piece in self.pieces:
            ok = piece.contains_vec(env)
            mask = ok if mask is None else mask | ok
        if mask is None:
            raise SpaceError("empty UnionSet cannot test membership")
        return mask

    def count(self) -> int:
        """Cardinality of the union (pieces may overlap; duplicates removed)."""
        if len(self.pieces) == 1:
            return self.pieces[0].count()
        seen: set[tuple[int, ...]] = set()
        for piece in self.pieces:
            for point in piece.points():
                seen.add(point.coords)
        return len(seen)

    def __iter__(self) -> Iterator[IntSet]:
        return iter(self.pieces)

    def __len__(self) -> int:
        return len(self.pieces)

    def __str__(self) -> str:
        return " ∪ ".join(str(piece) for piece in self.pieces) if self.pieces else "{ }"


class UnionMap:
    """A union of :class:`IntMap` pieces sharing input and output spaces."""

    def __init__(self, pieces: Iterable[IntMap] = ()):
        self.pieces: list[IntMap] = list(pieces)

    @property
    def in_space(self):
        if not self.pieces:
            raise SpaceError("empty UnionMap has no input space")
        return self.pieces[0].in_space

    @property
    def out_space(self):
        if not self.pieces:
            raise SpaceError("empty UnionMap has no output space")
        return self.pieces[0].out_space

    def add(self, piece: IntMap) -> "UnionMap":
        return UnionMap(self.pieces + [piece])

    @property
    def is_functional_union(self) -> bool:
        """True when every piece is functional (a multi-valued access function)."""
        return bool(self.pieces) and all(piece.is_functional for piece in self.pieces)

    def contains(self, in_coords: Sequence[int], out_coords: Sequence[int]) -> bool:
        return any(piece.contains(in_coords, out_coords) for piece in self.pieces)

    def contains_pairs_vec(self, env) -> np.ndarray:
        mask = None
        for piece in self.pieces:
            ok = piece.contains_pairs_vec(env)
            mask = ok if mask is None else mask | ok
        if mask is None:
            raise SpaceError("empty UnionMap cannot test membership")
        return mask

    def images_chunks(self, env) -> list[dict[str, np.ndarray]]:
        """Apply every functional piece to an input chunk (one output chunk per piece)."""
        return [piece.apply_chunk(env) for piece in self.pieces]

    def compose(self, other: "IntMap | UnionMap") -> "UnionMap":
        """Compose every piece with ``other`` (or with each of its pieces)."""
        other_pieces = other.pieces if isinstance(other, UnionMap) else [other]
        composed = [
            mine.compose(theirs) for mine in self.pieces for theirs in other_pieces
        ]
        return UnionMap(composed)

    def reverse(self) -> "UnionMap":
        return UnionMap([piece.reverse() for piece in self.pieces])

    def intersect_domain(self, domain: IntSet) -> "UnionMap":
        return UnionMap([piece.intersect_domain(domain) for piece in self.pieces])

    def count_pairs(self) -> int:
        """Cardinality of the union of all pieces' pair sets (duplicates removed)."""
        if len(self.pieces) == 1:
            return self.pieces[0].count_pairs()
        seen: set[tuple[int, ...]] = set()
        for piece in self.pieces:
            array = piece.pairs_array()
            for row in array:
                seen.add(tuple(int(v) for v in row))
        return len(seen)

    def __iter__(self) -> Iterator[IntMap]:
        return iter(self.pieces)

    def __len__(self) -> int:
        return len(self.pieces)

    def __str__(self) -> str:
        return " ∪ ".join(str(piece) for piece in self.pieces) if self.pieces else "{ }"


def as_union_map(value: IntMap | UnionMap) -> UnionMap:
    """Wrap a single map into a union (no-op for unions)."""
    if isinstance(value, UnionMap):
        return value
    return UnionMap([value])


def as_union_set(value: IntSet | UnionSet) -> UnionSet:
    """Wrap a single set into a union (no-op for unions)."""
    if isinstance(value, UnionSet):
        return value
    return UnionSet([value])
