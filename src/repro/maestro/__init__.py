"""Data-centric (MAESTRO-style) notation and polynomial cost model.

This package is the comparison baseline of the evaluation.  It reimplements
the *data-centric* notation — ``SpatialMap`` / ``TemporalMap`` / ``Cluster``
directives — together with a polynomial cost model that estimates reuse,
latency, utilisation and bandwidth the way the paper describes MAESTRO doing
it (Sections II-C, VI-E):

* reuse is a product of loop extents, not a relation count;
* only dimensions explicitly named by a directive participate: a coupled
  subscript such as ``A[i + j]`` or ``A[ox + rx]`` cannot be expressed, so
  only its leading dimension is credited (this reproduces the Figure 1(c)
  overestimate: actual reuse 6, data-centric estimate 8);
* no reuse is ever reported for output tensors;
* only the innermost temporal dimension contributes temporal reuse.

The model is intentionally cheap (a handful of arithmetic operations), which
is what Figure 8's runtime comparison measures.
"""

from repro.maestro.directives import Cluster, DataCentricMapping, SpatialMap, TemporalMap
from repro.maestro.model import MaestroModel, MaestroReport
from repro.maestro.convert import mapping_to_dataflow, default_mapping_for

__all__ = [
    "SpatialMap",
    "TemporalMap",
    "Cluster",
    "DataCentricMapping",
    "MaestroModel",
    "MaestroReport",
    "mapping_to_dataflow",
    "default_mapping_for",
]
