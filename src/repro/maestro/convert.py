"""Bridging the data-centric and relation-centric notations.

Two directions are provided:

* :func:`mapping_to_dataflow` — every data-centric mapping (without clusters)
  is expressible as a relation-centric dataflow: spatially mapped dimensions
  become PE-array axes (with a modulus fold when the dimension exceeds the
  array), temporally mapped dimensions become time-stamp axes in directive
  order.  This is the containment argument of Table I: the data-centric space
  is a subset of the relation-centric space.
* :func:`default_mapping_for` — the best-effort data-centric mapping for a
  Table III dataflow name, used when the baseline model needs an input for a
  dataflow the data-centric notation *can* express.
"""

from __future__ import annotations

from repro.core.dataflow import Dataflow
from repro.errors import ModelError
from repro.isl.expr import AffExpr, var
from repro.maestro.directives import (
    Cluster,
    DataCentricMapping,
    SpatialMap,
    TemporalMap,
)
from repro.tensor.operation import TensorOp


def mapping_to_dataflow(
    mapping: DataCentricMapping,
    op: TensorOp,
    pe_dims: tuple[int, ...],
) -> Dataflow:
    """Convert a cluster-free data-centric mapping into a relation-centric dataflow.

    The i-th ``SpatialMap`` is assigned to the i-th PE-array axis; when the
    mapped extent exceeds that axis the dimension is folded with a modulus and
    the quotient becomes an outer time-stamp axis.  ``TemporalMap`` directives
    become time-stamp axes in order.  Unmapped loop dimensions are appended as
    outermost time-stamp axes so the dataflow stays complete.
    """
    if mapping.cluster_sizes:
        raise ModelError(
            "cluster-based mappings have no direct single-level relation-centric "
            "equivalent; model them directly with Dataflow.from_exprs"
        )
    sizes = op.loop_sizes()
    spatial = [d for d in mapping.directives if isinstance(d, SpatialMap)]
    temporal = [d for d in mapping.directives if isinstance(d, TemporalMap)]
    if len(spatial) > len(pe_dims):
        raise ModelError(
            f"mapping {mapping.name!r} has {len(spatial)} spatial maps but the PE array "
            f"has only {len(pe_dims)} dimensions"
        )

    pe_exprs: list[AffExpr] = []
    fold_time_exprs: list[AffExpr] = []
    for directive, extent in zip(spatial, pe_dims):
        dim_size = sizes.get(directive.dim, 1)
        dimension = var(directive.dim)
        if dim_size > extent:
            pe_exprs.append(dimension % extent)
            fold_time_exprs.append(dimension // extent)
        else:
            pe_exprs.append(dimension)
    while len(pe_exprs) < len(pe_dims):
        pe_exprs.append(AffExpr.constant(0))

    mapped = {d.dim for d in spatial} | {d.dim for d in temporal}
    unmapped = [dim for dim in op.loop_dims if dim not in mapped]

    time_exprs: list[AffExpr] = [var(dim) for dim in unmapped]
    time_exprs.extend(fold_time_exprs)
    time_exprs.extend(var(d.dim) for d in temporal)
    if not time_exprs:
        time_exprs = [AffExpr.constant(0)]

    return Dataflow.from_exprs(mapping.name, op.domain.space, pe_exprs, time_exprs)


def default_mapping_for(kernel: str, dataflow_name: str) -> DataCentricMapping:
    """The data-centric mapping matching a Table III dataflow name.

    Only dataflows marked as data-centric expressible in Table III are
    available; asking for a TENET-only dataflow raises ``ModelError``.
    """
    kernel = kernel.lower()
    key = (kernel, dataflow_name)
    if key in _MAPPINGS:
        return _MAPPINGS[key]
    raise ModelError(
        f"no data-centric mapping for {dataflow_name!r} on kernel {kernel!r}; "
        "this dataflow needs the relation-centric notation"
    )


_MAPPINGS: dict[tuple[str, str], DataCentricMapping] = {
    ("gemm", "(K-P | I,J-T)"): DataCentricMapping(
        "(K-P | I,J-T)",
        [SpatialMap("k"), TemporalMap("i"), TemporalMap("j")],
    ),
    ("gemm", "(J-P | I,K-T)"): DataCentricMapping(
        "(J-P | I,K-T)",
        [SpatialMap("j"), TemporalMap("i"), TemporalMap("k")],
    ),
    ("conv2d", "(K-P | OX,OY-T)"): DataCentricMapping(
        "(K-P | OX,OY-T)",
        [SpatialMap("k"), TemporalMap("c"), TemporalMap("rx"), TemporalMap("ry"),
         TemporalMap("ox"), TemporalMap("oy")],
    ),
    ("conv2d", "(C-P | OY,OX-T)"): DataCentricMapping(
        "(C-P | OY,OX-T)",
        [SpatialMap("c"), TemporalMap("k"), TemporalMap("rx"), TemporalMap("ry"),
         TemporalMap("oy"), TemporalMap("ox")],
    ),
    ("conv2d", "(OYOX-P | OY,OX-T)"): DataCentricMapping(
        "(OYOX-P | OY,OX-T)",
        [SpatialMap("oy"), Cluster(8), SpatialMap("ox"), TemporalMap("k"),
         TemporalMap("c"), TemporalMap("ry"), TemporalMap("rx")],
    ),
    ("conv2d", "(KC-P | OY,OX-T)"): DataCentricMapping(
        "(KC-P | OY,OX-T)",
        [SpatialMap("k"), Cluster(8), SpatialMap("c"), TemporalMap("ry"),
         TemporalMap("rx"), TemporalMap("oy"), TemporalMap("ox")],
    ),
    ("conv2d", "(RYOY-P | OY,OX-T)"): DataCentricMapping(
        "(RYOY-P | OY,OX-T)",
        [TemporalMap("c", 4, 4), TemporalMap("k", 16, 16), SpatialMap("oy"),
         Cluster(3), SpatialMap("ry"), TemporalMap("rx"), TemporalMap("ox")],
    ),
}
