"""Data-centric mapping directives.

The data-centric notation (Kwon et al.) describes a dataflow as an ordered
list of directives over the loop dimensions:

* ``SpatialMap(size, offset, dim)`` — distribute ``dim`` across PEs, ``size``
  indices per PE, stepping by ``offset`` from one PE to the next;
* ``TemporalMap(size, offset, dim)`` — iterate ``dim`` over time within a PE;
* ``Cluster(size)`` — group PEs into clusters of ``size``; directives below a
  cluster apply within the cluster (a second spatial level).

Figure 1(b) and the right-hand column of Table III use exactly this syntax.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ModelError


@dataclass(frozen=True)
class SpatialMap:
    """Distribute a loop dimension across the PEs of the current cluster level."""

    dim: str
    size: int = 1
    offset: int = 1

    def __str__(self) -> str:
        return f"SpatialMap({self.size},{self.offset}) {self.dim.upper()}"


@dataclass(frozen=True)
class TemporalMap:
    """Iterate a loop dimension across time-steps within a PE."""

    dim: str
    size: int = 1
    offset: int = 1

    def __str__(self) -> str:
        return f"TemporalMap({self.size},{self.offset}) {self.dim.upper()}"


@dataclass(frozen=True)
class Cluster:
    """Group the PEs below this directive into clusters of the given size."""

    size: int

    def __str__(self) -> str:
        return f"Cluster({self.size}, P)"


Directive = SpatialMap | TemporalMap | Cluster


@dataclass
class DataCentricMapping:
    """An ordered list of directives describing one data-centric dataflow."""

    name: str
    directives: list[Directive] = field(default_factory=list)

    def __post_init__(self):
        if not self.directives:
            raise ModelError(f"mapping {self.name!r} has no directives")

    # -- structural queries ----------------------------------------------------

    @property
    def levels(self) -> list[list[Directive]]:
        """Split the directive list into cluster levels (top level first)."""
        groups: list[list[Directive]] = [[]]
        for directive in self.directives:
            if isinstance(directive, Cluster):
                groups.append([])
            else:
                groups[-1].append(directive)
        return groups

    @property
    def cluster_sizes(self) -> list[int]:
        """Cluster size introduced before each level below the first."""
        return [d.size for d in self.directives if isinstance(d, Cluster)]

    def spatial_dims(self) -> list[str]:
        """Dimensions distributed across PEs, at any cluster level."""
        return [d.dim for d in self.directives if isinstance(d, SpatialMap)]

    def temporal_dims(self) -> list[str]:
        """Dimensions iterated over time, in directive order (outermost first)."""
        return [d.dim for d in self.directives if isinstance(d, TemporalMap)]

    def innermost_temporal_dim(self) -> str | None:
        temporal = self.temporal_dims()
        return temporal[-1] if temporal else None

    def mapped_dims(self) -> list[str]:
        return [
            d.dim for d in self.directives if isinstance(d, (SpatialMap, TemporalMap))
        ]

    def validate_against(self, dims: Iterable[str]) -> None:
        """Check that every directive references a loop dimension of the operation."""
        known = set(dims)
        for directive in self.directives:
            if isinstance(directive, (SpatialMap, TemporalMap)) and directive.dim not in known:
                raise ModelError(
                    f"mapping {self.name!r} references unknown dimension {directive.dim!r}; "
                    f"operation has {sorted(known)}"
                )

    def __str__(self) -> str:
        return f"{self.name}: " + "; ".join(str(d) for d in self.directives)


def spatial(dim: str, size: int = 1, offset: int = 1) -> SpatialMap:
    """Shorthand constructor used by tests and the catalog."""
    return SpatialMap(dim, size, offset)


def temporal(dim: str, size: int = 1, offset: int = 1) -> TemporalMap:
    """Shorthand constructor used by tests and the catalog."""
    return TemporalMap(dim, size, offset)
