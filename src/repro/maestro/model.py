"""Polynomial (MAESTRO-style) cost model for data-centric mappings.

The model mirrors the behaviour the paper attributes to MAESTRO:

* metrics are closed-form products of loop extents — evaluation takes
  microseconds (Figure 8's runtime gap);
* a tensor's reuse only accounts for loop dimensions that its subscripts name
  *explicitly*; a coupled subscript such as ``A[ox + rx]`` only credits its
  leading dimension, so the trailing dimensions are wrongly counted as reuse
  (Figure 1(c): actual reuse 6, data-centric estimate 8);
* output tensors are reported with no reuse at all (Section VI-E);
* PE utilisation is a polynomial of the array size and the spatially mapped
  extents rather than a walk over time-stamps.

The model is *not* a bit-exact reimplementation of the MAESTRO tool; it is the
estimation strategy the paper compares against, which is what the accuracy
experiments need.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.errors import ModelError
from repro.maestro.directives import DataCentricMapping, SpatialMap, TemporalMap
from repro.tensor.operation import TensorOp


@dataclass(frozen=True)
class MaestroTensorEstimate:
    """Per-tensor estimates produced by the polynomial model."""

    tensor: str
    is_output: bool
    total_accesses: int
    reuse_factor: float
    unique_volume: float

    def as_dict(self) -> dict[str, float]:
        return {
            "tensor": self.tensor,
            "is_output": self.is_output,
            "total": self.total_accesses,
            "reuse_factor": self.reuse_factor,
            "unique": self.unique_volume,
        }


@dataclass
class MaestroReport:
    """Aggregate output of the data-centric cost model."""

    operation: str
    mapping: str
    num_pes: int
    used_pes: int
    macs: int
    compute_delay: float
    read_delay: float
    write_delay: float
    tensors: dict[str, MaestroTensorEstimate] = field(default_factory=dict)
    word_bits: int = 16
    analysis_seconds: float = 0.0

    @property
    def latency_cycles(self) -> float:
        return max(self.compute_delay, self.read_delay, self.write_delay)

    @property
    def average_pe_utilization(self) -> float:
        return self.used_pes / self.num_pes if self.num_pes else 0.0

    @property
    def normalized_latency(self) -> float:
        ideal = self.macs / self.num_pes if self.num_pes else 0.0
        return self.latency_cycles / ideal if ideal else 0.0

    def reuse_factor(self, tensor: str) -> float:
        return self.tensors[tensor].reuse_factor

    def unique_volume(self, tensor: str | None = None) -> float:
        if tensor is not None:
            return self.tensors[tensor].unique_volume
        return sum(entry.unique_volume for entry in self.tensors.values())

    def scratchpad_bandwidth_bits(self) -> float:
        delay = max(self.compute_delay, 1.0)
        return self.unique_volume() / delay * self.word_bits

    def as_dict(self) -> dict:
        return {
            "operation": self.operation,
            "mapping": self.mapping,
            "latency_cycles": self.latency_cycles,
            "average_pe_utilization": self.average_pe_utilization,
            "tensors": {name: entry.as_dict() for name, entry in self.tensors.items()},
            "analysis_seconds": self.analysis_seconds,
        }


class MaestroModel:
    """Evaluate a data-centric mapping with polynomial formulas."""

    def __init__(
        self,
        num_pes: int = 64,
        bandwidth_bits_per_cycle: float = 128.0,
        word_bits: int = 16,
    ):
        if num_pes <= 0:
            raise ModelError("the data-centric model needs a positive PE count")
        self.num_pes = int(num_pes)
        self.bandwidth_bits_per_cycle = float(bandwidth_bits_per_cycle)
        self.word_bits = int(word_bits)

    # -- tensor indexing rules ----------------------------------------------------

    @staticmethod
    def explicit_index_dims(op: TensorOp, tensor: str) -> set[str]:
        """Loop dimensions a tensor's subscripts name explicitly.

        A subscript that couples several iterators (``ox + rx``, ``i + j``) is
        not expressible with data-centric primitives, so only its leading
        iterator (in loop order) is credited; the others are silently dropped,
        which is the documented source of the baseline's reuse overestimates.
        """
        explicit: set[str] = set()
        loop_order = {dim: position for position, dim in enumerate(op.loop_dims)}
        for access in op.accesses_to(tensor):
            for expr in access.relation.out_exprs:
                variables = sorted(expr.variables(), key=lambda v: loop_order.get(v, 99))
                if not variables:
                    continue
                explicit.add(variables[0])
        return explicit

    # -- model ----------------------------------------------------------------------

    def analyze(self, op: TensorOp, mapping: DataCentricMapping) -> MaestroReport:
        started = time.perf_counter()
        mapping.validate_against(op.loop_dims)
        sizes = op.loop_sizes()
        macs = 1
        for extent in sizes.values():
            macs *= extent

        used_pes = self._used_pes(mapping, sizes)
        compute_delay = math.ceil(macs / used_pes)

        tensors: dict[str, MaestroTensorEstimate] = {}
        read_words = 0.0
        write_words = 0.0
        for tensor in op.tensor_names:
            accesses = op.accesses_to(tensor)
            is_output = any(access.mode.writes for access in accesses)
            total = macs * len(accesses)
            index_dims = self.explicit_index_dims(op, tensor)
            if is_output:
                reuse_factor = 1.0
                footprint = 1
                for dim in index_dims:
                    footprint *= sizes.get(dim, 1)
                unique = float(footprint)
                write_words += unique
            else:
                reuse_factor = self._input_reuse_factor(mapping, sizes, index_dims)
                unique = total / reuse_factor
                read_words += unique
            tensors[tensor] = MaestroTensorEstimate(
                tensor=tensor,
                is_output=is_output,
                total_accesses=total,
                reuse_factor=reuse_factor,
                unique_volume=unique,
            )

        words_per_cycle = self.bandwidth_bits_per_cycle / self.word_bits
        read_delay = read_words / words_per_cycle if words_per_cycle else float("inf")
        write_delay = write_words / words_per_cycle if words_per_cycle else float("inf")

        elapsed = time.perf_counter() - started
        return MaestroReport(
            operation=op.name,
            mapping=mapping.name,
            num_pes=self.num_pes,
            used_pes=used_pes,
            macs=macs,
            compute_delay=float(compute_delay),
            read_delay=read_delay,
            write_delay=write_delay,
            tensors=tensors,
            word_bits=self.word_bits,
            analysis_seconds=elapsed,
        )

    # -- helpers -----------------------------------------------------------------------

    def _used_pes(self, mapping: DataCentricMapping, sizes: dict[str, int]) -> int:
        """Polynomial PE-count estimate: product of spatially mapped extents."""
        spatial_product = 1
        for directive in mapping.directives:
            if isinstance(directive, SpatialMap):
                extent = sizes.get(directive.dim, 1)
                lanes = math.ceil(extent / max(1, directive.size))
                spatial_product *= lanes
        return max(1, min(self.num_pes, spatial_product))

    def _input_reuse_factor(
        self,
        mapping: DataCentricMapping,
        sizes: dict[str, int],
        index_dims: set[str],
    ) -> float:
        """Reuse of an input tensor: products over mapped dims it does not index.

        Spatially mapped irrelevant dimensions contribute multicast reuse;
        among temporally mapped irrelevant dimensions only the innermost one
        contributes (the baseline does not track reuse across outer time
        loops, as discussed in Section VI-E).
        """
        reuse = 1.0
        for directive in mapping.directives:
            if isinstance(directive, SpatialMap) and directive.dim not in index_dims:
                reuse *= sizes.get(directive.dim, 1)
        innermost = None
        for directive in mapping.directives:
            if isinstance(directive, TemporalMap) and directive.dim not in index_dims:
                innermost = directive.dim
        if innermost is not None:
            reuse *= sizes.get(innermost, 1)
        return max(1.0, reuse)
