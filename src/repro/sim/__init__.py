"""Reference spacetime simulator.

The accuracy experiment of Figure 11 needs a ground truth to compare the
analytical models against (the paper uses the latencies reported by the
Eyeriss and MAERI papers; this reproduction cannot re-measure those chips).
:class:`~repro.sim.engine.SpacetimeSimulator` plays that role: it executes a
dataflow literally, time-stamp by time-stamp, tracking

* which elements each PE holds in its registers,
* which operands can be forwarded from an interconnected neighbour,
* how many words must be fetched from / written to the scratchpad, and
* how many cycles each step takes under the finite scratchpad bandwidth.

The simulator is intentionally independent of the analytical model in
:mod:`repro.core` — it shares no counting code — so agreement between the two
is meaningful evidence, and disagreement (e.g. when register capacity is
constrained) quantifies model error.
"""

from repro.sim.engine import SpacetimeSimulator, simulate
from repro.sim.trace import SimulationResult, StepRecord
from repro.sim.pe import PERegisterFile
from repro.sim.noc import NocModel
from repro.sim.scratchpad import ScratchpadModel

__all__ = [
    "SpacetimeSimulator",
    "simulate",
    "SimulationResult",
    "StepRecord",
    "PERegisterFile",
    "NocModel",
    "ScratchpadModel",
]
