"""The reference spacetime simulator.

The simulator executes a dataflow one time-stamp at a time:

1. Loop instances are grouped by their time-stamp (lexicographic order).
2. Within a step, every active PE resolves its operands in priority order:
   register hit (held since the previous step), NoC forward (an interconnected
   predecessor held it at the previous step — or holds it in the same step for
   multicast wires), otherwise a scratchpad read.
3. Output elements are retained in the producing PE's registers; an output
   element is written back to the scratchpad when the PE stops touching it
   (and at the end of the execution).
4. A step costs ``max(compute cycles, scratchpad words / bandwidth)`` cycles —
   the double-buffering assumption of the analytical model.

This is deliberately a different code path from :mod:`repro.core`: it performs
an explicit execution with per-PE register sets rather than counting relation
cardinalities, so it can serve as ground truth for the Figure 11 accuracy
comparison.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.arch.spec import ArchSpec
from repro.core.dataflow import Dataflow
from repro.errors import ModelError
from repro.sim.noc import NocModel
from repro.sim.pe import PERegisterFile
from repro.sim.scratchpad import ScratchpadModel
from repro.sim.trace import SimulationResult, StepRecord
from repro.tensor.operation import TensorOp


class SpacetimeSimulator:
    """Execute (simulate) a dataflow on a spatial architecture."""

    def __init__(
        self,
        op: TensorOp,
        dataflow: Dataflow,
        arch: ArchSpec,
        *,
        max_instances: int = 2_000_000,
        register_capacity_words: int | None = None,
        keep_steps: bool = False,
    ):
        self.op = op
        self.dataflow = dataflow.bind(op)
        self.arch = arch
        self.max_instances = int(max_instances)
        self.register_capacity_words = register_capacity_words
        self.keep_steps = keep_steps

    # -- public API --------------------------------------------------------------

    def run(self) -> SimulationResult:
        instances, pe_coords, time_ranks = self._materialize()
        order = np.argsort(time_ranks, kind="stable")
        instances = instances[order]
        pe_coords = pe_coords[order]
        time_ranks = time_ranks[order]

        pe_array = self.arch.pe_array
        noc = NocModel(pe_array, self.arch.interconnect)
        scratchpad = ScratchpadModel(self.arch.memory.scratchpad_words_per_cycle)
        registers: dict[tuple[int, ...], PERegisterFile] = {
            coord: PERegisterFile(self.register_capacity_words) for coord in pe_array.coords()
        }

        input_accesses = [
            (access.tensor, access.relation)
            for access in self.op.accesses
            if access.mode.reads and not access.mode.writes
        ]
        output_accesses = [
            (access.tensor, access.relation)
            for access in self.op.accesses
            if access.mode.writes
        ]

        register_hits = 0
        register_spills = 0
        total_cycles = 0.0
        compute_cycles = 0.0
        accesses_per_tensor: dict[str, int] = defaultdict(int)
        live_outputs: dict[tuple[int, ...], set] = defaultdict(set)
        written_outputs: set = set()
        steps: list[StepRecord] = []

        boundaries = self._step_boundaries(time_ranks)
        iteration_dims = self.op.loop_dims
        for step_index, (start, stop) in enumerate(boundaries):
            step_hits = 0
            step_noc = 0
            step_reads = 0
            step_writes = 0
            instances_in_step = stop - start
            per_pe_instances: dict[tuple[int, ...], int] = defaultdict(int)
            touched_outputs: dict[tuple[int, ...], set] = defaultdict(set)

            for row in range(start, stop):
                pe = tuple(int(v) for v in pe_coords[row])
                per_pe_instances[pe] += 1
                env = dict(zip(iteration_dims, (int(v) for v in instances[row])))
                register_file = registers[pe]

                for tensor, relation in input_accesses:
                    element = (tensor, relation.apply_env(env))
                    accesses_per_tensor[tensor] += 1
                    if register_file.holds(element) or element in register_file.current:
                        register_hits += 1
                        step_hits += 1
                    elif self._forwardable(element, pe, noc, registers):
                        noc.record_transfer(tensor)
                        step_noc += 1
                    else:
                        scratchpad.read(tensor)
                        step_reads += 1
                    register_file.touch(element)

                for tensor, relation in output_accesses:
                    element = (tensor, relation.apply_env(env))
                    accesses_per_tensor[tensor] += 1
                    register_file.touch(element)
                    touched_outputs[pe].add(element)

            # Outputs a PE stopped touching are drained to the scratchpad.
            for pe, live in live_outputs.items():
                finished = live - touched_outputs.get(pe, set())
                for element in finished:
                    if element not in written_outputs:
                        scratchpad.write(element[0])
                        written_outputs.add(element)
                        step_writes += 1
            live_outputs = touched_outputs

            for register_file in registers.values():
                register_spills += register_file.advance()

            compute = max(per_pe_instances.values()) if per_pe_instances else 0
            transfer = scratchpad.cycles_for(step_reads + step_writes)
            cycles = max(float(compute), transfer)
            compute_cycles += compute
            total_cycles += cycles

            if self.keep_steps:
                steps.append(
                    StepRecord(
                        step=step_index,
                        active_pes=len(per_pe_instances),
                        instances=instances_in_step,
                        register_hits=step_hits,
                        noc_transfers=step_noc,
                        scratchpad_reads=step_reads,
                        scratchpad_writes=step_writes,
                        cycles=cycles,
                    )
                )

        # Drain the outputs still live after the last step.
        final_writes = 0
        for pe, live in live_outputs.items():
            for element in live:
                if element not in written_outputs:
                    scratchpad.write(element[0])
                    written_outputs.add(element)
                    final_writes += 1
        total_cycles += scratchpad.cycles_for(final_writes)

        return SimulationResult(
            operation=self.op.name,
            dataflow=self.dataflow.name,
            architecture=self.arch.name,
            total_cycles=total_cycles,
            compute_cycles=compute_cycles,
            num_instances=int(instances.shape[0]),
            num_time_steps=len(boundaries),
            num_pes=pe_array.size,
            register_hits=register_hits,
            noc_transfers=noc.total_transfers,
            scratchpad_reads=scratchpad.total_reads,
            scratchpad_writes=scratchpad.total_writes,
            register_spills=register_spills,
            reads_per_tensor=dict(scratchpad.reads_per_tensor),
            writes_per_tensor=dict(scratchpad.writes_per_tensor),
            noc_per_tensor=dict(noc.transfers_per_tensor),
            steps=steps,
            accesses_per_tensor=dict(accesses_per_tensor),
        )

    # -- helpers -----------------------------------------------------------------------

    def _forwardable(
        self,
        element,
        destination: tuple[int, ...],
        noc: NocModel,
        registers: dict[tuple[int, ...], PERegisterFile],
    ) -> bool:
        """Can an interconnected predecessor supply the element?"""
        for source in noc.predecessors(destination):
            source_file = registers[source]
            if source_file.holds(element):
                return True
            if noc.same_cycle_forwarding and element in source_file.current:
                return True
        return False

    def _step_boundaries(self, time_ranks: np.ndarray) -> list[tuple[int, int]]:
        """(start, stop) index ranges of each time-step in the sorted instance arrays."""
        if time_ranks.size == 0:
            return []
        change = np.flatnonzero(np.diff(time_ranks)) + 1
        starts = np.concatenate(([0], change))
        stops = np.concatenate((change, [time_ranks.size]))
        return list(zip(starts.tolist(), stops.tolist()))

    def _materialize(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All instances, their PE coordinates and dense time ranks."""
        box = self.op.domain.box_size()
        if box > self.max_instances:
            raise ModelError(
                f"simulation of {box} instances exceeds the simulator cap of "
                f"{self.max_instances}; scale the workload first"
            )
        instances = self.op.domain.points_array()
        chunk = {dim: instances[:, i] for i, dim in enumerate(self.op.loop_dims)}
        pe_coords, time_coords = self.dataflow.stamps_for_chunk(chunk)

        for axis, extent in enumerate(self.arch.pe_array.dims):
            column = pe_coords[:, axis]
            if (column < 0).any() or (column >= extent).any():
                raise ModelError(
                    f"dataflow {self.dataflow.name!r} maps instances outside "
                    f"{self.arch.pe_array}"
                )

        time_bounds = self.dataflow.time_bounds(self.op)
        time_key = np.zeros(instances.shape[0], dtype=np.int64)
        for axis, (lo, hi) in enumerate(time_bounds):
            extent = hi - lo + 1
            time_key = time_key * extent + (time_coords[:, axis] - lo)
        unique_times = np.unique(time_key)
        time_ranks = np.searchsorted(unique_times, time_key)
        return instances, pe_coords, time_ranks


def simulate(op: TensorOp, dataflow: Dataflow, arch: ArchSpec, **kwargs) -> SimulationResult:
    """Convenience wrapper: ``SpacetimeSimulator(op, dataflow, arch, **kwargs).run()``."""
    return SpacetimeSimulator(op, dataflow, arch, **kwargs).run()
