"""Interconnect (NoC) accounting for the reference simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.interconnect import Interconnect
from repro.arch.pe_array import PEArray

Coord = tuple[int, ...]


@dataclass
class NocModel:
    """Answers "who can forward this operand?" and counts transfers."""

    pe_array: PEArray
    interconnect: Interconnect
    transfers_per_tensor: dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        self._predecessors = self.interconnect.predecessors(self.pe_array)

    def predecessors(self, destination: Coord) -> list[Coord]:
        return self._predecessors.get(tuple(destination), [])

    @property
    def same_cycle_forwarding(self) -> bool:
        """Multicast-style wires forward within the same time-step."""
        return self.interconnect.time_interval == 0

    def record_transfer(self, tensor: str, count: int = 1) -> None:
        self.transfers_per_tensor[tensor] = self.transfers_per_tensor.get(tensor, 0) + count

    @property
    def total_transfers(self) -> int:
        return sum(self.transfers_per_tensor.values())
