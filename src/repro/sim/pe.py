"""Per-PE register-file state for the reference simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

Element = tuple[str, tuple[int, ...]]


@dataclass
class PERegisterFile:
    """The operands a PE holds at the end of a time-step.

    The default policy mirrors the analytical model's adjacency assumption: a
    PE retains everything it touched during the previous time-step.  An
    optional capacity (in words) models a finite register file; when the
    working set exceeds it, the overflow is dropped and must be re-fetched,
    which is one source of divergence between the simulator and the analytical
    model.
    """

    capacity_words: int | None = None
    current: set[Element] = field(default_factory=set)
    previous: set[Element] = field(default_factory=set)

    def holds(self, element: Element) -> bool:
        """True when the element survived from the previous time-step."""
        return element in self.previous

    def touch(self, element: Element) -> None:
        """Record that the PE used this element during the current time-step."""
        self.current.add(element)

    def advance(self) -> int:
        """Finish the time-step; returns how many words were dropped for capacity."""
        dropped = 0
        retained = self.current
        if self.capacity_words is not None and len(retained) > self.capacity_words:
            dropped = len(retained) - self.capacity_words
            retained = set(list(retained)[: self.capacity_words])
        self.previous = retained
        self.current = set()
        return dropped

    def reset(self) -> None:
        self.current.clear()
        self.previous.clear()
