"""Scratchpad traffic and stall accounting for the reference simulator."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ScratchpadModel:
    """Counts words moved between the PE array and the scratchpad."""

    bandwidth_words_per_cycle: float
    reads_per_tensor: dict[str, int] = field(default_factory=dict)
    writes_per_tensor: dict[str, int] = field(default_factory=dict)

    def read(self, tensor: str, count: int = 1) -> None:
        self.reads_per_tensor[tensor] = self.reads_per_tensor.get(tensor, 0) + count

    def write(self, tensor: str, count: int = 1) -> None:
        self.writes_per_tensor[tensor] = self.writes_per_tensor.get(tensor, 0) + count

    @property
    def total_reads(self) -> int:
        return sum(self.reads_per_tensor.values())

    @property
    def total_writes(self) -> int:
        return sum(self.writes_per_tensor.values())

    def cycles_for(self, words: int) -> float:
        """Cycles needed to move ``words`` at the configured bandwidth."""
        if self.bandwidth_words_per_cycle <= 0:
            return float("inf") if words else 0.0
        return words / self.bandwidth_words_per_cycle
