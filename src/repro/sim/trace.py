"""Simulation results and optional per-step traces."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class StepRecord:
    """Statistics of one simulated time-step."""

    step: int
    active_pes: int
    instances: int
    register_hits: int
    noc_transfers: int
    scratchpad_reads: int
    scratchpad_writes: int
    cycles: float


@dataclass
class SimulationResult:
    """Aggregate statistics of one simulated dataflow execution."""

    operation: str
    dataflow: str
    architecture: str
    total_cycles: float
    compute_cycles: float
    num_instances: int
    num_time_steps: int
    num_pes: int
    register_hits: int
    noc_transfers: int
    scratchpad_reads: int
    scratchpad_writes: int
    register_spills: int
    reads_per_tensor: dict[str, int] = field(default_factory=dict)
    writes_per_tensor: dict[str, int] = field(default_factory=dict)
    noc_per_tensor: dict[str, int] = field(default_factory=dict)
    steps: list[StepRecord] = field(default_factory=list)

    @property
    def average_pe_utilization(self) -> float:
        """Busy PE-cycles over total PE-cycles (uses the compute cycles only)."""
        if self.compute_cycles == 0 or self.num_pes == 0:
            return 0.0
        return self.num_instances / (self.num_pes * self.compute_cycles)

    @property
    def scratchpad_traffic(self) -> int:
        return self.scratchpad_reads + self.scratchpad_writes

    @property
    def macs_per_cycle(self) -> float:
        return self.num_instances / self.total_cycles if self.total_cycles else 0.0

    def reuse_factor(self, tensor: str) -> float:
        """Accesses per scratchpad transfer for one tensor, as observed by the simulator."""
        moved = self.reads_per_tensor.get(tensor, 0) + self.writes_per_tensor.get(tensor, 0)
        accesses = self.accesses_per_tensor.get(tensor, 0)
        if moved == 0:
            return float(accesses) if accesses else 1.0
        return accesses / moved

    #: Filled by the simulator: total (instance, reference) accesses per tensor.
    accesses_per_tensor: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "operation": self.operation,
            "dataflow": self.dataflow,
            "architecture": self.architecture,
            "total_cycles": self.total_cycles,
            "compute_cycles": self.compute_cycles,
            "average_pe_utilization": self.average_pe_utilization,
            "register_hits": self.register_hits,
            "noc_transfers": self.noc_transfers,
            "scratchpad_reads": self.scratchpad_reads,
            "scratchpad_writes": self.scratchpad_writes,
            "register_spills": self.register_spills,
        }

    def summary(self) -> str:
        return (
            f"{self.operation} / {self.dataflow} on {self.architecture}: "
            f"{self.total_cycles:.0f} cycles, util {self.average_pe_utilization:.1%}, "
            f"spad {self.scratchpad_traffic} words, noc {self.noc_transfers} words"
        )
