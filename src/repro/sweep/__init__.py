"""Streaming, shard-aware design-space sweeps.

The package factors the sweep loop that used to be re-implemented by every
caller (explorer, experiment drivers, CLI) into four shared pieces:

* :mod:`repro.sweep.source` — :class:`CandidateSource`: composable, lazily
  enumerated candidate streams with structural dedupe and a deterministic
  ``shard(i, n)`` selector (stable signature hash, so N machines partition
  one space with no coordination).
* :mod:`repro.sweep.session` — :class:`SweepSession`: drives
  :meth:`repro.core.engine.EvaluationEngine.evaluate_batch` in bounded
  streaming batches with the running best score threaded through, and emits
  every outcome to pluggable sinks.
* :mod:`repro.sweep.sinks` — :class:`TopKSink` and
  :class:`JsonlCheckpointSink` (durable checkpoints, resume, shard merge).
* :mod:`repro.sweep.server` — :class:`SweepServer`: one warm engine +
  relation cache per operation, queued requests serviced concurrently.
* :mod:`repro.sweep.net` — :class:`SweepService`: the ``tenet serve`` line
  protocol over TCP *and* stdio (one shared connection handler), with
  round-robin multi-tenant fairness, backpressure, and graceful drain.
* :mod:`repro.sweep.client` — :class:`SweepClient`: a small blocking client
  for the networked service (round trips, pipelining, backoff/deadline
  retries, pipeline recovery after a drop).
* :mod:`repro.sweep.fleet` — :class:`FleetCoordinator`: the ``tenet fleet``
  orchestrator — N serve replicas, M shard leases with per-lease JSONL
  checkpoints, work stealing that resumes a revoked lease from its last
  durable record, and a bit-identical final merge.
* :mod:`repro.sweep.faults` — :class:`FaultPlan`/:class:`FaultInjector`:
  seeded, deterministic fault injection (connection drops, delays, torn
  lines, server kills, engine-build failures, checkpoint truncation) at hook
  points threaded through every layer above, so recovery is provable.
"""

from repro.sweep.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedDisconnect,
    InjectedFault,
)
from repro.sweep.fleet import (
    FleetCoordinator,
    FleetError,
    FleetResult,
    launch_replica,
    parse_attach,
)
from repro.sweep.source import (
    CandidateSource,
    parse_shard,
    signature_shard_index,
    validate_shard,
)
from repro.sweep.sinks import (
    JsonlCheckpointSink,
    RankEntry,
    ResultSink,
    TopKSink,
    clone_checkpoint,
    load_ranking,
    render_ranking,
    report_record,
)
from repro.sweep.session import SweepResult, SweepSession
from repro.sweep.server import EngineQuarantinedError, SweepRequest, SweepServer
from repro.sweep.net import (
    RequestTimeout,
    SweepService,
    format_announce,
    iter_lines,
    parse_announce,
    parse_listen,
    run_tcp_server,
    serve_lines,
)
from repro.sweep.client import PipelineBrokenError, SweepClient

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "InjectedFault",
    "InjectedDisconnect",
    "PipelineBrokenError",
    "EngineQuarantinedError",
    "RequestTimeout",
    "CandidateSource",
    "signature_shard_index",
    "parse_shard",
    "validate_shard",
    "ResultSink",
    "TopKSink",
    "JsonlCheckpointSink",
    "RankEntry",
    "clone_checkpoint",
    "load_ranking",
    "render_ranking",
    "report_record",
    "FleetCoordinator",
    "FleetError",
    "FleetResult",
    "launch_replica",
    "parse_attach",
    "SweepSession",
    "SweepResult",
    "SweepRequest",
    "SweepServer",
    "SweepService",
    "SweepClient",
    "serve_lines",
    "run_tcp_server",
    "iter_lines",
    "parse_listen",
    "format_announce",
    "parse_announce",
]
