"""Blocking Python client for the networked sweep service.

:class:`SweepClient` speaks the ``tenet serve`` line protocol over TCP: one
JSON request per line, one JSON response per line, per-connection responses
in request order.

Two usage shapes:

* **Blocking round trips** — :meth:`sweep` / :meth:`stats` /
  :meth:`request` send one request and wait for its response.  When the
  connection is idle (no pipelined responses outstanding) a broken socket is
  transparently reconnected and the request retried with exponential backoff;
  ``deadline=`` bounds the *total* time spent retrying, distinct from the
  per-attempt socket ``timeout=``.  With a deadline set, structured
  ``"code": "overloaded"`` / ``"draining"`` replies are also retried (the
  server told the client to back off, not that the request is wrong).
* **Pipelining** — :meth:`submit` sends a request tagged with an ``"id"``
  without waiting; :meth:`recv` / :meth:`drain` collect the responses in
  request order and verify the echoed ids.  A connection loss mid-pipeline
  raises :class:`PipelineBrokenError` *without* forgetting the outstanding
  requests: because sweeps are deterministic and ids are echoed,
  :meth:`recover` resubmits them over a fresh connection (optionally to a
  restarted server at a new address) and draining continues where it left
  off.  Resubmitted and retried requests carry ``"retry": true`` so the
  server's ``retries_served`` counter stays honest.

Retries are safe because sweep requests are pure: the same request always
produces the same record (modulo wall-clock fields), so re-running one on a
fresh server cannot change the merged outcome.
"""

from __future__ import annotations

import itertools
import json
import random
import socket
import time
from collections import deque
from typing import Any, Iterable, Sequence

from repro.errors import ExplorationError
from repro.sweep import faults as fault_hooks
from repro.sweep.faults import FaultInjector

#: Server reply codes that mean "try again later", not "this request is bad".
RETRYABLE_CODES = ("overloaded", "draining")


class PipelineBrokenError(ExplorationError):
    """The connection died with pipelined responses outstanding.

    ``pending`` lists the outstanding request ids in submission order; the
    client still holds their payloads, so :meth:`SweepClient.recover` can
    resubmit them over a fresh connection.
    """

    def __init__(self, message: str, pending: Sequence[Any]):
        super().__init__(message)
        self.pending = list(pending)


class SweepClient:
    """A small blocking client for ``tenet serve --listen HOST:PORT``."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float | None = 120.0,
        deadline: float | None = None,
        reconnect_retries: int = 1,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        jitter_seed: int | None = None,
        fault_injector: FaultInjector | None = None,
    ):
        self.host = host
        self.port = int(port)
        #: Per-attempt socket timeout; a slow sweep fails one attempt.
        self.timeout = timeout
        #: Total wall-clock budget across reconnects, backoff sleeps and
        #: overload retries; ``None`` falls back to ``reconnect_retries``
        #: attempts with no retry of structured overload replies.
        self.deadline = deadline
        #: Reconnect-and-resend attempts for idle blocking requests when no
        #: deadline is set.
        self.reconnect_retries = max(0, int(reconnect_retries))
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        #: Jitter source; seed it for reproducible backoff schedules.
        self._rng = random.Random(jitter_seed)
        self._faults = fault_injector
        self._sock: socket.socket | None = None
        self._reader: Any = None
        #: Outstanding pipelined requests as (id, payload) in request order —
        #: payloads are kept (not just ids) so :meth:`recover` can resubmit.
        self._pending: deque[tuple[Any, dict]] = deque()
        self._auto_ids = itertools.count(1)
        #: Requests this client re-sent (reconnect retries + recoveries).
        self.retries_sent = 0

    # -- connection lifecycle -----------------------------------------------------

    def connect(self) -> "SweepClient":
        if self._sock is None:
            sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
            sock.settimeout(self.timeout)
            self._sock = sock
            self._reader = sock.makefile("rb")
        return self

    def _drop_connection(self) -> None:
        """Close the socket but keep the pipeline state (for recovery)."""
        reader, self._reader = self._reader, None
        sock, self._sock = self._sock, None
        for closeable in (reader, sock):
            if closeable is not None:
                try:
                    closeable.close()
                except OSError:
                    pass

    def close(self) -> None:
        """Tear the client down, abandoning any outstanding pipeline state."""
        self._drop_connection()
        self._pending.clear()

    def abort(self) -> None:
        """Unblock a blocking :meth:`request` from another thread.

        Only shuts the socket down — never closes it: ``close()`` from a
        foreign thread races the owning thread's reads, while ``shutdown``
        makes a blocked ``readline`` return EOF so the owning thread surfaces
        an ordinary :class:`ConnectionError` and runs its own cleanup.  The
        fleet coordinator uses this to revoke an in-flight lease from an
        evicted replica without waiting out the lease timeout.
        """
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def __enter__(self) -> "SweepClient":
        return self.connect()

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def connected(self) -> bool:
        return self._sock is not None

    @property
    def pending(self) -> int:
        """Pipelined requests whose responses have not been read yet."""
        return len(self._pending)

    @property
    def pending_ids(self) -> list[Any]:
        """Ids of the outstanding pipelined requests, in request order."""
        return [request_id for request_id, _ in self._pending]

    # -- wire helpers -------------------------------------------------------------

    def _send_line(self, payload: dict) -> None:
        self.connect()
        assert self._sock is not None
        fault_hooks.apply("client.send", self._faults)
        self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")

    def _read_record(self) -> dict:
        assert self._reader is not None, "not connected"
        fault_hooks.apply("client.recv", self._faults)
        line = self._reader.readline()
        if not line:
            raise ConnectionError("sweep service closed the connection")
        if not line.endswith(b"\n"):
            # A torn final line: the server died mid-write.  Treat it as the
            # connection loss it is (recoverable) rather than a JSON error.
            raise ConnectionError(
                f"connection closed mid-response (torn line of {len(line)} bytes)"
            )
        record = json.loads(line)
        if not isinstance(record, dict):
            raise ExplorationError(f"malformed response line from server: {line!r}")
        return record

    # -- retry discipline ---------------------------------------------------------

    def _backoff_delay(self, attempt: int) -> float:
        """Exponential backoff with full jitter (attempt is 1-based)."""
        ceiling = min(self.backoff_max, self.backoff_base * (2 ** (attempt - 1)))
        return ceiling * (0.5 + 0.5 * self._rng.random())

    def _sleep_before_retry(self, attempt: int, deadline_at: float | None) -> None:
        delay = self._backoff_delay(attempt)
        if deadline_at is not None:
            delay = min(delay, max(0.0, deadline_at - time.monotonic()))
        if delay > 0:
            time.sleep(delay)

    def _deadline_at(self) -> float | None:
        return time.monotonic() + self.deadline if self.deadline is not None else None

    def _out_of_budget(self, attempt: int, deadline_at: float | None) -> bool:
        if deadline_at is not None:
            return time.monotonic() >= deadline_at
        return attempt > self.reconnect_retries

    # -- blocking round trips -----------------------------------------------------

    def request(self, payload: dict) -> dict:
        """One blocking request/response round trip; returns the raw record.

        Connection failures while the connection is idle are retried over a
        fresh connection with exponential backoff — bounded by ``deadline``
        when set, else by ``reconnect_retries`` attempts.  With a deadline,
        ``overloaded``/``draining`` replies are retried too; without one they
        are returned to the caller unchanged (historical behaviour).  A
        per-attempt ``timeout`` raises distinctly and is never resent: a slow
        sweep is not a dead server, and resending would run it twice.  With
        pipelined responses outstanding a retry would desynchronise the
        stream, so it raises instead.
        """
        if self._pending:
            raise ExplorationError(
                f"{self._pending[0][0]!r} and {len(self._pending) - 1} more pipelined "
                "responses are outstanding; drain() them before a blocking request"
            )
        deadline_at = self._deadline_at()
        attempt = 0
        last_error: Exception | None = None
        while True:
            attempt += 1
            if attempt > 1:
                self._drop_connection()
                self.retries_sent += 1
            try:
                self._send_line(payload if attempt == 1 else {**payload, "retry": True})
                record = self._read_record()
            except TimeoutError as error:
                # A slow sweep is not a dead server: resending would run it
                # twice and still time out.  Surface the timeout distinctly.
                self._drop_connection()
                raise ExplorationError(
                    f"sweep service at {self.host}:{self.port} did not answer "
                    f"within timeout={self.timeout}s (the request may still "
                    "be running server-side; raise the client timeout)"
                ) from error
            except (ConnectionError, OSError) as error:
                self._drop_connection()
                last_error = error
                if self._out_of_budget(attempt, deadline_at):
                    raise ExplorationError(
                        f"sweep service at {self.host}:{self.port} unreachable "
                        f"after {attempt} attempt(s)"
                        + (f" within deadline={self.deadline}s" if deadline_at else "")
                        + f": {last_error}"
                    ) from last_error
                self._sleep_before_retry(attempt, deadline_at)
                continue
            code = record.get("code")
            if (
                deadline_at is not None
                and code in RETRYABLE_CODES
                and time.monotonic() < deadline_at
            ):
                # The server asked for backpressure (queue full) or is going
                # away (draining); back off and try again — possibly against
                # the replacement server — instead of failing the sweep.
                self._sleep_before_retry(attempt, deadline_at)
                continue
            return record

    def sweep(self, kernel: str, sizes: Sequence[int], **fields: Any) -> dict:
        """Run one sweep request and return its result record.

        Keyword fields pass straight into the request line (``objective``,
        ``pe``, ``max_candidates``, ``shard``, ``top`` ...).  Raises
        :class:`ExplorationError` when the server replies with an error
        record; the structured reply stays available as ``error.record``.
        """
        payload = {"kernel": kernel, "sizes": [int(s) for s in sizes], **fields}
        record = self.request(payload)
        if "error" in record:
            error = ExplorationError(
                f"server rejected sweep request: {record['error']}"
                + (f" (code={record['code']})" if "code" in record else "")
            )
            error.record = record
            raise error
        return record

    def stats(self) -> dict:
        """The server's ``{"cmd": "stats"}`` snapshot."""
        return self.request({"cmd": "stats"})

    # -- pipelining ---------------------------------------------------------------

    def submit(self, payload: dict) -> Any:
        """Send a request without waiting; returns its (auto-assigned) id."""
        payload = dict(payload)
        if payload.get("id") is None:
            payload["id"] = f"req-{next(self._auto_ids)}"
        self._send_line(payload)
        self._pending.append((payload["id"], payload))
        return payload["id"]

    def recv(self) -> dict:
        """Read the next pipelined response (request order), checking its id.

        A connection loss raises :class:`PipelineBrokenError` naming every
        outstanding id — the payloads stay queued on the client, so
        :meth:`recover` can resubmit them instead of losing the pipeline.
        """
        if not self._pending:
            raise ExplorationError("no pipelined requests outstanding; submit() first")
        try:
            record = self._read_record()
        except (ConnectionError, OSError) as error:
            self._drop_connection()
            outstanding = self.pending_ids
            raise PipelineBrokenError(
                f"connection lost with {len(outstanding)} pipelined response(s) "
                f"outstanding (ids {outstanding}); recover() resubmits them "
                f"over a fresh connection: {error}",
                outstanding,
            ) from error
        expected = self._pending[0][0]
        if record.get("id") != expected:
            self.close()
            raise ExplorationError(
                f"pipelined response out of order: expected id {expected!r}, "
                f"got {record.get('id')!r}"
            )
        self._pending.popleft()
        return record

    def recover(self, host: str | None = None, port: int | None = None) -> list[Any]:
        """Resubmit every outstanding pipelined request over a fresh connection.

        Reconnects (to ``host``/``port`` when given — e.g. a restarted server
        on a new ephemeral port) with the same backoff/deadline discipline as
        :meth:`request`, then resends the outstanding payloads in their
        original submission order, tagged ``"retry": true``.  Sweeps are
        deterministic, so records for resubmitted requests are identical to
        what the dead server would have sent (modulo timing fields).  Returns
        the resubmitted ids; :meth:`recv`/:meth:`drain` then continue as if
        the drop never happened.
        """
        if host is not None:
            self.host = host
        if port is not None:
            self.port = int(port)
        outstanding = list(self._pending)
        deadline_at = self._deadline_at()
        attempt = 0
        while True:
            attempt += 1
            self._drop_connection()
            if attempt > 1:
                self.retries_sent += 1
            try:
                self.connect()
                for _, payload in outstanding:
                    self._send_line({**payload, "retry": True})
                return [request_id for request_id, _ in outstanding]
            except (ConnectionError, OSError) as error:
                self._drop_connection()
                if self._out_of_budget(attempt, deadline_at):
                    raise PipelineBrokenError(
                        f"could not recover {len(outstanding)} pipelined "
                        f"request(s) to {self.host}:{self.port} after "
                        f"{attempt} attempt(s): {error}",
                        [request_id for request_id, _ in outstanding],
                    ) from error
                self._sleep_before_retry(attempt, deadline_at)

    def drain(self, *, recover: bool = False) -> list[dict]:
        """Collect every outstanding pipelined response, in request order.

        With ``recover=True`` a mid-drain connection loss triggers
        :meth:`recover` (same address) and the drain continues; the returned
        records cover every submitted request exactly once.
        """
        records = []
        while self._pending:
            try:
                records.append(self.recv())
            except PipelineBrokenError:
                if not recover:
                    raise
                self.recover()
        return records

    def send_lines(self, lines: Iterable[str]) -> None:
        """Send raw protocol lines verbatim (no ids, no pending tracking).

        For replaying a fixed stdio request file over TCP; pair with
        :meth:`read_records`.
        """
        self.connect()
        assert self._sock is not None
        for line in lines:
            self._sock.sendall(line.rstrip("\n").encode("utf-8") + b"\n")

    def read_records(self, count: int) -> list[dict]:
        """Read ``count`` raw response records (for :meth:`send_lines` replays)."""
        return [self._read_record() for _ in range(count)]
