"""Blocking Python client for the networked sweep service.

:class:`SweepClient` speaks the ``tenet serve`` line protocol over TCP: one
JSON request per line, one JSON response per line, per-connection responses
in request order.

Two usage shapes:

* **Blocking round trips** — :meth:`sweep` / :meth:`stats` /
  :meth:`request` send one request and wait for its response.  When the
  connection is idle (no pipelined responses outstanding) a broken socket is
  transparently reconnected and the request retried once.
* **Pipelining** — :meth:`submit` sends a request tagged with an ``"id"``
  without waiting; :meth:`recv` / :meth:`drain` collect the responses in
  request order and verify the echoed ids.  The server schedules connections
  round-robin, so pipelining deeply never starves other clients — expect
  ``"code": "overloaded"`` replies past the server's per-connection queue
  depth.
"""

from __future__ import annotations

import itertools
import json
import socket
from collections import deque
from typing import Any, Iterable, Sequence

from repro.errors import ExplorationError


class SweepClient:
    """A small blocking client for ``tenet serve --listen HOST:PORT``."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float | None = 120.0,
        reconnect_retries: int = 1,
    ):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        #: Reconnect-and-resend attempts for idle blocking requests.
        self.reconnect_retries = max(0, int(reconnect_retries))
        self._sock: socket.socket | None = None
        self._reader: Any = None
        self._pending: deque[Any] = deque()
        self._auto_ids = itertools.count(1)

    # -- connection lifecycle -----------------------------------------------------

    def connect(self) -> "SweepClient":
        if self._sock is None:
            sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
            sock.settimeout(self.timeout)
            self._sock = sock
            self._reader = sock.makefile("rb")
        return self

    def close(self) -> None:
        reader, self._reader = self._reader, None
        sock, self._sock = self._sock, None
        for closeable in (reader, sock):
            if closeable is not None:
                try:
                    closeable.close()
                except OSError:
                    pass
        self._pending.clear()

    def __enter__(self) -> "SweepClient":
        return self.connect()

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def connected(self) -> bool:
        return self._sock is not None

    @property
    def pending(self) -> int:
        """Pipelined requests whose responses have not been read yet."""
        return len(self._pending)

    # -- wire helpers -------------------------------------------------------------

    def _send_line(self, payload: dict) -> None:
        self.connect()
        assert self._sock is not None
        self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")

    def _read_record(self) -> dict:
        assert self._reader is not None, "not connected"
        line = self._reader.readline()
        if not line:
            raise ConnectionError("sweep service closed the connection")
        record = json.loads(line)
        if not isinstance(record, dict):
            raise ExplorationError(f"malformed response line from server: {line!r}")
        return record

    # -- blocking round trips -----------------------------------------------------

    def request(self, payload: dict) -> dict:
        """One blocking request/response round trip; returns the raw record.

        Retries once over a fresh connection when the socket broke while the
        connection was idle.  With pipelined responses outstanding a retry
        would desynchronise the stream, so it raises instead.
        """
        if self._pending:
            raise ExplorationError(
                f"{self._pending[0]!r} and {len(self._pending) - 1} more pipelined "
                "responses are outstanding; drain() them before a blocking request"
            )
        last_error: Exception | None = None
        for attempt in range(self.reconnect_retries + 1):
            if attempt:
                self.close()
            try:
                self._send_line(payload)
                return self._read_record()
            except TimeoutError as error:
                # A slow sweep is not a dead server: resending would run it
                # twice and still time out.  Surface the timeout distinctly.
                self.close()
                raise ExplorationError(
                    f"sweep service at {self.host}:{self.port} did not answer "
                    f"within timeout={self.timeout}s (the request may still "
                    "be running server-side; raise the client timeout)"
                ) from error
            except (ConnectionError, OSError) as error:
                self.close()
                last_error = error
        raise ExplorationError(
            f"sweep service at {self.host}:{self.port} unreachable "
            f"after {self.reconnect_retries + 1} attempt(s): {last_error}"
        ) from last_error

    def sweep(self, kernel: str, sizes: Sequence[int], **fields: Any) -> dict:
        """Run one sweep request and return its result record.

        Keyword fields pass straight into the request line (``objective``,
        ``pe``, ``max_candidates``, ``shard``, ``top`` ...).  Raises
        :class:`ExplorationError` when the server replies with an error
        record; the structured reply stays available as ``error.record``.
        """
        payload = {"kernel": kernel, "sizes": [int(s) for s in sizes], **fields}
        record = self.request(payload)
        if "error" in record:
            error = ExplorationError(
                f"server rejected sweep request: {record['error']}"
                + (f" (code={record['code']})" if "code" in record else "")
            )
            error.record = record
            raise error
        return record

    def stats(self) -> dict:
        """The server's ``{"cmd": "stats"}`` snapshot."""
        return self.request({"cmd": "stats"})

    # -- pipelining ---------------------------------------------------------------

    def submit(self, payload: dict) -> Any:
        """Send a request without waiting; returns its (auto-assigned) id."""
        payload = dict(payload)
        if payload.get("id") is None:
            payload["id"] = f"req-{next(self._auto_ids)}"
        self._send_line(payload)
        self._pending.append(payload["id"])
        return payload["id"]

    def recv(self) -> dict:
        """Read the next pipelined response (request order), checking its id."""
        if not self._pending:
            raise ExplorationError("no pipelined requests outstanding; submit() first")
        try:
            record = self._read_record()
        except (ConnectionError, OSError) as error:
            self.close()
            raise ExplorationError(
                f"connection lost with {len(self._pending) or 'no'} pipelined "
                f"response(s) outstanding: {error}"
            ) from error
        expected = self._pending.popleft()
        if record.get("id") != expected:
            self.close()
            raise ExplorationError(
                f"pipelined response out of order: expected id {expected!r}, "
                f"got {record.get('id')!r}"
            )
        return record

    def drain(self) -> list[dict]:
        """Collect every outstanding pipelined response, in request order."""
        return [self.recv() for _ in range(len(self._pending))]

    def send_lines(self, lines: Iterable[str]) -> None:
        """Send raw protocol lines verbatim (no ids, no pending tracking).

        For replaying a fixed stdio request file over TCP; pair with
        :meth:`read_records`.
        """
        self.connect()
        assert self._sock is not None
        for line in lines:
            self._sock.sendall(line.rstrip("\n").encode("utf-8") + b"\n")

    def read_records(self, count: int) -> list[dict]:
        """Read ``count`` raw response records (for :meth:`send_lines` replays)."""
        return [self._read_record() for _ in range(count)]
