"""Deterministic fault injection for the sweep fabric.

Resilience cannot be trusted without a way to *cause* the failures it claims
to survive.  This module provides a seeded fault schedule — a
:class:`FaultPlan` of :class:`FaultSpec` entries — and a :class:`FaultInjector`
that fires those faults at hook points threaded through the sweep stack:

========================  ===========================================================
site                      where it fires
========================  ===========================================================
``net.read``              :meth:`repro.sweep.net.SocketChannel.read_line`
``net.write``             :meth:`repro.sweep.net.SocketChannel.write_line`
``client.send``           :meth:`repro.sweep.client.SweepClient._send_line`
``client.recv``           :meth:`repro.sweep.client.SweepClient._read_record`
``sink.write``            :meth:`repro.sweep.sinks.JsonlCheckpointSink._write`
``engine.build``          engine construction in
                          :meth:`repro.sweep.server.SweepServer._reserve_engine`
``server.request``        the worker thread serving one sweep request
                          (:meth:`repro.sweep.server.SweepServer._serve`)
========================  ===========================================================

Each spec names a site, a fault ``kind``, and the 1-based event count ``at``
at which it fires — the injector counts events per site, so the *N*-th read,
write, or engine build faults, every time.  :meth:`FaultPlan.seeded` samples
the ``at`` (and, for truncation, the byte offset) values from
``random.Random(seed)``: the same seed always produces the same schedule, so
every injected failure is reproducible bit for bit.

Fault kinds:

``drop``      raise :class:`InjectedDisconnect` (a ``ConnectionError``) — the
              connection is gone, exactly as a peer crash looks to the socket
              layer.
``delay``     sleep ``arg`` seconds before the operation (``time.sleep`` at
              sync sites, ``asyncio.sleep`` at async sites) — a hung request.
``torn``      returned to the call site, which writes only the first ``arg``
              bytes of the line and then drops the connection.
``error``     raise :class:`InjectedFault` — a generic failure (used for
              engine-build exceptions).
``kill``      ``os._exit(KILL_EXIT_CODE)`` — the process dies instantly, no
              atexit handlers, no flushes: a crash.  **Only use in dedicated
              subprocesses** (the chaos smoke's server), never in-process in
              a test runner.
``truncate``  returned to the call site, which persists only the first
              ``arg`` bytes of the record being written and then raises — a
              checkpoint torn at byte *k* by a mid-write crash.

Injectors are passed explicitly (``SweepClient(fault_injector=...)``) or
installed process-globally with :func:`install` / the ``TENET_FAULTS``
environment variable (a JSON plan, read by ``tenet`` subcommands), which is
how the chaos smoke arms a real ``tenet serve`` subprocess.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ExplorationError

#: Exit status of a ``kill`` fault, distinguishable from ordinary crashes.
KILL_EXIT_CODE = 42

#: Environment variable holding a JSON fault plan for subprocesses.
FAULTS_ENV = "TENET_FAULTS"

KNOWN_SITES = (
    "net.read",
    "net.write",
    "client.send",
    "client.recv",
    "sink.write",
    "engine.build",
    "server.request",
)

KNOWN_KINDS = ("drop", "delay", "torn", "error", "kill", "truncate")

#: Kinds the injector resolves itself; ``torn``/``truncate`` are returned to
#: the call site because only it knows how to mangle the bytes in flight.
_CALLER_KINDS = ("torn", "truncate")


class InjectedFault(Exception):
    """A failure raised on purpose by a :class:`FaultInjector`."""


class InjectedDisconnect(InjectedFault, ConnectionError):
    """An injected connection loss.

    Subclasses :class:`ConnectionError` so every existing reconnect/cleanup
    path treats it exactly like a real dead socket.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``kind`` at the ``at``-th event of ``site``."""

    site: str
    kind: str
    #: 1-based event count at the site; the spec fires once, on that event.
    at: int
    #: Kind parameter: seconds for ``delay``, byte offset for ``torn``/``truncate``.
    arg: float | int | None = None

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ExplorationError(
                f"unknown fault site {self.site!r}; known: {list(KNOWN_SITES)}"
            )
        if self.kind not in KNOWN_KINDS:
            raise ExplorationError(
                f"unknown fault kind {self.kind!r}; known: {list(KNOWN_KINDS)}"
            )
        if self.at < 1:
            raise ExplorationError(f"fault 'at' is a 1-based event count, got {self.at}")

    def to_dict(self) -> dict:
        data: dict[str, Any] = {"site": self.site, "kind": self.kind, "at": self.at}
        if self.arg is not None:
            data["arg"] = self.arg
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        unknown = set(data) - {"site", "kind", "at", "arg"}
        if unknown:
            raise ExplorationError(f"unknown fault spec fields {sorted(unknown)}")
        return cls(
            site=data["site"], kind=data["kind"], at=int(data["at"]),
            arg=data.get("arg"),
        )


@dataclass
class FaultPlan:
    """A reproducible fault schedule (JSON round-trippable)."""

    specs: list[FaultSpec] = field(default_factory=list)
    seed: int | None = None

    @classmethod
    def seeded(cls, seed: int, events: Sequence[dict]) -> "FaultPlan":
        """Sample a concrete schedule from ``seed``.

        Each event dict names a ``site`` and ``kind`` and bounds the draw:
        ``within`` (the fault fires on a uniformly drawn event in
        ``[1, within]``, default 1 = deterministic first event) and, for
        ``torn``/``truncate``, ``arg_max`` (byte offset drawn from
        ``[0, arg_max]``) or a fixed ``arg``.  Draws come from one
        ``random.Random(seed)`` stream in event order, so the same seed and
        event list always produce the same plan.
        """
        rng = random.Random(seed)
        specs = []
        for event in events:
            at = rng.randint(1, int(event.get("within", 1)))
            arg = event.get("arg")
            if arg is None and "arg_max" in event:
                arg = rng.randint(0, int(event["arg_max"]))
            specs.append(FaultSpec(site=event["site"], kind=event["kind"], at=at, arg=arg))
        return cls(specs=specs, seed=seed)

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "specs": [spec.to_dict() for spec in self.specs]}
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, dict) or "specs" not in data:
            raise ExplorationError(
                "a fault plan is a JSON object with a 'specs' list "
                '(e.g. {"specs": [{"site": "net.write", "kind": "drop", "at": 2}]})'
            )
        return cls(
            specs=[FaultSpec.from_dict(spec) for spec in data["specs"]],
            seed=data.get("seed"),
        )


class FaultInjector:
    """Fire a :class:`FaultPlan`'s faults at their scheduled events.

    Thread-safe: hook sites are hit concurrently (server worker threads, the
    asyncio loop, client threads).  Each spec fires exactly once; the
    :attr:`fired` log records ``(site, kind, at)`` in firing order so tests
    can assert the schedule that actually ran.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._consumed: set[int] = set()
        #: (site, kind, at) tuples in the order faults actually fired.
        self.fired: list[tuple[str, str, int]] = []

    def count(self, site: str) -> int:
        """Events seen at ``site`` so far."""
        with self._lock:
            return self._counts.get(site, 0)

    def fire(self, site: str) -> list[FaultSpec]:
        """Count one event at ``site``; return the specs scheduled for it."""
        with self._lock:
            count = self._counts.get(site, 0) + 1
            self._counts[site] = count
            due = []
            for index, spec in enumerate(self.plan.specs):
                if index in self._consumed:
                    continue
                if spec.site == site and spec.at == count:
                    self._consumed.add(index)
                    self.fired.append((spec.site, spec.kind, spec.at))
                    due.append(spec)
            return due

    def _resolve(
        self, specs: Iterable[FaultSpec], sleep: Callable[[float], None]
    ) -> FaultSpec | None:
        passthrough = None
        for spec in specs:
            if spec.kind == "delay":
                sleep(float(spec.arg or 0.0))
            elif spec.kind == "drop":
                raise InjectedDisconnect(
                    f"injected connection drop at {spec.site} event {spec.at}"
                )
            elif spec.kind == "error":
                raise InjectedFault(
                    f"injected failure at {spec.site} event {spec.at}"
                )
            elif spec.kind == "kill":
                os._exit(KILL_EXIT_CODE)
            elif spec.kind in _CALLER_KINDS:
                passthrough = spec
        return passthrough

    def apply(self, site: str) -> FaultSpec | None:
        """Count one event; raise/sleep as scheduled.

        Returns a ``torn``/``truncate`` spec for the call site to apply, or
        ``None``.
        """
        return self._resolve(self.fire(site), time.sleep)

    async def apply_async(self, site: str) -> FaultSpec | None:
        """:meth:`apply` for asyncio sites (delays do not block the loop)."""
        specs = self.fire(site)
        for spec in specs:
            if spec.kind == "delay":
                await asyncio.sleep(float(spec.arg or 0.0))
        return self._resolve(
            [spec for spec in specs if spec.kind != "delay"], time.sleep
        )


# -- process-global injector ---------------------------------------------------------

_active: FaultInjector | None = None


def install(injector: FaultInjector | None) -> None:
    """Install (or with ``None`` clear) the process-global injector."""
    global _active
    _active = injector


def active() -> FaultInjector | None:
    return _active


def install_from_env(environ: dict | None = None) -> FaultInjector | None:
    """Arm the global injector from the ``TENET_FAULTS`` environment variable.

    The value is either a JSON fault plan or the path of a file holding one;
    unset (or already armed) is a no-op.  This is how the chaos smoke injects
    faults into a real ``tenet`` subprocess without new CLI surface.
    """
    env = environ if environ is not None else os.environ
    text = env.get(FAULTS_ENV)
    if not text:
        return _active
    stripped = text.strip()
    if not stripped.startswith("{"):
        stripped = Path(stripped).read_text(encoding="utf-8")
    injector = FaultInjector(FaultPlan.from_json(stripped))
    install(injector)
    return injector


def apply(site: str, injector: FaultInjector | None = None) -> FaultSpec | None:
    """Hook-site helper: apply the explicit or global injector, if any."""
    chosen = injector if injector is not None else _active
    if chosen is None:
        return None
    return chosen.apply(site)


async def apply_async(site: str, injector: FaultInjector | None = None) -> FaultSpec | None:
    chosen = injector if injector is not None else _active
    if chosen is None:
        return None
    return await chosen.apply_async(site)
