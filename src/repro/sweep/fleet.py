"""Fleet orchestration: one sweep driven across N serve replicas.

:class:`FleetCoordinator` turns the coordination-free ``shard(i, n)``
partitioning (:mod:`repro.sweep.source`) into an orchestrated fleet sweep: it
spawns (or attaches to) N ``tenet serve --listen`` replicas, partitions the
candidate space into M *shard leases*, dispatches each lease to a replica via
the blocking :class:`~repro.sweep.client.SweepClient`, and merges the
per-lease JSONL checkpoints into the final ranking with the same
:func:`~repro.sweep.sinks.load_ranking` merge ``tenet sweep-merge`` uses —
bit-identical to an unsharded single-node sweep, whatever failed along the
way.

Lease semantics
    A lease is the exclusive right to sweep shard ``i`` of ``M`` into a named
    checkpoint under the shared checkpoint directory.  Exactly one replica
    holds a lease at a time (one worker thread per replica, one in-flight
    lease per worker).  A lease completes when its replica's reply arrives
    without an error; it is *revoked* when the reply is an error, the
    connection dies, or the per-lease timeout expires.

Work stealing
    A revoked lease is re-issued to the next free replica under a new
    checkpoint *generation*: the coordinator clones the revoked generation's
    complete lines (:func:`~repro.sweep.sinks.clone_checkpoint`) into
    ``lease-0003.g1.jsonl`` and the re-issued request resumes *that* file —
    the original writer may be slow rather than dead, so the clone guarantees
    the resumed file has exactly one writer.  Resume skips every recorded
    signature, so only unrecorded candidates are re-evaluated, and every
    generation file joins the final merge (records are deterministic and the
    merge dedupes by signature, so duplicate records across generations are
    harmless).

Replica health
    A monitor thread polls each replica's ``{"cmd": "stats"}`` endpoint as a
    heartbeat (answered inline by the service, never queued behind sweeps)
    and watches spawned replica processes.  A dead process, or
    ``max_consecutive_failures`` failed heartbeats or leases, evicts the
    replica; eviction aborts its in-flight lease client so the lease is
    stolen immediately instead of waiting out the lease timeout.  When every
    replica is evicted with leases outstanding the fleet fails with
    :class:`FleetError` — the checkpoints on disk make the whole fleet run
    resumable by a later one.

``tenet fleet --replicas N --shards M`` wraps this in a CLI; ``--attach
host:port,...`` drives externally managed replicas instead (they must share
the coordinator's checkpoint directory via ``--checkpoint-root``).
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.errors import ExplorationError
from repro.sweep.client import SweepClient
from repro.sweep.faults import FAULTS_ENV, FaultPlan
from repro.sweep.net import parse_announce, parse_listen
from repro.sweep.server import SweepRequest
from repro.sweep.sinks import RankEntry, clone_checkpoint, load_ranking

#: Request fields the coordinator owns; a base request carrying one of these
#: would silently fight the lease machinery, so they are refused up front.
RESERVED_FIELDS = ("shard", "checkpoint", "resume", "id", "cmd", "retry")


class FleetError(ExplorationError):
    """The fleet could not finish its leases (e.g. every replica evicted)."""


@dataclass
class Lease:
    """One shard's sweep: its checkpoint generations and dispatch state."""

    index: int
    shards: int
    #: Checkpoint file of the *current* generation (under the fleet dir).
    checkpoint: Path
    generation: int = 0
    #: Dispatch attempts across all replicas (1 on a clean first run).
    attempts: int = 0
    state: str = "pending"  # pending | running | done
    #: Name of the replica currently (or last) holding the lease.
    replica: str | None = None
    #: Every generation file ever written for this lease; all of them join
    #: the final merge (signature dedupe makes overlaps harmless).
    files: list[Path] = field(default_factory=list)
    #: The reply record of the completing dispatch.
    record: dict | None = None

    @property
    def id(self) -> str:
        """Request id of the current generation's dispatch."""
        return f"lease-{self.index:04d}-g{self.generation}"


@dataclass
class ReplicaInfo:
    """One replica's address, process handle (when spawned), and health."""

    name: str
    host: str
    port: int
    #: Set for replicas the coordinator spawned; ``None`` for attached ones.
    process: subprocess.Popen | None = None
    evicted: bool = False
    evicted_reason: str | None = None
    consecutive_failures: int = 0
    heartbeat_failures: int = 0
    last_heartbeat: float | None = None
    leases_completed: int = 0
    leases_failed: int = 0
    #: The in-flight lease client, abortable by the monitor on eviction.
    active_client: Any = None


def launch_replica(
    *,
    checkpoint_root: str | Path | None = None,
    args: Sequence[str] = (),
    fault_plan: FaultPlan | None = None,
    stderr_sink: Callable[[str], None] | None = None,
    announce_timeout: float = 120.0,
) -> tuple[subprocess.Popen, str, int]:
    """Spawn a real ``tenet serve --listen 127.0.0.1:0`` replica subprocess.

    Waits for the ephemeral bind to be announced on stderr and returns
    ``(process, host, port)``.  ``fault_plan`` arms the replica's fault
    injector via the :data:`~repro.sweep.faults.FAULTS_ENV` environment
    variable (any plan inherited from this process's environment is dropped
    either way, so replicas never pick up faults by accident);
    ``stderr_sink`` receives every stderr line as it arrives.
    """
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    env.pop(FAULTS_ENV, None)
    if fault_plan is not None:
        env[FAULTS_ENV] = fault_plan.to_json()
    command = [sys.executable, "-m", "repro.cli", "serve", "--listen", "127.0.0.1:0"]
    if checkpoint_root is not None:
        command += ["--checkpoint-root", str(checkpoint_root)]
    command += list(args)
    process = subprocess.Popen(
        command,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    address: dict[str, tuple[str, int]] = {}
    announced = threading.Event()

    def pump() -> None:
        assert process.stderr is not None
        for line in process.stderr:
            if stderr_sink is not None:
                stderr_sink(line)
            if "bound" not in address:
                parsed = parse_announce(line)
                if parsed is not None:
                    address["bound"] = parsed
                    announced.set()
        announced.set()

    threading.Thread(target=pump, daemon=True).start()
    if not announced.wait(announce_timeout) or "bound" not in address:
        process.kill()
        process.wait(30)
        raise FleetError("replica never announced its listen address")
    host, port = address["bound"]
    return process, host, port


def stop_replica(process: subprocess.Popen) -> None:
    """SIGTERM (graceful drain) then SIGKILL a spawned replica."""
    if process.poll() is None:
        process.terminate()
        try:
            process.wait(60)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(30)


def parse_attach(text: str) -> list[tuple[str, int]]:
    """Parse ``--attach host:port,host:port`` into address tuples."""
    addresses = [parse_listen(part.strip()) for part in text.split(",") if part.strip()]
    if not addresses:
        raise ExplorationError(
            f"--attach expects a comma-separated list of HOST:PORT, got {text!r}"
        )
    return addresses


@dataclass
class FleetResult:
    """Outcome of one fleet sweep: merged ranking plus orchestration counters."""

    leases: list[Lease]
    replicas: list[ReplicaInfo]
    #: Lease revocations that were re-issued to another generation.
    steals: int
    #: Replicas evicted for failures or death.
    evictions: int
    seconds: float
    #: The merged ranking across every lease generation file — bit-identical
    #: to the unsharded single-node sweep of the same request.
    ranking: list[RankEntry] = field(default_factory=list)

    @property
    def processed(self) -> int:
        """Candidates processed across all completing leases (resume skips
        counted once, by the generation that recorded them)."""
        total = 0
        for lease in self.leases:
            if lease.record is not None:
                total += lease.record.get("candidates", 0)
        return total

    @property
    def throughput(self) -> float:
        return self.processed / self.seconds if self.seconds > 0 else 0.0

    def summary(self, count: int = 5) -> str:
        live = sum(1 for replica in self.replicas if not replica.evicted)
        lines = [
            f"fleet swept {len(self.leases)} lease(s) on {live}/"
            f"{len(self.replicas)} replica(s) in {self.seconds:.1f}s "
            f"({self.processed} candidates, {self.steals} steal(s), "
            f"{self.evictions} eviction(s))",
        ]
        for rank, entry in enumerate(self.ranking[:count], start=1):
            lines.append(
                f"  {rank}. {entry.name:30s} score={entry.score:.1f} "
                f"latency={entry.data['latency_cycles']:.0f}"
            )
        return "\n".join(lines)


class FleetCoordinator:
    """Drive one sweep request across N replicas as M checkpointed leases."""

    def __init__(
        self,
        request: dict,
        *,
        shards: int,
        checkpoint_dir: str | Path,
        replicas: int = 0,
        attach: Sequence[tuple[str, int]] = (),
        replica_args: Sequence[str] = (),
        lease_timeout: float = 600.0,
        heartbeat_interval: float | None = 2.0,
        heartbeat_timeout: float = 10.0,
        max_consecutive_failures: int = 2,
        client_factory: Callable[[str, int, float], Any] | None = None,
    ):
        if shards < 1:
            raise FleetError(f"a fleet needs at least one shard, got {shards}")
        if replicas < 0:
            raise FleetError(f"--replicas must be non-negative, got {replicas}")
        if replicas + len(attach) < 1:
            raise FleetError(
                "a fleet needs at least one replica: spawn some (replicas=N) "
                "or attach running ones (attach=[(host, port), ...])"
            )
        for reserved in RESERVED_FIELDS:
            if reserved in request:
                raise FleetError(
                    f"the coordinator owns the {reserved!r} request field; "
                    "remove it from the base request"
                )
        # Fail fast on a malformed base request: every replica rejecting it
        # max_consecutive_failures times would end in the same error, slowly.
        SweepRequest.from_dict(dict(request))
        self.request = dict(request)
        self.shards = int(shards)
        self.checkpoint_dir = Path(checkpoint_dir)
        self.replicas = int(replicas)
        self.attach = list(attach)
        self.replica_args = list(replica_args)
        self.lease_timeout = float(lease_timeout)
        self.heartbeat_interval = (
            float(heartbeat_interval)
            if heartbeat_interval is not None and heartbeat_interval > 0
            else None
        )
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.max_consecutive_failures = max(1, int(max_consecutive_failures))
        self._client_factory = client_factory
        self.leases = [
            Lease(
                index=index,
                shards=self.shards,
                checkpoint=self._generation_path(index, 0),
            )
            for index in range(self.shards)
        ]
        for lease in self.leases:
            lease.files.append(lease.checkpoint)
        self.steals = 0
        self.evictions = 0
        self._replicas: list[ReplicaInfo] = []
        self._queue: deque[Lease] = deque(self.leases)
        self._cond = threading.Condition()
        self._completed = 0
        self._done = False
        self._fatal: str | None = None

    # -- plumbing -----------------------------------------------------------------

    def _generation_path(self, index: int, generation: int) -> Path:
        return self.checkpoint_dir / f"lease-{index:04d}.g{generation}.jsonl"

    def _make_client(self, host: str, port: int, timeout: float) -> Any:
        if self._client_factory is not None:
            return self._client_factory(host, port, timeout)
        # reconnect_retries=0: the fleet layer owns retry policy (a failed
        # dispatch is a steal), so the client must not second-guess it.
        return SweepClient(host, port, timeout=timeout, reconnect_retries=0)

    def _lease_payload(self, lease: Lease) -> dict:
        return {
            **self.request,
            "shard": [lease.index, lease.shards],
            # Checkpoints are named relative to the replicas' shared
            # --checkpoint-root, which must be this coordinator's
            # checkpoint_dir (same filesystem).
            "checkpoint": lease.checkpoint.name,
            # Always resume: a fresh file is a fresh sweep, a stolen or
            # coordinator-restarted lease skips what is already recorded.
            "resume": True,
            "id": lease.id,
        }

    # -- lease lifecycle ----------------------------------------------------------

    def _dispatch(self, lease: Lease, replica: ReplicaInfo) -> tuple[dict | None, str]:
        """One lease attempt on one replica: ``(record, "")`` or ``(None, why)``."""
        client = self._make_client(replica.host, replica.port, self.lease_timeout)
        replica.active_client = client
        try:
            record = client.request(self._lease_payload(lease))
        except ExplorationError as error:
            return None, str(error)
        finally:
            replica.active_client = None
            try:
                client.close()
            except Exception:  # noqa: BLE001 - a dead socket must not mask the verdict
                pass
        if "error" in record:
            return None, f"replica rejected the lease: {record['error']}"
        return record, ""

    def _steal_locked(self, lease: Lease, reason: str) -> None:
        """Revoke a failed lease and re-issue it under a new generation.

        Called with the condition held.  The old generation's complete lines
        are cloned into the new file, so the re-issued replica resumes from
        everything the failed one durably recorded — even if the failed one
        is slow rather than dead and still writing to the old file.
        """
        old_path = lease.checkpoint
        lease.generation += 1
        new_path = self._generation_path(lease.index, lease.generation)
        clone_checkpoint(old_path, new_path)
        lease.checkpoint = new_path
        lease.files.append(new_path)
        lease.state = "pending"
        lease.replica = None
        self.steals += 1
        self._queue.append(lease)

    def _evict_locked(self, replica: ReplicaInfo, reason: str) -> None:
        """Remove a replica from the rotation (condition held)."""
        if replica.evicted:
            return
        replica.evicted = True
        replica.evicted_reason = reason
        self.evictions += 1
        client = replica.active_client
        if client is not None:
            # Unblock the worker's in-flight request immediately; it will
            # surface a ConnectionError and steal its lease.
            try:
                client.abort()
            except Exception:  # noqa: BLE001 - eviction must never fail
                pass
        if all(r.evicted for r in self._replicas) and self._completed < len(self.leases):
            remaining = len(self.leases) - self._completed
            self._fatal = (
                f"all {len(self._replicas)} replica(s) evicted with "
                f"{remaining} lease(s) unfinished (last eviction: {reason}); "
                "the lease checkpoints on disk are resumable by a new fleet"
            )

    def _worker(self, replica: ReplicaInfo) -> None:
        """One replica's dispatch loop: lease, sweep, complete-or-steal."""
        while True:
            with self._cond:
                lease = None
                while lease is None:
                    if self._done or self._fatal or replica.evicted:
                        return
                    if self._queue:
                        lease = self._queue.popleft()
                    else:
                        self._cond.wait(0.25)
                lease.state = "running"
                lease.replica = replica.name
                lease.attempts += 1
            record, failure = self._dispatch(lease, replica)
            with self._cond:
                if record is not None:
                    lease.state = "done"
                    lease.record = record
                    replica.consecutive_failures = 0
                    replica.leases_completed += 1
                    self._completed += 1
                    if self._completed == len(self.leases):
                        self._done = True
                else:
                    replica.consecutive_failures += 1
                    replica.leases_failed += 1
                    self._steal_locked(lease, failure)
                    if replica.consecutive_failures >= self.max_consecutive_failures:
                        self._evict_locked(
                            replica,
                            f"{replica.consecutive_failures} consecutive lease "
                            f"failure(s), last: {failure}",
                        )
                self._cond.notify_all()

    def _monitor(self, stop: threading.Event) -> None:
        """Health loop: process liveness + stats-poll heartbeats."""
        assert self.heartbeat_interval is not None
        while not stop.wait(self.heartbeat_interval):
            for replica in self._replicas:
                if replica.evicted or stop.is_set():
                    continue
                if replica.process is not None and replica.process.poll() is not None:
                    with self._cond:
                        self._evict_locked(
                            replica,
                            f"process exited with code {replica.process.returncode}",
                        )
                        self._cond.notify_all()
                    continue
                try:
                    client = self._make_client(
                        replica.host, replica.port, self.heartbeat_timeout
                    )
                    try:
                        client.request({"cmd": "stats"})
                    finally:
                        client.close()
                except ExplorationError:
                    replica.heartbeat_failures += 1
                    if replica.heartbeat_failures >= self.max_consecutive_failures:
                        with self._cond:
                            self._evict_locked(
                                replica,
                                f"{replica.heartbeat_failures} consecutive "
                                "heartbeat failure(s)",
                            )
                            self._cond.notify_all()
                else:
                    replica.heartbeat_failures = 0
                    replica.last_heartbeat = time.monotonic()

    # -- the run ------------------------------------------------------------------

    def run(self) -> FleetResult:
        """Spawn/attach replicas, drive every lease to completion, merge.

        Raises :class:`FleetError` when every replica is evicted with leases
        outstanding; everything durably recorded stays on disk, so re-running
        the same fleet resumes instead of restarting.
        """
        started = time.perf_counter()
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        spawned: list[subprocess.Popen] = []
        self._replicas = []
        try:
            for number in range(self.replicas):
                process, host, port = launch_replica(
                    checkpoint_root=self.checkpoint_dir,
                    args=self.replica_args,
                )
                spawned.append(process)
                self._replicas.append(
                    ReplicaInfo(
                        name=f"replica-{number}", host=host, port=port, process=process
                    )
                )
            for number, (host, port) in enumerate(self.attach):
                self._replicas.append(
                    ReplicaInfo(
                        name=f"attached-{number}", host=host, port=int(port)
                    )
                )
            workers = [
                threading.Thread(
                    target=self._worker, args=(replica,), name=f"fleet-{replica.name}"
                )
                for replica in self._replicas
            ]
            stop_monitor = threading.Event()
            monitor = None
            if self.heartbeat_interval is not None:
                monitor = threading.Thread(
                    target=self._monitor, args=(stop_monitor,), name="fleet-monitor"
                )
                monitor.start()
            for worker in workers:
                worker.start()
            try:
                with self._cond:
                    while not self._done and self._fatal is None:
                        self._cond.wait(0.5)
            finally:
                with self._cond:
                    # Wake every worker so they observe done/fatal and exit.
                    if not self._done and self._fatal is None:
                        self._fatal = "fleet interrupted"
                    self._cond.notify_all()
                stop_monitor.set()
                for replica in self._replicas:
                    client = replica.active_client
                    if client is not None:
                        try:
                            client.abort()
                        except Exception:  # noqa: BLE001 - teardown
                            pass
                for worker in workers:
                    worker.join(60)
                if monitor is not None:
                    monitor.join(60)
        finally:
            for process in spawned:
                stop_replica(process)
        if self._fatal is not None:
            raise FleetError(self._fatal)
        merge_files = [
            path
            for lease in self.leases
            for path in lease.files
            if path.exists() and path.stat().st_size > 0
        ]
        ranking = load_ranking(merge_files) if merge_files else []
        return FleetResult(
            leases=self.leases,
            replicas=self._replicas,
            steals=self.steals,
            evictions=self.evictions,
            seconds=time.perf_counter() - started,
            ranking=ranking,
        )
