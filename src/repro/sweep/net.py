"""Networked sweep serving: the TCP/asyncio transport for :class:`SweepServer`.

:class:`SweepService` multiplexes many concurrent client connections onto one
warm-engine :class:`~repro.sweep.server.SweepServer`.  Every transport — TCP
sockets (``tenet serve --listen HOST:PORT``), stdio (``tenet serve``), and the
in-memory channels the tests use — runs the *same* connection handler, so the
line protocol cannot drift between modes: one JSON request per line in, one
JSON result per line out, per-connection responses in request order.

Multi-tenant fairness
    Each connection owns a bounded request queue; a single dispatcher drains
    the queues **round-robin**, so a client pipelining hundreds of requests
    cannot starve a concurrent single-request client — after each admitted
    request the pipeliner goes to the back of the rotation.  A global
    ``max_inflight`` cap bounds how many sweeps execute concurrently and a
    per-connection ``queue_depth`` limit turns excess pipelining into an
    immediate structured overload reply (``"code": "overloaded"``) instead of
    unbounded buffering.

Pipelining
    Requests may carry an ``"id"`` field; it is echoed in the matching
    response (responses stay in per-connection request order), so clients can
    keep many requests in flight over one connection.

Control requests
    ``{"cmd": "stats"}`` returns a service snapshot: warm-engine registry
    stats, request counters, the ``engine_reused`` rate, per-connection queue
    depths, and the in-flight count.

Watchdog
    ``request_timeout`` (``tenet serve --request-timeout``) bounds every
    request end to end; tripping it replies ``"code": "timeout"`` instead of
    hanging the connection.  Faults from :mod:`repro.sweep.faults` can be
    injected into the channel read/write paths and the request path to prove
    these behaviours deterministically.

Graceful drain
    ``SIGTERM``/``SIGINT`` (or :meth:`SweepService.request_drain`) stops
    accepting new connections, answers every request already accepted, replies
    ``"code": "draining"`` to requests arriving afterwards, then exits cleanly
    once every accepted response has been written.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import itertools
import json
import re
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, TextIO

from repro.errors import ExplorationError
from repro.sweep import faults as fault_hooks
from repro.sweep.faults import FaultInjector, InjectedDisconnect
from repro.sweep.server import SweepRequest, SweepServer, result_record

#: Longest accepted request line (a sweep request is a few hundred bytes).
LINE_LIMIT = 1 << 20


class RequestTimeout(ExplorationError):
    """A request exceeded the server's per-request watchdog.

    The reply carries ``"code": "timeout"``; the sweep may still be running
    on its worker thread, but the connection is unblocked instead of hanging.
    """

    code = "timeout"


def parse_listen(spec: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` listen spec (``:PORT`` binds 127.0.0.1)."""
    host, sep, port_text = spec.rpartition(":")
    if not sep or not port_text:
        raise ExplorationError(
            f"--listen expects HOST:PORT (port 0 picks an ephemeral port), got {spec!r}"
        )
    try:
        port = int(port_text)
    except ValueError as error:
        raise ExplorationError(f"--listen port must be an integer, got {port_text!r}") from error
    if not 0 <= port <= 65535:
        raise ExplorationError(f"--listen port must be in [0, 65535], got {port}")
    return host or "127.0.0.1", port


#: The stderr line a listening server prints once bound; clients, smoke
#: scripts and the fleet coordinator all discover ephemeral (port 0) binds by
#: parsing it, so the format lives here — one definition, one regex.
_ANNOUNCE_PATTERN = re.compile(r"listening on ([\d.]+):(\d+)")


def format_announce(host: str, port: int) -> str:
    """The announce line ``tenet serve --listen`` prints for a bound address."""
    return f"tenet serve: listening on {host}:{port}"


def parse_announce(line: str) -> tuple[str, int] | None:
    """Extract ``(host, port)`` from an announce line; ``None`` when absent."""
    match = _ANNOUNCE_PATTERN.search(line)
    if match is None:
        return None
    return match.group(1), int(match.group(2))


def iter_lines(stream: TextIO) -> Iterator[str]:
    """Yield lines from ``stream`` as they arrive, including a final
    unterminated line.

    ``readline()`` (not file iteration) so a pipe producer sees responses per
    line, and — mirroring the checkpoint reader's torn-line tolerance — a
    final line with no trailing newline is still served rather than silently
    dropped at EOF.
    """
    while True:
        line = stream.readline()
        if line == "":
            return
        yield line


def error_record(
    kernel: str | None,
    error: BaseException,
    *,
    code: str | None = None,
    request_id: Any = None,
) -> dict:
    """The one-line error reply for a failed, rejected, or malformed request."""
    record: dict[str, Any] = {}
    if request_id is not None:
        record["id"] = request_id
    record["kernel"] = kernel
    record["error"] = f"{type(error).__name__}: {error}"
    if code is not None:
        record["code"] = code
    return record


# -- line channels ------------------------------------------------------------------


class SocketChannel:
    """A connected TCP stream as a line channel."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        fault_injector: FaultInjector | None = None,
    ):
        self.reader = reader
        self.writer = writer
        self._faults = fault_injector
        peer = writer.get_extra_info("peername")
        self.name = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) else "tcp"

    async def read_line(self) -> str | None:
        try:
            await fault_hooks.apply_async("net.read", self._faults)
            data = await self.reader.readline()
        except (ConnectionError, ValueError, asyncio.IncompleteReadError):
            # ValueError = line longer than LINE_LIMIT; the stream cannot be
            # resynchronised, so the connection ends.  Injected drops land
            # here too (InjectedDisconnect is a ConnectionError).
            return None
        if not data:
            return None
        return data.decode("utf-8", errors="replace")

    async def write_line(self, line: str) -> None:
        payload = line.encode("utf-8") + b"\n"
        spec = await fault_hooks.apply_async("net.write", self._faults)
        if spec is not None and spec.kind == "torn":
            # Write only the first ``arg`` bytes of the line, then drop the
            # connection: the peer sees a torn response line followed by EOF.
            self.writer.write(payload[: int(spec.arg or 0)])
            with contextlib.suppress(Exception):
                await self.writer.drain()
            transport = self.writer.transport
            if transport is not None:
                transport.abort()
            raise InjectedDisconnect(f"injected torn write after {int(spec.arg or 0)} byte(s)")
        self.writer.write(payload)
        await self.writer.drain()

    async def close(self) -> None:
        with contextlib.suppress(Exception):
            self.writer.close()
            await self.writer.wait_closed()


class IterableChannel:
    """Lines from a (possibly blocking) iterator; replies through a callable.

    Backs stdio mode and the ``serve_lines`` tests: the iterator is consumed
    on a worker thread so a producer that blocks between lines never stalls
    the event loop, and responses stream out as soon as they are ready.
    """

    def __init__(
        self,
        lines: Iterable[str],
        emit: Callable[[str], None],
        *,
        name: str = "stdio",
    ):
        self._lines = iter(lines)
        self._emit = emit
        self.name = name

    def _next_line(self) -> str | None:
        try:
            return next(self._lines)
        except StopIteration:
            return None

    async def read_line(self) -> str | None:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._next_line)

    async def write_line(self, line: str) -> None:
        self._emit(line)

    async def close(self) -> None:
        return None


# -- the service --------------------------------------------------------------------

#: Sentinel closing a connection's response queue.
_CLOSE = object()


@dataclass
class _QueuedItem:
    request: SweepRequest
    request_id: Any
    future: "asyncio.Future[dict]"


@dataclass
class _Connection:
    id: int
    channel: Any
    #: Requests accepted but not yet dispatched (drained round-robin).
    queue: deque = field(default_factory=deque)
    #: Response futures in request order, closed by ``_CLOSE``.
    responses: "asyncio.Queue[Any]" = field(default_factory=asyncio.Queue)
    #: Accepted responses not yet written back (gates graceful drain).
    unwritten: int = 0
    #: Set by the writer whenever the backlog shrinks (or the peer dies);
    #: the reader waits on it when the connection is over its write backlog.
    write_progress: "asyncio.Event" = field(default_factory=asyncio.Event)
    served: int = 0
    in_rr: bool = False
    dead: bool = False


class SweepService:
    """Serve the sweep line protocol over any transport, fairly.

    One instance owns (or wraps) a :class:`SweepServer` and schedules every
    connection's requests through a single round-robin dispatcher.  Use
    :meth:`serve_tcp` for the network transport, :meth:`handle_channel` to
    drive one explicit channel (stdio), and :meth:`request_drain` to finish
    in-flight work and stop.
    """

    def __init__(
        self,
        server: SweepServer | None = None,
        *,
        jobs: int = 1,
        backend: str = "auto",
        device: str = "numpy",
        batch_size: int = 64,
        max_workers: int = 2,
        max_inflight: int | None = None,
        queue_depth: int = 64,
        request_timeout: float | None = None,
        fault_injector: FaultInjector | None = None,
        tune: str | dict | bool | None = "off",
        shed_after_seconds: float | None = None,
        checkpoint_root: str | None = None,
    ):
        self._faults = fault_injector
        self.tune_enabled = tune not in (None, False, "off")
        if server is None:
            server = SweepServer(
                jobs=jobs,
                backend=backend,
                device=device,
                batch_size=batch_size,
                max_workers=max_workers,
                fault_injector=fault_injector,
                tune=tune,
                checkpoint_root=checkpoint_root,
            )
            self._owns_server = True
        else:
            self._owns_server = False
        self.server = server
        #: Per-request watchdog: a sweep running longer than this gets a
        #: structured ``"code": "timeout"`` reply instead of hanging its
        #: connection (the worker thread finishes in the background).
        self.request_timeout = float(request_timeout) if request_timeout is not None else None
        #: Sweeps admitted for concurrent execution across all connections.
        self.max_inflight = max(1, int(max_inflight if max_inflight is not None else max_workers))
        #: Accepted-but-undispatched requests per connection before overload.
        self.queue_depth = max(1, int(queue_depth))
        #: Unwritten responses per connection before the reader stops reading
        #: (TCP backpressure): without it, a client that floods requests and
        #: never reads replies would grow the response queue without bound.
        self.write_backlog = self.queue_depth + self.max_inflight + 64
        self.requests_received = 0
        self.requests_rejected = 0
        self.requests_failed = 0
        self.responses_sent = 0
        #: Requests that tripped the per-request watchdog.
        self.requests_timed_out = 0
        #: Measurement-driven load shedding: with a threshold set (defaults on
        #: when tuning is on), a request whose *predicted* queue wait — queued
        #: backlog times the measured per-request seconds, over the inflight
        #: slots — exceeds it is refused immediately with ``"code":
        #: "overloaded"`` instead of being accepted into a hopeless queue.
        if shed_after_seconds is None and self.tune_enabled:
            shed_after_seconds = 120.0
        self.shed_after_seconds = (
            float(shed_after_seconds) if shed_after_seconds is not None else None
        )
        self.requests_shed = 0
        #: EWMA of end-to-end request seconds — the shedding signal the
        #: service already pays to know (every request is timed anyway).
        self._ewma_request_seconds = 0.0
        #: Requests arriving with ``"retry": true`` — client reconnect
        #: retries and pipeline recoveries, counted for observability.
        self.retries_served = 0
        self._connections: dict[int, _Connection] = {}
        self._conn_ids = itertools.count(1)
        self._rr: deque[_Connection] = deque()
        self._inflight = 0
        self._draining = False
        self._tcp_server: asyncio.base_events.Server | None = None
        self._handler_tasks: set[asyncio.Task] = set()
        self._execute_tasks: set[asyncio.Task] = set()
        # Created lazily in the serving loop so the service object can be
        # built on any thread (the primitives bind to the running loop).
        self._dispatcher: asyncio.Task | None = None
        self._work: asyncio.Event | None = None
        self._slots: asyncio.Semaphore | None = None
        self._drained: asyncio.Event | None = None

    # -- lifecycle ----------------------------------------------------------------

    async def _ensure_started(self) -> None:
        if self._dispatcher is not None and not self._dispatcher.done():
            return
        self._work = asyncio.Event()
        self._slots = asyncio.Semaphore(self.max_inflight)
        self._drained = asyncio.Event()
        self._dispatcher = asyncio.create_task(self._dispatch_loop(), name="sweep-dispatch")

    def request_drain(self) -> None:
        """Begin a graceful drain: refuse new work, finish accepted work.

        Safe to call from a signal handler on the event-loop thread.  The
        serving loops exit once every accepted request has been answered.
        """
        self._draining = True
        if self._tcp_server is not None:
            self._tcp_server.close()
        self._maybe_drained()

    @property
    def draining(self) -> bool:
        return self._draining

    def _maybe_drained(self) -> None:
        if not self._draining or self._drained is None:
            return
        if self._inflight:
            return
        for conn in self._connections.values():
            if conn.queue or conn.unwritten:
                return
        self._drained.set()

    async def aclose(self) -> None:
        """Tear the service down (cancel the dispatcher, close an owned server)."""
        dispatcher, self._dispatcher = self._dispatcher, None
        if dispatcher is not None:
            dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await dispatcher
        for conn in self._connections.values():
            while conn.queue:
                item = conn.queue.popleft()
                if not item.future.done():
                    item.future.set_result(
                        error_record(
                            item.request.kernel,
                            ExplorationError("sweep service shut down before dispatch"),
                            code="draining",
                            request_id=item.request_id,
                        )
                    )
        if self._execute_tasks:
            await asyncio.gather(*self._execute_tasks, return_exceptions=True)
        if self._owns_server:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.server.shutdown)

    # -- stats --------------------------------------------------------------------

    def stats_record(self, request_id: Any = None) -> dict:
        """The ``{"cmd": "stats"}`` reply: registry + fairness counters."""
        server_stats = self.server.stats()
        record: dict[str, Any] = {}
        if request_id is not None:
            record["id"] = request_id
        record.update(
            {
                "cmd": "stats",
                "engines": server_stats["engines"],
                "requests": {
                    "received": self.requests_received,
                    "submitted": server_stats["requests_submitted"],
                    "served": server_stats["requests_served"],
                    "rejected": self.requests_rejected,
                    "failed": self.requests_failed,
                    "shed": self.requests_shed,
                },
                "engine_reused_rate": server_stats["engine_reused_rate"],
                "in_flight": self._inflight,
                "connections": len(self._connections),
                "queue_depths": {
                    f"conn-{conn.id}": len(conn.queue)
                    for conn in self._connections.values()
                },
                "draining": self._draining,
                # Failure counters: how much resilience machinery has fired.
                "faults": {
                    "request_timeouts": self.requests_timed_out,
                    "retries_served": self.retries_served,
                    "engine_build_failures": server_stats["engine_build_failures"],
                    "quarantined_engines": server_stats["quarantined_engines"],
                },
                "relation_cache": server_stats["relation_cache"],
                # Device routing: clients use these to steer device-capable
                # sweeps to servers that can actually run them.
                "device": server_stats["device"],
                "engine_devices": server_stats["engine_devices"],
                "array_namespaces": server_stats["array_namespaces"],
                # What the auto-tuner measured and decided, per warm engine,
                # plus the measurement-driven shedding signal.
                "tuning": {
                    "enabled": self.tune_enabled,
                    "shed_after_seconds": self.shed_after_seconds,
                    "ewma_request_seconds": round(self._ewma_request_seconds, 4),
                    "profiles": server_stats.get("tuning", []),
                },
            }
        )
        return record

    # -- per-connection handling --------------------------------------------------

    async def handle_channel(self, channel: Any) -> int:
        """Run the full line protocol over one channel; returns lines served."""
        await self._ensure_started()
        conn = _Connection(id=next(self._conn_ids), channel=channel)
        self._connections[conn.id] = conn
        writer_task = asyncio.create_task(self._write_responses(conn))
        try:
            while True:
                line = await channel.read_line()
                if line is None:
                    break
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                self._handle_line(conn, stripped)
                # Backpressure: a peer that does not read its responses
                # eventually blocks here instead of growing the backlog.
                while conn.unwritten > self.write_backlog and not conn.dead:
                    conn.write_progress.clear()
                    await conn.write_progress.wait()
        finally:
            conn.responses.put_nowait(_CLOSE)
            try:
                await writer_task
            finally:
                self._connections.pop(conn.id, None)
                self._maybe_drained()
                await channel.close()
        return conn.served

    def _handle_line(self, conn: _Connection, line: str) -> None:
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[dict]" = loop.create_future()
        conn.responses.put_nowait(future)
        conn.unwritten += 1
        self.requests_received += 1
        try:
            data = json.loads(line)
            if not isinstance(data, dict):
                raise ExplorationError(f"request must be a JSON object, got {type(data).__name__}")
        except Exception as error:  # noqa: BLE001 - protocol line
            future.set_result(error_record(None, error, request_id=None))
            self.requests_rejected += 1
            return
        request_id = data.pop("id", None)
        # Protocol-level (not request-schema) field: clients tag reconnect
        # retries and pipeline resubmissions so operators can see them.
        if data.pop("retry", False):
            self.retries_served += 1
        cmd = data.pop("cmd", None)
        if cmd is not None:
            if cmd == "stats":
                future.set_result(self.stats_record(request_id))
            else:
                future.set_result(
                    error_record(
                        None,
                        ExplorationError(f"unknown control command {cmd!r}; known: ['stats']"),
                        code="bad-request",
                        request_id=request_id,
                    )
                )
                self.requests_rejected += 1
            return
        try:
            request = SweepRequest.from_dict(data)
        except Exception as error:  # noqa: BLE001 - protocol line
            future.set_result(error_record(data.get("kernel"), error, request_id=request_id))
            self.requests_rejected += 1
            return
        if self._draining:
            future.set_result(
                error_record(
                    request.kernel,
                    ExplorationError("server is draining; no new requests accepted"),
                    code="draining",
                    request_id=request_id,
                )
            )
            self.requests_rejected += 1
            return
        if len(conn.queue) >= self.queue_depth:
            future.set_result(
                error_record(
                    request.kernel,
                    ExplorationError(
                        f"connection queue is full ({len(conn.queue)} requests "
                        "queued); apply backpressure and retry"
                    ),
                    code="overloaded",
                    request_id=request_id,
                )
            )
            self.requests_rejected += 1
            return
        predicted_wait = self._predicted_wait_seconds()
        if (
            self.shed_after_seconds is not None
            and predicted_wait > self.shed_after_seconds
        ):
            future.set_result(
                error_record(
                    request.kernel,
                    ExplorationError(
                        f"load shed: predicted queue wait {predicted_wait:.1f}s "
                        f"exceeds {self.shed_after_seconds:.1f}s at the measured "
                        f"{self._ewma_request_seconds:.2f}s/request; retry later "
                        "or add capacity"
                    ),
                    code="overloaded",
                    request_id=request_id,
                )
            )
            self.requests_rejected += 1
            self.requests_shed += 1
            return
        conn.queue.append(_QueuedItem(request=request, request_id=request_id, future=future))
        if not conn.in_rr:
            conn.in_rr = True
            self._rr.append(conn)
        assert self._work is not None
        self._work.set()

    async def _write_responses(self, conn: _Connection) -> None:
        while True:
            head = await conn.responses.get()
            if head is _CLOSE:
                break
            record = await head
            if not conn.dead:
                try:
                    await conn.channel.write_line(json.dumps(record))
                    conn.served += 1
                    self.responses_sent += 1
                except (ConnectionError, OSError):
                    # The peer went away: stop writing, discard its queued
                    # requests so the dispatcher never runs them, and keep
                    # consuming futures so accounting still settles.
                    conn.dead = True
                    conn.write_progress.set()
                    while conn.queue:
                        item = conn.queue.popleft()
                        if not item.future.done():
                            item.future.set_result(
                                error_record(
                                    item.request.kernel,
                                    ExplorationError("connection closed before dispatch"),
                                    request_id=item.request_id,
                                )
                            )
            conn.unwritten -= 1
            conn.write_progress.set()
            self._maybe_drained()

    # -- dispatch -----------------------------------------------------------------

    def _next_item(self) -> tuple[_Connection, _QueuedItem] | None:
        while self._rr:
            conn = self._rr.popleft()
            if not conn.queue:
                conn.in_rr = False
                continue
            item = conn.queue.popleft()
            if conn.queue:
                self._rr.append(conn)
            else:
                conn.in_rr = False
            return conn, item
        return None

    async def _dispatch_loop(self) -> None:
        assert self._work is not None and self._slots is not None
        while True:
            await self._slots.acquire()
            picked = None
            while picked is None:
                await self._work.wait()
                picked = self._next_item()
                if picked is None:
                    self._work.clear()
            _, item = picked
            self._inflight += 1
            task = asyncio.create_task(self._execute(item))
            self._execute_tasks.add(task)
            task.add_done_callback(self._execute_tasks.discard)

    def _predicted_wait_seconds(self) -> float:
        """Expected wait for a newly accepted request, from measured rates."""
        if self._ewma_request_seconds <= 0.0:
            return 0.0
        backlog = self._inflight + sum(
            len(conn.queue) for conn in self._connections.values()
        )
        return backlog * self._ewma_request_seconds / max(1, self.max_inflight)

    async def _execute(self, item: _QueuedItem) -> None:
        started = time.monotonic()
        try:
            record = await self._run_request(item.request)
        except Exception as error:  # noqa: BLE001 - becomes the error reply line
            # Structured failures (RequestTimeout, EngineQuarantinedError)
            # carry a reply code so clients can react without string-matching.
            record = error_record(
                item.request.kernel,
                error,
                code=getattr(error, "code", None),
                request_id=item.request_id,
            )
            self.requests_failed += 1
        else:
            if item.request_id is not None:
                record = {"id": item.request_id, **record}
        # Timeouts and failures consume capacity too, so they feed the
        # shedding EWMA exactly like successes.
        elapsed = time.monotonic() - started
        self._ewma_request_seconds = (
            elapsed
            if self._ewma_request_seconds == 0.0
            else 0.8 * self._ewma_request_seconds + 0.2 * elapsed
        )
        if not item.future.done():
            item.future.set_result(record)
        self._inflight -= 1
        assert self._slots is not None
        self._slots.release()
        self._maybe_drained()

    async def _run_request(self, request: SweepRequest) -> dict:
        """Run one sweep on the warm-engine server (the transport-free seam).

        ``submit`` runs on a worker thread: it builds the operation and may
        construct (or LRU-evict and close) an engine, which must not stall
        the event loop for every other connection.

        With ``request_timeout`` set, the whole request — build, engine
        reservation, sweep — runs under a watchdog; tripping it raises
        :class:`RequestTimeout` (reply ``"code": "timeout"``).  The worker
        thread cannot be killed, so the sweep may still finish server-side;
        what the watchdog guarantees is that a hung request never wedges its
        connection (or its round-robin slot) forever.
        """
        loop = asyncio.get_running_loop()

        async def run() -> dict:
            future = await loop.run_in_executor(None, self.server.submit, request)
            result, reused = await asyncio.wrap_future(future)
            return result_record(request, result, reused)

        if self.request_timeout is None:
            return await run()
        try:
            return await asyncio.wait_for(run(), timeout=self.request_timeout)
        except asyncio.TimeoutError as error:
            self.requests_timed_out += 1
            raise RequestTimeout(
                "request exceeded the server watchdog "
                f"(--request-timeout={self.request_timeout}s); the sweep may "
                "still be running server-side"
            ) from error

    # -- transports ---------------------------------------------------------------

    async def _on_tcp_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        channel = SocketChannel(reader, writer, fault_injector=self._faults)
        try:
            await self.handle_channel(channel)
        except Exception:  # noqa: BLE001 - one connection must not kill the server
            await channel.close()
        finally:
            if task is not None:
                self._handler_tasks.discard(task)

    async def serve_tcp(
        self,
        host: str,
        port: int,
        *,
        announce: Callable[[str, int], None] | None = None,
    ) -> int:
        """Accept connections until a drain is requested; returns lines served."""
        await self._ensure_started()
        server = await asyncio.start_server(self._on_tcp_connection, host, port, limit=LINE_LIMIT)
        self._tcp_server = server
        bound = server.sockets[0].getsockname()
        if announce is not None:
            announce(bound[0], bound[1])
        if self._draining:
            # A drain was requested before the listener existed (e.g. SIGTERM
            # during startup): close it now and re-evaluate, or the unset
            # drained event below would be awaited forever.
            self.request_drain()
        try:
            assert self._drained is not None
            await self._drained.wait()
        finally:
            server.close()
            for conn in list(self._connections.values()):
                await conn.channel.close()
            with contextlib.suppress(Exception):
                await server.wait_closed()
            if self._handler_tasks:
                await asyncio.gather(*self._handler_tasks, return_exceptions=True)
            self._tcp_server = None
        return self.responses_sent


# -- entry points -------------------------------------------------------------------


def serve_lines(
    lines: Iterable[str],
    *,
    jobs: int = 1,
    backend: str = "auto",
    device: str = "numpy",
    batch_size: int = 64,
    max_workers: int = 2,
    max_inflight: int | None = None,
    queue_depth: int = 64,
    request_timeout: float | None = None,
    tune: str | dict | bool | None = "off",
    checkpoint_root: str | None = None,
    emit: Callable[[str], None] | None = None,
) -> int:
    """The stdio ``tenet serve`` loop: JSON requests in, JSON results out.

    Delegates to the same connection handler as the TCP transport, so stdio
    responses are identical to network responses for the same request lines
    (modulo the per-run timing fields).  Returns the number of response lines
    emitted — exactly one per request, errors included.
    """
    if emit is None:
        emit = functools.partial(print, flush=True)

    async def _run() -> int:
        service = SweepService(
            jobs=jobs,
            backend=backend,
            device=device,
            batch_size=batch_size,
            max_workers=max_workers,
            max_inflight=max_inflight,
            queue_depth=queue_depth,
            request_timeout=request_timeout,
            tune=tune,
            checkpoint_root=checkpoint_root,
        )
        channel = IterableChannel(lines, emit)
        try:
            return await service.handle_channel(channel)
        finally:
            await service.aclose()

    return asyncio.run(_run())


def run_tcp_server(
    host: str,
    port: int,
    *,
    jobs: int = 1,
    backend: str = "auto",
    device: str = "numpy",
    batch_size: int = 64,
    max_workers: int = 2,
    max_inflight: int | None = None,
    queue_depth: int = 64,
    request_timeout: float | None = None,
    tune: str | dict | bool | None = "off",
    checkpoint_root: str | None = None,
    announce: Callable[[str, int], None] | None = None,
) -> int:
    """Run ``tenet serve --listen``: serve TCP until SIGTERM/SIGINT, drain, exit.

    Returns the number of response lines served over the server's lifetime.
    """

    async def _main() -> int:
        service = SweepService(
            jobs=jobs,
            backend=backend,
            device=device,
            batch_size=batch_size,
            max_workers=max_workers,
            max_inflight=max_inflight,
            queue_depth=queue_depth,
            request_timeout=request_timeout,
            tune=tune,
            checkpoint_root=checkpoint_root,
        )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, service.request_drain)
        try:
            return await service.serve_tcp(host, port, announce=announce)
        finally:
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                    loop.remove_signal_handler(signum)
            await service.aclose()

    return asyncio.run(_main())
