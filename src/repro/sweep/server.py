"""Warm-engine sweep serving.

:class:`SweepServer` keeps one warm :class:`~repro.core.engine.EvaluationEngine`
— materialised relations, compiled group layouts, report memo — per
``(operation, architecture, backend, device)`` and services queued sweep
requests
concurrently: requests for *different* operations sweep in parallel on a
thread pool (each engine may additionally fan out over its own ``jobs``
process pool), while requests for the *same* warm engine serialise on a
per-engine lock so they share its caches instead of racing them.

``tenet serve`` wraps this in a line protocol: one JSON request per input
line, one JSON result per output line, in request order::

    {"kernel": "gemm", "sizes": [32, 32, 32], "objective": "latency"}
    {"kernel": "gemm", "sizes": [32, 32, 32], "objective": "energy"}

The second request reuses the first one's engine: the relations are cache
hits and memoised reports are re-ranked without re-evaluation.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from pathlib import Path
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable

from repro.arch.spec import ArchSpec
from repro.core.dataflow import Dataflow
from repro.core.engine import (
    EvaluationEngine,
    RelationCache,
    arch_signature,
    op_signature,
)
from repro.core.xp import available_namespaces, resolve_namespace
from repro.errors import ExplorationError
from repro.sweep import faults as fault_hooks
from repro.sweep.faults import FaultInjector
from repro.sweep.session import SweepResult, SweepSession
from repro.sweep.source import CandidateSource, validate_shard
from repro.tensor.operation import TensorOp


@dataclass
class SweepRequest:
    """One queued sweep over the pruned candidate space of a kernel."""

    kernel: str
    sizes: tuple[int, ...]
    objective: str = "latency"
    pe: tuple[int, int] = (8, 8)
    interconnect: str = "2d-systolic"
    bandwidth: float = 128.0
    max_candidates: int | None = 64
    allow_packing: bool = True
    early_termination: bool = False
    shard: tuple[int, int] | None = None
    top: int = 5
    #: Server-side JSONL checkpoint, named *relative to* the server's
    #: ``checkpoint_root`` (requests cannot write outside it).  With
    #: ``resume=True`` recorded signatures are skipped — the fleet
    #: coordinator's lease re-issue path.  Resume of a missing or empty
    #: checkpoint is simply a fresh sweep, so re-issued leases always send
    #: ``resume=True``.
    checkpoint: str | None = None
    resume: bool = False

    @classmethod
    def from_dict(cls, data: dict) -> "SweepRequest":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ExplorationError(
                f"unknown sweep request fields {sorted(unknown)}; known: {sorted(known)}"
            )
        if "kernel" not in data or "sizes" not in data:
            raise ExplorationError("sweep request needs at least 'kernel' and 'sizes'")
        for field_name in ("sizes", "pe", "shard"):
            value = data.get(field_name)
            if value is not None and not isinstance(value, (list, tuple)):
                # A string like "123" would silently iterate into (1, 2, 3)
                # and sweep the wrong operation.
                raise ExplorationError(
                    f"sweep request field {field_name!r} must be a list of "
                    f"integers, got {value!r}"
                )
        checkpoint = data.get("checkpoint")
        if checkpoint is not None and not isinstance(checkpoint, str):
            raise ExplorationError(
                f"sweep request field 'checkpoint' must be a relative path "
                f"string, got {checkpoint!r}"
            )
        request = cls(**data)
        request.sizes = tuple(int(s) for s in request.sizes)
        request.pe = tuple(int(p) for p in request.pe)
        if request.shard is not None:
            request.shard = validate_shard(tuple(request.shard))
        return request

    def build(self) -> tuple[TensorOp, ArchSpec, CandidateSource]:
        from repro.dse.pruning import pruned_candidates
        from repro.experiments.common import make_arch
        from repro.tensor.kernels import make_kernel

        op = make_kernel(self.kernel, list(self.sizes))
        arch = make_arch(
            pe_dims=self.pe,
            interconnect=self.interconnect,
            bandwidth_bits=self.bandwidth,
        )
        source = CandidateSource(
            lambda: pruned_candidates(
                op,
                pe_dims=self.pe,
                allow_packing=self.allow_packing,
                max_candidates=self.max_candidates,
            ),
            name=f"pruned[{self.kernel}]",
        )
        return op, arch, source


class EngineQuarantinedError(ExplorationError):
    """Engine construction for this key recently failed; retry after cooldown.

    A bad request spec (device, architecture) would otherwise retry-storm
    engine construction — the most expensive operation the server performs —
    on every resubmission.  Carries ``code`` so the networked service can
    reply with a structured ``"code": "quarantined"`` record.
    """

    code = "quarantined"


@dataclass
class _WarmEngine:
    engine: EvaluationEngine
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Requests assigned to this engine, counted at submission time (decides
    #: the deterministic ``engine_reused`` flag) and at execution time.
    requests_queued: int = 0
    requests_served: int = 0


class SweepServer:
    """Service sweep requests on warm, shared evaluation engines."""

    def __init__(
        self,
        *,
        jobs: int = 1,
        backend: str = "auto",
        device: str = "numpy",
        batch_size: int = 64,
        max_workers: int = 2,
        max_instances: int = 4_000_000,
        max_engines: int = 8,
        cache: RelationCache | None = None,
        quarantine_cooldown: float = 30.0,
        fault_injector: FaultInjector | None = None,
        tune: str | dict | bool | None = "off",
        checkpoint_root: str | Path | None = None,
    ):
        self.jobs = max(1, int(jobs))
        self.backend = backend
        self.device = str(device)
        #: Threaded into every warm engine: tuned engines calibrate on their
        #: first request and re-batch later requests from what they measured.
        self.tune = tune
        # Fail at construction, not at the first request: an unavailable
        # namespace is a deployment error the operator should see immediately.
        resolve_namespace(self.device)
        self.batch_size = int(batch_size)
        self.max_instances = int(max_instances)
        #: Warm engines kept resident; least-recently-used idle engines are
        #: evicted past this, bounding a long-lived server's report memos.
        self.max_engines = max(1, int(max_engines))
        #: Directory request-scoped checkpoints resolve under; ``None``
        #: (the default) refuses checkpointed requests entirely, so a server
        #: never writes files unless an operator opted in.
        self.checkpoint_root = (
            str(Path(checkpoint_root)) if checkpoint_root is not None else None
        )
        #: One relation cache for the whole server: engines of different
        #: architectures over the same operation share its relations.
        self.cache = cache if cache is not None else RelationCache(max_entries=8)
        self._engines: "OrderedDict[tuple[str, str, str, str], _WarmEngine]" = OrderedDict()
        self._registry_lock = threading.Lock()
        self._faults = fault_injector
        #: Seconds an engine key stays quarantined after a build failure.
        self.quarantine_cooldown = float(quarantine_cooldown)
        #: key -> (monotonic expiry, reason) for keys whose engine failed to
        #: build; requests for them fail fast until the cooldown passes.
        self._quarantine: dict[tuple[str, str, str, str], tuple[float, str]] = {}
        self._engine_build_failures = 0
        #: Submission-order counters behind the ``engine_reused`` rate the
        #: networked service surfaces via ``{"cmd": "stats"}``.
        self._requests_submitted = 0
        self._requests_reused = 0
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, int(max_workers)), thread_name_prefix="sweep"
        )
        self._closed = False

    # -- engine registry ----------------------------------------------------------

    def _reserve_engine(self, op: TensorOp, arch: ArchSpec) -> tuple[_WarmEngine, bool]:
        """Look up (or create) the warm engine for ``(op, arch)`` and reserve
        one request slot on it, atomically.

        Returns ``(engine, was_warm)``.  Reservation (``requests_queued``)
        happens under the same lock hold as the lookup, so an engine with a
        request on the way can never be evicted in between.  The registry is
        LRU-bounded at ``max_engines``: past the cap, the least recently used
        *idle* engine is closed and dropped (an engine mid-sweep, or with
        reserved requests, is never evicted).
        """
        key = (op_signature(op), arch_signature(arch), self.backend, self.device)
        evicted: list[_WarmEngine] = []
        with self._registry_lock:
            quarantined = self._quarantine.get(key)
            if quarantined is not None:
                until, reason = quarantined
                remaining = until - time.monotonic()
                if remaining > 0:
                    # Fail fast: do not rebuild a known-bad engine until the
                    # cooldown passes (a retry storm must not reconstruct it).
                    raise EngineQuarantinedError(
                        "engine for this (op, arch, backend, device) is "
                        f"quarantined for another {remaining:.1f}s after a "
                        f"build failure: {reason}"
                    )
                del self._quarantine[key]
            warm = self._engines.get(key)
            if warm is not None:
                self._engines.move_to_end(key)
            else:
                try:
                    fault_hooks.apply("engine.build", self._faults)
                    warm = _WarmEngine(
                        engine=EvaluationEngine(
                            op,
                            arch,
                            jobs=self.jobs,
                            backend=self.backend,
                            device=self.device,
                            cache=self.cache,
                            max_instances=self.max_instances,
                            tune=self.tune,
                        )
                    )
                except Exception as error:
                    self._engine_build_failures += 1
                    self._quarantine[key] = (
                        time.monotonic() + self.quarantine_cooldown,
                        f"{type(error).__name__}: {error}",
                    )
                    raise
                self._engines[key] = warm
                for old_key in list(self._engines):
                    if len(self._engines) <= self.max_engines:
                        break
                    candidate = self._engines[old_key]
                    idle = (
                        candidate is not warm
                        and candidate.requests_queued == candidate.requests_served
                        and not candidate.lock.locked()
                    )
                    if idle:
                        evicted.append(self._engines.pop(old_key))
            reused = warm.requests_queued > 0
            warm.requests_queued += 1
            self._requests_submitted += 1
            if reused:
                self._requests_reused += 1
        for old in evicted:
            old.engine.close()
        return warm, reused

    @property
    def num_engines(self) -> int:
        return len(self._engines)

    def stats(self) -> dict:
        with self._registry_lock:
            engines = list(self._engines.values())
            submitted = self._requests_submitted
            reused = self._requests_reused
            build_failures = self._engine_build_failures
            now = time.monotonic()
            quarantined = sum(1 for until, _ in self._quarantine.values() if until > now)
        return {
            "engines": len(engines),
            "engine_build_failures": build_failures,
            "quarantined_engines": quarantined,
            "requests_served": sum(w.requests_served for w in engines),
            "requests_submitted": submitted,
            "requests_reused": reused,
            "engine_reused_rate": round(reused / submitted, 4) if submitted else 0.0,
            "relation_cache": self.cache.stats(),
            # Device routing: what this server evaluates on and what it
            # *could* evaluate on, so clients can steer device-capable work.
            "device": self.device,
            "engine_devices": sorted(
                {f"{w.engine.xp.name}:{w.engine.xp.device}" for w in engines}
            ),
            "array_namespaces": available_namespaces(),
            # Learned profiles of every tuned warm engine (empty when the
            # server runs untuned), so clients can see what the server
            # measured and decided.
            "tuning": [
                w.engine.tuner.profile_dict()
                for w in engines
                if getattr(w.engine, "tuner", None) is not None
            ],
        }

    # -- request servicing --------------------------------------------------------

    def submit_sweep(
        self,
        op: TensorOp,
        arch: ArchSpec,
        candidates: CandidateSource | Iterable[Dataflow],
        *,
        objective: str = "latency",
        early_termination: bool = False,
        shard: tuple[int, int] | None = None,
    ) -> "Future[SweepResult]":
        """Queue a sweep of explicit candidates; returns a future result."""
        if self._closed:
            raise ExplorationError("sweep server is shut down")
        warm, _ = self._reserve_engine(op, arch)
        return self._pool.submit(
            self._run_sweep, warm, candidates, objective, early_termination, shard
        )

    def submit(self, request: SweepRequest) -> "Future[tuple[SweepResult, bool]]":
        """Queue a :class:`SweepRequest`; resolves to (result, engine_was_warm).

        The ``engine_was_warm`` flag is decided here, in submission order, so
        the N-th request for one (op, arch, backend) reports reuse regardless
        of which worker thread its sweep lands on.
        """
        if self._closed:
            raise ExplorationError("sweep server is shut down")
        op, arch, source = request.build()
        warm, reused = self._reserve_engine(op, arch)
        return self._pool.submit(self._run_request, warm, request, source, reused)

    def _run_sweep(self, warm, candidates, objective, early_termination, shard):
        return self._serve(warm, candidates, objective, early_termination, shard)

    def _run_request(
        self, warm: "_WarmEngine", request: SweepRequest, source, reused: bool
    ) -> tuple[SweepResult, bool]:
        result = self._serve(
            warm,
            source,
            request.objective,
            request.early_termination,
            request.shard,
            checkpoint=request.checkpoint,
            resume=request.resume,
        )
        return result, reused

    def _resolve_checkpoint(self, checkpoint: str) -> str:
        """Validate a request's checkpoint name against the server root.

        Requests name checkpoints relative to ``checkpoint_root``; a server
        without a root refuses them, and a name that escapes the root (``..``,
        absolute paths, symlinked parents) is rejected before anything is
        opened.
        """
        if self.checkpoint_root is None:
            raise ExplorationError(
                "this server has no checkpoint root; start it with "
                "--checkpoint-root DIR to accept checkpointed sweep requests"
            )
        root = Path(self.checkpoint_root).resolve()
        path = (root / checkpoint).resolve()
        if path == root or root not in path.parents:
            raise ExplorationError(
                f"checkpoint {checkpoint!r} escapes the server checkpoint "
                f"root {self.checkpoint_root!r}; use a relative path inside it"
            )
        return str(path)

    def _serve(
        self,
        warm,
        candidates,
        objective,
        early_termination,
        shard,
        *,
        checkpoint: str | None = None,
        resume: bool = False,
    ):
        """One sweep on a reserved warm engine (serialised per engine)."""
        checkpoint_path = (
            self._resolve_checkpoint(checkpoint) if checkpoint is not None else None
        )
        with warm.lock:
            # Chaos hook: a ``kill`` here crashes the process mid-batch (the
            # chaos smoke's seeded server crash); a ``delay`` simulates a
            # hung request for the service watchdog.
            fault_hooks.apply("server.request", self._faults)
            warm.requests_served += 1
            batch_size = self.batch_size
            tuner = getattr(warm.engine, "tuner", None)
            if tuner is not None and tuner.decided_batch_size:
                # Re-batch from measurements: requests after the first on this
                # warm engine inherit the batch size its calibration decided.
                batch_size = tuner.decided_batch_size
            session = SweepSession(
                warm.engine,
                objective=objective,
                batch_size=batch_size,
                early_termination=early_termination,
                checkpoint=checkpoint_path,
                resume=resume,
                fault_injector=self._faults,
            )
            return session.run(candidates, shard=shard)

    # -- lifecycle ----------------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self._pool.shutdown(wait=wait)
        with self._registry_lock:
            engines = list(self._engines.values())
        for warm in engines:
            warm.engine.close()

    def __enter__(self) -> "SweepServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def result_record(request: SweepRequest, result: SweepResult, reused: bool) -> dict:
    """The JSON line ``tenet serve`` emits for one serviced request."""
    return {
        "kernel": request.kernel,
        "objective": result.objective,
        "candidates": result.num_candidates,
        "evaluated": result.evaluated_count,
        "invalid": len(result.failures),
        "pruned": len(result.pruned),
        # Candidates restored from a resumed request-scoped checkpoint (the
        # fleet coordinator asserts a stolen lease really resumed).
        "skipped": result.skipped,
        "shard": list(result.shard) if result.shard else None,
        "seconds": round(result.seconds, 4),
        "candidates_per_second": round(result.throughput, 2),
        "engine_reused": reused,
        "top": [
            {
                "name": entry.name,
                "score": entry.score,
                "latency_cycles": entry.data["latency_cycles"],
                "sbw_bits_per_cycle": entry.data["sbw_bits_per_cycle"],
            }
            for entry in result.ranking[: request.top]
        ],
    }


# The ``tenet serve`` loops — stdio and TCP — live in :mod:`repro.sweep.net`;
# both transports run the same connection handler over this server.
