"""The streaming sweep session every sweep caller shares.

:class:`SweepSession` owns the one sweep loop in the codebase: it pulls
candidates lazily from a :class:`repro.sweep.source.CandidateSource` (so
giant generators are never materialised), deduplicates them structurally,
drops candidates owned by other shards, skips candidates a resumed checkpoint
already holds, and drives :meth:`repro.core.engine.EvaluationEngine.
evaluate_batch` in bounded batches with the running best score threaded
through — batch boundaries therefore never change an early-termination
decision, and a resumed sweep makes exactly the pruning decisions the
uninterrupted sweep would have made.

Every outcome streams to the attached :class:`repro.sweep.sinks.ResultSink`\\ s
in candidate order before the next batch starts, so checkpoints are durable
mid-sweep.  The final :class:`SweepResult` merges live reports with
checkpoint-restored entries into one deterministic ranking.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.dataflow import Dataflow
from repro.core.engine import (
    OBJECTIVES,
    EvaluationEngine,
    arch_signature,
    dataflow_signature,
    op_signature,
)
from repro.core.metrics import PerformanceReport
from repro.errors import ExplorationError
from repro.sweep.sinks import (
    JsonlCheckpointSink,
    RankEntry,
    ResultSink,
    TopKSink,
    report_record,
)
from repro.sweep.source import CandidateSource, signature_shard_index, validate_shard

Objective = Callable[[PerformanceReport], float]


def _short_hash(text: str) -> str:
    return hashlib.blake2b(text.encode("utf-8"), digest_size=8).hexdigest()


def resolve_objective(
    objective: str | Objective,
) -> tuple[str, Objective, str | None]:
    """Resolve an objective into ``(name, score_fn, registry_key)``.

    ``registry_key`` is the :data:`~repro.core.engine.OBJECTIVES` name for
    named objectives (usable for early termination and checkpoints) and
    ``None`` for callables.  Unknown names raise eagerly.
    """
    if callable(objective):
        return getattr(objective, "__name__", "custom"), objective, None
    if objective not in OBJECTIVES:
        raise ExplorationError(
            f"unknown objective {objective!r}; available: {sorted(OBJECTIVES)}"
        )
    return objective, OBJECTIVES[objective], objective


@dataclass
class SweepResult:
    """Outcome of one sweep (the former ``ExplorationResult``, extended)."""

    objective: str
    #: Fully evaluated reports.  Empty when the sweep ran with ``top_k`` — a
    #: bounded sweep deliberately retains only the ``ranking`` entries (the
    #: JSONL checkpoint is the full record); ``evaluated_count`` always holds
    #: the true number of evaluations.
    evaluated: list[PerformanceReport] = field(default_factory=list)
    evaluated_count: int = 0
    failures: list[tuple[str, str]] = field(default_factory=list)
    #: Candidates skipped by early termination: (name, lower bound on score).
    pruned: list[tuple[str, float]] = field(default_factory=list)
    #: Structurally identical candidates skipped before evaluation.
    duplicates: int = 0
    #: Candidates restored from a resumed checkpoint instead of re-evaluated.
    skipped: int = 0
    #: Candidates owned by other shards of a ``--shard i/n`` partition.
    sharded_out: int = 0
    shard: tuple[int, int] | None = None
    #: Ranking bound of a ``top_k`` sweep (``None`` = unbounded).
    top_k: int | None = None
    batches: int = 0
    seconds: float = 0.0
    #: Live + checkpoint-restored candidates, sorted by (score, name, signature).
    #: Truncated to the ``top_k`` best when the sweep is bounded.
    ranking: list[RankEntry] = field(default_factory=list)

    @property
    def best(self) -> PerformanceReport:
        if not self.ranking:
            raise ExplorationError("no candidate dataflow could be evaluated")
        top = self.ranking[0]
        if top.report is None:
            raise ExplorationError(
                f"best candidate {top.name!r} was restored from a checkpoint; its "
                "metrics are in result.ranking[0].data"
            )
        return top.report

    @property
    def num_candidates(self) -> int:
        return (
            self.evaluated_count
            + len(self.failures)
            + len(self.pruned)
            + self.duplicates
            + self.skipped
        )

    @property
    def throughput(self) -> float:
        """Processed candidates per second (excluding resume skips)."""
        processed = self.evaluated_count + len(self.failures) + len(self.pruned)
        return processed / self.seconds if self.seconds > 0 else 0.0

    def top(self, count: int = 5) -> list[PerformanceReport]:
        entries = self.ranking[:count]
        if any(entry.report is None for entry in entries):
            raise ExplorationError(
                "top() needs live reports, but this sweep restored candidates "
                "from a checkpoint; rank with result.ranking (entry.data holds "
                "each restored candidate's metrics)"
            )
        return [entry.report for entry in entries]

    def summary(self, count: int = 5) -> str:
        extras = ""
        if self.skipped:
            extras += f", {self.skipped} resumed"
        if self.shard is not None:
            extras += (
                f"; shard {self.shard[0]}/{self.shard[1]} "
                f"({self.sharded_out} owned by other shards)"
            )
        lines = [
            f"explored {self.num_candidates} candidates in {self.seconds:.1f}s "
            f"({len(self.failures)} invalid, {len(self.pruned)} pruned, "
            f"{self.duplicates} duplicate{extras}), objective = {self.objective}",
        ]
        for rank, entry in enumerate(self.ranking[:count], start=1):
            lines.append(
                f"  {rank}. {entry.name:30s} latency={entry.data['latency_cycles']:.0f} "
                f"util={entry.data['average_pe_utilization']:.2f} "
                f"sbw={entry.data['sbw_bits_per_cycle']:.1f} bit/cycle"
            )
        return "\n".join(lines)


class SweepSession:
    """Drive one engine through a streaming, shard-aware, resumable sweep."""

    def __init__(
        self,
        engine: EvaluationEngine,
        *,
        objective: str | Objective = "latency",
        batch_size: int = 64,
        early_termination: bool = False,
        sinks: Sequence[ResultSink] | None = None,
        checkpoint: str | None = None,
        resume: bool = False,
        checkpoint_fsync: int | None = None,
        fault_injector=None,
        top_k: int | None = None,
    ):
        self.engine = engine
        self.objective_name, self.score, self.objective_key = resolve_objective(
            objective
        )
        self.batch_size = max(1, int(batch_size))
        self.early_termination = bool(early_termination)
        self.sinks: list[ResultSink] = list(sinks or [])
        #: Bounded-memory ranking: keep only the ``top_k`` best entries in
        #: memory instead of every report.  The JSONL checkpoint (when
        #: attached) remains the full per-candidate record.
        self.top_k = int(top_k) if top_k is not None else None
        if self.top_k is not None and self.top_k < 1:
            raise ExplorationError(f"top_k must be positive, got {top_k}")
        self.top_sink: TopKSink | None = None
        if self.top_k is not None:
            self.top_sink = TopKSink(self.top_k)
            self.sinks.append(self.top_sink)
        self.checkpoint_sink: JsonlCheckpointSink | None = None
        if checkpoint is not None:
            if self.objective_key is None:
                # A callable objective cannot be identity-checked across
                # processes, so resumed scores could silently mix objectives.
                raise ExplorationError(
                    "checkpointing needs a named objective (one of "
                    f"{sorted(OBJECTIVES)}); a callable objective cannot be "
                    "validated against the checkpoint on resume"
                )
            # ``checkpoint_fsync`` bounds what an OS crash can lose;
            # ``fault_injector`` lets chaos tests tear the write at byte k.
            self.checkpoint_sink = JsonlCheckpointSink(
                checkpoint,
                resume=resume,
                fsync_every=checkpoint_fsync,
                fault_injector=fault_injector,
            )
            self.sinks.append(self.checkpoint_sink)
        elif resume:
            raise ExplorationError(
                "resume=True needs a checkpoint path: without one there is "
                "nothing to resume from and the whole space would be re-swept"
            )

    # -- identity ----------------------------------------------------------------

    def meta(self, shard: tuple[int, int] | None = None) -> dict:
        """The sweep's structural identity (checkpoint header, server keys)."""
        meta = {
            "op": _short_hash(op_signature(self.engine.op)),
            "arch": _short_hash(arch_signature(self.engine.arch)),
            "objective": self.objective_name,
            # Pruned records only exist under early termination; a resume in
            # the other mode would silently skip (or re-score) them, so the
            # mode is part of the checkpoint identity.
            "early_termination": self.early_termination,
            "backend": self.engine.backend_name,
            # Informational (reports are device-invariant by contract, so
            # resume across devices is sound; sinks compare fixed keys only).
            "device": self.engine.device_name,
            "shard": list(shard) if shard is not None else None,
        }
        tuner = getattr(self.engine, "tuner", None)
        if tuner is not None:
            # Informational snapshot (decisions may still be calibrating);
            # the authoritative learned profile is the ``{"kind": "tuning"}``
            # block appended when the sweep finishes.  Sinks compare fixed
            # keys only, so untuned resumes of tuned checkpoints stay valid.
            meta["tuning"] = tuner.profile_dict()
        return meta

    # -- single-candidate convenience ---------------------------------------------

    def evaluate(self, dataflow: Dataflow) -> PerformanceReport:
        """Evaluate one candidate on the session's warm engine."""
        return self.engine.evaluate(dataflow)

    # -- the sweep loop -----------------------------------------------------------

    def run(
        self,
        candidates: CandidateSource | Iterable[Dataflow],
        *,
        shard: tuple[int, int] | None = None,
        dedupe: bool = True,
    ) -> SweepResult:
        """Stream every candidate through the engine and rank the survivors.

        Only repro modelling errors (``ModelError``/``DataflowError``/
        ``SpaceError``) mark a candidate as invalid; genuine bugs — a
        ``TypeError`` in a custom objective, ``KeyboardInterrupt`` —
        propagate to the caller.

        ``shard=(i, n)`` keeps only the candidates whose structural signature
        hashes into shard ``i`` of ``n`` (see :mod:`repro.sweep.source`); the
        ``n`` shards partition the deduplicated stream exactly.  With a
        ``checkpoint`` sink in ``resume`` mode, signatures already on disk are
        skipped and their recorded scores still seed early termination, so the
        resumed sweep replays the interrupted sweep's decisions.

        Dedupe and shard filtering run inline here (not through the
        :class:`CandidateSource` combinators) because the session reports the
        ``duplicates``/``sharded_out`` counters; both paths share
        :func:`repro.sweep.source.signature_shard_index`, so the partition
        semantics cannot drift.
        """
        started = time.perf_counter()
        if shard is not None:
            shard = validate_shard(shard)
        source = CandidateSource.wrap(candidates)
        result = SweepResult(objective=self.objective_name, shard=shard)

        opened: list[ResultSink] = []
        try:
            for sink in self.sinks:
                sink.open(self.meta(shard))
                opened.append(sink)
            restored: list[RankEntry] = []
            completed: dict[str, dict] = {}
            if self.checkpoint_sink is not None:
                completed = self.checkpoint_sink.completed
                restored = self.checkpoint_sink.restored_entries()

            best_score: float | None = None
            if self.early_termination and self.objective_key is not None and restored:
                best_score = min(entry.score for entry in restored)

            live: list[RankEntry] = []
            tuner = getattr(self.engine, "tuner", None)
            if tuner is not None:
                if (
                    self.checkpoint_sink is not None
                    and self.checkpoint_sink.restored_tuning is not None
                    and not tuner.calibrated
                ):
                    # Resume reuses the profile the interrupted sweep learned
                    # instead of re-calibrating (adopt() identity-checks it).
                    tuner.adopt(self.checkpoint_sink.restored_tuning)
                if restored:
                    # Checkpointed scores seed the best-first ranker, so the
                    # resumed remainder of the stream is ordered by predicted
                    # score and early termination prunes sooner.
                    tuner.seed_history(
                        (entry.signature, entry.score) for entry in restored
                    )

            # jobs > 1 amortises its worker pool over bigger batches; the pool
            # itself persists across batches on the engine.  With a tuner the
            # batch size follows its (possibly mid-sweep) calibration.
            def effective_batch() -> int:
                base = self.batch_size
                if tuner is not None:
                    if not tuner.calibrated:
                        # Small calibration slices so every calibration leg
                        # (e.g. both backends of the race) gets measured even
                        # on short sweeps.
                        base = min(base, tuner.calibration_batch_size)
                    elif tuner.decided_batch_size:
                        base = tuner.decided_batch_size
                return base * max(1, self.engine.jobs)

            def flush(batch: list[Dataflow]) -> None:
                nonlocal best_score
                if not batch:
                    return
                batch_result = self.engine.evaluate_batch(
                    batch,
                    objective=self.objective_key if self.early_termination else None,
                    early_termination=self.early_termination,
                    best_score=best_score,
                )
                for outcome in batch_result.outcomes:
                    score: float | None = None
                    if outcome.report is not None:
                        score = float(self.score(outcome.report))
                        if tuner is not None:
                            tuner.observe_score(outcome.signature, score)
                        result.evaluated_count += 1
                        if self.top_sink is None:
                            result.evaluated.append(outcome.report)
                            live.append(
                                RankEntry(
                                    signature=outcome.signature,
                                    name=outcome.name,
                                    score=score,
                                    data=report_record(outcome.report),
                                    report=outcome.report,
                                )
                            )
                        if best_score is None or score < best_score:
                            best_score = score
                    elif outcome.pruned:
                        result.pruned.append((outcome.name, outcome.bound))
                    elif outcome.error is not None:
                        result.failures.append((outcome.name, outcome.error))
                    for sink in self.sinks:
                        sink.emit(outcome, score)
                result.batches += 1

            def flush_window(window: list[Dataflow]) -> None:
                # Best-first: reorder the (already deduped/shard-filtered/
                # resume-filtered) window by predicted score, then evaluate it
                # in batch slices.  A pure permutation of the window — the
                # candidate *set* is untouched, so nothing is dropped or
                # duplicated and a full sweep's ranking stays bit-identical
                # tuned or untuned; only early termination bites sooner.
                if tuner is not None:
                    window = tuner.order(window)
                step = effective_batch()
                legs = tuner.remaining_calibration_legs if tuner is not None else 0
                if legs > 1:
                    # Split the window so every calibration leg (each backend
                    # of the race) gets measured even on a short sweep.
                    step = min(step, max(1, -(-len(window) // legs)))
                for start in range(0, len(window), step):
                    flush(window[start:start + step])

            pending: list[Dataflow] = []
            seen: set[str] = set()
            for dataflow in source:
                signature = dataflow_signature(dataflow)
                if dedupe:
                    if signature in seen:
                        result.duplicates += 1
                        continue
                    seen.add(signature)
                if (
                    shard is not None
                    and signature_shard_index(signature, shard[1]) != shard[0]
                ):
                    result.sharded_out += 1
                    continue
                if signature in completed:
                    result.skipped += 1
                    continue
                pending.append(dataflow)
                window_size = effective_batch()
                if tuner is not None:
                    # Accumulate several batches before ordering: best-first
                    # only helps across the window it can see.
                    window_size *= tuner.lookahead
                if len(pending) >= window_size:
                    flush_window(pending)
                    pending = []
            flush_window(pending)
            if tuner is not None and self.checkpoint_sink is not None:
                tuner.finalize()
                self.checkpoint_sink.write_tuning(tuner.profile_dict())
        finally:
            for sink in opened:
                sink.close()

        merged: dict[str, RankEntry] = {entry.signature: entry for entry in restored}
        for entry in (self.top_sink.top() if self.top_sink is not None else live):
            merged.setdefault(entry.signature, entry)
        result.ranking = sorted(merged.values(), key=lambda entry: entry.sort_key)
        if self.top_sink is not None:
            result.top_k = self.top_k
            del result.ranking[self.top_k:]
        result.evaluated.sort(key=lambda report: (self.score(report), report.dataflow))
        result.seconds = time.perf_counter() - started
        return result
