"""Pluggable result sinks for streaming sweeps.

A :class:`ResultSink` receives every candidate outcome as soon as its batch
finishes, so results are durable (or rankable) long before the sweep ends:

* :class:`TopKSink` keeps the best ``k`` candidates in memory,
* :class:`JsonlCheckpointSink` appends one JSON line per candidate and can
  *resume*: re-opening the same file skips every signature it already holds,
  and the merged ranking is bit-identical to an uninterrupted sweep.

Checkpoint files are also the shard merge format: ``load_ranking`` merges any
number of checkpoint files (e.g. one per ``--shard i/n`` machine) into the
ranking a single unsharded sweep would have produced.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Sequence

import numpy as np

from repro.core.engine import CandidateOutcome
from repro.core.metrics import PerformanceReport
from repro.errors import ExplorationError
from repro.sweep import faults as fault_hooks
from repro.sweep.faults import FaultInjector, InjectedFault

CHECKPOINT_VERSION = 1


def _json_default(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"checkpoint record field of type {type(value).__name__} is not JSON")


def report_record(report: PerformanceReport) -> dict:
    """The serialisable, wall-clock-free view of a report used for ranking.

    ``analysis_seconds`` is stripped so checkpoints (and therefore shard
    merges and resumes) are bit-identical across runs.
    """
    data = report.as_dict()
    data.pop("analysis_seconds", None)
    data["sbw_bits_per_cycle"] = report.scratchpad_bandwidth_bits()
    return data


@dataclass
class RankEntry:
    """One ranked candidate: live (``report`` set) or restored from a checkpoint."""

    signature: str
    name: str
    score: float
    data: dict
    report: PerformanceReport | None = None

    @property
    def sort_key(self) -> tuple[float, str, str]:
        # Name ties (distinct structures can share a display name) are broken
        # by the structural signature so merged rankings are reproducible.
        return (self.score, self.name, self.signature)


class ResultSink:
    """Receives streaming sweep outcomes; see :class:`repro.sweep.SweepSession`."""

    def open(self, meta: dict) -> None:
        """Called once before the first batch with the session's identity."""

    def emit(self, outcome: CandidateOutcome, score: float | None) -> None:
        """Called for every processed candidate, in stream order."""

    def close(self) -> None:
        """Called once after the last batch (also on errors)."""


class TopKSink(ResultSink):
    """Keep the best ``k`` fully evaluated candidates in memory.

    Attached by ``SweepSession(top_k=...)`` so a paper-scale sweep's memory
    stays bounded by ``k`` entries instead of one report per candidate; a
    checkpoint sink on the same session still records every outcome.
    """

    def __init__(self, k: int = 10):
        self.k = int(k)
        self.entries: list[RankEntry] = []

    def open(self, meta: dict) -> None:
        # A session can run several sweeps; each starts from an empty board.
        self.entries = []

    def emit(self, outcome: CandidateOutcome, score: float | None) -> None:
        if outcome.report is None or score is None:
            return
        entry = RankEntry(
            signature=outcome.signature,
            name=outcome.name,
            score=float(score),
            data=report_record(outcome.report),
            report=outcome.report,
        )
        self.entries.append(entry)
        self.entries.sort(key=lambda e: e.sort_key)
        del self.entries[self.k:]

    def top(self) -> list[RankEntry]:
        return list(self.entries)


class JsonlCheckpointSink(ResultSink):
    """Durable JSONL checkpoint with resume.

    The file starts with one ``meta`` line (sweep identity) followed by one
    ``result`` line per candidate, flushed as it is written, so a killed sweep
    loses at most the in-flight batch.  With ``resume=True`` an existing file
    is validated against the session's identity and every recorded signature
    is skipped by the session; a mismatched identity is an error, not a silent
    restart.

    Crash safety: the meta header of a fresh checkpoint is written to a
    temporary file and moved into place with ``os.replace``, so a crash
    mid-header leaves either no checkpoint or a complete one — never a
    headerless file the resume path must refuse.  ``fsync_every=N`` issues
    ``os.fsync`` after every ``N``-th result record (and on the header and on
    close), bounding what an OS crash — not just a process kill — can lose.
    A kill mid-record leaves a torn final line; both the resume path here and
    :func:`load_ranking` drop the fragment and the record is simply re-swept.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        resume: bool = False,
        fsync_every: int | None = None,
        fault_injector: FaultInjector | None = None,
    ):
        self.path = Path(path)
        self.resume = bool(resume)
        self.fsync_every = int(fsync_every) if fsync_every else None
        if self.fsync_every is not None and self.fsync_every < 1:
            raise ExplorationError(f"fsync_every must be positive, got {fsync_every}")
        self._faults = fault_injector
        #: signature -> checkpoint record of every candidate already processed.
        self.completed: dict[str, dict] = {}
        #: Learned tuning profile restored from the checkpoint (``None`` when
        #: the prior run was untuned); the session hands it to its tuner.
        self.restored_tuning: dict | None = None
        self._handle: IO[str] | None = None
        self._records_since_sync = 0

    def open(self, meta: dict) -> None:
        if self.resume and self.path.exists() and self.path.stat().st_size > 0:
            self.completed = self._load_completed(meta)
            self._handle = self.path.open("a", encoding="utf-8")
            # A kill mid-write can leave a torn, newline-less final line;
            # terminate it so resumed records start on their own line instead
            # of being concatenated onto (and corrupted by) the fragment.
            torn = False
            with self.path.open("rb") as raw:
                raw.seek(0, 2)
                if raw.tell() > 0:
                    raw.seek(-1, 2)
                    torn = raw.read(1) != b"\n"
            if torn:
                self._handle.write("\n")
                self._handle.flush()
        else:
            if self.path.exists() and self.path.stat().st_size > 0:
                # Never silently destroy a recorded sweep: an existing
                # checkpoint is either resumed or explicitly removed.  An
                # *empty* file is fresh either way and gets its header below.
                raise ExplorationError(
                    f"checkpoint {self.path} already exists; resume it "
                    "(resume=True / --resume) or delete it first"
                )
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic header: a crash between creating the file and writing
            # the meta line would leave a headerless checkpoint that resume
            # must refuse.  Writing header-first to a temp file and
            # os.replace-ing it in makes header presence all-or-nothing.
            header = (
                json.dumps({"kind": "meta", "version": CHECKPOINT_VERSION, **meta})
                + "\n"
            )
            tmp_path = self.path.with_name(self.path.name + ".tmp")
            with tmp_path.open("w", encoding="utf-8") as tmp:
                tmp.write(header)
                tmp.flush()
                os.fsync(tmp.fileno())
            os.replace(tmp_path, self.path)
            self._handle = self.path.open("a", encoding="utf-8")

    def _load_completed(self, meta: dict) -> dict[str, dict]:
        completed: dict[str, dict] = {}
        saw_meta = False
        with self.path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A torn final line from a killed run: everything before
                    # it is intact, so drop the fragment and resume.
                    continue
                if record.get("kind") == "meta":
                    saw_meta = True
                    # backend is deliberately not compared: reports are
                    # bit-identical across backends, so resuming on another
                    # backend is legitimate.  A shard or early-termination
                    # mismatch is not.
                    for key in ("op", "arch", "objective", "shard",
                                "early_termination"):
                        if key in meta and record.get(key) != meta[key]:
                            raise ExplorationError(
                                f"checkpoint {self.path} was written for a different "
                                f"sweep ({key}={record.get(key)!r}, expected "
                                f"{meta[key]!r}); refusing to resume"
                            )
                    tuning = record.get("tuning")
                    if isinstance(tuning, dict):
                        self.restored_tuning = tuning
                    continue
                if record.get("kind") == "tuning":
                    profile = record.get("profile")
                    if isinstance(profile, dict):
                        # Later blocks supersede earlier ones: each resumed
                        # run appends its own (possibly refined) profile.
                        self.restored_tuning = profile
                    continue
                signature = record.get("signature")
                if signature:
                    completed[signature] = record
        if not saw_meta:
            # Without a header the sweep identity cannot be validated, and a
            # signature alone does not identify the operation it was swept on.
            raise ExplorationError(
                f"checkpoint {self.path} has no meta header; it is not a sweep "
                "checkpoint (or its header was lost) — refusing to resume"
            )
        return completed

    def restored_entries(self) -> list[RankEntry]:
        """Rank entries of the fully evaluated candidates already on disk."""
        return [
            RankEntry(
                signature=record["signature"],
                name=record["name"],
                score=float(record["score"]),
                data=record["report"],
            )
            for record in self.completed.values()
            if record.get("status") == "ok"
        ]

    def emit(self, outcome: CandidateOutcome, score: float | None) -> None:
        record: dict = {
            "kind": "result",
            "signature": outcome.signature,
            "name": outcome.name,
        }
        if outcome.report is not None:
            record["status"] = "ok"
            record["score"] = float(score) if score is not None else None
            record["report"] = report_record(outcome.report)
        elif outcome.pruned:
            record["status"] = "pruned"
            record["bound"] = outcome.bound
        else:
            record["status"] = "error"
            record["error"] = outcome.error
        self._write(record)

    def write_tuning(self, profile: dict) -> None:
        """Append the learned tuning profile so a resumed sweep can reuse it.

        Its own ``{"kind": "tuning"}`` line rather than a header rewrite: the
        meta header is immutable once written (atomicity), and readers —
        :func:`load_ranking` included — skip non-``result`` kinds.
        """
        if self._handle is None:
            return
        self._write({"kind": "tuning", "profile": profile})

    def _write(self, record: dict) -> None:
        assert self._handle is not None, "sink used before open()"
        line = json.dumps(record, default=_json_default) + "\n"
        spec = fault_hooks.apply("sink.write", self._faults)
        if spec is not None and spec.kind == "truncate":
            # Simulate a crash k bytes into this record's write: persist only
            # the torn prefix, then die.  k == len(line) means the record made
            # it to disk and the crash hit just after.
            torn = line[: min(int(spec.arg or 0), len(line))]
            self._handle.write(torn)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            raise InjectedFault(
                f"injected crash: checkpoint write torn after {len(torn)} byte(s)"
            )
        self._handle.write(line)
        self._handle.flush()
        if self.fsync_every is not None:
            self._records_since_sync += 1
            if self._records_since_sync >= self.fsync_every:
                os.fsync(self._handle.fileno())
                self._records_since_sync = 0

    def close(self) -> None:
        if self._handle is not None:
            if self.fsync_every is not None:
                try:
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                except OSError:
                    pass
            self._handle.close()
            self._handle = None


def clone_checkpoint(source: str | Path, dest: str | Path) -> int:
    """Copy a (possibly still-live) checkpoint's complete lines to ``dest``.

    Work stealing: the coordinator clones a revoked lease's checkpoint — whose
    original writer may be slow rather than dead, and still appending — into a
    fresh *generation* file, so the re-issued lease resumes from a file with
    exactly one writer.  Everything past the last newline is trimmed (complete
    lines only), mirroring the torn-line tolerance of the resume path, and the
    clone lands atomically (tmp + ``os.replace``) so a crashed steal leaves no
    half-copied checkpoint.

    Returns the number of result records cloned; a missing source — a lease
    that died before its header — clones nothing and returns 0 (resuming the
    absent file is then simply a fresh sweep).
    """
    source, dest = Path(source), Path(dest)
    try:
        data = source.read_bytes()
    except FileNotFoundError:
        return 0
    data = data[: data.rfind(b"\n") + 1]
    if not data:
        return 0
    records = 0
    for line in data.splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and record.get("kind") == "result":
            records += 1
    tmp_path = dest.with_name(dest.name + ".tmp")
    tmp_path.write_bytes(data)
    os.replace(tmp_path, dest)
    return records


def load_ranking(paths: Sequence[str | Path] | str | Path) -> list[RankEntry]:
    """Merge checkpoint files into one ranking, bit-identical to an unsharded run.

    Accepts any number of checkpoint files (shard halves, resumed files); the
    first record wins for a repeated signature.  Only fully evaluated
    candidates rank — pruned and invalid candidates carry no score.  Files
    whose meta headers disagree on (op, arch, objective) refuse to merge:
    their scores are incomparable, so a ranking across them would be
    meaningless (shard and backend may differ freely).
    """
    if isinstance(paths, (str, Path)):
        paths = [paths]
    entries: dict[str, RankEntry] = {}
    identity: tuple | None = None
    for path in paths:
        saw_meta = False
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A torn final line from a killed run; every record before
                    # it is intact (the sink flushes line by line).
                    continue
                if record.get("kind") == "meta":
                    saw_meta = True
                    # early_termination is identity too: a pruned-mode shard
                    # is missing candidates a full-mode shard ranks.
                    this = tuple(
                        record.get(k)
                        for k in ("op", "arch", "objective", "early_termination")
                    )
                    if identity is None:
                        identity = this
                    elif this != identity:
                        raise ExplorationError(
                            f"checkpoint {path} belongs to a different sweep "
                            f"(op/arch/objective/early_termination {this} vs "
                            f"{identity}); its scores are not comparable — "
                            "merge only shards of one sweep"
                        )
                    continue
                if not saw_meta:
                    # Signatures identify dataflows, not operations: without a
                    # validated header, records from different sweeps would
                    # silently collide and dedupe into a corrupt ranking.
                    raise ExplorationError(
                        f"checkpoint {path} has no meta header before its "
                        "records; it is not a sweep checkpoint"
                    )
                if record.get("kind") != "result" or record.get("status") != "ok":
                    continue
                signature = record["signature"]
                if signature not in entries:
                    entries[signature] = RankEntry(
                        signature=signature,
                        name=record["name"],
                        score=float(record["score"]),
                        data=record["report"],
                    )
    return sorted(entries.values(), key=lambda e: e.sort_key)


def render_ranking(entries: Iterable[RankEntry], *, top: int | None = None) -> str:
    """Stable text rendering of a ranking (the shard-merge comparison format)."""
    lines = []
    for rank, entry in enumerate(entries, start=1):
        if top is not None and rank > top:
            break
        lines.append(
            f"{rank}. {entry.name} score={entry.score!r} "
            f"latency={entry.data['latency_cycles']!r} signature={entry.signature}"
        )
    return "\n".join(lines)
