"""Composable, lazily-enumerated candidate streams.

A :class:`CandidateSource` wraps a *re-iterable* stream of candidate
dataflows.  Sources compose without materialising the stream:

* :meth:`CandidateSource.limit` caps the number of candidates,
* :meth:`CandidateSource.chain` concatenates sources,
* :meth:`CandidateSource.dedupe` drops structural duplicates
  (same :func:`repro.core.engine.dataflow_signature`), and
* :meth:`CandidateSource.shard` keeps the deterministic ``index``-th of
  ``count`` partitions.

Sharding hashes the candidate's *structural signature* with a stable digest
(:func:`signature_shard_index`), so ``N`` machines enumerating the same space
partition it with **no coordination**: every candidate lands in exactly one
shard, on every machine, in every process, across Python versions (unlike the
built-in ``hash``, which is salted per process).  Because the shard of a
candidate depends only on its signature, ``dedupe`` and ``shard`` commute:
structural duplicates always land in the same shard.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Callable, Iterable, Iterator

from repro.core.dataflow import Dataflow
from repro.core.engine import dataflow_signature
from repro.errors import ExplorationError


def signature_shard_index(signature: str, count: int) -> int:
    """Deterministic shard of a candidate signature, stable across processes.

    The first 8 bytes of the BLAKE2b digest of the signature, reduced modulo
    ``count``.  Process-portable by construction, matching the structural
    memo/cache keys of the engine.
    """
    digest = hashlib.blake2b(signature.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % count


def parse_shard(text: str) -> tuple[int, int]:
    """Parse an ``"i/n"`` shard selector into a validated ``(index, count)``."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ExplorationError(
            f"invalid shard selector {text!r}; expected 'index/count', e.g. '0/2'"
        ) from None
    return validate_shard((index, count))


def validate_shard(shard: tuple[int, int]) -> tuple[int, int]:
    index, count = int(shard[0]), int(shard[1])
    if count < 1 or not 0 <= index < count:
        raise ExplorationError(
            f"invalid shard {index}/{count}: need count >= 1 and 0 <= index < count"
        )
    return index, count


class CandidateSource:
    """A named, re-iterable stream of candidate dataflows.

    ``factory`` is called once per iteration, so a source built from a
    generator *function* can be swept several times (resume, repeated
    serving requests); a source built from a one-shot generator object can
    only be swept once.
    """

    def __init__(self, factory: Callable[[], Iterable[Dataflow]], *, name: str = "candidates"):
        self._factory = factory
        self.name = name

    @classmethod
    def wrap(cls, candidates: "CandidateSource | Iterable[Dataflow]") -> "CandidateSource":
        """Coerce any iterable of dataflows (or a source) into a source."""
        if isinstance(candidates, CandidateSource):
            return candidates
        if isinstance(candidates, (list, tuple)):
            return cls(lambda: candidates, name="list")
        # A one-shot iterator: iterable exactly once, which a single sweep is
        # fine with; re-running the sweep needs a factory-backed source.
        return cls(lambda: candidates, name="iterator")

    def __iter__(self) -> Iterator[Dataflow]:
        return iter(self._factory())

    # -- combinators -----------------------------------------------------------

    def limit(self, count: int) -> "CandidateSource":
        """At most the first ``count`` candidates of this source."""
        return CandidateSource(
            lambda: itertools.islice(self, count), name=f"{self.name}[:{count}]"
        )

    def chain(self, *others: "CandidateSource | Iterable[Dataflow]") -> "CandidateSource":
        """This source followed by ``others``, lazily."""
        sources = [self] + [CandidateSource.wrap(other) for other in others]
        return CandidateSource(
            lambda: itertools.chain.from_iterable(sources),
            name="+".join(source.name for source in sources),
        )

    def dedupe(self) -> "CandidateSource":
        """Drop candidates whose structural signature was already seen."""

        def generate() -> Iterator[Dataflow]:
            seen: set[str] = set()
            for dataflow in self:
                signature = dataflow_signature(dataflow)
                if signature in seen:
                    continue
                seen.add(signature)
                yield dataflow

        return CandidateSource(generate, name=f"{self.name}.dedupe")

    def shard(self, index: int, count: int) -> "CandidateSource":
        """The deterministic ``index``-th of ``count`` signature-hash partitions."""
        index, count = validate_shard((index, count))
        if count == 1:
            return self

        def generate() -> Iterator[Dataflow]:
            for dataflow in self:
                if signature_shard_index(dataflow_signature(dataflow), count) == index:
                    yield dataflow

        return CandidateSource(generate, name=f"{self.name}.shard({index}/{count})")
