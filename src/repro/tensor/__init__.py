"""Tensor-operation frontend: loop-nest IR and kernel factories.

A :class:`~repro.tensor.operation.TensorOp` bundles the pieces Section II-B of
the paper defines for a perfectly-nested single-statement loop:

* the **iteration domain** ``D_S`` as an :class:`repro.isl.IntSet`, and
* one **access function** ``A_{S,F} = { S[n] -> F[f] }`` per tensor reference.

Operations can be built three ways: through the kernel factories in
:mod:`repro.tensor.kernels` (GEMM, 2D-CONV, MTTKRP, MMc, Jacobi-2D, 1D-CONV),
by parsing a C-like loop nest (:mod:`repro.tensor.c_frontend`, the "tensor
operation written in C" input of Figure 2), or from an einsum-like statement
string (:mod:`repro.tensor.einsum_frontend`).
"""

from repro.tensor.access import AccessMode, TensorAccess
from repro.tensor.operation import TensorOp
from repro.tensor.kernels import (
    conv1d,
    conv2d,
    gemm,
    jacobi2d,
    mmc,
    mttkrp,
)
from repro.tensor.c_frontend import parse_c_loop_nest
from repro.tensor.einsum_frontend import parse_einsum

__all__ = [
    "AccessMode",
    "TensorAccess",
    "TensorOp",
    "gemm",
    "conv1d",
    "conv2d",
    "mttkrp",
    "mmc",
    "jacobi2d",
    "parse_c_loop_nest",
    "parse_einsum",
]
