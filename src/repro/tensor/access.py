"""Tensor access functions.

An access function relates loop instances to the tensor elements they touch
(Equation 1 of the paper): ``A_{S,F} = { S[n] -> F[f] }``.  A statement may
reference the same tensor several times (Jacobi-2D reads ``A`` five times);
each reference is one :class:`TensorAccess`, and the union of a tensor's
references forms its full access relation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isl.imap import IntMap


class AccessMode(enum.Enum):
    """How a reference touches the tensor."""

    READ = "read"
    WRITE = "write"
    #: Read-modify-write, e.g. the accumulation ``Y[i,j] += ...``.
    UPDATE = "update"

    @property
    def reads(self) -> bool:
        return self in (AccessMode.READ, AccessMode.UPDATE)

    @property
    def writes(self) -> bool:
        return self in (AccessMode.WRITE, AccessMode.UPDATE)


@dataclass(frozen=True)
class TensorAccess:
    """One textual reference to a tensor inside the statement."""

    tensor: str
    mode: AccessMode
    relation: IntMap

    def __post_init__(self):
        if not self.relation.is_functional:
            raise ValueError(
                f"access function for tensor {self.tensor!r} must be a functional map"
            )

    @property
    def rank(self) -> int:
        """Rank of the accessed tensor."""
        return self.relation.out_space.rank

    def __str__(self) -> str:
        return f"{self.mode.value}: {self.relation}"
