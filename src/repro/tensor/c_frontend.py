"""A small C-like loop-nest frontend.

Figure 2 shows TENET taking "a tensor operation written in C" as input.  This
module parses the subset the paper relies on: a perfectly-nested ``for`` loop
with constant bounds and unit step, wrapping a single update or assignment
statement whose subscripts are affine in the iterators, e.g.::

    for (i = 0; i < 64; i++)
      for (j = 0; j < 64; j++)
        for (k = 0; k < 64; k++)
          Y[i][j] += A[i][k] * B[k][j];

Both ``Y[i][j]`` and ``Y[i, j]`` subscript styles are accepted.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.isl.iset import IntSet
from repro.isl.parser import parse_expr
from repro.isl.imap import IntMap
from repro.isl.space import Space
from repro.tensor.access import AccessMode, TensorAccess
from repro.tensor.operation import TensorOp

_FOR_RE = re.compile(
    r"for\s*\(\s*(?:int\s+)?(?P<var>[A-Za-z_]\w*)\s*=\s*(?P<lo>-?\d+)\s*;"
    r"\s*(?P=var)\s*(?P<cmp><=|<)\s*(?P<hi>-?\d+)\s*;"
    r"\s*(?:(?P=var)\s*\+\+|\+\+\s*(?P=var)|(?P=var)\s*\+=\s*1)\s*\)"
)

_STMT_RE = re.compile(
    r"^(?P<lhs>[A-Za-z_]\w*\s*(?:\[[^\]]+\])+)\s*(?P<op>\+=|=)\s*(?P<rhs>.+?);?$"
)

_REF_RE = re.compile(r"(?P<tensor>[A-Za-z_]\w*)\s*(?P<subs>(?:\[[^\]]+\])+)")


def _split_subscripts(subscript_text: str) -> list[str]:
    """Split ``[i][j+1]`` or ``[i, j+1]`` into individual index expressions."""
    groups = re.findall(r"\[([^\]]*)\]", subscript_text)
    indices: list[str] = []
    for group in groups:
        indices.extend(part.strip() for part in group.split(","))
    return [index for index in indices if index]


def parse_c_loop_nest(source: str, name: str = "kernel") -> TensorOp:
    """Parse a C-like perfectly-nested loop into a :class:`TensorOp`."""
    text = source.strip()
    if not text:
        raise ParseError("empty loop nest")

    loops: list[tuple[str, int, int]] = []
    position = 0
    while True:
        match = _FOR_RE.search(text, position)
        if not match:
            break
        lo = int(match.group("lo"))
        hi = int(match.group("hi"))
        if match.group("cmp") == "<=":
            hi += 1
        loops.append((match.group("var"), lo, hi))
        position = match.end()
    if not loops:
        raise ParseError("no for-loops found in the loop nest")

    statement_text = text[position:]
    # Drop braces and labels such as "S:"
    statement_text = statement_text.replace("{", " ").replace("}", " ")
    statement_text = re.sub(r"^\s*[A-Za-z_]\w*\s*:", "", statement_text.strip())
    statement_text = " ".join(statement_text.split())
    match = _STMT_RE.match(statement_text)
    if not match:
        raise ParseError(f"cannot parse statement {statement_text!r}")

    iterators = [loop[0] for loop in loops]
    if len(set(iterators)) != len(iterators):
        raise ParseError("loop iterators must be distinct")
    space = Space("S", iterators)
    domain = IntSet.box(space, {var: (lo, hi) for var, lo, hi in loops})

    accesses: list[TensorAccess] = []

    def add_reference(tensor: str, subscripts: str, mode: AccessMode) -> None:
        exprs = []
        for index_text in _split_subscripts(subscripts):
            expr = parse_expr(index_text)
            unknown = expr.variables() - set(iterators)
            if unknown:
                raise ParseError(
                    f"subscript {index_text!r} of {tensor} uses unknown names {sorted(unknown)}"
                )
            exprs.append(expr)
        relation = IntMap.from_exprs(space, tensor, exprs, domain=domain)
        accesses.append(TensorAccess(tensor, mode, relation))

    lhs_match = _REF_RE.match(match.group("lhs").strip())
    if not lhs_match:
        raise ParseError(f"cannot parse left-hand side {match.group('lhs')!r}")
    lhs_mode = AccessMode.UPDATE if match.group("op") == "+=" else AccessMode.WRITE
    add_reference(lhs_match.group("tensor"), lhs_match.group("subs"), lhs_mode)

    for ref in _REF_RE.finditer(match.group("rhs")):
        add_reference(ref.group("tensor"), ref.group("subs"), AccessMode.READ)

    if len(accesses) < 2:
        raise ParseError("statement must reference at least one input tensor")
    return TensorOp(name, domain, accesses)
