"""An einsum-like statement frontend.

Accepts statements such as ``"Y[i,j] += A[i,k] * B[k,j]"`` together with the
loop extents, and produces the same :class:`~repro.tensor.operation.TensorOp`
IR as the kernel factories.  Subscripts may be affine expressions of the
iterators (``A[i+j]``), so the skewed 1-D convolution of Figure 1 is
expressible directly.
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.errors import ParseError
from repro.isl.imap import IntMap
from repro.isl.iset import IntSet
from repro.isl.parser import parse_expr
from repro.isl.space import Space
from repro.tensor.access import AccessMode, TensorAccess
from repro.tensor.operation import TensorOp

_STATEMENT_RE = re.compile(
    r"^(?P<lhs>[A-Za-z_]\w*\s*\[[^\]]*\])\s*(?P<op>\+=|=)\s*(?P<rhs>.+)$"
)

_REF_RE = re.compile(r"(?P<tensor>[A-Za-z_]\w*)\s*\[(?P<subs>[^\]]*)\]")


def parse_einsum(
    statement: str,
    sizes: Mapping[str, int],
    name: str = "einsum",
) -> TensorOp:
    """Build a :class:`TensorOp` from an einsum-like statement string.

    Parameters
    ----------
    statement:
        e.g. ``"Y[i,j] += A[i,k] * B[k,j]"``.
    sizes:
        Extent of every loop iterator, e.g. ``{"i": 64, "j": 64, "k": 64}``.
        Iterators are ordered as given by this mapping (outermost first).
    """
    text = " ".join(statement.split())
    match = _STATEMENT_RE.match(text)
    if not match:
        raise ParseError(f"cannot parse einsum statement {statement!r}")

    iterators = list(sizes)
    space = Space("S", iterators)
    domain = IntSet.box(space, {dim: (0, int(extent)) for dim, extent in sizes.items()})

    accesses: list[TensorAccess] = []

    def add_reference(tensor: str, subscripts: str, mode: AccessMode) -> None:
        exprs = []
        for part in subscripts.split(","):
            part = part.strip()
            if not part:
                continue
            expr = parse_expr(part)
            unknown = expr.variables() - set(iterators)
            if unknown:
                raise ParseError(
                    f"subscript {part!r} of {tensor} uses iterators {sorted(unknown)} "
                    f"that have no declared size"
                )
            exprs.append(expr)
        if not exprs:
            raise ParseError(f"tensor {tensor} has an empty subscript list")
        relation = IntMap.from_exprs(space, tensor, exprs, domain=domain)
        accesses.append(TensorAccess(tensor, mode, relation))

    lhs_ref = _REF_RE.match(match.group("lhs").strip())
    if not lhs_ref:
        raise ParseError(f"cannot parse output reference {match.group('lhs')!r}")
    lhs_mode = AccessMode.UPDATE if match.group("op") == "+=" else AccessMode.WRITE
    add_reference(lhs_ref.group("tensor"), lhs_ref.group("subs"), lhs_mode)

    rhs_refs = list(_REF_RE.finditer(match.group("rhs")))
    if not rhs_refs:
        raise ParseError(f"no tensor references found in {match.group('rhs')!r}")
    for ref in rhs_refs:
        add_reference(ref.group("tensor"), ref.group("subs"), AccessMode.READ)

    return TensorOp(name, domain, accesses)
