"""Factories for the tensor kernels used in the paper's evaluation.

Section VI-A evaluates five kernels::

    2D-CONV   Y(k,ox,oy)   = A(c, ox+rx, oy+ry) * B(k,c,rx,ry)
    GEMM      Y(i,j)       = A(i,k)   * B(k,j)
    MTTKRP    Y(i,j)       = A(i,k,l) * B(k,j) * C(l,j)
    MMc       Y(i,j)       = A(i,k)   * B(k,l) * C(l,j)
    Jacobi-2D Y(i,j)       = (A(i,j)+A(i-1,j)+A(i,j-1)+A(i+1,j)+A(i,j+1)) / 5

plus the 1D convolution of Figure 1 (``Y[i] += A[i+j] * B[j]``) that motivates
the reuse-accuracy discussion.  Every factory returns a
:class:`~repro.tensor.operation.TensorOp` with explicit loop bounds.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.isl.expr import AffExpr, var
from repro.isl.imap import IntMap
from repro.isl.iset import IntSet
from repro.isl.space import Space
from repro.tensor.access import AccessMode, TensorAccess
from repro.tensor.operation import TensorOp


def _domain(name: str, dims: Sequence[str], sizes: Sequence[int]) -> IntSet:
    return IntSet.from_sizes("S", dims, sizes)


def _access(domain: IntSet, tensor: str, mode: AccessMode, exprs: Sequence[AffExpr]) -> TensorAccess:
    relation = IntMap.from_exprs(domain.space, tensor, exprs, domain=domain)
    return TensorAccess(tensor, mode, relation)


def gemm(size_i: int, size_j: int, size_k: int, name: str = "GEMM") -> TensorOp:
    """``Y[i,j] += A[i,k] * B[k,j]`` with loop order ``(i, j, k)``."""
    domain = _domain(name, ["i", "j", "k"], [size_i, size_j, size_k])
    i, j, k = var("i"), var("j"), var("k")
    return TensorOp(
        name,
        domain,
        [
            _access(domain, "A", AccessMode.READ, [i, k]),
            _access(domain, "B", AccessMode.READ, [k, j]),
            _access(domain, "Y", AccessMode.UPDATE, [i, j]),
        ],
    )


def conv1d(size_ox: int, size_rx: int, name: str = "CONV1D") -> TensorOp:
    """The 1-D convolution of Figure 1: ``Y[i] += A[i+j] * B[j]``."""
    domain = _domain(name, ["i", "j"], [size_ox, size_rx])
    i, j = var("i"), var("j")
    return TensorOp(
        name,
        domain,
        [
            _access(domain, "A", AccessMode.READ, [i + j]),
            _access(domain, "B", AccessMode.READ, [j]),
            _access(domain, "Y", AccessMode.UPDATE, [i]),
        ],
    )


def conv2d(
    size_k: int,
    size_c: int,
    size_ox: int,
    size_oy: int,
    size_rx: int,
    size_ry: int,
    stride: int = 1,
    name: str = "CONV2D",
) -> TensorOp:
    """``Y[k,ox,oy] += A[c, ox*stride+rx, oy*stride+ry] * B[k,c,rx,ry]``.

    Loop order follows the paper's 6-deep nest ``(k, c, ox, oy, rx, ry)``;
    ``A`` is the input feature map, ``B`` the filter, ``Y`` the output.
    """
    domain = _domain(name, ["k", "c", "ox", "oy", "rx", "ry"],
                     [size_k, size_c, size_ox, size_oy, size_rx, size_ry])
    k, c, ox, oy, rx, ry = (var(d) for d in ["k", "c", "ox", "oy", "rx", "ry"])
    return TensorOp(
        name,
        domain,
        [
            _access(domain, "A", AccessMode.READ, [c, ox * stride + rx, oy * stride + ry]),
            _access(domain, "B", AccessMode.READ, [k, c, rx, ry]),
            _access(domain, "Y", AccessMode.UPDATE, [k, ox, oy]),
        ],
    )


def depthwise_conv2d(
    size_c: int,
    size_ox: int,
    size_oy: int,
    size_rx: int,
    size_ry: int,
    stride: int = 1,
    name: str = "DW-CONV2D",
) -> TensorOp:
    """Depthwise convolution (MobileNet): each input channel produces one output channel."""
    domain = _domain(name, ["c", "ox", "oy", "rx", "ry"],
                     [size_c, size_ox, size_oy, size_rx, size_ry])
    c, ox, oy, rx, ry = (var(d) for d in ["c", "ox", "oy", "rx", "ry"])
    return TensorOp(
        name,
        domain,
        [
            _access(domain, "A", AccessMode.READ, [c, ox * stride + rx, oy * stride + ry]),
            _access(domain, "B", AccessMode.READ, [c, rx, ry]),
            _access(domain, "Y", AccessMode.UPDATE, [c, ox, oy]),
        ],
    )


def mttkrp(size_i: int, size_j: int, size_k: int, size_l: int, name: str = "MTTKRP") -> TensorOp:
    """``Y[i,j] += A[i,k,l] * B[k,j] * C[l,j]`` (matricised tensor times Khatri-Rao product)."""
    domain = _domain(name, ["i", "j", "k", "l"], [size_i, size_j, size_k, size_l])
    i, j, k, l = (var(d) for d in ["i", "j", "k", "l"])
    return TensorOp(
        name,
        domain,
        [
            _access(domain, "A", AccessMode.READ, [i, k, l]),
            _access(domain, "B", AccessMode.READ, [k, j]),
            _access(domain, "C", AccessMode.READ, [l, j]),
            _access(domain, "Y", AccessMode.UPDATE, [i, j]),
        ],
    )


def mmc(size_i: int, size_j: int, size_k: int, size_l: int, name: str = "MMc") -> TensorOp:
    """``Y[i,j] += A[i,k] * B[k,l] * C[l,j]`` (matrix-multiplication chain)."""
    domain = _domain(name, ["i", "j", "k", "l"], [size_i, size_j, size_k, size_l])
    i, j, k, l = (var(d) for d in ["i", "j", "k", "l"])
    return TensorOp(
        name,
        domain,
        [
            _access(domain, "A", AccessMode.READ, [i, k]),
            _access(domain, "B", AccessMode.READ, [k, l]),
            _access(domain, "C", AccessMode.READ, [l, j]),
            _access(domain, "Y", AccessMode.UPDATE, [i, j]),
        ],
    )


def jacobi2d(size_i: int, size_j: int, name: str = "Jacobi2D") -> TensorOp:
    """Five-point 2-D stencil over the interior of a ``size_i x size_j`` grid."""
    space = Space("S", ["i", "j"])
    domain = IntSet.box(space, {"i": (1, size_i - 1), "j": (1, size_j - 1)})
    i, j = var("i"), var("j")
    reads = [
        [i, j],
        [i - 1, j],
        [i, j - 1],
        [i + 1, j],
        [i, j + 1],
    ]
    accesses = [_access(domain, "A", AccessMode.READ, exprs) for exprs in reads]
    accesses.append(_access(domain, "Y", AccessMode.WRITE, [i, j]))
    return TensorOp(name, domain, accesses)


_FACTORIES = {
    "gemm": gemm,
    "conv1d": conv1d,
    "conv2d": conv2d,
    "depthwise_conv2d": depthwise_conv2d,
    "mttkrp": mttkrp,
    "mmc": mmc,
    "jacobi2d": jacobi2d,
}


def make_kernel(kind: str, sizes: Mapping[str, int] | Sequence[int], **kwargs) -> TensorOp:
    """Build a kernel by name; ``sizes`` may be positional or keyword based."""
    kind = kind.lower()
    if kind not in _FACTORIES:
        raise KeyError(f"unknown kernel {kind!r}; available: {sorted(_FACTORIES)}")
    factory = _FACTORIES[kind]
    if isinstance(sizes, Mapping):
        return factory(**sizes, **kwargs)
    return factory(*sizes, **kwargs)
