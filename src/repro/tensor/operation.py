"""The loop-nest IR: a single-statement, perfectly-nested tensor operation."""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro.errors import SpaceError
from repro.isl.enumeration import encode_rows
from repro.isl.imap import IntMap
from repro.isl.iset import IntSet
from repro.isl.union import UnionMap
from repro.tensor.access import AccessMode, TensorAccess


@dataclass
class TensorOp:
    """A tensor operation: iteration domain plus per-tensor access functions.

    This is the program input of Figure 2 — TENET supports tensor applications
    with perfectly-nested loops and a single unconditional statement
    (Section II-B), which covers every benchmark in the evaluation.
    """

    name: str
    domain: IntSet
    accesses: list[TensorAccess] = field(default_factory=list)

    def __post_init__(self):
        for access in self.accesses:
            if access.relation.in_space.dims != self.domain.space.dims:
                raise SpaceError(
                    f"access {access} of {self.name} does not match iteration space "
                    f"{self.domain.space}"
                )

    # -- structural queries ----------------------------------------------------

    @property
    def loop_dims(self) -> tuple[str, ...]:
        """Names of the loop iterators, outermost first."""
        return self.domain.space.dims

    def loop_sizes(self) -> dict[str, int]:
        """Extent of every loop dimension."""
        bounds = self.domain.derived_bounds()
        return {dim: hi - lo for dim, (lo, hi) in bounds.items()}

    def num_instances(self) -> int:
        """Number of loop instances, i.e. ``sum(D_S)``; equals the MAC count."""
        return self.domain.count()

    macs = num_instances

    @property
    def tensor_names(self) -> tuple[str, ...]:
        seen: list[str] = []
        for access in self.accesses:
            if access.tensor not in seen:
                seen.append(access.tensor)
        return tuple(seen)

    @property
    def input_tensors(self) -> tuple[str, ...]:
        """Tensors that are only read (pure inputs)."""
        return tuple(
            name for name in self.tensor_names
            if all(a.mode is AccessMode.READ for a in self.accesses_to(name))
        )

    @property
    def output_tensors(self) -> tuple[str, ...]:
        """Tensors that are written or updated."""
        return tuple(
            name for name in self.tensor_names
            if any(a.mode.writes for a in self.accesses_to(name))
        )

    def accesses_to(self, tensor: str) -> list[TensorAccess]:
        found = [a for a in self.accesses if a.tensor == tensor]
        if not found:
            raise SpaceError(f"operation {self.name!r} has no tensor named {tensor!r}")
        return found

    def access_relation(self, tensor: str) -> UnionMap:
        """The full access relation ``A_{S,F}`` of one tensor (union of references)."""
        return UnionMap([a.relation for a in self.accesses_to(tensor)])

    def access_maps(self, tensor: str) -> list[IntMap]:
        return [a.relation for a in self.accesses_to(tensor)]

    # -- data-size queries ------------------------------------------------------

    def tensor_rank(self, tensor: str) -> int:
        return self.accesses_to(tensor)[0].rank

    def tensor_footprint(self, tensor: str, chunk_size: int = 1 << 20) -> int:
        """Number of distinct elements of ``tensor`` touched by the operation.

        Computed by streaming the iteration domain, applying every access
        function of the tensor, and counting distinct images (chunk-safe).
        """
        accesses = self.accesses_to(tensor)
        inclusive = {
            dim: (lo, hi - 1) for dim, (lo, hi) in self.domain.derived_bounds().items()
        }
        bounds_per_col = None
        for access in accesses:
            cols = []
            for expr in access.relation.out_exprs:
                lo, hi = expr.bounds(inclusive)
                cols.append((lo, hi + 1))
            if bounds_per_col is None:
                bounds_per_col = cols
            else:
                bounds_per_col = [
                    (min(a[0], b[0]), max(a[1], b[1])) for a, b in zip(bounds_per_col, cols)
                ]
        seen: set[int] = set()
        for chunk in self.domain.chunks(chunk_size):
            for access in accesses:
                image = access.relation.image_array(chunk)
                keys = encode_rows(image, bounds_per_col)
                seen.update(np.unique(keys).tolist())
        return len(seen)

    def total_accesses(self, tensor: str) -> int:
        """Number of (instance, element) access pairs for one tensor."""
        return self.num_instances() * len(self.accesses_to(tensor))

    # -- rewriting ----------------------------------------------------------------

    def with_domain(self, domain: IntSet) -> "TensorOp":
        """Return a copy of the operation over a different iteration domain.

        The new domain must use the same iteration-space dimensions; this is
        how scaled-down workloads are produced (``repro.workloads.scaling``).
        """
        if domain.space.dims != self.domain.space.dims:
            raise SpaceError(
                f"replacement domain {domain.space} does not match {self.domain.space}"
            )
        return TensorOp(self.name, domain, list(self.accesses))

    def instances_array(self) -> np.ndarray:
        """All loop instances as an ``(N, rank)`` array (for small domains only)."""
        return self.domain.points_array()

    def instances_chunks(self, chunk_size: int = 1 << 20):
        """Stream loop instances as chunks of per-dimension arrays."""
        return self.domain.chunks(chunk_size)

    # -- formatting -----------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [f"TensorOp {self.name}: domain {self.domain}"]
        for access in self.accesses:
            lines.append(f"  {access}")
        return "\n".join(lines)

    def __str__(self) -> str:
        sizes = "x".join(str(size) for size in self.loop_sizes().values())
        return f"{self.name}[{sizes}]"
