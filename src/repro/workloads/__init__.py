"""Real-world workloads used in the evaluation (Table IV and Section VI-E).

* AlexNet and VGG16 — layer tables for the Figure 11/12 accuracy studies.
* GoogLeNet and MobileNet — layer tables for Figures 7 and 12.
* ALS (MTTKRP) and Transformer (MMc) — the non-DNN applications of Table IV.

Layer configurations use the published network dimensions.  Because this
reproduction analyses dataflows by exact enumeration, the largest layers are
scaled down with :mod:`repro.workloads.scaling` before analysis; the scaling
preserves the dimensions that drive each reuse pattern and every experiment
records the factor it applied.
"""

from repro.workloads.dnn import ConvLayer, GemmLayer, MmcLayer, MttkrpLayer, Workload
from repro.workloads.alexnet import alexnet
from repro.workloads.vgg16 import vgg16
from repro.workloads.googlenet import googlenet
from repro.workloads.mobilenet import mobilenet
from repro.workloads.als import als
from repro.workloads.transformer import transformer
from repro.workloads.scaling import scale_layer, scale_sizes, scaled_op

__all__ = [
    "ConvLayer",
    "GemmLayer",
    "MttkrpLayer",
    "MmcLayer",
    "Workload",
    "alexnet",
    "vgg16",
    "googlenet",
    "mobilenet",
    "als",
    "transformer",
    "scale_layer",
    "scale_sizes",
    "scaled_op",
]
