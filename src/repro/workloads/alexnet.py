"""AlexNet convolutional layers (used by the Eyeriss accuracy study, Fig. 11/12)."""

from __future__ import annotations

from repro.workloads.dnn import ConvLayer, Workload


def alexnet() -> Workload:
    """The five convolutional layers of AlexNet (grouped convolutions use the per-group C)."""
    return Workload(
        name="AlexNet",
        domain="Deep learning",
        layers=[
            ConvLayer("CONV1", out_channels=96, in_channels=3, out_x=55, out_y=55,
                      filter_x=11, filter_y=11, stride=4),
            ConvLayer("CONV2", out_channels=256, in_channels=48, out_x=27, out_y=27,
                      filter_x=5, filter_y=5),
            ConvLayer("CONV3", out_channels=384, in_channels=256, out_x=13, out_y=13,
                      filter_x=3, filter_y=3),
            ConvLayer("CONV4", out_channels=384, in_channels=192, out_x=13, out_y=13,
                      filter_x=3, filter_y=3),
            ConvLayer("CONV5", out_channels=256, in_channels=192, out_x=13, out_y=13,
                      filter_x=3, filter_y=3),
        ],
    )
