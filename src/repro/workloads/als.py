"""Alternating least squares (ALS) workload: MTTKRP on the Netflix-scale tensor.

Table IV lists a 480K x 18K x 2K rating tensor; its MTTKRP against rank-32
factor matrices is the bottleneck operation.  The full operation is far beyond
exact enumeration, so experiments analyse a scaled slice (the paper normalises
its results to the ideal latency, which the scaling preserves).
"""

from __future__ import annotations

from repro.workloads.dnn import MttkrpLayer, Workload

#: Factorisation rank used by the evaluation (the ``j`` dimension).
ALS_RANK = 32


def als(full_scale: bool = False) -> Workload:
    """The ALS workload; ``full_scale=True`` returns the 480K x 18K x 2K sizes."""
    if full_scale:
        layers = [
            MttkrpLayer("MTTKRP-full", size_i=480_000, size_j=ALS_RANK,
                        size_k=18_000, size_l=2_000),
        ]
    else:
        layers = [
            MttkrpLayer("MTTKRP-slice", size_i=480, size_j=ALS_RANK, size_k=180, size_l=20),
        ]
    return Workload(name="ALS", domain="Matrix factorisation", layers=layers)
