"""Layer and workload descriptions."""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.tensor.kernels import conv2d, depthwise_conv2d, gemm, mmc, mttkrp
from repro.tensor.operation import TensorOp


@dataclass(frozen=True)
class ConvLayer:
    """One convolutional layer (standard, depthwise or pointwise)."""

    name: str
    out_channels: int
    in_channels: int
    out_x: int
    out_y: int
    filter_x: int
    filter_y: int
    stride: int = 1
    depthwise: bool = False

    @property
    def macs(self) -> int:
        channels = self.in_channels if self.depthwise else self.out_channels * self.in_channels
        return channels * self.out_x * self.out_y * self.filter_x * self.filter_y

    @property
    def is_pointwise(self) -> bool:
        return self.filter_x == 1 and self.filter_y == 1

    def sizes(self) -> dict[str, int]:
        if self.depthwise:
            return {
                "c": self.in_channels,
                "ox": self.out_x,
                "oy": self.out_y,
                "rx": self.filter_x,
                "ry": self.filter_y,
            }
        return {
            "k": self.out_channels,
            "c": self.in_channels,
            "ox": self.out_x,
            "oy": self.out_y,
            "rx": self.filter_x,
            "ry": self.filter_y,
        }

    def to_op(self) -> TensorOp:
        if self.depthwise:
            return depthwise_conv2d(
                self.in_channels, self.out_x, self.out_y, self.filter_x, self.filter_y,
                stride=self.stride, name=self.name,
            )
        return conv2d(
            self.out_channels, self.in_channels, self.out_x, self.out_y,
            self.filter_x, self.filter_y, stride=self.stride, name=self.name,
        )

    def scaled(self, **overrides: int) -> "ConvLayer":
        """Copy with some dimensions overridden (used by the scaling helpers)."""
        values = {
            "name": self.name,
            "out_channels": self.out_channels,
            "in_channels": self.in_channels,
            "out_x": self.out_x,
            "out_y": self.out_y,
            "filter_x": self.filter_x,
            "filter_y": self.filter_y,
            "stride": self.stride,
            "depthwise": self.depthwise,
        }
        values.update(overrides)
        return ConvLayer(**values)


@dataclass(frozen=True)
class GemmLayer:
    """A matrix multiplication layer (fully connected / attention projection)."""

    name: str
    rows: int
    cols: int
    inner: int

    @property
    def macs(self) -> int:
        return self.rows * self.cols * self.inner

    def sizes(self) -> dict[str, int]:
        return {"i": self.rows, "j": self.cols, "k": self.inner}

    def to_op(self) -> TensorOp:
        return gemm(self.rows, self.cols, self.inner, name=self.name)


@dataclass(frozen=True)
class MttkrpLayer:
    """An MTTKRP operation (tensor factorisation workhorse)."""

    name: str
    size_i: int
    size_j: int
    size_k: int
    size_l: int

    @property
    def macs(self) -> int:
        return self.size_i * self.size_j * self.size_k * self.size_l

    def sizes(self) -> dict[str, int]:
        return {"i": self.size_i, "j": self.size_j, "k": self.size_k, "l": self.size_l}

    def to_op(self) -> TensorOp:
        return mttkrp(self.size_i, self.size_j, self.size_k, self.size_l, name=self.name)


@dataclass(frozen=True)
class MmcLayer:
    """A matrix-multiplication chain (Transformer attention block)."""

    name: str
    size_i: int
    size_j: int
    size_k: int
    size_l: int

    @property
    def macs(self) -> int:
        return self.size_i * self.size_j * self.size_k * self.size_l

    def sizes(self) -> dict[str, int]:
        return {"i": self.size_i, "j": self.size_j, "k": self.size_k, "l": self.size_l}

    def to_op(self) -> TensorOp:
        return mmc(self.size_i, self.size_j, self.size_k, self.size_l, name=self.name)


Layer = ConvLayer | GemmLayer | MttkrpLayer | MmcLayer


@dataclass
class Workload:
    """A named application: an ordered list of layers (Table IV rows)."""

    name: str
    domain: str
    layers: list[Layer] = field(default_factory=list)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    def layer(self, name: str) -> Layer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"workload {self.name!r} has no layer named {name!r}")

    def layer_names(self) -> list[str]:
        return [layer.name for layer in self.layers]

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)
