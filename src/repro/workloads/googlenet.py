"""GoogLeNet representative layers (Table IV: 6.7M parameters, 3 layer types)."""

from __future__ import annotations

from repro.workloads.dnn import ConvLayer, Workload


def googlenet() -> Workload:
    """The stem convolutions plus the 3x3 branch of the inception blocks of Figure 12."""
    return Workload(
        name="GoogLeNet",
        domain="Deep learning",
        layers=[
            ConvLayer("conv1-7x7", out_channels=64, in_channels=3, out_x=112, out_y=112,
                      filter_x=7, filter_y=7, stride=2),
            ConvLayer("conv2-3x3", out_channels=192, in_channels=64, out_x=56, out_y=56,
                      filter_x=3, filter_y=3),
            ConvLayer("incpt-3a", out_channels=128, in_channels=96, out_x=28, out_y=28,
                      filter_x=3, filter_y=3),
            ConvLayer("incpt-3b", out_channels=192, in_channels=128, out_x=28, out_y=28,
                      filter_x=3, filter_y=3),
            ConvLayer("incpt-4a", out_channels=208, in_channels=96, out_x=14, out_y=14,
                      filter_x=3, filter_y=3),
            ConvLayer("incpt-4b", out_channels=224, in_channels=112, out_x=14, out_y=14,
                      filter_x=3, filter_y=3),
            ConvLayer("incpt-4c", out_channels=256, in_channels=128, out_x=14, out_y=14,
                      filter_x=3, filter_y=3),
        ],
    )
