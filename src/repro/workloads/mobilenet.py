"""MobileNet representative layers (Table IV: 4.2M parameters, 4 layer types).

The Figure 12 discussion highlights the depthwise (dw-CONV) and pointwise
(pw-CONV) layers: depthwise convolutions accumulate nothing across channels,
so the input reuse is low, and pointwise convolutions use 1x1 filters, so the
input halo reuse disappears entirely.
"""

from __future__ import annotations

from repro.workloads.dnn import ConvLayer, Workload


def mobilenet() -> Workload:
    return Workload(
        name="MobileNet",
        domain="Deep learning",
        layers=[
            ConvLayer("CONV1", out_channels=32, in_channels=3, out_x=112, out_y=112,
                      filter_x=3, filter_y=3, stride=2),
            ConvLayer("dw-CONV2", out_channels=32, in_channels=32, out_x=112, out_y=112,
                      filter_x=3, filter_y=3, depthwise=True),
            ConvLayer("pw-CONV3", out_channels=64, in_channels=32, out_x=112, out_y=112,
                      filter_x=1, filter_y=1),
            ConvLayer("dw-CONV4", out_channels=64, in_channels=64, out_x=56, out_y=56,
                      filter_x=3, filter_y=3, depthwise=True),
            ConvLayer("pw-CONV5", out_channels=128, in_channels=64, out_x=56, out_y=56,
                      filter_x=1, filter_y=1),
        ],
    )
