"""Workload scaling for exact-enumeration analysis.

The analyzer and simulator enumerate the iteration domain exactly; full-size
DNN layers (10^8 ... 10^13 MACs) are beyond what a laptop-class Python run can
enumerate, so the experiments analyse *scaled* layers.  The scaling rules keep
the metrics of interest representative:

* filter extents (``rx``, ``ry``) and output feature-map extents (``ox``,
  ``oy``) are preserved whenever possible, because they drive the halo and
  filter reuse patterns the paper studies;
* channel dimensions are reduced first, by integer factors, because intensive
  metrics (per-element reuse factors, PE utilisation, normalised latency and
  bandwidth) are periodic in them once they exceed the PE-array extent;
* every scaled dimension stays a multiple of the PE-array extent it is mapped
  to (when it started as one), so utilisation is unchanged.

Each experiment records the scale factor it applied in its output and in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.isl.iset import IntSet
from repro.tensor.operation import TensorOp
from repro.workloads.dnn import ConvLayer, GemmLayer, Layer, MmcLayer, MttkrpLayer

#: Order in which dimensions are shrunk (first entries shrink first).
_SHRINK_PRIORITY = ("k", "c", "i", "l", "oy", "ox", "j", "ry", "rx")


def _product(sizes: Mapping[str, int]) -> int:
    total = 1
    for value in sizes.values():
        total *= value
    return total


def scale_sizes(
    sizes: Mapping[str, int],
    max_instances: int,
    preserve: Sequence[str] = ("rx", "ry"),
    granularity: int = 8,
) -> tuple[dict[str, int], float]:
    """Shrink loop extents until their product fits under ``max_instances``.

    Returns the scaled sizes and the overall scale factor (original MACs /
    scaled MACs).  Dimensions in ``preserve`` are never touched.  Dimensions
    are reduced by halving (respecting ``granularity`` so PE-array folds stay
    exact) in the order of ``_SHRINK_PRIORITY``.
    """
    scaled = {dim: int(extent) for dim, extent in sizes.items()}
    original = _product(scaled)
    if original <= max_instances:
        return scaled, 1.0

    order = [dim for dim in _SHRINK_PRIORITY if dim in scaled and dim not in preserve]
    order += [dim for dim in scaled if dim not in order and dim not in preserve]

    progress = True
    while _product(scaled) > max_instances and progress:
        progress = False
        for dim in order:
            extent = scaled[dim]
            floor = granularity if extent % granularity == 0 and extent > granularity else 2
            if extent <= floor:
                continue
            if extent % 2 == 0:
                candidate = extent // 2
            else:
                candidate = (extent + 1) // 2
            if extent > granularity and candidate < granularity:
                candidate = granularity
            if candidate < 1 or candidate == extent:
                continue
            scaled[dim] = candidate
            progress = True
            if _product(scaled) <= max_instances:
                break

    factor = original / _product(scaled)
    return scaled, factor


def scale_layer(layer: Layer, max_instances: int) -> tuple[Layer, float]:
    """Scale a workload layer; returns the new layer and the MAC scale factor."""
    sizes, factor = scale_sizes(layer.sizes(), max_instances)
    if isinstance(layer, ConvLayer):
        if layer.depthwise:
            scaled = layer.scaled(
                in_channels=sizes["c"], out_channels=sizes["c"],
                out_x=sizes["ox"], out_y=sizes["oy"],
                filter_x=sizes["rx"], filter_y=sizes["ry"],
            )
        else:
            scaled = layer.scaled(
                out_channels=sizes["k"], in_channels=sizes["c"],
                out_x=sizes["ox"], out_y=sizes["oy"],
                filter_x=sizes["rx"], filter_y=sizes["ry"],
            )
        return scaled, factor
    if isinstance(layer, GemmLayer):
        return GemmLayer(layer.name, sizes["i"], sizes["j"], sizes["k"]), factor
    if isinstance(layer, MttkrpLayer):
        return MttkrpLayer(layer.name, sizes["i"], sizes["j"], sizes["k"], sizes["l"]), factor
    if isinstance(layer, MmcLayer):
        return MmcLayer(layer.name, sizes["i"], sizes["j"], sizes["k"], sizes["l"]), factor
    raise TypeError(f"cannot scale layer of type {type(layer)!r}")


def scaled_op(op: TensorOp, max_instances: int, preserve: Sequence[str] = ("rx", "ry")) -> tuple[TensorOp, float]:
    """Scale an arbitrary operation by shrinking its iteration-domain box."""
    bounds = op.domain.derived_bounds()
    sizes = {dim: hi - lo for dim, (lo, hi) in bounds.items()}
    scaled_sizes, factor = scale_sizes(sizes, max_instances, preserve=preserve)
    if factor == 1.0:
        return op, 1.0
    new_bounds = {
        dim: (bounds[dim][0], bounds[dim][0] + extent) for dim, extent in scaled_sizes.items()
    }
    new_domain = IntSet.box(op.domain.space, new_bounds)
    return op.with_domain(new_domain), factor
