"""Transformer workload: the matrix-multiplication chain of self-attention.

Table IV lists model dimensions 512 / 768 / 1024.  The attention block
computes ``softmax(Q K^T) V``; ignoring the softmax (element-wise), the core
tensor operation is the chain ``Y = (Q K^T) V``, i.e. an MMc with the sequence
length on the outer dimensions and the head dimension inside.
"""

from __future__ import annotations

from repro.workloads.dnn import MmcLayer, Workload

#: Sequence length used by the evaluation.
SEQUENCE_LENGTH = 512

#: Attention head dimension.
HEAD_DIM = 64


def transformer(full_scale: bool = False) -> Workload:
    """The attention MMc at the three Table IV model sizes (scaled by default)."""
    if full_scale:
        layers = [
            MmcLayer("attention-512", SEQUENCE_LENGTH, HEAD_DIM, HEAD_DIM, SEQUENCE_LENGTH),
            MmcLayer("attention-768", SEQUENCE_LENGTH, 96, 96, SEQUENCE_LENGTH),
            MmcLayer("attention-1024", SEQUENCE_LENGTH, 128, 128, SEQUENCE_LENGTH),
        ]
    else:
        layers = [
            MmcLayer("attention-512", 128, 32, 32, 128),
            MmcLayer("attention-768", 128, 48, 48, 128),
            MmcLayer("attention-1024", 128, 64, 64, 128),
        ]
    return Workload(name="Transformer", domain="NLP", layers=layers)
