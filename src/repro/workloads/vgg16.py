"""VGG16 representative layers (used by the MAERI accuracy study, Fig. 11/12)."""

from __future__ import annotations

from repro.workloads.dnn import ConvLayer, Workload


def vgg16() -> Workload:
    """The first convolution of each VGG16 stage (CONV1-1 ... CONV5-1)."""
    return Workload(
        name="VGG16",
        domain="Deep learning",
        layers=[
            ConvLayer("CONV1-1", out_channels=64, in_channels=3, out_x=224, out_y=224,
                      filter_x=3, filter_y=3),
            ConvLayer("CONV2-1", out_channels=128, in_channels=64, out_x=112, out_y=112,
                      filter_x=3, filter_y=3),
            ConvLayer("CONV3-1", out_channels=256, in_channels=128, out_x=56, out_y=56,
                      filter_x=3, filter_y=3),
            ConvLayer("CONV4-1", out_channels=512, in_channels=256, out_x=28, out_y=28,
                      filter_x=3, filter_y=3),
            ConvLayer("CONV5-1", out_channels=512, in_channels=512, out_x=14, out_y=14,
                      filter_x=3, filter_y=3),
        ],
    )
