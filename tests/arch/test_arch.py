"""Unit tests for PE arrays, memory, energy and architecture specs."""

import pytest

from repro.arch import (
    ArchSpec,
    EnergyTable,
    MemoryHierarchy,
    PEArray,
    Systolic2D,
    make_interconnect,
)
from repro.arch.repository import REPOSITORY, make_architecture
from repro.errors import ArchitectureError


class TestPEArray:
    def test_size_and_rank(self):
        array = PEArray((8, 8))
        assert array.size == 64
        assert array.rank == 2
        assert array.total_macs == 64

    def test_domain_count_matches_size(self):
        array = PEArray((4, 3))
        assert array.domain().count() == 12

    def test_coords_and_linear_index_roundtrip(self):
        array = PEArray((3, 4))
        coords = list(array.coords())
        assert len(coords) == 12
        indices = [array.linear_index(c) for c in coords]
        assert indices == list(range(12))

    def test_contains(self):
        array = PEArray((2, 2))
        assert array.contains((1, 1))
        assert not array.contains((2, 0))
        assert not array.contains((0,))

    def test_invalid_dims(self):
        with pytest.raises(ArchitectureError):
            PEArray(())
        with pytest.raises(ArchitectureError):
            PEArray((0, 4))

    def test_linear_index_out_of_range(self):
        with pytest.raises(ArchitectureError):
            PEArray((2, 2)).linear_index((5, 0))


class TestMemory:
    def test_default_hierarchy(self):
        memory = MemoryHierarchy.default(scratchpad_bandwidth_bits=128, word_bits=16)
        assert memory.scratchpad_words_per_cycle == 8.0
        assert memory.scratchpad_words > 0

    def test_bandwidth_override(self):
        memory = MemoryHierarchy.default().with_scratchpad_bandwidth(64)
        assert memory.scratchpad.bandwidth_bits_per_cycle == 64

    def test_invalid_word_size(self):
        with pytest.raises(ArchitectureError):
            MemoryHierarchy.default(word_bits=0)


class TestEnergy:
    def test_defaults_are_ordered(self):
        table = EnergyTable()
        assert table.dram_access_pj > table.scratchpad_access_pj > table.register_access_pj

    def test_scaling(self):
        table = EnergyTable().scaled(2.0)
        assert table.mac_pj == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ArchitectureError):
            EnergyTable(mac_pj=-1)

    def test_as_dict_keys(self):
        assert set(EnergyTable().as_dict()) == {"mac", "register", "noc_hop", "scratchpad", "dram"}


class TestArchSpec:
    def test_defaults(self):
        arch = ArchSpec()
        assert arch.num_pes == 64
        assert arch.peak_macs_per_cycle == 64

    def test_ideal_latency(self):
        arch = ArchSpec(pe_array=PEArray((4, 4)))
        assert arch.ideal_latency(1600) == 100

    def test_with_bandwidth(self):
        arch = ArchSpec().with_bandwidth(42.0)
        assert arch.scratchpad_bandwidth_bits == 42.0

    def test_with_interconnect_and_array(self):
        arch = ArchSpec().with_interconnect(make_interconnect("mesh")).with_pe_array(PEArray((2, 2)))
        assert arch.interconnect.name == "mesh"
        assert arch.num_pes == 4

    def test_describe_mentions_interconnect(self):
        assert Systolic2D().name in ArchSpec().describe()


class TestRepository:
    def test_all_entries_build(self):
        for name in REPOSITORY:
            arch = make_architecture(name)
            assert arch.num_pes > 0
            assert arch.interconnect.name

    def test_eyeriss_dimensions(self):
        arch = make_architecture("eyeriss")
        assert arch.pe_array.dims == (12, 14)

    def test_maeri_is_one_dimensional(self):
        arch = make_architecture("maeri")
        assert arch.pe_array.rank == 1
        assert arch.interconnect.time_interval == 0

    def test_unknown_architecture(self):
        with pytest.raises(KeyError):
            make_architecture("not-a-real-chip")
