"""Unit tests for interconnect topologies and their relations."""

import pytest

from repro.arch import (
    Mesh,
    Multicast1D,
    NoInterconnect,
    PEArray,
    ReductionTree,
    Systolic1D,
    Systolic2D,
    make_interconnect,
)
from repro.errors import ArchitectureError


class TestSystolic:
    def test_2d_systolic_connectivity(self):
        topology = Systolic2D()
        assert topology.connected((1, 1), (1, 2))
        assert topology.connected((1, 1), (2, 1))
        assert not topology.connected((1, 1), (2, 2))
        assert not topology.connected((1, 1), (0, 1))

    def test_1d_systolic_only_moves_right(self):
        topology = Systolic1D()
        assert topology.connected((0, 0), (0, 1))
        assert not topology.connected((0, 0), (1, 0))
        assert not topology.connected((0, 1), (0, 0))

    def test_predecessors_on_boundary(self):
        array = PEArray((2, 2))
        predecessors = Systolic2D().predecessors(array)
        assert predecessors[(0, 0)] == []
        assert sorted(predecessors[(1, 1)]) == [(0, 1), (1, 0)]

    def test_relation_pieces(self):
        relation = Systolic2D().relation(PEArray((2, 2)))
        assert relation.contains((0, 0), (0, 1))
        assert not relation.contains((0, 0), (1, 1))

    def test_time_interval_is_one(self):
        assert Systolic2D().time_interval == 1


class TestMesh:
    def test_eight_neighbourhood(self):
        topology = Mesh()
        assert topology.connected((1, 1), (2, 2))
        assert topology.connected((1, 1), (0, 1))
        assert not topology.connected((1, 1), (3, 1))

    def test_degree_of_interior_pe(self):
        predecessors = Mesh().predecessors(PEArray((3, 3)))
        assert len(predecessors[(1, 1)]) == 8
        assert len(predecessors[(0, 0)]) == 3


class TestMulticastAndTree:
    def test_multicast_same_cycle(self):
        topology = Multicast1D(reach=3)
        assert topology.time_interval == 0
        assert topology.connected((0,), (3,))
        assert not topology.connected((0,), (4,))

    def test_multicast_row_restricted(self):
        topology = Multicast1D(reach=3)
        assert not topology.connected((0, 0), (1, 1))

    def test_reduction_tree_groups(self):
        topology = ReductionTree(group_size=4)
        assert topology.connected((1,), (3,))
        assert not topology.connected((3,), (4,))

    def test_reduction_tree_invalid_group(self):
        with pytest.raises(ArchitectureError):
            ReductionTree(group_size=1)

    def test_no_interconnect(self):
        topology = NoInterconnect()
        assert not topology.connected((0, 0), (0, 1))
        assert topology.degree(PEArray((2, 2))) == 0.0


class TestFactory:
    @pytest.mark.parametrize("name,expected", [
        ("2d-systolic", Systolic2D),
        ("1d-systolic", Systolic1D),
        ("mesh", Mesh),
        ("multicast", Multicast1D),
        ("reduction-tree", ReductionTree),
        ("none", NoInterconnect),
    ])
    def test_make_interconnect(self, name, expected):
        assert isinstance(make_interconnect(name), expected)

    def test_unknown_topology(self):
        with pytest.raises(ArchitectureError):
            make_interconnect("hypercube")

    def test_degree_ordering(self):
        array = PEArray((4, 4))
        assert Mesh().degree(array) > Systolic2D().degree(array) > Systolic1D().degree(array)
