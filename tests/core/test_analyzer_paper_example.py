"""End-to-end checks of the analyzer against the paper's worked examples."""

import pytest

from repro.arch import ArchSpec, Mesh, Multicast1D, PEArray, Systolic2D
from repro.core import Dataflow, TenetAnalyzer, analyze
from repro.tensor import conv1d, gemm


@pytest.fixture(scope="module")
def figure3_report():
    """GEMM 2x2x4 on a 2x2 systolic array: the running example of Figure 3."""
    op = gemm(2, 2, 4)
    dataflow = Dataflow.from_exprs("(IJ-P | J,IJK-T)", op, ["i", "j"], ["i + j + k"])
    arch = ArchSpec(pe_array=PEArray((2, 2)), interconnect=Systolic2D(), name="2x2")
    return analyze(op, dataflow, arch)


class TestFigure3Volumes:
    def test_total_volume_equals_instances(self, figure3_report):
        for tensor in ("A", "B", "Y"):
            assert figure3_report.volumes[tensor].total == 16

    def test_input_a_moves_horizontally(self, figure3_report):
        volume = figure3_report.volumes["A"]
        assert volume.spatial_reuse == 8
        assert volume.temporal_reuse == 0
        assert volume.unique == 8

    def test_input_b_moves_vertically(self, figure3_report):
        volume = figure3_report.volumes["B"]
        assert volume.spatial_reuse == 8
        assert volume.unique == 8

    def test_output_is_stationary(self, figure3_report):
        volume = figure3_report.volumes["Y"]
        assert volume.temporal_reuse == 12
        assert volume.spatial_reuse == 0
        assert volume.unique == 4
        assert volume.reuse_factor == pytest.approx(4.0)

    def test_reuse_is_sum_of_temporal_and_spatial(self, figure3_report):
        for volume in figure3_report.volumes.values():
            assert volume.reuse == volume.temporal_reuse + volume.spatial_reuse

    def test_footprints(self, figure3_report):
        assert figure3_report.volumes["A"].footprint == 8
        assert figure3_report.volumes["Y"].footprint == 4


class TestFigure3LatencyUtilization:
    def test_time_stamps_and_compute_delay(self, figure3_report):
        assert figure3_report.utilization.num_time_stamps == 6
        assert figure3_report.latency.compute_delay == 6

    def test_average_and_max_utilization(self, figure3_report):
        assert figure3_report.average_pe_utilization == pytest.approx(16 / 24)
        assert figure3_report.max_pe_utilization == 1.0

    def test_latency_is_max_of_delays(self, figure3_report):
        latency = figure3_report.latency
        assert latency.latency == max(
            latency.compute_delay, latency.read_delay, latency.write_delay
        )

    def test_bandwidth_normalisation(self, figure3_report):
        bandwidth = figure3_report.bandwidth
        assert bandwidth["Y"].scratchpad_words_per_cycle == pytest.approx(4 / 6)
        assert bandwidth["A"].interconnect_words_per_cycle == pytest.approx(8 / 6)

    def test_energy_is_positive_and_dram_dominated(self, figure3_report):
        energy = figure3_report.energy
        assert energy.total_pj > 0
        assert energy.dram_pj > energy.noc_pj


class TestFigure1Example:
    def test_skewed_access_reuse_is_six(self):
        op = conv1d(4, 3)
        dataflow = Dataflow.from_exprs("fig1", op, ["i"], ["j"])
        arch = ArchSpec(pe_array=PEArray((4,)), interconnect=Mesh(), name="1d-mesh")
        report = analyze(op, dataflow, arch)
        assert report.volumes["A"].total == 12
        assert report.volumes["A"].reuse == 6
        assert report.volumes["A"].unique == 6

    def test_without_interconnect_reuse_drops(self):
        from repro.arch import NoInterconnect

        op = conv1d(4, 3)
        dataflow = Dataflow.from_exprs("fig1", op, ["i"], ["j"])
        arch = ArchSpec(pe_array=PEArray((4,)), interconnect=NoInterconnect())
        report = analyze(op, dataflow, arch)
        assert report.volumes["A"].spatial_reuse == 0


class TestAnalyzerBehaviour:
    def test_validate_flag_raises_for_out_of_range(self):
        op = gemm(16, 16, 4)
        dataflow = Dataflow.from_exprs("broken", op, ["i", "j"], ["k"])
        arch = ArchSpec(pe_array=PEArray((8, 8)))
        with pytest.raises(Exception):
            TenetAnalyzer(op, dataflow, arch, validate=True).analyze()

    def test_non_injective_dataflow_gets_note_and_longer_delay(self):
        op = gemm(8, 8, 4)
        dataflow = Dataflow.from_exprs("collide", op, ["i", "j"], ["0"])
        arch = ArchSpec(pe_array=PEArray((8, 8)))
        report = analyze(op, dataflow, arch)
        assert report.latency.compute_delay == 4  # 4 k-instances share each stamp
        assert any("not injective" in note for note in report.notes)

    def test_max_instances_cap(self):
        op = gemm(64, 64, 64)
        dataflow = Dataflow.from_exprs("x", op, ["i mod 8", "j mod 8"],
                                       ["fl(i/8)", "fl(j/8)", "k"])
        arch = ArchSpec()
        with pytest.raises(Exception):
            analyze(op, dataflow, arch, max_instances=1000)

    def test_report_serialisation(self, figure3_report):
        data = figure3_report.as_dict()
        assert data["operation"] == "GEMM"
        assert "volumes" in data and "A" in data["volumes"]
        assert "latency_cycles" in data

    def test_summary_mentions_dataflow(self, figure3_report):
        assert "(IJ-P | J,IJK-T)" in figure3_report.summary()

    def test_multicast_gives_same_cycle_reuse(self):
        op = gemm(8, 8, 8)
        dataflow = Dataflow.from_exprs("(IJ-P | K-T)", op, ["i", "j"], ["k"])
        arch = ArchSpec(pe_array=PEArray((8, 8)), interconnect=Multicast1D(reach=7))
        report = analyze(op, dataflow, arch)
        # A[i,k] is broadcast along each row (shared across j) in the same cycle.
        assert report.volumes["A"].spatial_reuse > 0
