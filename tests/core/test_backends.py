"""Tests for the pluggable evaluation backends (repro.core.backends)."""

import numpy as np
import pytest

from repro.core import Dataflow
from repro.core.analyzer import TenetAnalyzer
from repro.core.backends import BACKEND_NAMES, make_backend
from repro.core.backends.affine import (
    CompiledExprSet,
    CompiledEvaluator,
    build_group_layout,
    lower_expr,
)
from repro.core.engine import (
    EvaluationEngine,
    RelationCache,
    RelationMaterializer,
    dataflow_signature,
)
from repro.dse.pruning import pruned_candidates
from repro.errors import DataflowError, ExplorationError
from repro.experiments.common import make_arch
from repro.isl.expr import var
from repro.tensor.kernels import conv2d, gemm


def report_dict(report):
    data = report.as_dict()
    data.pop("analysis_seconds")
    data["notes"] = list(report.notes)
    return data


def _torch_available() -> bool:
    try:
        import torch  # noqa: F401
    except ImportError:
        return False
    return True


#: The namespace axis of the bit-identity matrix: numpy always runs; the
#: torch-CPU leg runs whenever torch is importable (the CI device-matrix job)
#: and is skipped, not failed, on hosts without it.
NAMESPACE_PARAMS = [
    pytest.param("numpy", id="numpy"),
    pytest.param(
        "torch:cpu",
        id="torch-cpu",
        marks=pytest.mark.skipif(not _torch_available(), reason="torch not installed"),
    ),
]


def small_candidates(op, pe_dims=(4, 4), count=6):
    return list(pruned_candidates(op, pe_dims=pe_dims, allow_packing=True,
                                  max_candidates=count))


def nested_quasi_dataflow(op, rows=4, cols=4):
    """A dataflow whose last time stamp wraps a floordiv inside a mod."""
    i, j, k = (var(dim) for dim in op.loop_dims)
    folded = (i // rows + j) % 5
    return Dataflow.from_exprs(
        "nested", op.domain.space,
        [i % rows, j % cols], [k, i // rows, j // cols, folded],
    )


class TestExprLowering:
    def test_linear_row_of_affine_expr(self):
        expr = 2 * var("i") - 3 * var("j") + 7
        coeffs, const = expr.linear_row(("i", "j", "k"))
        assert coeffs == (2, -3, 0)
        assert const == 7

    def test_linear_row_rejects_unknown_variable(self):
        from repro.errors import SpaceError

        with pytest.raises(SpaceError):
            (2 * var("x")).linear_row(("i", "j"))

    def test_lower_affine(self):
        base, const, derived = lower_expr(
            var("i") + 2 * var("k") - 1, ("i", "j", "k")
        )
        assert base == (1, 0, 2)
        assert const == -1
        assert derived == []

    def test_lower_mod_and_floordiv_to_derived_columns(self):
        lowered = lower_expr(var("i") % 4 + var("j") // 8, ("i", "j"))
        assert lowered is not None
        _, _, derived = lowered
        kinds = sorted(column.kind for _, column in derived)
        assert kinds == ["floordiv", "mod"]

    def test_nested_quasi_does_not_lower(self):
        nested = (var("i") // 4 + var("j")) % 5
        assert lower_expr(nested, ("i", "j")) is None

    def test_unknown_variable_does_not_lower(self):
        assert lower_expr(var("x") + var("i"), ("i", "j")) is None

    def test_dataflow_stamp_rows(self):
        op = gemm(8, 8, 8)
        dataflow = Dataflow.from_exprs(
            "d", op.domain.space, ["i mod 4", "j mod 4"], ["k", "i"]
        )
        pe_rows, time_rows = dataflow.stamp_rows()
        assert pe_rows == [None, None]  # mod terms are not plain affine rows
        assert time_rows == [((0, 0, 1), 0), ((1, 0, 0), 0)]
        assert not dataflow.is_affine
        affine = Dataflow.from_exprs("a", op.domain.space, ["i", "j"], ["k"])
        assert affine.is_affine

    def test_compiled_rows_match_interpreter(self):
        op = gemm(12, 12, 12)
        materializer = RelationMaterializer(op, cache=RelationCache())
        relations = materializer.relations(10**6)
        exprs = [
            var("i") + 2 * var("j") - var("k"),
            var("i") % 4 + var("j") // 8 - 2,
            (var("k") % 5) * 3 + var("i"),
        ]
        compiled = CompiledExprSet(op.loop_dims, relations.inclusive_bounds)
        plans = [compiled.add(e) for e in exprs]
        evaluator = CompiledEvaluator(compiled, relations.domain, relations.total)
        values = evaluator.evaluate_rows([i for kind, i in plans if kind == "row"])
        for expr, (kind, index) in zip(exprs, plans):
            assert kind == "row"
            np.testing.assert_array_equal(values[index], expr.evaluate_vec(relations.domain))

    def test_identical_expressions_share_one_row(self):
        op = gemm(8, 8, 8)
        relations = RelationMaterializer(op, cache=RelationCache()).relations(10**6)
        compiled = CompiledExprSet(op.loop_dims, relations.inclusive_bounds)
        first = compiled.add(var("i") + var("k") // 4)
        second = compiled.add(var("i") + var("k") // 4)
        assert first == second
        assert len(compiled.rows) == 1


class TestBackendStamps:
    @pytest.mark.parametrize("backend", ["affine", "bitset", "fused", "auto"])
    def test_stamps_match_interpreter(self, backend):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, cache=RelationCache(), backend=backend)
        relations = engine.materializer.relations(10**7)
        for candidate in small_candidates(op) + [nested_quasi_dataflow(op)]:
            bound = candidate.bind(op)
            pe_ref, rank_ref = engine.materializer.stamps(relations, bound, arch.pe_array)
            pe_new, rank_new = engine.backend.stamps(relations, bound, arch.pe_array)
            np.testing.assert_array_equal(pe_ref, pe_new)
            np.testing.assert_array_equal(rank_ref, rank_new)

    def test_batched_stamps_match_per_candidate(self):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, cache=RelationCache(), backend="affine")
        relations = engine.materializer.relations(10**7)
        candidates = small_candidates(op, count=8)
        provider = engine.backend.prepare_batch(relations, candidates, arch.pe_array)
        for position, candidate in enumerate(candidates):
            pe_ref, rank_ref = engine.materializer.stamps(
                relations, candidate.bind(op), arch.pe_array
            )
            pe_new, rank_new = provider.stamps_for(position)
            np.testing.assert_array_equal(pe_ref, pe_new)
            np.testing.assert_array_equal(rank_ref, rank_new)

    def test_small_windows_still_match(self):
        op = gemm(8, 8, 8)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, cache=RelationCache(), backend="affine")
        relations = engine.materializer.relations(10**6)
        candidates = small_candidates(op, count=6)
        provider = engine.backend.prepare_batch(relations, candidates, arch.pe_array)
        provider._rows_per_window = 1  # force window thrash
        for position, candidate in enumerate(candidates):
            pe_ref, rank_ref = engine.materializer.stamps(
                relations, candidate.bind(op), arch.pe_array
            )
            pe_new, rank_new = provider.stamps_for(position)
            np.testing.assert_array_equal(pe_ref, pe_new)
            np.testing.assert_array_equal(rank_ref, rank_new)

    def test_pe_memo_eviction_between_batches_replans(self):
        op = gemm(8, 8, 8)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, cache=RelationCache(), backend="affine")
        relations = engine.materializer.relations(10**6)
        candidates = small_candidates(op, count=3)
        warmup = engine.backend.prepare_batch(relations, candidates, arch.pe_array)
        for position in range(len(candidates)):
            warmup.stamps_for(position)
        # The second provider records no PE plans (all signatures memoised);
        # evicting the memo in between forces the replan path.
        provider = engine.backend.prepare_batch(relations, candidates, arch.pe_array)
        engine.backend._pe_memo.clear()
        for position, candidate in enumerate(candidates):
            pe_ref, rank_ref = engine.materializer.stamps(
                relations, candidate.bind(op), arch.pe_array
            )
            pe_new, rank_new = provider.stamps_for(position)
            np.testing.assert_array_equal(pe_ref, pe_new)
            np.testing.assert_array_equal(rank_ref, rank_new)

    def test_out_of_range_candidate_raises_for_each_candidate(self):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, cache=RelationCache(), backend="affine")
        relations = engine.materializer.relations(10**7)
        bad = Dataflow.from_exprs("bad", op.domain.space, ["i", "j"], ["k"])
        bad_twin = Dataflow.from_exprs("bad-twin", op.domain.space, ["i", "j"], ["k"])
        provider = engine.backend.prepare_batch(relations, [bad, bad_twin], arch.pe_array)
        with pytest.raises(DataflowError, match="bad"):
            provider.stamps_for(0)
        # The failure is memoised per space signature but re-raised per candidate.
        with pytest.raises(DataflowError, match="bad-twin"):
            provider.stamps_for(1)

    def test_fallback_exprs_are_counted(self):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, cache=RelationCache(), backend="affine")
        engine.evaluate(nested_quasi_dataflow(op))
        assert engine.stats["stamp_fallback_exprs"] > 0


class TestBackendReports:
    @pytest.mark.parametrize("make_op", [
        lambda: gemm(16, 16, 16),
        lambda: conv2d(6, 6, 5, 5, 3, 3),
    ], ids=["gemm", "conv2d"])
    @pytest.mark.parametrize("interconnect", ["2d-systolic", "mesh", "multicast"])
    @pytest.mark.parametrize("backend", ["interp", "affine", "bitset", "fused", "auto"])
    @pytest.mark.parametrize("device", NAMESPACE_PARAMS)
    def test_backend_reports_equal_analyzer(self, make_op, interconnect, backend, device):
        if backend == "interp" and device != "numpy":
            pytest.skip("interp is host-only (rejected at engine construction)")
        op = make_op()
        arch = make_arch(pe_dims=(4, 4), interconnect=interconnect)
        engine = EvaluationEngine(
            op, arch, cache=RelationCache(), backend=backend, device=device
        )
        for candidate in small_candidates(op):
            reference = TenetAnalyzer(op, candidate, arch).analyze()
            assert report_dict(reference) == report_dict(engine.evaluate(candidate))

    @pytest.mark.parametrize("backend", ["affine", "bitset", "fused", "auto"])
    @pytest.mark.parametrize("device", NAMESPACE_PARAMS)
    def test_nested_quasi_reports_equal_analyzer(self, backend, device):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        candidate = nested_quasi_dataflow(op)
        reference = TenetAnalyzer(op, candidate, arch).analyze()
        engine = EvaluationEngine(
            op, arch, cache=RelationCache(), backend=backend, device=device
        )
        assert report_dict(reference) == report_dict(engine.evaluate(candidate))

    @pytest.mark.parametrize("backend", ["interp", "affine", "bitset", "fused", "auto"])
    def test_non_injective_reports_equal_analyzer(self, backend):
        op = gemm(8, 8, 8)
        arch = make_arch(pe_dims=(4, 4))
        collapsing = Dataflow.from_exprs(
            "collapse", op.domain.space, ["i mod 4", "j mod 4"], ["k mod 4"]
        )
        reference = TenetAnalyzer(op, collapsing, arch).analyze()
        engine = EvaluationEngine(op, arch, cache=RelationCache(), backend=backend)
        assert report_dict(reference) == report_dict(engine.evaluate(collapsing))

    def test_bitset_handles_wide_temporal_interval(self):
        # The sort-based kernels are limited to temporal intervals <= 8; the
        # bit-set kernel shifts occupancy words by any interval.
        op = gemm(12, 12, 12)
        arch = make_arch(pe_dims=(4, 4))
        candidate = small_candidates(op)[0]
        reference = TenetAnalyzer(op, candidate, arch, temporal_interval=11).analyze()
        engine = EvaluationEngine(
            op, arch, cache=RelationCache(), backend="bitset", temporal_interval=11
        )
        assert report_dict(reference) == report_dict(engine.evaluate(candidate))
        assert engine.stats["bitset_path"] > 0
        assert engine.stats["reference_path"] == 0

    def test_bitset_engages_on_small_op(self):
        op = gemm(8, 8, 8)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, cache=RelationCache(), backend="bitset")
        engine.evaluate(small_candidates(op)[0])
        assert engine.stats["bitset_path"] > 0

    def test_batch_matches_across_backends(self):
        op = conv2d(4, 4, 6, 6, 3, 3)
        arch = make_arch(pe_dims=(4, 4))
        candidates = small_candidates(op, count=8)
        batches = {}
        for backend in BACKEND_NAMES:
            engine = EvaluationEngine(op, arch, cache=RelationCache(), backend=backend)
            batches[backend] = engine.evaluate_batch(candidates)
        reference = batches["interp"].reports
        assert reference
        for backend in ("auto", "affine", "bitset"):
            assert len(batches[backend].reports) == len(reference)
            for a, b in zip(reference, batches[backend].reports):
                assert report_dict(a) == report_dict(b)


class TestLayout:
    def _op_with_duplicate_reference(self):
        """GEMM variant whose output is referenced twice (read then write)."""
        from repro.tensor.access import AccessMode, TensorAccess
        from repro.tensor.operation import TensorOp

        base = gemm(8, 8, 8)
        update = next(a for a in base.accesses if a.tensor == "Y")
        accesses = [a for a in base.accesses if a.tensor != "Y"]
        accesses.append(TensorAccess("Y", AccessMode.READ, update.relation))
        accesses.append(TensorAccess("Y", AccessMode.WRITE, update.relation))
        return TensorOp("gemm-dup", base.domain, accesses)

    def test_identical_references_collapse(self):
        op = self._op_with_duplicate_reference()
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, cache=RelationCache())
        relations = engine.materializer.relations(10**6)
        candidate = small_candidates(op)[0].bind(op)
        pe_lin, _ = engine.materializer.stamps(relations, candidate, arch.pe_array)
        assert relations.tensors["Y"].references == 2
        layout = build_group_layout(
            pe_lin, relations.tensors["Y"], engine._predecessor_table,
            engine._spacetime.spatial_interval,
        )
        assert layout.references == 1
        assert layout.dense_orig.size == pe_lin.size

    def test_duplicate_reference_reports_equal_analyzer(self):
        op = self._op_with_duplicate_reference()
        arch = make_arch(pe_dims=(4, 4))
        for backend in BACKEND_NAMES:
            engine = EvaluationEngine(op, arch, cache=RelationCache(), backend=backend)
            for candidate in small_candidates(op, count=3):
                reference = TenetAnalyzer(op, candidate, arch).analyze()
                assert report_dict(reference) == report_dict(engine.evaluate(candidate))

    def test_distinct_references_are_kept(self):
        from repro.tensor.kernels import jacobi2d

        op = jacobi2d(10, 10)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, cache=RelationCache())
        relations = engine.materializer.relations(10**6)
        candidate = small_candidates(op, count=1)[0].bind(op)
        pe_lin, _ = engine.materializer.stamps(relations, candidate, arch.pe_array)
        tensor = next(t for t, rel in relations.tensors.items() if rel.references > 1)
        layout = build_group_layout(
            pe_lin, relations.tensors[tensor], engine._predecessor_table,
            engine._spacetime.spatial_interval,
        )
        assert layout.references == relations.tensors[tensor].references

    def test_layout_memo_is_shared_across_candidates(self):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, cache=RelationCache(), backend="affine")
        candidates = small_candidates(op, count=6)
        engine.evaluate_batch(candidates)
        distinct_pe_signatures = {
            tuple(str(e) for e in c.pe_exprs) for c in candidates
        }
        # One layout per (space signature, tensor), not per candidate.
        assert len(engine.backend._layout_memo) <= len(distinct_pe_signatures) * 3


class TestFusedBackend:
    def test_fused_kernel_engages_on_uniform_layouts(self):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4), interconnect="2d-systolic")
        engine = EvaluationEngine(op, arch, cache=RelationCache(), backend="fused")
        reference = EvaluationEngine(op, arch, cache=RelationCache(), backend="interp")
        for candidate in small_candidates(op):
            assert report_dict(reference.evaluate(candidate)) == report_dict(
                engine.evaluate(candidate)
            )
        assert engine.stats["fused_path"] > 0
        assert engine.stats["compiled_path"] == 0

    def test_fused_splits_mixed_reference_layouts_between_kernels(self):
        # jacobi2d mixes per-tensor layouts: the multi-reference stencil input
        # cannot use the fused kernel (it needs collapsed single-reference
        # blocks) and must chain to the affine kernels, while the
        # single-reference output still fuses — bit-identically either way.
        from repro.tensor.kernels import jacobi2d

        op = jacobi2d(10, 10)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, cache=RelationCache(), backend="fused")
        reference = EvaluationEngine(op, arch, cache=RelationCache(), backend="interp")
        for candidate in small_candidates(op, count=3):
            assert report_dict(reference.evaluate(candidate)) == report_dict(
                engine.evaluate(candidate)
            )
        assert engine.stats["fused_path"] > 0
        assert engine.stats["compiled_path"] + engine.stats["reference_path"] > 0

    def test_fused_wide_interval_falls_back_to_reference(self):
        op = gemm(12, 12, 12)
        arch = make_arch(pe_dims=(4, 4))
        candidate = small_candidates(op)[0]
        reference = TenetAnalyzer(op, candidate, arch, temporal_interval=11).analyze()
        engine = EvaluationEngine(
            op, arch, cache=RelationCache(), backend="fused", temporal_interval=11
        )
        assert report_dict(reference) == report_dict(engine.evaluate(candidate))
        assert engine.stats["fused_path"] == 0

    def test_spacetime_memo_replays_identical_stamp_content(self):
        # Shifting every time expression by a constant changes the structural
        # signature but not the rank order, so the second candidate's report
        # must come from the spacetime memo, renamed but otherwise identical.
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        i, j, k = (var(dim) for dim in op.loop_dims)
        base = Dataflow.from_exprs(
            "base", op.domain.space, [i % 4, j % 4], [k, i // 4, j // 4]
        )
        shifted = Dataflow.from_exprs(
            "shifted", op.domain.space, [i % 4, j % 4], [k + 3, i // 4, j // 4]
        )
        assert dataflow_signature(base) != dataflow_signature(shifted)
        engine = EvaluationEngine(op, arch, cache=RelationCache(), backend="fused")
        first = engine.evaluate(base)
        second = engine.evaluate(shifted)
        assert engine.stats["spacetime_hits"] == 1
        assert second.dataflow == "shifted"
        a, b = report_dict(first), report_dict(second)
        assert a.pop("dataflow") == "base" and b.pop("dataflow") == "shifted"
        assert a == b
        # The replayed report is still bit-identical to a fresh analysis.
        fresh = TenetAnalyzer(op, shifted, arch).analyze()
        c = report_dict(fresh)
        c.pop("dataflow")
        assert b == c

    def test_spacetime_memo_does_not_override_pruning(self):
        # Under early termination the memo is consulted only *after* the
        # lower-bound check: a candidate whose bound already loses must be
        # recorded as pruned (as interp/affine would), never replayed as a
        # report just because its spacetime map was evaluated earlier.
        op = gemm(8, 8, 8)
        arch = make_arch(pe_dims=(4, 4))
        i, j, k = (var(dim) for dim in op.loop_dims)
        serial = Dataflow.from_exprs(
            "serial", op.domain.space, [i % 4, j % 4], [i, j, k]
        )
        serial_twin = Dataflow.from_exprs(
            "serial-twin", op.domain.space, [i % 4, j % 4], [i, j, k + 1]
        )
        fast = Dataflow.from_exprs(
            "fast", op.domain.space, [i % 4, j % 4], [k, i // 4, j // 4]
        )
        engine = EvaluationEngine(op, arch, cache=RelationCache(), backend="fused")
        batch = engine.evaluate_batch(
            [serial, fast, serial_twin],
            objective="latency", early_termination=True,
        )
        by_name = {outcome.name: outcome for outcome in batch.outcomes}
        assert by_name["serial"].report is not None
        assert by_name["fast"].report is not None
        # The twin shares serial's exact spacetime map (memoised), but its
        # compute-delay bound exceeds fast's latency: pruned, not replayed.
        assert by_name["serial-twin"].pruned
        assert engine.stats["spacetime_hits"] == 0

    def test_spacetime_memo_skipped_under_validation(self):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        i, j, k = (var(dim) for dim in op.loop_dims)
        base = Dataflow.from_exprs(
            "base", op.domain.space, [i % 4, j % 4], [k, i // 4, j // 4]
        )
        shifted = Dataflow.from_exprs(
            "shifted", op.domain.space, [i % 4, j % 4], [k + 3, i // 4, j // 4]
        )
        engine = EvaluationEngine(
            op, arch, cache=RelationCache(), backend="fused", validate=True
        )
        engine.evaluate(base)
        engine.evaluate(shifted)
        assert engine.stats["spacetime_hits"] == 0

    def test_fused_batch_matches_analyzer_across_interconnects(self):
        op = gemm(16, 16, 16)
        for interconnect in ("2d-systolic", "mesh", "multicast"):
            arch = make_arch(pe_dims=(4, 4), interconnect=interconnect)
            candidates = small_candidates(op, count=6)
            engine = EvaluationEngine(op, arch, cache=RelationCache(), backend="fused")
            batch = engine.evaluate_batch(candidates)
            assert len(batch.reports) == len(candidates)
            for candidate, report in zip(candidates, batch.reports):
                reference = TenetAnalyzer(op, candidate, arch).analyze()
                assert report_dict(reference) == report_dict(report)

    def test_fused_provider_stacks_whole_batch_into_one_window(self):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, cache=RelationCache(), backend="fused")
        relations = engine.materializer.relations(10**7)
        candidates = small_candidates(op, count=12)
        provider = engine.backend.prepare_batch(relations, candidates, arch.pe_array)
        provider._ensure_window(0)
        # One stacked evaluation covers every candidate: the affine provider
        # would have split this batch into several matmul windows.
        assert provider._window == (0, len(candidates))

    def test_auto_is_fused_with_bitset(self):
        from repro.core.backends import FusedBackend

        op = gemm(8, 8, 8)
        engine = EvaluationEngine(op, make_arch(pe_dims=(4, 4)), backend="auto")
        assert isinstance(engine.backend, FusedBackend)
        assert engine.backend.bitset_mode == "auto"
        assert engine.backend.name == "auto"


class TestRegistry:
    def test_unknown_backend_rejected(self):
        op = gemm(8, 8, 8)
        with pytest.raises(ExplorationError):
            EvaluationEngine(op, make_arch(pe_dims=(4, 4)), backend="gpu")

    def test_backend_names_constructible(self):
        op = gemm(8, 8, 8)
        arch = make_arch(pe_dims=(4, 4))
        for name in BACKEND_NAMES:
            engine = EvaluationEngine(op, arch, backend=name)
            assert engine.backend.name == name
            assert engine.backend_name == name


class TestFusedBaseline:
    """The array-API fused backend against the committed pre-refactor reports.

    ``tests/core/data/fused_baseline.json`` was generated by the fused
    backend *before* the array-namespace port; these tests pin the refactor
    to bit-identical output (round-tripped through JSON, exactly like the
    fixture) on every namespace in the matrix.
    """

    CASES = {
        "gemm16": (lambda: gemm(16, 16, 16), "2d-systolic"),
        "gemm12_mesh": (lambda: gemm(12, 12, 12), "mesh"),
        "conv2d": (lambda: conv2d(4, 4, 6, 6, 3, 3), "2d-systolic"),
    }

    @staticmethod
    def _baseline():
        import json
        from pathlib import Path

        path = Path(__file__).parent / "data" / "fused_baseline.json"
        return json.loads(path.read_text())

    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("device", NAMESPACE_PARAMS)
    def test_fused_matches_pre_refactor_baseline(self, case, device):
        import json

        make_op, interconnect = self.CASES[case]
        op = make_op()
        arch = make_arch(pe_dims=(4, 4), interconnect=interconnect)
        engine = EvaluationEngine(op, arch, backend="fused", device=device)
        candidates = pruned_candidates(
            op, pe_dims=(4, 4), allow_packing=True, max_candidates=8
        )
        fresh = {c.name: report_dict(engine.evaluate(c)) for c in candidates}
        assert json.loads(json.dumps(fresh)) == self._baseline()[case]
        assert engine.stats["fused_path"] > 0
