"""Unit tests for the individual performance-model components."""

import numpy as np
import pytest

from repro.arch import Mesh, Multicast1D, PEArray, Systolic2D
from repro.arch.memory import MemoryHierarchy
from repro.core import Dataflow, SpacetimeMap
from repro.core.assignment import DataAssignment, assignments_for
from repro.core.bandwidth import compute_bandwidth
from repro.core.latency import compute_latency
from repro.core.utilization import UtilizationMetrics, compute_utilization
from repro.core.volumes import VolumeMetrics, compute_volume_metrics
from repro.tensor import gemm


class TestVolumeMetricsDataclass:
    def test_unique_and_reuse_factor(self):
        volume = VolumeMetrics("A", total=16, reuse=8, temporal_reuse=2, spatial_reuse=6,
                               footprint=8)
        assert volume.unique == 8
        assert volume.reuse_factor == 2.0
        assert volume.temporal_reuse_fraction == pytest.approx(0.125)

    def test_fully_reused_tensor(self):
        volume = VolumeMetrics("Y", total=10, reuse=10, temporal_reuse=10, spatial_reuse=0,
                               footprint=1)
        assert volume.unique == 0
        assert volume.reuse_factor == 10.0

    def test_as_dict(self):
        volume = VolumeMetrics("A", 4, 2, 1, 1, 3)
        data = volume.as_dict()
        assert data["unique"] == 2 and data["tensor"] == "A"


class TestComputeVolumeMetrics:
    def test_pure_temporal_reuse(self):
        # one PE, 4 time stamps, always the same element
        pe = np.zeros(4, dtype=np.int64)
        rank = np.arange(4, dtype=np.int64)
        element = np.zeros(4, dtype=np.int64)
        table = np.full((1, 1), -1, dtype=np.int64)
        volume = compute_volume_metrics("Y", pe, rank, element, table, 1, spatial_interval=1)
        assert volume.total == 4
        assert volume.temporal_reuse == 3
        assert volume.spatial_reuse == 0
        assert volume.unique == 1

    def test_spatial_reuse_through_neighbour(self):
        # two PEs; PE1 uses at t+1 what PE0 used at t
        pe = np.array([0, 1], dtype=np.int64)
        rank = np.array([0, 1], dtype=np.int64)
        element = np.array([7, 7], dtype=np.int64)
        table = np.array([[-1], [0]], dtype=np.int64)  # PE1's predecessor is PE0
        volume = compute_volume_metrics("A", pe, rank, element, table, 2, spatial_interval=1)
        assert volume.spatial_reuse == 1
        assert volume.unique == 1

    def test_no_reuse_without_adjacency(self):
        pe = np.array([0, 1], dtype=np.int64)
        rank = np.array([0, 5], dtype=np.int64)  # too far apart in time
        element = np.array([7, 7], dtype=np.int64)
        table = np.array([[-1], [0]], dtype=np.int64)
        volume = compute_volume_metrics("A", pe, rank, element, table, 2, spatial_interval=1)
        assert volume.reuse == 0

    def test_multicast_same_cycle(self):
        pe = np.array([0, 1], dtype=np.int64)
        rank = np.array([3, 3], dtype=np.int64)
        element = np.array([9, 9], dtype=np.int64)
        table = np.array([[1], [0]], dtype=np.int64)
        volume = compute_volume_metrics("A", pe, rank, element, table, 2, spatial_interval=0)
        assert volume.spatial_reuse >= 1
        assert volume.unique == 1

    def test_duplicate_pairs_collapse(self):
        pe = np.array([0, 0], dtype=np.int64)
        rank = np.array([0, 0], dtype=np.int64)
        element = np.array([1, 1], dtype=np.int64)
        table = np.full((1, 1), -1, dtype=np.int64)
        volume = compute_volume_metrics("A", pe, rank, element, table, 1, spatial_interval=1)
        assert volume.total == 1

    def test_empty_input(self):
        empty = np.zeros(0, dtype=np.int64)
        table = np.full((1, 1), -1, dtype=np.int64)
        volume = compute_volume_metrics("A", empty, empty, empty, table, 1, spatial_interval=1)
        assert volume.total == 0 and volume.reuse_factor == 1.0


class TestUtilization:
    def test_injective_case(self):
        pe = np.array([0, 1, 0, 1], dtype=np.int64)
        rank = np.array([0, 0, 1, 1], dtype=np.int64)
        util = compute_utilization(pe, rank, num_pes=4)
        assert util.num_time_stamps == 2
        assert util.compute_delay_cycles == 2
        assert util.average_utilization == pytest.approx(0.5)
        assert util.max_utilization == pytest.approx(0.5)
        assert util.is_injective

    def test_collisions_extend_compute_delay(self):
        pe = np.zeros(6, dtype=np.int64)
        rank = np.array([0, 0, 0, 1, 1, 2], dtype=np.int64)
        util = compute_utilization(pe, rank, num_pes=2)
        assert util.compute_delay_cycles == 3 + 2 + 1
        assert not util.is_injective

    def test_empty(self):
        empty = np.zeros(0, dtype=np.int64)
        util = compute_utilization(empty, empty, num_pes=4)
        assert util.average_utilization == 0.0


class TestLatencyAndBandwidth:
    def _volumes(self):
        return {
            "A": VolumeMetrics("A", 100, 60, 30, 30, 50),
            "B": VolumeMetrics("B", 100, 80, 80, 0, 20),
            "Y": VolumeMetrics("Y", 100, 90, 90, 0, 10),
        }

    def test_latency_bound_selection(self):
        util = UtilizationMetrics(100, 4, 25, 100, 25, 4)
        memory = MemoryHierarchy.default(scratchpad_bandwidth_bits=16, word_bits=16)
        latency = compute_latency(util, self._volumes(), ["A", "B"], ["Y"], memory)
        assert latency.read_delay == pytest.approx(60.0)
        assert latency.write_delay == pytest.approx(10.0)
        assert latency.latency == pytest.approx(60.0)
        assert latency.bottleneck == "read"
        assert latency.is_memory_bound

    def test_compute_bound_case(self):
        util = UtilizationMetrics(100, 4, 25, 100, 200, 4)
        memory = MemoryHierarchy.default(scratchpad_bandwidth_bits=1024, word_bits=16)
        latency = compute_latency(util, self._volumes(), ["A", "B"], ["Y"], memory)
        assert latency.bottleneck == "compute"
        assert latency.is_compute_bound

    def test_bandwidth_per_tensor(self):
        report = compute_bandwidth(self._volumes(), compute_delay_cycles=50)
        assert report["A"].scratchpad_words_per_cycle == pytest.approx(40 / 50)
        assert report["A"].interconnect_words_per_cycle == pytest.approx(30 / 50)
        assert report.total_scratchpad_words_per_cycle == pytest.approx((40 + 20 + 10) / 50)
        assert report.total_scratchpad_bits_per_cycle(16) == pytest.approx(70 / 50 * 16)


class TestSpacetimeMapAndAssignment:
    def test_predecessor_table_shape(self):
        spacetime = SpacetimeMap(PEArray((3, 3)), Mesh())
        table = spacetime.predecessor_table()
        assert table.shape[0] == 9
        assert (table[4] >= 0).sum() == 8  # centre PE has 8 predecessors

    def test_spatial_interval_follows_interconnect(self):
        assert SpacetimeMap(PEArray((2, 2)), Systolic2D()).spatial_interval == 1
        assert SpacetimeMap(PEArray((4,)), Multicast1D()).spatial_interval == 0

    def test_example_maps_match_equation6(self):
        spacetime = SpacetimeMap(PEArray((2, 2)), Systolic2D())
        maps = spacetime.example_maps(origin=(0, 0), time=0)
        assert any("PE[0, 1]" in text for text in maps)
        assert any("PE[1, 0]" in text for text in maps)

    def test_assignment_string_matches_paper_form(self):
        op = gemm(2, 2, 4)
        dataflow = Dataflow.from_exprs("(IJ-P | J,IJK-T)", op, ["i", "j"], ["i + j + k"])
        assignment = assignments_for(op, dataflow, "Y")[0]
        text = str(assignment)
        assert "Y[" in text and "PE[" in text and "T[" in text

    def test_output_is_detected_stationary(self):
        op = gemm(2, 2, 4)
        dataflow = Dataflow.from_exprs("(IJ-P | J,IJK-T)", op, ["i", "j"], ["i + j + k"])
        output = assignments_for(op, dataflow, "Y")[0]
        input_a = assignments_for(op, dataflow, "A")[0]
        assert output.is_pe_stationary()
        assert not input_a.is_pe_stationary()
