"""Unit tests for dataflow relations and their validation."""

import pytest

from repro.arch import PEArray
from repro.core import Dataflow
from repro.core.notation import dataflow_shorthand, parse_shorthand_name
from repro.errors import DataflowError, ParseError
from repro.tensor import gemm


@pytest.fixture()
def op():
    return gemm(16, 16, 8)


class TestConstruction:
    def test_from_exprs_with_strings(self, op):
        dataflow = Dataflow.from_exprs("test", op, ["i mod 8", "j mod 8"],
                                       ["fl(i/8)", "fl(j/8)", "i mod 8 + j mod 8 + k"])
        assert dataflow.pe_rank == 2
        assert dataflow.time_rank == 3

    def test_from_strings(self):
        dataflow = Dataflow.from_strings(
            "paper-example",
            "{ S[i,j,k] -> PE[i, j] }",
            "{ S[i,j,k] -> T[i + j + k] }",
        )
        assert dataflow.stamp_of((1, 0, 2)) == ((1, 0), (3,))

    def test_space_time_dim_mismatch_rejected(self):
        with pytest.raises(DataflowError):
            Dataflow.from_strings(
                "bad",
                "{ S[i,j] -> PE[i] }",
                "{ S[a,b] -> T[a] }",
            )

    def test_non_functional_map_rejected(self):
        from repro.isl import parse_map

        relation = parse_map("{ S[i] -> PE[p] : p = i }")
        functional = parse_map("{ S[i] -> T[i] }")
        with pytest.raises(DataflowError):
            Dataflow("bad", relation, functional)

    def test_str_contains_both_stamps(self, op):
        dataflow = Dataflow.from_exprs("x", op, ["i"], ["j", "k"])
        assert "PE[" in str(dataflow) and "T[" in str(dataflow)


class TestStampEvaluation:
    def test_paper_quasi_affine_example(self, op):
        dataflow = Dataflow.from_exprs("tpu", op, ["i mod 8", "j mod 8"],
                                       ["fl(i/8)", "fl(j/8)", "i mod 8 + j mod 8 + k"])
        pe, time = dataflow.stamp_of((9, 3, 2))
        assert pe == (1, 3)
        assert time == (1, 0, 1 + 3 + 2)

    def test_time_bounds(self, op):
        dataflow = Dataflow.from_exprs("skew", op, ["i mod 8", "j mod 8"],
                                       ["i mod 8 + j mod 8 + k"])
        (lo, hi), = [dataflow.time_bounds(op)[0]]
        assert lo == 0
        assert hi == 7 + 7 + 7

    def test_pe_bounds(self, op):
        dataflow = Dataflow.from_exprs("skew", op, ["i mod 8", "j"], ["k"])
        bounds = dataflow.pe_bounds(op)
        assert bounds[0] == (0, 7)
        assert bounds[1] == (0, 15)

    def test_bind_restricts_domain(self, op):
        dataflow = Dataflow.from_exprs("x", op, ["i"], ["j", "k"])
        bound = dataflow.bind(op)
        assert bound.space_map.domain is not None
        assert bound.space_map.domain.count() == op.num_instances()


class TestValidation:
    def test_valid_injective_dataflow(self, op):
        dataflow = Dataflow.from_exprs("ok", op, ["i mod 8", "j mod 8"],
                                       ["fl(i/8)", "fl(j/8)", "k"])
        validation = dataflow.validate(op, PEArray((8, 8)))
        assert validation.is_valid
        assert validation.is_injective
        assert validation.num_spacetime_stamps == op.num_instances()

    def test_out_of_range_detected(self, op):
        dataflow = Dataflow.from_exprs("broken", op, ["i", "j"], ["k"])
        validation = dataflow.validate(op, PEArray((8, 8)))
        assert not validation.is_valid
        assert validation.out_of_range_instances > 0

    def test_non_injective_detected(self, op):
        dataflow = Dataflow.from_exprs("collide", op, ["i mod 8", "j mod 8"],
                                       ["fl(i/8)", "fl(j/8)"])
        validation = dataflow.validate(op, PEArray((8, 8)))
        assert validation.is_valid  # in range, but...
        assert not validation.is_injective
        assert validation.max_instances_per_stamp == 8

    def test_rank_mismatch(self, op):
        dataflow = Dataflow.from_exprs("rank", op, ["i"], ["j", "k"])
        validation = dataflow.validate(op, PEArray((8, 8)))
        assert not validation.is_valid


class TestNotationHelpers:
    def test_shorthand_roundtrip(self):
        name = dataflow_shorthand(["i", "j"], ["j", "ijk"])
        assert name == "(IJ-P | J,IJK-T)"
        assert parse_shorthand_name(name) == ("IJ", ("J", "IJK"))

    def test_parse_invalid_shorthand(self):
        with pytest.raises(ParseError):
            parse_shorthand_name("not a dataflow name")
