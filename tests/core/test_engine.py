"""Tests for the shared evaluation engine (repro.core.engine)."""

import numpy as np
import pytest

from repro.core import Dataflow
from repro.core.analyzer import TenetAnalyzer
from repro.core.engine import (
    EvaluationEngine,
    RelationCache,
    RelationMaterializer,
    _grouped_volume_metrics,
    _rank_keys,
    _utilization_dense,
    dataflow_signature,
    op_signature,
)
from repro.core.utilization import compute_utilization
from repro.errors import DataflowError, ExplorationError, ModelError
from repro.experiments.common import make_arch
from repro.dse.pruning import pruned_candidates
from repro.isl.enumeration import sorted_unique
from repro.isl.expr import var
from repro.tensor.kernels import conv2d, gemm


def report_dict(report):
    """Comparable view of a report: everything except the wall-clock field."""
    data = report.as_dict()
    data.pop("analysis_seconds")
    data["notes"] = list(report.notes)
    return data


def small_candidates(op, pe_dims=(4, 4), count=6):
    return list(pruned_candidates(op, pe_dims=pe_dims, allow_packing=True,
                                  max_candidates=count))


class TestSignatures:
    def test_dataflow_signature_ignores_name(self):
        op = gemm(8, 8, 8)
        a = Dataflow.from_exprs("one", op.domain.space, ["i mod 4", "j mod 4"], ["k"])
        b = Dataflow.from_exprs("two", op.domain.space, ["i mod 4", "j mod 4"], ["k"])
        assert dataflow_signature(a) == dataflow_signature(b)

    def test_dataflow_signature_separates_structures(self):
        op = gemm(8, 8, 8)
        a = Dataflow.from_exprs("d", op.domain.space, ["i mod 4", "j mod 4"], ["k"])
        b = Dataflow.from_exprs("d", op.domain.space, ["j mod 4", "i mod 4"], ["k"])
        assert dataflow_signature(a) != dataflow_signature(b)

    def test_op_signature_depends_on_sizes(self):
        assert op_signature(gemm(8, 8, 8)) != op_signature(gemm(8, 8, 16))


class TestMaterializer:
    def test_cached_materialisation_matches_streaming(self):
        op = gemm(12, 12, 12)
        arch = make_arch(pe_dims=(4, 4))
        dataflow = small_candidates(op)[0].bind(op)
        streaming = RelationMaterializer(op)
        cached = RelationMaterializer(op, cache=RelationCache())
        pe_a, tr_a, keys_a, ext_a = streaming.materialize(dataflow, arch.pe_array, 10**7)
        pe_b, tr_b, keys_b, ext_b = cached.materialize(dataflow, arch.pe_array, 10**7)
        np.testing.assert_array_equal(pe_a, pe_b)
        np.testing.assert_array_equal(tr_a, tr_b)
        assert ext_a == ext_b
        for tensor in keys_a:
            for ref_a, ref_b in zip(keys_a[tensor], keys_b[tensor]):
                np.testing.assert_array_equal(ref_a, ref_b)

    def test_cache_is_shared_across_materializers(self):
        op = gemm(8, 8, 8)
        cache = RelationCache()
        first = RelationMaterializer(op, cache=cache)
        second = RelationMaterializer(op, cache=cache)
        assert first.relations(10**6) is second.relations(10**6)
        assert cache.stats()["hits"] >= 1

    def test_cache_eviction(self):
        cache = RelationCache(max_entries=1)
        for size in (4, 6):
            RelationMaterializer(gemm(size, size, size), cache=cache).relations(10**6)
        assert len(cache) == 1

    def test_cache_evicts_least_recently_used(self):
        cache = RelationCache(max_entries=2)
        ops = [gemm(size, size, size) for size in (4, 5, 6)]
        for op in ops[:2]:
            RelationMaterializer(op, cache=cache).relations(10**6)
        # Touch the first entry so the second becomes the eviction victim.
        RelationMaterializer(ops[0], cache=cache).relations(10**6)
        RelationMaterializer(ops[2], cache=cache).relations(10**6)
        assert len(cache) == 2
        hits_before = cache.hits
        RelationMaterializer(ops[0], cache=cache).relations(10**6)
        assert cache.hits == hits_before + 1  # survivor
        RelationMaterializer(ops[1], cache=cache).relations(10**6)  # evicted: rebuilt
        assert cache.misses >= 4

    def test_cache_byte_budget_eviction(self):
        # A tiny byte budget keeps at most one entry regardless of max_entries.
        cache = RelationCache(max_entries=8, max_bytes=1)
        for size in (4, 6):
            RelationMaterializer(gemm(size, size, size), cache=cache).relations(10**6)
        assert len(cache) == 1

    def test_cache_stats_counts_hits_and_misses(self):
        cache = RelationCache()
        materializer = RelationMaterializer(gemm(6, 6, 6), cache=cache)
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 0}
        materializer.relations(10**6)
        materializer.relations(10**6)
        materializer.relations(10**6)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == 2

    def test_oversized_op_is_not_cached(self):
        op = gemm(16, 16, 16)
        cache = RelationCache(max_instances=100)
        materializer = RelationMaterializer(op, cache=cache)
        assert materializer.relations(10**7) is None
        assert len(cache) == 0


class TestFastHelpers:
    def test_rank_keys_matches_searchsorted(self):
        rng = np.random.default_rng(7)
        for span in (50, 10**7):
            keys = rng.integers(0, span, size=2000)
            expected = np.searchsorted(sorted_unique(keys), keys)
            np.testing.assert_array_equal(_rank_keys(keys), expected)

    def test_utilization_dense_matches_reference(self):
        rng = np.random.default_rng(11)
        pe = rng.integers(0, 16, size=3000)
        time_key = rng.integers(0, 40, size=3000)
        t_rank = _rank_keys(time_key)
        dense = _utilization_dense(pe, t_rank, 16)
        reference = compute_utilization(pe, t_rank, 16)
        assert dense == reference


class TestEngineReports:
    @pytest.mark.parametrize("make_op", [
        lambda: gemm(16, 16, 16),
        lambda: conv2d(6, 6, 5, 5, 3, 3),
    ], ids=["gemm", "conv2d"])
    @pytest.mark.parametrize("interconnect", ["2d-systolic", "mesh", "multicast"])
    def test_cached_reports_equal_uncached(self, make_op, interconnect):
        op = make_op()
        arch = make_arch(pe_dims=(4, 4), interconnect=interconnect)
        engine = EvaluationEngine(op, arch, cache=RelationCache())
        for candidate in small_candidates(op):
            uncached = TenetAnalyzer(op, candidate, arch).analyze()
            cached = engine.evaluate(candidate)
            assert report_dict(uncached) == report_dict(cached)

    def test_non_injective_dataflow_equal_reports(self):
        op = gemm(8, 8, 8)
        arch = make_arch(pe_dims=(4, 4))
        collapsing = Dataflow.from_exprs(
            "collapse", op.domain.space, ["i mod 4", "j mod 4"], ["k mod 4"]
        )
        uncached = TenetAnalyzer(op, collapsing, arch).analyze()
        cached = EvaluationEngine(op, arch, cache=RelationCache()).evaluate(collapsing)
        assert report_dict(uncached) == report_dict(cached)
        assert any("not injective" in note for note in cached.notes)

    def test_grouped_kernel_falls_back_on_wide_temporal_interval(self):
        # temporal intervals beyond the sort-adjacency window use the reference
        # kernel on the interp backend; reports still match the analyzer with
        # the same interval.  (The bitset backend handles wide intervals
        # natively — see tests/core/test_backends.py.)
        op = gemm(8, 8, 8)
        arch = make_arch(pe_dims=(4, 4))
        candidate = small_candidates(op)[0]
        uncached = TenetAnalyzer(op, candidate, arch, temporal_interval=9).analyze()
        engine = EvaluationEngine(
            op, arch, cache=RelationCache(), temporal_interval=9, backend="interp"
        )
        assert report_dict(uncached) == report_dict(engine.evaluate(candidate))
        assert engine.stats["reference_path"] > 0

    def test_memo_hit_returns_identical_report(self):
        op = gemm(8, 8, 8)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, cache=RelationCache())
        candidate = small_candidates(op)[0]
        first = engine.evaluate(candidate)
        renamed = Dataflow(
            "other-name", candidate.space_map, candidate.time_map
        )
        second = engine.evaluate(renamed)
        assert second is first
        assert engine.stats["memo_hits"] == 1

    def test_out_of_range_candidate_raises_dataflow_error(self):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        bad = Dataflow.from_exprs("bad", op.domain.space, ["i", "j"], ["k"])
        engine = EvaluationEngine(op, arch, cache=RelationCache())
        with pytest.raises(DataflowError):
            engine.evaluate(bad)

    def test_instance_cap_raises_model_error(self):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, max_instances=10)
        with pytest.raises(ModelError):
            engine.evaluate(small_candidates(op)[0])


class TestBatchEvaluation:
    def test_batch_preserves_candidate_order(self):
        op = gemm(8, 8, 8)
        arch = make_arch(pe_dims=(4, 4))
        candidates = small_candidates(op, count=5)
        batch = EvaluationEngine(op, arch, cache=RelationCache()).evaluate_batch(candidates)
        assert [outcome.name for outcome in batch.outcomes] == [c.name for c in candidates]

    def test_batch_records_mismatched_dims_as_failure(self):
        op = gemm(8, 8, 8)
        arch = make_arch(pe_dims=(4, 4))
        wrong_space = Dataflow.from_exprs(
            "2d-candidate", conv2d(4, 4, 4, 4, 3, 3).domain.space,
            ["k mod 4", "c mod 4"], ["oy", "ox", "ry", "rx"],
        )
        good = small_candidates(op, count=1)[0]
        batch = EvaluationEngine(op, arch, cache=RelationCache()).evaluate_batch(
            [wrong_space, good]
        )
        assert len(batch.reports) == 1
        assert batch.failures and batch.failures[0][1].startswith("SpaceError")

    def test_batch_records_failures(self):
        op = gemm(8, 8, 8)
        arch = make_arch(pe_dims=(4, 4))
        bad = Dataflow.from_exprs("bad", op.domain.space, ["i", "j"], ["k"])
        good = Dataflow.from_exprs("good", op.domain.space, ["i mod 4", "j mod 4"],
                                   ["fl(i/4)", "fl(j/4)", "k"])
        batch = EvaluationEngine(op, arch, cache=RelationCache()).evaluate_batch([bad, good])
        assert len(batch.failures) == 1
        assert batch.failures[0][0] == "bad"
        assert len(batch.reports) == 1

    def test_unknown_objective_rejected(self):
        op = gemm(8, 8, 8)
        engine = EvaluationEngine(op, make_arch(pe_dims=(4, 4)))
        with pytest.raises(ExplorationError):
            engine.evaluate_batch(small_candidates(op, count=2), objective="beauty")

    def test_parallel_matches_serial(self):
        op = gemm(8, 8, 8)
        arch = make_arch(pe_dims=(4, 4))
        candidates = small_candidates(op, count=4)
        serial = EvaluationEngine(op, arch, cache=RelationCache()).evaluate_batch(candidates)
        parallel = EvaluationEngine(op, arch, jobs=2, cache=RelationCache()).evaluate_batch(
            candidates
        )
        assert len(parallel.reports) == len(serial.reports)
        for a, b in zip(serial.reports, parallel.reports):
            assert report_dict(a) == report_dict(b)

    @pytest.mark.parametrize("backend", ["interp", "auto"])
    def test_parallel_matches_serial_per_backend(self, backend):
        op = gemm(12, 12, 12)
        arch = make_arch(pe_dims=(4, 4))
        candidates = small_candidates(op, count=8)
        serial = EvaluationEngine(
            op, arch, cache=RelationCache(), backend=backend
        ).evaluate_batch(candidates)
        parallel = EvaluationEngine(
            op, arch, jobs=2, cache=RelationCache(), backend=backend
        ).evaluate_batch(candidates)
        assert [o.name for o in parallel.outcomes] == [o.name for o in serial.outcomes]
        assert len(parallel.reports) == len(serial.reports)
        for a, b in zip(serial.reports, parallel.reports):
            assert report_dict(a) == report_dict(b)

    def test_parallel_mixes_failures_and_reports_like_serial(self):
        op = gemm(8, 8, 8)
        arch = make_arch(pe_dims=(4, 4))
        bad = Dataflow.from_exprs("bad", op.domain.space, ["i", "j"], ["k"])
        candidates = small_candidates(op, count=5)
        candidates.insert(2, bad)
        serial = EvaluationEngine(op, arch, cache=RelationCache()).evaluate_batch(candidates)
        parallel = EvaluationEngine(op, arch, jobs=3, cache=RelationCache()).evaluate_batch(
            candidates
        )
        assert serial.failures == parallel.failures
        for a, b in zip(serial.reports, parallel.reports):
            assert report_dict(a) == report_dict(b)

    def test_parallel_workers_map_relations_zero_copy(self):
        # The pool initializer ships a shared-memory descriptor per worker and
        # seeds each worker cache with the mapped relations, so no worker ever
        # re-materialises them (every relations() call is a hit).
        op = gemm(12, 12, 12)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, jobs=2, cache=RelationCache())
        candidates = small_candidates(op, count=8)
        batch = engine.evaluate_batch(candidates)
        assert len(batch.reports) == len(candidates)
        assert engine.stats["worker_cache_misses"] == 0
        assert engine.stats["worker_cache_hits"] >= len(candidates)
        cache_stats = engine.cache_stats()
        assert cache_stats["worker_misses"] == engine.stats["worker_cache_misses"]
        assert cache_stats["worker_hits"] == engine.stats["worker_cache_hits"]
        engine.close()

    def test_volume_lower_bounds_are_sound(self):
        # The registered bounds never exceed the true objective score, so
        # early termination can only skip provably-dominated candidates.
        from repro.core.engine import LOWER_BOUNDS, OBJECTIVES

        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, cache=RelationCache())
        relations = engine.materializer.relations(10**6)
        footprints = {t: rel.footprint for t, rel in relations.tensors.items()}
        for candidate in small_candidates(op, count=8):
            report = engine.evaluate(candidate)
            for objective, bound_fn in LOWER_BOUNDS.items():
                bound = bound_fn(report.utilization, arch, footprints)
                assert bound <= OBJECTIVES[objective](report) + 1e-9, (
                    f"{objective} bound {bound} exceeds the true score for "
                    f"{candidate.name}"
                )

    def test_sbw_early_termination_prunes_and_preserves_best(self):
        # Once a long-delay, low-bandwidth candidate is known, the footprint
        # bound (divided by each candidate's compute delay) prunes the
        # highly-parallel candidates without changing the best report.
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        from repro.isl.expr import var

        i, j, k = (var(dim) for dim in op.loop_dims)
        serial = Dataflow.from_exprs(
            "serial", op.domain.space, [i % 4, j % 4], [i, j, k]
        )
        candidates = [serial] + small_candidates(op, count=10)
        cache = RelationCache()
        full = EvaluationEngine(op, arch, cache=cache, memoize=False).evaluate_batch(
            candidates, objective="sbw"
        )
        pruned = EvaluationEngine(op, arch, cache=cache, memoize=False).evaluate_batch(
            candidates, objective="sbw", early_termination=True
        )
        score = lambda report: (report.scratchpad_bandwidth_bits(), report.dataflow)
        best_full = min(full.reports, key=score)
        best_pruned = min(pruned.reports, key=score)
        assert report_dict(best_full) == report_dict(best_pruned)
        assert len(pruned.pruned) > 0
        assert len(pruned.reports) + len(pruned.pruned) == len(candidates)
        # Every pruned bound provably exceeds the best fully evaluated score.
        best_score = best_full.scratchpad_bandwidth_bits()
        for _, bound in pruned.pruned:
            assert bound > best_score

    def test_sbw_rank_preservation_through_explorer(self):
        from repro.dse.explorer import DesignSpaceExplorer
        from repro.isl.expr import var

        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        i, j, k = (var(dim) for dim in op.loop_dims)
        serial = Dataflow.from_exprs(
            "serial", op.domain.space, [i % 4, j % 4], [i, j, k]
        )
        candidates = [serial] + small_candidates(op, count=10)
        full = DesignSpaceExplorer(op, arch, objective="sbw").explore(candidates)
        pruned = DesignSpaceExplorer(op, arch, objective="sbw").explore(
            candidates, early_termination=True
        )
        assert pruned.best.dataflow == full.best.dataflow
        assert report_dict(pruned.best) == report_dict(full.best)
        assert len(pruned.pruned) > 0

    def test_early_termination_keeps_best_candidate(self):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        candidates = small_candidates(op, count=12)
        cache = RelationCache()
        full = EvaluationEngine(op, arch, cache=cache, memoize=False).evaluate_batch(
            candidates, objective="latency"
        )
        pruned = EvaluationEngine(op, arch, cache=cache, memoize=False).evaluate_batch(
            candidates, objective="latency", early_termination=True
        )
        best_full = min(full.reports, key=lambda r: (r.latency_cycles, r.dataflow))
        best_pruned = min(pruned.reports, key=lambda r: (r.latency_cycles, r.dataflow))
        assert report_dict(best_full) == report_dict(best_pruned)
        # Every pruned candidate's bound proves it cannot beat the best score.
        best_score = best_full.latency_cycles
        for _, bound in pruned.pruned:
            assert bound > best_score
        # Pruned + evaluated covers the whole batch.
        assert len(pruned.reports) + len(pruned.pruned) == len(candidates)


class TestStageProfile:
    def test_serial_stage_seconds_accumulate(self):
        op = gemm(12, 12, 12)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, cache=RelationCache())
        engine.evaluate_batch(small_candidates(op, count=4))
        profile = engine.profile()
        assert set(profile) >= {"materialise", "stamps", "utilization", "volumes", "rank"}
        assert profile["stamps"] > 0
        assert profile["volumes"] > 0
        assert profile["rank"] > 0
        # profile() returns a snapshot, not the live dict.
        profile["stamps"] = -1
        assert engine.stage_seconds["stamps"] >= 0

    def test_parallel_stage_seconds_aggregate_from_workers(self):
        op = gemm(12, 12, 12)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, jobs=2, cache=RelationCache())
        engine.evaluate_batch(small_candidates(op, count=8))
        profile = engine.profile()
        assert profile["stamps"] > 0
        assert profile["volumes"] > 0
        engine.close()


class TestGroupCountFloors:
    """The candidate-dependent unique-volume floor on link-free interconnects."""

    def _binary_candidates(self, op, count):
        import itertools

        from repro.dse.space import enumerate_binary_dataflows

        return list(itertools.islice(enumerate_binary_dataflows(op.loop_dims), count))

    def test_floor_is_sound_and_tighter_than_footprint(self):
        # Without links the distinct-(PE, element) group count never exceeds
        # the true unique volume, and it dominates the constant footprint.
        op = gemm(8, 8, 8)
        arch = make_arch(pe_dims=(16, 16), interconnect="none")
        engine = EvaluationEngine(op, arch, cache=RelationCache(), memoize=False)
        assert not engine._has_links
        relations = engine.materializer.relations(10**7)
        checked = 0
        for candidate in self._binary_candidates(op, 40):
            try:
                report = engine.evaluate(candidate)
            except (ModelError, DataflowError):
                continue
            pe_lin, _ = engine.backend.stamps(
                relations, candidate.bind(op), arch.pe_array
            )
            floors = engine._group_count_floors(pe_lin, relations)
            for tensor, floor in floors.items():
                assert floor <= report.volumes[tensor].unique
                assert floor >= relations.tensors[tensor].footprint
            checked += 1
        assert checked >= 10

    def test_unique_volume_sweep_prunes_and_preserves_rank(self):
        # ROADMAP "stronger volume bounds": the candidate-dependent floor
        # actually prunes unique_volume sweeps of the unpruned binary space,
        # and the surviving best report is bit-identical to the full sweep's.
        op = gemm(8, 8, 8)
        arch = make_arch(pe_dims=(16, 16), interconnect="none")
        candidates = self._binary_candidates(op, 120)
        cache = RelationCache()
        full = EvaluationEngine(op, arch, cache=cache, memoize=False).evaluate_batch(
            candidates, objective="unique_volume"
        )
        pruned = EvaluationEngine(op, arch, cache=cache, memoize=False).evaluate_batch(
            candidates, objective="unique_volume", early_termination=True
        )
        score = lambda r: (r.unique_volume(), r.dataflow)
        best_full = min(full.reports, key=score)
        best_pruned = min(pruned.reports, key=score)
        assert report_dict(best_full) == report_dict(best_pruned)
        assert len(pruned.pruned) > 0
        best_score = best_full.unique_volume()
        for _, bound in pruned.pruned:
            assert bound > best_score
        assert len(pruned.reports) + len(pruned.pruned) + len(pruned.failures) == len(
            candidates
        )

    def test_footprint_floor_kept_when_links_exist(self):
        # With links the group count is not a sound unique-volume floor (a
        # group's first access can be served spatially), so the engine keeps
        # the constant footprint floor — which can never prune candidates of
        # the operation it was derived from.
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, cache=RelationCache(), memoize=False)
        assert engine._has_links
        batch = engine.evaluate_batch(
            small_candidates(op, count=8),
            objective="unique_volume",
            early_termination=True,
        )
        assert not batch.pruned


class TestBatchBestScoreSeed:
    def test_seeded_best_score_prunes_first_batch(self):
        # Streaming callers thread the running best through batches: a seeded
        # best_score below every candidate's bound prunes the whole batch.
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, cache=RelationCache(), memoize=False)
        candidates = small_candidates(op, count=6)
        batch = engine.evaluate_batch(
            candidates, objective="latency", early_termination=True, best_score=0.5
        )
        assert len(batch.pruned) == len(candidates)

    def test_seed_matches_contiguous_sweep(self):
        # Evaluating [a; b] in one batch equals evaluating a then b with the
        # threaded best score (the SweepSession streaming contract).
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        candidates = small_candidates(op, count=10)
        whole = EvaluationEngine(op, arch, cache=RelationCache(), memoize=False)
        one = whole.evaluate_batch(
            candidates, objective="latency", early_termination=True
        )
        split = EvaluationEngine(op, arch, cache=RelationCache(), memoize=False)
        first = split.evaluate_batch(
            candidates[:4], objective="latency", early_termination=True
        )
        best = min(r.latency_cycles for r in first.reports)
        second = split.evaluate_batch(
            candidates[4:],
            objective="latency",
            early_termination=True,
            best_score=best,
        )
        merged = [(o.name, o.pruned, o.error) for o in first.outcomes + second.outcomes]
        assert merged == [(o.name, o.pruned, o.error) for o in one.outcomes]


class TestPersistentPool:
    def test_parallel_batches_reuse_one_pool(self):
        op = gemm(12, 12, 12)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, jobs=2, cache=RelationCache())
        candidates = small_candidates(op, count=8)
        engine.evaluate_batch(candidates[:4])
        pool = engine._pool
        assert pool is not None
        engine.evaluate_batch(candidates[4:])
        assert engine._pool is pool
        engine.close()
        assert engine._pool is None

    def test_broken_pool_is_rebuilt(self):
        # A worker crash must not poison the engine forever: the next batch
        # gets a fresh pool instead of re-raising BrokenProcessPool.
        op = gemm(12, 12, 12)
        arch = make_arch(pe_dims=(4, 4))
        engine = EvaluationEngine(op, arch, jobs=2, cache=RelationCache())
        candidates = small_candidates(op, count=6)
        engine.evaluate_batch(candidates[:3])
        broken = engine._pool
        broken._broken = "simulated worker crash"
        batch = engine.evaluate_batch(candidates[3:])
        assert engine._pool is not broken
        assert len(batch.reports) == 3
        engine.close()
