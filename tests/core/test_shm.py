"""Shared-memory relation lifecycle tests (repro.core.shm).

The ``jobs > 1`` sweep workers map the candidate-invariant relation arrays
from one parent-owned shared segment.  These tests pin the contract:

* the round trip is exact and zero-copy (views into the mapped buffer),
* ``EvaluationEngine.close()`` unlinks the segment,
* a ``BrokenProcessPool`` rebuild replaces (not leaks) the segment,
* interpreter exit without ``close()`` leaves no ``/dev/shm`` entry behind.
"""

import glob
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core.engine import EvaluationEngine, RelationCache
from repro.core.shm import attach_relations, share_relations, shared_memory_available
from repro.dse.pruning import pruned_candidates
from repro.experiments.common import make_arch
from repro.tensor.kernels import gemm

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="multiprocessing.shared_memory unavailable"
)

HAS_DEV_SHM = os.path.isdir("/dev/shm")


def shm_entries():
    return set(glob.glob("/dev/shm/psm_*")) if HAS_DEV_SHM else set()


def make_relations(op=None):
    op = op or gemm(12, 12, 12)
    engine = EvaluationEngine(op, make_arch(pe_dims=(4, 4)), cache=RelationCache())
    return engine.materializer.relations(10**7)


class TestRoundTrip:
    def test_attach_rebuilds_identical_relations(self):
        relations = make_relations()
        shared = share_relations(relations)
        try:
            attached = attach_relations(shared.descriptor)
            assert attached is not None
            assert attached.signature == relations.signature
            assert attached.chunk_size == relations.chunk_size
            assert attached.total == relations.total
            assert attached.inclusive_bounds == relations.inclusive_bounds
            for dim, column in relations.domain.items():
                np.testing.assert_array_equal(attached.domain[dim], column)
            for tensor, rel in relations.tensors.items():
                other = attached.tensors[tensor]
                assert other.extent == rel.extent
                assert other.footprint == rel.footprint
                np.testing.assert_array_equal(other.dense_keys, rel.dense_keys)
                for mine, theirs in zip(rel.raw_keys, other.raw_keys):
                    np.testing.assert_array_equal(theirs, mine)
                assert [c for c in attached.element_bounds[tensor].bounds] == [
                    tuple(b) for b in relations.element_bounds[tensor].bounds
                ]
        finally:
            shared.close()

    def test_attached_arrays_are_readonly_views_not_copies(self):
        relations = make_relations()
        shared = share_relations(relations)
        try:
            attached = attach_relations(shared.descriptor)
            column = next(iter(attached.domain.values()))
            assert not column.flags.writeable
            with pytest.raises(ValueError):
                column[0] = 99
            # The view's memory is the mapped segment, not a private copy.
            assert column.base is not None
        finally:
            shared.close()

    def test_attach_after_unlink_returns_none(self):
        relations = make_relations()
        shared = share_relations(relations)
        descriptor = shared.descriptor
        shared.close()
        import repro.core.shm as shm_module

        shm_module._ATTACHED.pop(descriptor.segment, None)
        assert attach_relations(descriptor) is None

    def test_close_is_idempotent(self):
        shared = share_relations(make_relations())
        assert shared.alive
        shared.close()
        assert not shared.alive
        shared.close()


@pytest.mark.skipif(not HAS_DEV_SHM, reason="needs a POSIX /dev/shm")
class TestEngineLifecycle:
    def test_engine_close_unlinks_segment(self):
        before = shm_entries()
        op = gemm(12, 12, 12)
        engine = EvaluationEngine(
            op, make_arch(pe_dims=(4, 4)), jobs=2, cache=RelationCache()
        )
        candidates = list(pruned_candidates(op, pe_dims=(4, 4), max_candidates=8))
        engine.evaluate_batch(candidates)
        created = shm_entries() - before
        assert len(created) == 1
        assert engine.cache_stats()["worker_misses"] == 0
        engine.close()
        assert not (shm_entries() - before)

    def test_broken_pool_rebuild_replaces_segment(self):
        from concurrent.futures.process import BrokenProcessPool

        before = shm_entries()
        op = gemm(12, 12, 12)
        engine = EvaluationEngine(
            op, make_arch(pe_dims=(4, 4)), jobs=2, cache=RelationCache()
        )
        candidates = list(pruned_candidates(op, pe_dims=(4, 4), max_candidates=8))
        try:
            reference = engine.evaluate_batch(candidates)
            first = shm_entries() - before

            # Kill a worker process out from under the pool.  Depending on
            # when the executor's management thread notices the dead worker,
            # the next batch either surfaces BrokenProcessPool (crash seen
            # mid-batch; the engine tears down pool and segment) or succeeds
            # on a transparently rebuilt pool (_ensure_pool saw the broken
            # flag first).  Both must leave a fresh working segment behind.
            engine._pool.submit(os._exit, 1)
            import time

            deadline = time.time() + 10
            while not getattr(engine._pool, "_broken", False) and time.time() < deadline:
                time.sleep(0.01)
            try:
                engine.evaluate_batch(candidates)
            except BrokenProcessPool:
                # Crash-safe unlink: nothing left behind before the rebuild.
                assert not (shm_entries() - before)

            rebuilt = engine.evaluate_batch(candidates)
            second = shm_entries() - before
            assert len(second) == 1 and second != first
            assert len(rebuilt.reports) == len(reference.reports)
            for a, b in zip(reference.reports, rebuilt.reports):
                da, db = a.as_dict(), b.as_dict()
                da.pop("analysis_seconds"), db.pop("analysis_seconds")
                assert da == db
        finally:
            engine.close()
        assert not (shm_entries() - before)

    def test_interpreter_exit_unlinks_segment(self, tmp_path):
        """A sweep that never calls close() must not leak /dev/shm entries."""
        script = textwrap.dedent(
            """
            import glob, sys
            from repro.core.engine import EvaluationEngine, RelationCache
            from repro.dse.pruning import pruned_candidates
            from repro.experiments.common import make_arch
            from repro.tensor.kernels import gemm

            op = gemm(12, 12, 12)
            engine = EvaluationEngine(
                op, make_arch(pe_dims=(4, 4)), jobs=2, cache=RelationCache()
            )
            candidates = list(pruned_candidates(op, pe_dims=(4, 4), max_candidates=6))
            engine.evaluate_batch(candidates)
            segment = engine._shared_relations.name
            print(segment)
            # Exit without engine.close(): the atexit backstop must unlink.
            """
        )
        env = dict(os.environ)
        root = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(root) + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            env=env, timeout=120,
        )
        assert result.returncode == 0, result.stderr
        segment = result.stdout.strip().splitlines()[-1]
        assert segment
        assert not os.path.exists(f"/dev/shm/{segment}"), (
            f"interpreter exit leaked {segment}"
        )
        assert "Traceback" not in result.stderr, result.stderr
