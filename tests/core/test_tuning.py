"""Tests for the measurement-driven auto-tuner (repro.core.tuning).

The load-bearing property throughout: tuning may change evaluation *order and
speed* only — never which reports are produced, never the final ranking of a
full sweep, and never the shard/dedupe/resume semantics of the stream.
"""

import json

import pytest

from repro.core.engine import (
    MIN_TASK_CANDIDATES,
    EvaluationEngine,
    RelationCache,
    dataflow_signature,
    parallel_task_chunk,
)
from repro.core.tuning import ScoreRanker, signature_features
from repro.dse.pruning import pruned_candidates
from repro.errors import ExplorationError
from repro.experiments.common import make_arch
from repro.sweep import CandidateSource, SweepSession, load_ranking, render_ranking
from repro.tensor.kernels import gemm


def make_op():
    return gemm(16, 16, 16)


def make_source(op, count=40):
    return CandidateSource(
        lambda: pruned_candidates(
            op, pe_dims=(4, 4), allow_packing=True, max_candidates=count
        ),
        name="pruned",
    )


def make_engine(op, tune="off", **kwargs):
    kwargs.setdefault("cache", RelationCache())
    return EvaluationEngine(op, make_arch(pe_dims=(4, 4)), tune=tune, **kwargs)


def ranking_key(result):
    return [(e.signature, e.name, e.score) for e in result.ranking]


def run_sweep(op, tune="off", engine_kwargs=None, **session_kwargs):
    engine = make_engine(op, tune=tune, **(engine_kwargs or {}))
    session = SweepSession(engine, objective="latency", **session_kwargs)
    try:
        return engine, session.run(make_source(op))
    finally:
        engine.close()


# -- decisions are a pure function of measurements ----------------------------------


class TestTunerDeterminism:
    def test_identical_measurement_sequences_give_identical_decisions(self):
        op = make_op()
        measurements = [
            (16, 0.4, "fused", 1),
            (16, 0.9, "affine", 1),
            (16, 0.38, "fused", 1),
        ]
        profiles = []
        for _ in range(2):
            engine = make_engine(op, tune="auto")
            for counted, seconds, backend, jobs in measurements:
                engine.tuner.observe_measurement(
                    counted, seconds, backend=backend, jobs=jobs
                )
            engine.tuner.finalize()
            profiles.append(engine.tuner.profile_dict())
            engine.close()
        assert profiles[0] == profiles[1]
        assert profiles[0]["backend"] == "fused"
        assert profiles[0]["calibrated"] is True

    def test_batch_size_targets_wall_clock_and_clamps(self):
        op = make_op()
        engine = make_engine(op, tune="auto")
        tuner = engine.tuner
        tuner.observe_measurement(16, 16 * 0.010, backend="fused")
        tuner.observe_measurement(16, 16 * 0.012, backend="affine")
        assert tuner.calibrated
        # 0.25s target / 10ms per candidate = 25 -> rounded down to 24.
        assert tuner.decided_batch_size == 24
        engine.close()

        fast = make_engine(op, tune="auto")
        fast.tuner.observe_measurement(16, 16 * 1e-6, backend="fused")
        fast.tuner.observe_measurement(16, 16 * 1e-6, backend="affine")
        assert fast.tuner.decided_batch_size == fast.tuner.max_batch_size
        fast.close()

    def test_ranker_fit_is_insertion_order_independent(self):
        candidates = list(pruned_candidates(make_op(), pe_dims=(4, 4)))
        pairs = [
            (dataflow_signature(c), float(100 + 7 * i))
            for i, c in enumerate(candidates)
        ]
        forward, backward = ScoreRanker(), ScoreRanker()
        forward.seed(pairs)
        backward.seed(reversed(pairs))
        forward.fit()
        backward.fit()
        assert forward.ready and backward.ready
        assert list(forward.coef) == list(backward.coef)

    def test_order_is_a_pure_permutation(self):
        op = make_op()
        candidates = list(pruned_candidates(op, pe_dims=(4, 4)))
        engine = make_engine(op, tune="auto")
        tuner = engine.tuner
        for i, c in enumerate(candidates):
            tuner.observe_score(dataflow_signature(c), float(1000 - 13 * i))
        ordered = tuner.order(candidates)
        assert sorted(dataflow_signature(c) for c in ordered) == sorted(
            dataflow_signature(c) for c in candidates
        )
        # Deterministic: same inputs, same order.
        assert [c.name for c in tuner.order(candidates)] == [
            c.name for c in ordered
        ]
        engine.close()

    def test_signature_features_shape_is_stable(self):
        # The profile's ranker_coef round-trips against this length.
        assert signature_features("").size == signature_features(
            "PE[i%4,j%4]|T[k//2,i+j]"
        ).size


# -- bit-identity: tuned == untuned ------------------------------------------------


class TestBitIdentity:
    @pytest.mark.parametrize("backend", ["auto", "interp", "affine", "fused"])
    def test_rankings_identical_tuned_vs_untuned(self, backend):
        op = make_op()
        _, untuned = run_sweep(
            op, tune="off", engine_kwargs={"backend": backend}, batch_size=8
        )
        engine, tuned = run_sweep(
            op, tune="auto", engine_kwargs={"backend": backend}, batch_size=8
        )
        assert ranking_key(tuned) == ranking_key(untuned)
        if backend != "auto":
            # A pinned backend stays authoritative: no calibration race.
            assert engine.backend_name == backend

    def test_rendered_rankings_byte_identical(self, tmp_path):
        op = make_op()
        for tune, name in (("off", "off.jsonl"), ("auto", "on.jsonl")):
            run_sweep(op, tune=tune, checkpoint=str(tmp_path / name), batch_size=8)
        off = render_ranking(load_ranking([str(tmp_path / "off.jsonl")]))
        on = render_ranking(load_ranking([str(tmp_path / "on.jsonl")]))
        assert off == on

    def test_early_termination_best_is_identical(self):
        op = make_op()
        _, untuned = run_sweep(op, tune="off", early_termination=True, batch_size=8)
        _, tuned = run_sweep(op, tune="auto", early_termination=True, batch_size=8)
        # Reordering can change *which* candidates get pruned, but the best
        # candidate can never be pruned, so rank 1 is identical.
        assert ranking_key(tuned)[0] == ranking_key(untuned)[0]


# -- stream semantics under shard + resume -----------------------------------------


class TestStreamSemantics:
    def test_sharded_tuned_sweeps_merge_to_untuned_ranking(self, tmp_path):
        op = make_op()
        _, full = run_sweep(op, tune="off", batch_size=8)
        paths = []
        for index in range(2):
            path = str(tmp_path / f"shard{index}.jsonl")
            engine = make_engine(op, tune="auto")
            session = SweepSession(
                engine, objective="latency", batch_size=8, checkpoint=path
            )
            result = session.run(make_source(op), shard=(index, 2))
            engine.close()
            assert result.duplicates + result.sharded_out + result.evaluated_count \
                == full.evaluated_count + full.duplicates
            paths.append(path)
        merged = load_ranking(paths)
        assert [(e.signature, e.name, e.score) for e in merged] == ranking_key(full)

    def test_resume_after_partial_run_is_complete_and_duplicate_free(self, tmp_path):
        op = make_op()
        _, full = run_sweep(op, tune="off", batch_size=8)
        path = tmp_path / "resume.jsonl"
        run_sweep(op, tune="auto", checkpoint=str(path), batch_size=8)
        # Keep the header, the first 4 results, and the tuning block —
        # simulating a run killed mid-sweep whose profile survived.
        lines = path.read_text().splitlines()
        kept = [lines[0]] + [
            line for line in lines[1:] if json.loads(line)["kind"] == "result"
        ][:4] + [
            line for line in lines[1:] if json.loads(line)["kind"] == "tuning"
        ]
        path.write_text("\n".join(kept) + "\n")

        engine = make_engine(op, tune="auto")
        session = SweepSession(
            engine,
            objective="latency",
            batch_size=8,
            checkpoint=str(path),
            resume=True,
        )
        result = session.run(make_source(op))
        assert result.skipped == 4
        # Resume adopted the persisted profile instead of re-calibrating.
        assert any("adopted" in d for d in engine.tuner.decisions)
        engine.close()
        assert ranking_key(result) == ranking_key(full)
        # Every candidate appears exactly once across the checkpoint.
        signatures = [
            json.loads(line)["signature"]
            for line in path.read_text().splitlines()
            if json.loads(line).get("kind") == "result"
        ]
        assert len(signatures) == len(set(signatures))


# -- profile persistence ------------------------------------------------------------


class TestProfilePersistence:
    def test_checkpoint_roundtrips_profile(self, tmp_path):
        op = make_op()
        path = str(tmp_path / "ck.jsonl")
        engine, _ = run_sweep(op, tune="auto", checkpoint=path, batch_size=8)
        profile = engine.tuner.profile_dict()
        assert profile["calibrated"] is True
        blocks = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
            if json.loads(line).get("kind") == "tuning"
        ]
        assert blocks and blocks[-1]["profile"] == json.loads(json.dumps(profile))
        # The profile pins a fresh engine directly (tune=<dict>).
        pinned = make_engine(op, tune=json.loads(json.dumps(profile)))
        assert pinned.tuner.calibrated
        assert pinned.tuner.decided_batch_size == profile["batch_size"]
        pinned.close()

    def test_foreign_profile_is_refused(self):
        engine, _ = run_sweep(make_op(), tune="auto", batch_size=8)
        profile = engine.tuner.profile_dict()
        with pytest.raises(ExplorationError, match="foreign profile"):
            make_engine(gemm(8, 8, 24), tune=profile)

    def test_newer_profile_version_is_refused(self):
        with pytest.raises(ExplorationError, match="newer"):
            make_engine(make_op(), tune={"version": 99})

    def test_invalid_tune_value_is_refused(self):
        with pytest.raises(ExplorationError, match="tune must be"):
            make_engine(make_op(), tune="aggressive")


# -- the parallel dispatch floor ----------------------------------------------------


class TestParallelDispatch:
    def test_chunk_floor_amortises_small_batches(self):
        # The committed regression case: 40 candidates over jobs=2 used to
        # make 10 tiny 5-candidate tasks; the floor makes 8-candidate tasks.
        assert parallel_task_chunk(40, 2) == MIN_TASK_CANDIDATES
        # Large batches keep the ~4-tasks-per-worker balance.
        assert parallel_task_chunk(1000, 4) == 63
        # The floor never idles a worker: small counts still split evenly.
        assert parallel_task_chunk(10, 2) == 5
        assert parallel_task_chunk(2, 2) == 1

    def test_effective_jobs_goes_serial_when_work_is_too_small(self):
        engine = make_engine(make_op(), tune="auto")
        tuner = engine.tuner
        # Calibration always measures serially.
        assert tuner.effective_jobs(4, 64, pool_warm=False) == 1
        tuner.observe_measurement(16, 16 * 0.001, backend="fused")
        tuner.observe_measurement(16, 16 * 0.002, backend="affine")
        assert tuner.calibrated
        # 64 candidates x 1ms = 64ms of work: under the cold-pool floor,
        # over the warm-pool floor.
        assert tuner.effective_jobs(4, 64, pool_warm=False) == 1
        assert tuner.effective_jobs(4, 64, pool_warm=True) == 4
        assert any("jobs:" in d for d in tuner.decisions)
        engine.close()
