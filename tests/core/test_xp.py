"""The array-namespace layer: registry, probing, resolution, device plumbing."""

import numpy as np
import pytest

from repro.core import xp as xpmod
from repro.core.engine import EvaluationEngine, RelationCache
from repro.core.xp import (
    NumpyNamespace,
    available_namespaces,
    namespace_probes,
    probe_namespace,
    register_namespace,
    resolve_namespace,
)
from repro.dse.pruning import pruned_candidates
from repro.errors import ExplorationError
from repro.experiments.common import make_arch
from repro.tensor.kernels import gemm

from tests.core.test_backends import report_dict


class FakeDeviceNamespace(NumpyNamespace):
    """Numpy masquerading as a device: every upload/download really copies.

    ``is_numpy`` is False, so the engine takes the device codepath end to end
    — chunk-matrix upload, per-batch coefficient upload, resident layout
    bundles, result download — while the arithmetic stays numpy's.  Tests use
    it to exercise the transfer machinery without torch/cupy installed.
    """

    name = "fake"
    is_numpy = False

    def __init__(self, device=None):
        self.device = device or "fake0"
        self.uploads = 0

    def asarray(self, array, dtype=None):
        self.uploads += 1
        out = np.array(array, copy=True)
        return out.astype(self._DTYPES[dtype]) if dtype else out

    def to_host(self, array):
        return np.array(array, copy=True)


@pytest.fixture
def fake_namespace():
    instances = []

    def factory(device):
        xp = FakeDeviceNamespace(device)
        instances.append(xp)
        return xp

    register_namespace("fake", factory)
    try:
        yield instances
    finally:
        xpmod._REGISTRY.pop("fake", None)
        xpmod._PROBES.pop("fake", None)
        for key in [k for k in xpmod._INSTANCES if k[0] == "fake"]:
            del xpmod._INSTANCES[key]


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_namespaces()
        ok, note = probe_namespace("numpy")
        assert ok and "numpy" in note

    def test_probes_cover_all_builtins(self):
        probes = namespace_probes()
        assert set(probes) >= {"numpy", "torch", "cupy"}
        for ok, note in probes.values():
            assert isinstance(ok, bool) and isinstance(note, str)

    def test_unavailable_namespace_is_reported_not_crashed(self):
        # At most one of torch/cupy is expected in CI; whichever is missing
        # must probe as unavailable with a reason, not raise.
        for name in ("torch", "cupy"):
            ok, note = probe_namespace(name)
            if not ok:
                assert "unavailable" in note

    def test_unknown_namespace_lists_available(self):
        with pytest.raises(ExplorationError, match="numpy"):
            resolve_namespace("tpu")

    def test_unavailable_namespace_error_lists_available(self):
        missing = [n for n in ("torch", "cupy") if not probe_namespace(n)[0]]
        if not missing:
            pytest.skip("both torch and cupy installed")
        with pytest.raises(ExplorationError, match="available"):
            resolve_namespace(missing[0])

    def test_resolve_aliases_and_device_suffix(self):
        assert resolve_namespace("numpy").is_numpy
        assert resolve_namespace("cpu").is_numpy
        assert resolve_namespace("np").is_numpy
        assert resolve_namespace(None).is_numpy

    def test_registered_namespace_resolves_with_device(self, fake_namespace):
        xp = resolve_namespace("fake:fake1")
        assert xp.name == "fake" and xp.device == "fake1"
        assert "fake" in available_namespaces()
        # Singleton per (name, device): the same spec returns the instance.
        assert resolve_namespace("fake:fake1") is xp


class TestEngineDeviceKnob:
    def test_interp_rejects_device(self, fake_namespace):
        op = gemm(8, 8, 8)
        with pytest.raises(ExplorationError, match="interp"):
            EvaluationEngine(op, make_arch(pe_dims=(4, 4)),
                             backend="interp", device="fake")

    def test_unknown_device_rejected_at_construction(self):
        op = gemm(8, 8, 8)
        with pytest.raises(ExplorationError, match="registered namespaces"):
            EvaluationEngine(op, make_arch(pe_dims=(4, 4)), device="tpu")

    @pytest.mark.parametrize("backend", ["affine", "bitset", "fused", "auto"])
    def test_device_reports_bit_identical_to_host(self, backend, fake_namespace):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        candidates = pruned_candidates(
            op, pe_dims=(4, 4), allow_packing=True, max_candidates=8
        )
        host = EvaluationEngine(op, arch, cache=RelationCache(), backend=backend)
        dev = EvaluationEngine(op, arch, cache=RelationCache(), backend=backend,
                               device="fake")
        for candidate in candidates:
            assert report_dict(host.evaluate(candidate)) == report_dict(
                dev.evaluate(candidate)
            )
        assert dev.device_name == "fake"
        assert dev.profile()["transfer"] > 0.0
        assert host.profile()["transfer"] == 0.0

    def test_chunk_matrix_uploaded_once_across_batches(self, fake_namespace):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        candidates = list(pruned_candidates(
            op, pe_dims=(4, 4), allow_packing=True, max_candidates=8
        ))
        engine = EvaluationEngine(op, arch, backend="fused", device="fake")
        engine.evaluate_batch(candidates[:4])
        xp = engine.xp
        assert isinstance(xp, FakeDeviceNamespace)
        first = xp.uploads
        assert first > 0
        engine.evaluate_batch(candidates[4:])
        # The second batch re-uses the resident chunk matrix and layout
        # bundles: new uploads are bounded by the new batch's coefficients
        # and rank columns, far below a from-scratch warm-up.
        assert xp.uploads - first < first

    def test_transfer_stage_in_profile_keys(self):
        op = gemm(8, 8, 8)
        engine = EvaluationEngine(op, make_arch(pe_dims=(4, 4)))
        assert "transfer" in engine.profile()
