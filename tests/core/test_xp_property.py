"""Property-based differential test: fused reports across array namespaces.

Hypothesis draws random GEMM dataflows over uniform-block PE windows —
space-axis pairs, time-stamp orders, skews into the inner time stamp — and
asserts the fused backend's reports are *byte-identical* (JSON-serialised,
sorted keys) across every namespace in the matrix:

* fused on numpy vs the interpreted reference (the pre-existing contract);
* fused on a fake device namespace that really copies on every upload and
  download, so the device codepath is fuzzed even without torch installed;
* fused on torch-CPU whenever torch is importable.

Engines are cached per (operation size, namespace): hypothesis re-draws
candidates, not warm-up work.
"""

import json

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis ships with the dev env
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.core.dataflow import Dataflow
from repro.core.engine import EvaluationEngine
from repro.core.xp import register_namespace
from repro.experiments.common import make_arch
from repro.isl.expr import var
from repro.tensor.kernels import gemm

from tests.core.test_backends import _torch_available, report_dict
from tests.core.test_xp import FakeDeviceNamespace

register_namespace("fuzz-fake", lambda device: FakeDeviceNamespace(device))

NAMESPACES = ["numpy", "fuzz-fake"] + (["torch:cpu"] if _torch_available() else [])

PE_DIMS = (4, 4)
_ENGINES: dict[tuple[int, str], EvaluationEngine] = {}


def _engine(size: int, spec: str) -> EvaluationEngine:
    key = (size, spec)
    engine = _ENGINES.get(key)
    if engine is None:
        arch = make_arch(pe_dims=PE_DIMS)
        if spec == "interp":
            engine = EvaluationEngine(gemm(size, size, size), arch, backend="interp")
        else:
            engine = EvaluationEngine(
                gemm(size, size, size), arch, backend="fused", device=spec
            )
        _ENGINES[key] = engine
    return engine


def _candidate(op, first, second, order, skew):
    rows, cols = PE_DIMS
    dims = list(op.loop_dims)
    remaining = [dim for dim in dims if dim not in (first, second)]
    space = [var(first) % rows, var(second) % cols]
    base = [var(remaining[0]), var(first) // rows, var(second) // cols]
    time_exprs = [base[index] for index in order]
    inner = time_exprs[-1]
    if skew & 1:
        inner = inner + space[0]
    if skew & 2:
        inner = inner + space[1]
    time_exprs = time_exprs[:-1] + [inner]
    name = f"({first}{second}-P|{''.join(map(str, order))}s{skew}-T)"
    return Dataflow.from_exprs(name, op.domain.space, space, time_exprs)


axis_pairs = st.sampled_from([("i", "j"), ("i", "k"), ("j", "i"),
                              ("j", "k"), ("k", "i"), ("k", "j")])
orders = st.permutations(range(3))
skews = st.integers(min_value=0, max_value=3)
sizes = st.sampled_from([8, 12])


@given(size=sizes, pair=axis_pairs, order=orders, skew=skews)
@settings(max_examples=30, deadline=None)
def test_fused_reports_byte_identical_across_namespaces(size, pair, order, skew):
    reference_engine = _engine(size, "interp")
    candidate = _candidate(reference_engine.op, pair[0], pair[1], tuple(order), skew)
    reference = json.dumps(
        report_dict(reference_engine.evaluate(candidate)), sort_keys=True
    ).encode()
    for spec in NAMESPACES:
        engine = _engine(size, spec)
        encoded = json.dumps(
            report_dict(engine.evaluate(candidate)), sort_keys=True
        ).encode()
        assert encoded == reference, f"namespace {spec} diverged for {candidate.name}"
