"""Tests for the Table III dataflow catalog."""

import pytest

from repro.arch import PEArray
from repro.dataflows import all_entries, dataflows_for, get_dataflow, get_entry
from repro.tensor import conv2d, gemm, jacobi2d, mmc, mttkrp

OPERATIONS = {
    "gemm": gemm(16, 16, 16),
    "conv2d": conv2d(8, 8, 7, 7, 3, 3),
    "mttkrp": mttkrp(16, 16, 8, 8),
    "mmc": mmc(16, 16, 8, 8),
    "jacobi2d": jacobi2d(18, 18),
}


class TestCatalogStructure:
    def test_kernel_counts_match_table3(self):
        assert len(dataflows_for("gemm")) >= 5
        assert len(dataflows_for("conv2d")) >= 8
        assert len(dataflows_for("mttkrp")) == 3
        assert len(dataflows_for("jacobi2d")) == 2
        assert len(dataflows_for("mmc")) == 2

    def test_tenet_only_dataflows_exist(self):
        tenet_only = [e for e in all_entries() if not e.data_centric_expressible]
        assert len(tenet_only) >= 10

    def test_lookup_by_name(self):
        entry = get_entry("gemm", "(IJ-P | J,IJK-T)")
        assert entry.kernel == "gemm"
        assert not entry.data_centric_expressible

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_entry("gemm", "(ZZ-P | Q-T)")

    def test_data_centric_entries_have_directives(self):
        for entry in all_entries():
            if entry.data_centric_expressible:
                assert entry.data_centric_directives

    def test_str_mentions_expressibility(self):
        assert "TENET-only" in str(get_entry("gemm", "(IJ-P | J,IJK-T)"))


class TestCatalogDataflowsAreValid:
    @pytest.mark.parametrize("entry", all_entries(), ids=lambda e: f"{e.kernel}:{e.name}")
    def test_every_dataflow_is_valid_on_its_preferred_array(self, entry):
        op = OPERATIONS[entry.kernel]
        dataflow = entry.build()
        validation = dataflow.validate(op, PEArray(entry.preferred_pe_dims))
        assert validation.is_valid, validation.messages

    def test_parameterised_pe_size(self):
        dataflow = get_dataflow("gemm", "(IJ-P | J,IJK-T)", rows=4, cols=4)
        pe, _ = dataflow.stamp_of((5, 6, 0))
        assert pe == (1, 2)

    def test_eyeriss_packing_formula(self):
        dataflow = get_dataflow("conv2d", "(RYOY-P | OY,OX-T)")
        pe, _ = dataflow.stamp_of((0, 5, 0, 3, 0, 2))  # k, c, ox, oy, rx, ry
        assert pe[0] == 2 + 3 * (5 % 4)
        assert pe[1] == 3
