"""Tests for the design-space size computation, pruning and explorer."""

import pytest

from repro.dse import (
    DesignSpaceExplorer,
    data_centric_space_size,
    enumerate_binary_dataflows,
    paper_pruned_count,
    pruned_candidates,
    relation_centric_space_size,
)
from repro.errors import ExplorationError
from repro.experiments.common import make_arch
from repro.tensor import conv2d, gemm


class TestSpaceSizes:
    def test_gemm_sizes_match_paper(self):
        assert relation_centric_space_size(3) == 512
        assert data_centric_space_size(3) == 18
        assert relation_centric_space_size(3) // data_centric_space_size(3) == 28

    def test_conv_space_is_astronomically_larger(self):
        assert relation_centric_space_size(6) == 2 ** 36
        assert relation_centric_space_size(6) > data_centric_space_size(6)

    def test_enumeration_count_matches_formula(self):
        count = sum(1 for _ in enumerate_binary_dataflows(
            ["a", "b"], pe_rank=1, require_nonzero_rows=False))
        assert count == relation_centric_space_size(2)

    def test_enumeration_limit(self):
        dataflows = list(enumerate_binary_dataflows(["a", "b", "c"], limit=10))
        assert len(dataflows) == 10

    def test_enumerated_dataflows_are_well_formed(self):
        dataflow = next(enumerate_binary_dataflows(["i", "j", "k"]))
        assert dataflow.pe_rank == 2
        assert dataflow.time_rank == 1


class TestPruning:
    def test_paper_count(self):
        assert paper_pruned_count() == 25920

    def test_candidates_are_distinct_and_bounded(self):
        op = conv2d(8, 8, 5, 5, 3, 3)
        candidates = list(pruned_candidates(op, max_candidates=20))
        assert len(candidates) == 20
        assert len({c.name for c in candidates}) > 1

    def test_candidates_are_structurally_deduplicated(self):
        from repro.core.engine import dataflow_signature

        op = conv2d(8, 8, 5, 5, 3, 3)
        signatures = [
            dataflow_signature(c)
            for c in pruned_candidates(op, allow_packing=True)
        ]
        assert len(signatures) == len(set(signatures))

    def test_candidates_cover_skewed_and_plain(self):
        op = gemm(16, 16, 16)
        names = [c.name for c in pruned_candidates(op, max_candidates=30)]
        assert any("+skew" in name for name in names)
        assert any("+skew" not in name for name in names)


class TestExplorer:
    def test_explore_ranks_by_latency(self):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(8, 8), interconnect="2d-systolic")
        explorer = DesignSpaceExplorer(op, arch, objective="latency")
        result = explorer.explore(pruned_candidates(op, max_candidates=8))
        assert result.evaluated
        latencies = [report.latency_cycles for report in result.evaluated]
        assert latencies == sorted(latencies)
        assert result.best.latency_cycles == latencies[0]

    def test_invalid_candidates_are_recorded_not_fatal(self):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(4, 4))
        from repro.core import Dataflow

        bad = Dataflow.from_exprs("bad", op, ["i", "j"], ["k"])  # i, j exceed a 4x4 array
        good = Dataflow.from_exprs("good", op, ["i mod 4", "j mod 4"],
                                   ["fl(i/4)", "fl(j/4)", "k"])
        result = DesignSpaceExplorer(op, arch).explore([bad, good])
        assert len(result.failures) == 1
        assert len(result.evaluated) == 1

    def test_unknown_objective_rejected(self):
        op = gemm(8, 8, 8)
        with pytest.raises(ExplorationError):
            DesignSpaceExplorer(op, make_arch(), objective="beauty")

    def test_custom_objective(self):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(8, 8))
        explorer = DesignSpaceExplorer(op, arch, objective=lambda r: r.energy.total_pj)
        result = explorer.explore(pruned_candidates(op, max_candidates=4))
        energies = [report.energy.total_pj for report in result.evaluated]
        assert energies == sorted(energies)

    def test_empty_exploration_raises_on_best(self):
        op = gemm(8, 8, 8)
        result = DesignSpaceExplorer(op, make_arch()).explore([])
        with pytest.raises(ExplorationError):
            _ = result.best

    def test_summary_text(self):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(8, 8))
        result = DesignSpaceExplorer(op, arch).explore(pruned_candidates(op, max_candidates=3))
        assert "objective = latency" in result.summary()

    def test_equal_scores_tie_break_by_name(self):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(8, 8))
        result = DesignSpaceExplorer(op, arch).explore(pruned_candidates(op, max_candidates=12))
        ranking = [(r.latency_cycles, r.dataflow) for r in result.evaluated]
        assert ranking == sorted(ranking)

    def test_duplicate_candidates_are_skipped(self):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(8, 8))
        candidates = list(pruned_candidates(op, max_candidates=3))
        result = DesignSpaceExplorer(op, arch).explore(candidates + candidates)
        assert result.duplicates == 3
        assert len(result.evaluated) == 3
        assert result.num_candidates == 6

    def test_real_bugs_are_not_swallowed(self):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(8, 8))

        def broken_objective(report):
            raise TypeError("boom")

        explorer = DesignSpaceExplorer(op, arch, objective=broken_objective)
        with pytest.raises(TypeError):
            explorer.explore(pruned_candidates(op, max_candidates=2))

    def test_early_termination_keeps_best(self):
        op = gemm(16, 16, 16)
        arch = make_arch(pe_dims=(8, 8))
        candidates = list(pruned_candidates(op, max_candidates=10))
        full = DesignSpaceExplorer(op, arch).explore(candidates)
        pruned = DesignSpaceExplorer(op, arch).explore(candidates, early_termination=True)
        assert pruned.best.dataflow == full.best.dataflow
        assert pruned.best.latency_cycles == full.best.latency_cycles
        assert len(pruned.evaluated) + len(pruned.pruned) == len(full.evaluated)
