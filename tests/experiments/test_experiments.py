"""Integration tests: the experiment drivers reproduce the paper's qualitative claims.

Heavy experiments are run with reduced sizes here; the full-size runs live in
``benchmarks/``.
"""

import pytest

from repro.experiments import (
    design_space_size,
    dse_experiment,
    fig1_reuse_example,
    fig6_latency_bandwidth,
    fig8_runtime,
    fig11_accuracy,
    fig12_reuse,
    table1_features,
    table3_notations,
)
from repro.experiments.common import ExperimentResult, average, make_arch, percent_reduction


class TestCommonHelpers:
    def test_experiment_result_table_and_filter(self):
        result = ExperimentResult("demo", "demo rows")
        result.add_row(a=1, b="x")
        result.add_row(a=2, b="y")
        assert result.column("a") == [1, 2]
        assert result.filter_rows(b="y")[0]["a"] == 2
        assert "demo" in result.table()

    def test_percent_reduction(self):
        assert percent_reduction(100, 60) == pytest.approx(40.0)
        assert percent_reduction(0, 10) == 0.0

    def test_average(self):
        assert average([1, 2, 3]) == 2.0
        assert average([]) == 0.0

    def test_make_arch(self):
        arch = make_arch(pe_dims=(4, 4), interconnect="mesh", bandwidth_bits=64)
        assert arch.num_pes == 16
        assert arch.interconnect.name == "mesh"
        assert arch.scratchpad_bandwidth_bits == 64


class TestFastExperiments:
    def test_fig1_reproduces_six_vs_eight(self):
        result = fig1_reuse_example.run()
        assert result.headline["tenet_reuse_of_A"] == 6
        assert result.headline["data_centric_reuse_of_A"] == pytest.approx(8)

    def test_design_space_sizes(self):
        result = design_space_size.run(max_loops=4)
        gemm_row = result.filter_rows(loops=3)[0]
        assert gemm_row["relation_centric"] == 512
        assert gemm_row["data_centric"] == 18
        assert gemm_row["enumerated"] == 512

    def test_table1_matrix(self):
        result = table1_features.run()
        assert len(result.rows) == 10
        assert all("repro." in row["relation_centric"] or "stamp" in row["relation_centric"]
                   for row in result.rows)

    def test_table3_lists_every_catalog_entry(self):
        from repro.dataflows import all_entries

        result = table3_notations.run()
        assert len(result.rows) == len(all_entries())
        assert result.headline["tenet_only_dataflows"] >= 10


class TestScaledDownHeavyExperiments:
    def test_fig6_tenet_dataflows_win_at_low_bandwidth(self):
        result = fig6_latency_bandwidth.run(
            bandwidths=(64.0, 128.0), gemm_size=16, conv_sizes=(8, 8, 7, 7, 3, 3),
        )
        assert result.headline["gemm_avg_latency_reduction_pct"] >= 0
        assert result.headline["conv_avg_latency_reduction_pct"] >= 0
        # at every bandwidth the best latency overall belongs to a relation-only dataflow
        rows_64 = [row for row in result.rows
                   if row["bandwidth_bits"] == 64.0 and row["kernel"] == "2D-CONV"]
        best = min(rows_64, key=lambda row: row["latency_cycles"])
        assert best["notation"] == "relation-only"

    def test_fig8_polynomial_model_is_faster(self):
        result = fig8_runtime.run(gemm_size=8, conv_sizes=(4, 4, 5, 5, 3, 3))
        assert result.headline["slowdown_factor"] > 1

    def test_fig11_tenet_tracks_simulator_better(self):
        result = fig11_accuracy.run(max_instances=30_000)
        assert (result.headline["tenet_latency_accuracy_pct"]
                > result.headline["baseline_latency_accuracy_pct"])
        assert (result.headline["tenet_util_error_pct"]
                <= result.headline["baseline_util_error_pct"])

    def test_fig12_output_reuse_only_in_tenet(self):
        result = fig12_reuse.run(max_instances=40_000, layers_per_network=1)
        outputs = [row for row in result.rows if row["role"] == "output"]
        assert outputs
        assert all(row["maestro_reuse_factor"] == pytest.approx(1.0) for row in outputs
                   if row["maestro_reuse_factor"] is not None)
        assert any(row["tenet_reuse_factor"] > 1.0 for row in outputs)

    def test_dse_finds_candidates(self):
        result = dse_experiment.run(conv_sizes=(4, 4, 5, 5, 3, 3), max_candidates=6)
        assert result.headline["paper_pruned_space"] == 25920
        assert result.rows
