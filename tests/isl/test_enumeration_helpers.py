"""Unit tests for the enumeration helpers used by the counting backend."""

import numpy as np
import pytest

from repro.errors import UnboundedSetError
from repro.isl.enumeration import (
    array_to_chunk,
    box_size,
    chunk_length,
    chunk_to_array,
    concat_chunks,
    encode_rows,
    filter_chunk,
    iter_box_chunks,
    sorted_unique,
)
from repro.isl.constraint import Constraint
from repro.isl.expr import var


class TestBoxChunks:
    def test_chunks_cover_box_exactly_once(self):
        bounds = {"i": (0, 5), "j": (-2, 3)}
        seen = []
        for chunk in iter_box_chunks(bounds, ["i", "j"], chunk_size=7):
            seen.extend(zip(chunk["i"].tolist(), chunk["j"].tolist()))
        assert len(seen) == 25
        assert len(set(seen)) == 25
        assert min(j for _, j in seen) == -2

    def test_lexicographic_order(self):
        chunks = list(iter_box_chunks({"i": (0, 2), "j": (0, 2)}, ["i", "j"]))
        array = chunk_to_array(chunks[0], ["i", "j"])
        assert array.tolist() == [[0, 0], [0, 1], [1, 0], [1, 1]]

    def test_empty_dimension_yields_nothing(self):
        assert list(iter_box_chunks({"i": (3, 3)}, ["i"])) == []

    def test_box_size(self):
        assert box_size({"i": (0, 4), "j": (1, 3)}, ["i", "j"]) == 8

    def test_cap_on_candidate_points(self):
        with pytest.raises(UnboundedSetError):
            list(iter_box_chunks({"i": (0, 1 << 40)}, ["i"]))


class TestChunkUtilities:
    def test_filter_chunk(self):
        chunk = {"i": np.arange(10)}
        filtered = filter_chunk(chunk, [Constraint.ge(var("i"), 6)])
        assert filtered["i"].tolist() == [6, 7, 8, 9]

    def test_chunk_array_roundtrip(self):
        chunk = {"i": np.array([1, 2]), "j": np.array([3, 4])}
        array = chunk_to_array(chunk, ["i", "j"])
        back = array_to_chunk(array, ["i", "j"])
        assert back["j"].tolist() == [3, 4]

    def test_chunk_length_and_concat(self):
        first = {"i": np.array([1])}
        second = {"i": np.array([2, 3])}
        merged = concat_chunks([first, second], ["i"])
        assert chunk_length(merged) == 3
        assert chunk_length({}) == 0


class TestKeyHelpers:
    def test_sorted_unique_matches_numpy(self):
        values = np.array([5, 1, 5, 3, 1, 1, 9], dtype=np.int64)
        unique, counts = sorted_unique(values, return_counts=True)
        np_unique, np_counts = np.unique(values, return_counts=True)
        assert unique.tolist() == np_unique.tolist()
        assert counts.tolist() == np_counts.tolist()

    def test_sorted_unique_empty(self):
        empty = np.array([], dtype=np.int64)
        assert sorted_unique(empty).size == 0

    def test_encode_rows_mixed_radix_is_injective(self):
        rows = np.array([[0, 0], [1, 0], [0, 1], [3, 2]], dtype=np.int64)
        keys = encode_rows(rows, [(0, 4), (0, 3)])
        assert len(set(keys.tolist())) == 4

    def test_encode_rows_overflow_guard(self):
        rows = np.array([[0, 0]], dtype=np.int64)
        with pytest.raises(ValueError):
            encode_rows(rows, [(0, 1 << 40), (0, 1 << 40)])
