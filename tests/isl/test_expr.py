"""Unit tests for quasi-affine expressions."""

import numpy as np
import pytest

from repro.errors import SpaceError
from repro.isl.expr import AffExpr, const, var, vars_


class TestConstruction:
    def test_variable_has_unit_coefficient(self):
        i = var("i")
        assert i.coefficient("i") == 1
        assert i.coefficient("j") == 0
        assert i.const == 0

    def test_constant(self):
        c = const(7)
        assert c.is_constant
        assert c.const == 7

    def test_zero_coefficients_are_dropped(self):
        expr = var("i") - var("i")
        assert expr.is_constant
        assert expr.const == 0

    def test_vars_helper(self):
        i, j, k = vars_("i", "j", "k")
        assert (i + j + k).variables() == {"i", "j", "k"}


class TestArithmetic:
    def test_addition_merges_terms(self):
        expr = var("i") + var("i") + 3
        assert expr.coefficient("i") == 2
        assert expr.const == 3

    def test_subtraction(self):
        expr = 2 * var("i") - var("j") - 1
        assert expr.evaluate({"i": 4, "j": 3}) == 4

    def test_multiplication_by_integer(self):
        expr = (var("i") + 2) * 3
        assert expr.evaluate({"i": 1}) == 9

    def test_multiplication_by_expression_rejected(self):
        with pytest.raises(TypeError):
            _ = var("i") * var("j")

    def test_negation(self):
        expr = -(var("i") - 5)
        assert expr.evaluate({"i": 2}) == 3

    def test_rsub(self):
        expr = 10 - var("i")
        assert expr.evaluate({"i": 4}) == 6


class TestQuasiAffine:
    def test_floordiv_matches_python_semantics(self):
        expr = var("i") // 8
        assert expr.evaluate({"i": 9}) == 1
        assert expr.evaluate({"i": -1}) == -1

    def test_mod_matches_python_semantics(self):
        expr = var("i") % 8
        assert expr.evaluate({"i": 9}) == 1
        assert expr.evaluate({"i": -1}) == 7

    def test_mod_by_one_is_zero(self):
        assert (var("i") % 1).is_constant

    def test_floordiv_by_one_is_identity(self):
        expr = var("i") // 1
        assert expr.evaluate({"i": 5}) == 5

    def test_constant_folding(self):
        assert (const(17) // 8).const == 2
        assert (const(17) % 8).const == 1

    def test_abs(self):
        expr = (var("i") - var("j")).abs()
        assert expr.evaluate({"i": 2, "j": 5}) == 3

    def test_nested_quasi_terms(self):
        expr = ((var("i") % 8) + var("j")) // 4
        assert expr.evaluate({"i": 11, "j": 5}) == 2

    def test_invalid_divisor(self):
        with pytest.raises(ValueError):
            _ = var("i") // 0
        with pytest.raises(ValueError):
            _ = var("i") % -2


class TestEvaluation:
    def test_missing_variable_raises(self):
        with pytest.raises(SpaceError):
            (var("i") + var("j")).evaluate({"i": 1})

    def test_vectorised_matches_scalar(self):
        expr = 2 * var("i") + (var("j") % 3) - (var("i") // 4)
        i_values = np.arange(-5, 10)
        j_values = np.arange(0, 15)
        vec = expr.evaluate_vec({"i": i_values, "j": j_values})
        scalar = [expr.evaluate({"i": int(a), "j": int(b)}) for a, b in zip(i_values, j_values)]
        assert vec.tolist() == scalar

    def test_vectorised_constant_expression(self):
        expr = const(4)
        out = expr.evaluate_vec({"i": np.arange(3)})
        assert out.tolist() == [4, 4, 4]


class TestSubstitution:
    def test_substitute_linear(self):
        expr = var("x") + 2 * var("y")
        result = expr.substitute({"x": var("i") + 1, "y": const(3)})
        assert result.evaluate({"i": 4}) == 11

    def test_substitute_inside_quasi_term(self):
        expr = var("x") % 8
        result = expr.substitute({"x": var("i") + var("j")})
        assert result.evaluate({"i": 5, "j": 6}) == 3

    def test_rename(self):
        expr = var("i") + var("j")
        renamed = expr.rename({"i": "a"})
        assert renamed.variables() == {"a", "j"}


class TestEqualityHashing:
    def test_structural_equality(self):
        assert var("i") + 1 == 1 + var("i")
        assert var("i") % 8 == var("i") % 8

    def test_hash_consistency(self):
        a = var("i") + 2 * var("j")
        b = 2 * var("j") + var("i")
        assert hash(a) == hash(b)

    def test_immutability(self):
        expr = var("i")
        with pytest.raises(AttributeError):
            expr.const = 5

    def test_str_roundtrip_is_readable(self):
        expr = 2 * var("i") - var("j") + 1
        text = str(expr)
        assert "i" in text and "j" in text
