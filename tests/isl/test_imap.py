"""Unit tests for maps (relations), composition and reversal."""

import numpy as np
import pytest

from repro.errors import NotFunctionalError, SpaceError
from repro.isl import IntMap, IntSet, Space, parse_map, parse_set
from repro.isl.expr import var


def make_gemm_dataflow():
    """The running example of the paper: 2x2x4 GEMM on a 2x2 systolic array."""
    domain = parse_set("{ S[i, j, k] : 0 <= i < 2 and 0 <= j < 2 and 0 <= k < 4 }")
    space_map = parse_map("{ S[i, j, k] -> PE[i, j] }").intersect_domain(domain)
    time_map = parse_map("{ S[i, j, k] -> T[i + j + k] }").intersect_domain(domain)
    return domain, space_map, time_map


class TestFunctionalMaps:
    def test_apply_point(self):
        m = parse_map("{ S[i, j, k] -> PE[i mod 8, j mod 8] }")
        assert m.apply_point((9, 3, 1)).coords == (1, 3)

    def test_apply_env(self):
        m = parse_map("{ S[i, j] -> T[i + j] }")
        assert m.apply_env({"i": 2, "j": 5}) == (7,)

    def test_apply_chunk_vectorised(self):
        m = parse_map("{ S[i, j] -> PE[i mod 4, j] }")
        out = m.apply_chunk({"i": np.array([0, 5, 9]), "j": np.array([1, 2, 3])})
        assert out[m.out_space.dims[0]].tolist() == [0, 1, 1]
        assert out[m.out_space.dims[1]].tolist() == [1, 2, 3]

    def test_functional_expr_must_use_input_dims(self):
        with pytest.raises(SpaceError):
            IntMap.from_exprs(Space("S", ["i"]), "PE", [var("z")])

    def test_count_pairs_equals_domain_size(self):
        _, space_map, _ = make_gemm_dataflow()
        assert space_map.count_pairs() == 16

    def test_identity(self):
        domain = parse_set("{ S[i, j] : 0 <= i < 3 and 0 <= j < 2 }")
        ident = IntMap.identity(domain.space, domain=domain)
        assert ident.apply_point((2, 1)).coords == (2, 1)
        assert ident.count_pairs() == 6


class TestComposition:
    def test_compose_access_with_dataflow_inverse_structure(self):
        # data assignment = dataflow^{-1} . access  is checked in core tests;
        # here we verify the pure symbolic composition S -> PE -> X.
        first = parse_map("{ S[i, j] -> PE[i + j, j] }")
        second = parse_map("{ PE[p, q] -> X[2*p, q + 1] }")
        composed = first.compose(second)
        assert composed.apply_point((1, 2)).coords == (6, 3)

    def test_compose_preserves_domain(self):
        domain = parse_set("{ S[i, j] : 0 <= i < 4 and 0 <= j < 4 }")
        first = parse_map("{ S[i, j] -> PE[i, j] }").intersect_domain(domain)
        second = parse_map("{ PE[p, q] -> Y[p + q] }")
        composed = first.compose(second)
        assert composed.domain is not None
        assert composed.count_pairs() == 16

    def test_compose_with_quasi_affine(self):
        first = parse_map("{ S[i] -> M[i mod 6] }")
        second = parse_map("{ M[m] -> PE[m mod 2, fl(m/2)] }")
        composed = first.compose(second)
        assert composed.apply_point((7,)).coords == (1, 0)

    def test_rank_mismatch_rejected(self):
        first = parse_map("{ S[i] -> PE[i, i] }")
        second = parse_map("{ Q[a] -> R[a] }")
        with pytest.raises(SpaceError):
            first.compose(second)

    def test_compose_requires_functional(self):
        relation = parse_map("{ PE[i, j] -> PE[a, b] : a = i and b = j }")
        functional = parse_map("{ PE[i, j] -> X[i] }")
        with pytest.raises(NotFunctionalError):
            relation.compose(functional)


class TestReverse:
    def test_reverse_contains_swapped_pairs(self):
        domain = parse_set("{ S[i, j] : 0 <= i < 3 and 0 <= j < 3 }")
        m = parse_map("{ S[i, j] -> PE[i + j] }").intersect_domain(domain)
        rev = m.reverse()
        assert rev.contains((3,), (1, 2))
        assert not rev.contains((3,), (0, 1))

    def test_reverse_pair_count_matches(self):
        domain = parse_set("{ S[i, j] : 0 <= i < 3 and 0 <= j < 3 }")
        m = parse_map("{ S[i, j] -> PE[i + j] }").intersect_domain(domain)
        assert m.reverse().count_pairs() == m.count_pairs()


class TestGeneralRelations:
    def test_systolic_adjacency(self):
        ic = parse_map(
            "{ PE[i, j] -> PE[i2, j2] : (i2 = i and j2 = j + 1) or (i2 = i + 1 and j2 = j) }"
        )
        assert ic.contains((1, 1), (1, 2))
        assert ic.contains((1, 1), (2, 1))
        assert not ic.contains((1, 1), (2, 2))
        assert not ic.contains((1, 1), (1, 1))

    def test_mesh_adjacency_with_abs(self):
        ic = parse_map(
            "{ PE[i, j] -> PE[i2, j2] : abs(i2 - i) <= 1 and abs(j2 - j) <= 1 }"
        )
        assert ic.contains((1, 1), (2, 2))
        assert ic.contains((1, 1), (0, 0))
        assert not ic.contains((1, 1), (3, 1))

    def test_pair_enumeration_over_domain_and_range(self):
        pe_domain = parse_set("{ PE[i, j] : 0 <= i < 2 and 0 <= j < 2 }")
        ic = parse_map("{ PE[i, j] -> PE[i2, j2] : i2 = i and j2 = j + 1 }")
        restricted = ic.intersect_domain(pe_domain).intersect_range(
            IntSet.box(ic.out_space, {"i2": (0, 2), "j2": (0, 2)})
        )
        pairs = restricted.pairs_array()
        assert pairs.shape == (2, 4)  # (0,0)->(0,1) and (1,0)->(1,1)

    def test_str_contains_arrow(self):
        m = parse_map("{ S[i] -> PE[i mod 4] }")
        assert "->" in str(m)


class TestIntersect:
    def test_intersect_domain_restricts_pairs(self):
        m = parse_map("{ S[i] -> PE[i mod 4] : 0 <= i < 16 }")
        smaller = parse_set("{ S[i] : 0 <= i < 8 }")
        assert m.intersect_domain(smaller).count_pairs() == 8

    def test_intersect_range_restricts_pairs(self):
        m = parse_map("{ S[i] -> PE[i mod 4] : 0 <= i < 16 }")
        range_set = IntSet.box(m.out_space, {m.out_space.dims[0]: (0, 2)})
        assert m.intersect_range(range_set).count_pairs() == 8
