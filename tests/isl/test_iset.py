"""Unit tests for integer sets, enumeration and counting."""

import numpy as np
import pytest

from repro.errors import SpaceError, UnboundedSetError
from repro.isl import IntSet, Space, box_set, parse_set
from repro.isl.constraint import Constraint
from repro.isl.count import count_points
from repro.isl.expr import var


class TestConstruction:
    def test_box_counts(self):
        s = IntSet.from_sizes("S", ["i", "j"], [4, 3])
        assert s.count() == 12

    def test_box_set_builder_with_sizes(self):
        s = box_set("PE", {"i": 8, "j": 8})
        assert s.count() == 64

    def test_box_set_builder_with_ranges(self):
        s = box_set("S", {"i": (2, 5), "j": (0, 2)})
        assert s.count() == 6

    def test_constraint_outside_space_rejected(self):
        with pytest.raises(SpaceError):
            IntSet(Space("S", ["i"]), [Constraint.ge(var("j"), 0)])

    def test_unbounded_enumeration_raises(self):
        s = IntSet(Space("S", ["i"]), [Constraint.ge(var("i"), 0)])
        with pytest.raises(UnboundedSetError):
            s.count()


class TestMembership:
    def test_contains_tuple_and_mapping(self):
        s = parse_set("{ S[i, j] : 0 <= i < 4 and 0 <= j < 3 and i >= j }")
        assert s.contains((2, 1))
        assert not s.contains((1, 2))
        assert s.contains({"i": 3, "j": 0})

    def test_contains_vec(self):
        s = parse_set("{ S[i, j] : 0 <= i < 4 and 0 <= j < 3 and i >= j }")
        env = {"i": np.array([2, 1, 3]), "j": np.array([1, 2, 5])}
        assert s.contains_vec(env).tolist() == [True, False, False]


class TestConstraints:
    def test_triangle_count(self):
        s = parse_set("{ S[i, j] : 0 <= i < 4 and 0 <= j < 4 and j <= i }")
        assert s.count() == 10

    def test_diagonal_equality(self):
        s = parse_set("{ S[i, j] : 0 <= i < 5 and 0 <= j < 5 and i = j }")
        assert s.count() == 5

    def test_modulus_constraint(self):
        s = parse_set("{ S[i] : 0 <= i < 10 and i mod 2 = 0 }")
        assert s.count() == 5

    def test_fix_dim(self):
        s = IntSet.from_sizes("S", ["i", "j"], [4, 4]).fix_dim("i", 2)
        assert s.count() == 4
        assert all(point.value("i") == 2 for point in s.points())

    def test_intersect(self):
        a = parse_set("{ S[i] : 0 <= i < 10 }")
        b = parse_set("{ S[i] : 5 <= i < 20 }")
        assert a.intersect(b).count() == 5

    def test_intersect_space_mismatch(self):
        a = parse_set("{ S[i] : 0 <= i < 10 }")
        b = parse_set("{ T[t] : 0 <= t < 10 }")
        with pytest.raises(SpaceError):
            a.intersect(b)

    def test_empty_set(self):
        s = parse_set("{ S[i] : 0 <= i < 10 and i > 20 }")
        assert s.is_empty()
        assert s.count() == 0


class TestEnumeration:
    def test_points_array_shape_and_order(self):
        s = IntSet.from_sizes("S", ["i", "j"], [2, 3])
        array = s.points_array()
        assert array.shape == (6, 2)
        assert array[0].tolist() == [0, 0]
        assert array[-1].tolist() == [1, 2]

    def test_points_iteration(self):
        s = parse_set("{ S[i] : 0 <= i < 3 }")
        assert [p.coords for p in s.points()] == [(0,), (1,), (2,)]

    def test_chunked_enumeration_matches_unchunked(self):
        s = parse_set("{ S[i, j] : 0 <= i < 50 and 0 <= j < 40 and (i + j) mod 3 = 0 }")
        small_chunks = sum(len(c["i"]) for c in s.chunks(chunk_size=17))
        assert small_chunks == s.count()

    def test_box_size_upper_bounds_count(self):
        s = parse_set("{ S[i, j] : 0 <= i < 6 and 0 <= j < 6 and i + j < 4 }")
        assert s.count() <= s.box_size()


class TestFactoredCounting:
    def test_separable_dimensions_multiply(self):
        s = parse_set(
            "{ S[i, j, k] : 0 <= i < 100 and 0 <= j < 200 and 0 <= k < 300 "
            "and i mod 2 = 0 and j mod 2 = 1 }"
        )
        assert count_points(s) == 50 * 100 * 300

    def test_coupled_pair_counts_exactly(self):
        s = parse_set(
            "{ S[i, j, k] : 0 <= i < 10 and 0 <= j < 10 and 0 <= k < 7 and i + j < 5 }"
        )
        # 15 pairs (i, j) with i + j < 5, times 7 free values of k
        assert count_points(s) == 15 * 7

    def test_derived_bounds_from_constraints(self):
        s = parse_set("{ S[i] : 3 <= i and i <= 9 }")
        assert s.dim_extent("i") == (3, 10)
        assert s.count() == 7
